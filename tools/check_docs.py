#!/usr/bin/env python
"""Docs/CLI consistency check, run by the CI lint job.

Four directions:

1. every ``--flag`` token the docs mention must exist on the ``repro``
   argument parser (or be a known external tool's flag) — stale docs
   fail the build;
2. flags listed in ``REQUIRED_DOCUMENTED`` must be mentioned in the
   docs — a user-facing knob nobody documents fails the build too;
3. **every** flag on the ``repro`` parser (except ``--help``) must be
   mentioned in README.md — new CLI surface ships documented or not at
   all;
4. every DESIGN.md section reference (``§3.10``-style) in README.md and
   CHANGES.md must resolve to a real numbered DESIGN.md heading — a
   renumbered or deleted section invalidates its cross-references.

Run:  PYTHONPATH=src python tools/check_docs.py
"""

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DOCS = ("README.md", "DESIGN.md")

#: Flags the docs mention that belong to other tools (pytest-benchmark),
#: not to the repro CLI.
ALLOWED_EXTERNAL = {"--benchmark-only"}

#: User-facing knobs that must stay documented somewhere in DOCS.
REQUIRED_DOCUMENTED = {
    "--inject-faults",
    "--fault-seed",
    "--max-retries",
    "--wave-timeout",
    "--workers",
    "--devices",
    "--pipelines",
    "--ledger",
    "--tenants",
    "--quota",
    "--backlog",
    "--drain-at",
    "--sweep",
    "--critical-path",
    "--trace",
}

FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")

#: Files whose ``§N.M`` references must resolve to DESIGN.md headings.
SECTION_REF_SOURCES = ("README.md", "CHANGES.md")

SECTION_REF_RE = re.compile(r"§(\d+(?:\.\d+)*)")

#: Numbered DESIGN.md headings: ``## 4. Experiment index`` /
#: ``### 3.10 In-storage filtering``.
SECTION_HEADING_RE = re.compile(r"^#{2,}\s+(\d+(?:\.\d+)*)\.?\s")


def cli_flags() -> set:
    """Every option string reachable from the repro parser, including
    all subcommands."""
    from repro.cli import build_parser

    flags = set()
    stack = [build_parser()]
    while stack:
        parser = stack.pop()
        for action in parser._actions:
            flags.update(
                s for s in action.option_strings if s.startswith("--")
            )
            if isinstance(action, argparse._SubParsersAction):
                stack.extend(action.choices.values())
    return flags


def doc_flags() -> dict:
    """``--flag`` -> sorted list of "file:line" mentions."""
    mentions = {}
    for name in DOCS:
        for lineno, line in enumerate(
            (REPO / name).read_text().splitlines(), start=1
        ):
            for flag in FLAG_RE.findall(line):
                mentions.setdefault(flag, []).append(f"{name}:{lineno}")
    return mentions


def readme_flags() -> set:
    """Flags mentioned anywhere in README.md specifically."""
    flags = set()
    for line in (REPO / "README.md").read_text().splitlines():
        flags.update(FLAG_RE.findall(line))
    return flags


def design_sections() -> set:
    """Section numbers with a numbered heading in DESIGN.md."""
    sections = set()
    for line in (REPO / "DESIGN.md").read_text().splitlines():
        match = SECTION_HEADING_RE.match(line)
        if match:
            sections.add(match.group(1))
    return sections


def section_refs() -> dict:
    """``section number`` -> sorted "file:line" mentions across
    :data:`SECTION_REF_SOURCES`."""
    refs = {}
    for name in SECTION_REF_SOURCES:
        path = REPO / name
        if not path.exists():
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            for section in SECTION_REF_RE.findall(line):
                refs.setdefault(section, []).append(f"{name}:{lineno}")
    return refs


def main() -> int:
    known = cli_flags()
    mentioned = doc_flags()
    in_readme = readme_flags()
    failures = []

    for flag, where in sorted(mentioned.items()):
        if flag not in known and flag not in ALLOWED_EXTERNAL:
            failures.append(
                f"docs mention {flag} ({', '.join(where)}) but the repro "
                "CLI has no such flag"
            )
    for flag in sorted(REQUIRED_DOCUMENTED):
        if flag not in known:
            failures.append(
                f"REQUIRED_DOCUMENTED lists {flag} but the repro CLI has "
                "no such flag"
            )
        elif flag not in mentioned:
            failures.append(
                f"{flag} exists on the repro CLI but none of "
                f"{', '.join(DOCS)} document it"
            )
    for flag in sorted(known - {"--help"}):
        if flag not in in_readme:
            failures.append(
                f"{flag} exists on the repro CLI but README.md never "
                "mentions it — document the flag where users will look"
            )

    sections = design_sections()
    for section, where in sorted(section_refs().items()):
        if section not in sections:
            failures.append(
                f"§{section} is referenced ({', '.join(where)}) but "
                "DESIGN.md has no such numbered section"
            )

    for failure in failures:
        print(f"check_docs: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"check_docs: {len(mentioned)} documented flags consistent "
            f"with the CLI ({len(known)} parser flags, all in README.md, "
            f"{len(REQUIRED_DOCUMENTED)} required docs present, "
            f"{len(section_refs())} section refs resolve in DESIGN.md)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
