"""Recursive-descent parser for the Genesis extended-SQL dialect.

Parses the full Figure 4 script: CREATE TABLE ... AS SELECT/PosExplode/
ReadExplode, DECLARE/SET variables, FOR row IN table loops, INSERT INTO,
INNER/LEFT/OUTER JOIN ... ON, WHERE, GROUP BY, LIMIT offset, count, and
EXEC for custom modules (Section III-F).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast_nodes import (
    BinOp,
    ColumnRef,
    CreateTable,
    Declare,
    ExecModule,
    ForLoop,
    FuncCall,
    InsertInto,
    JoinClause,
    Literal,
    OrderItem,
    PosExplode,
    ReadExplode,
    Script,
    Select,
    SelectItem,
    SetVar,
    Star,
    SubQuery,
    TableRef,
    UnaryOp,
    VarRef,
)
from .lexer import Token, tokenize


class ParseError(ValueError):
    """Raised on a malformed query script."""


class Parser:
    """One-pass recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._index = 0

    # -- token helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._peek()
        return token.kind == kind and (value is None or token.value == value)

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._next()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            actual = self._peek()
            raise ParseError(
                f"expected {value or kind}, got {actual.value!r} at {actual.position}"
            )
        return token

    # -- entry points -------------------------------------------------------------

    def parse_script(self) -> Script:
        """Parse a full statement script."""
        statements = []
        while not self._check("EOF"):
            statements.append(self._statement())
            self._accept("OP", ";")
        return Script(tuple(statements))

    # -- statements -----------------------------------------------------------------

    def _statement(self):
        if self._check("KEYWORD", "CREATE"):
            return self._create_table()
        if self._check("KEYWORD", "INSERT"):
            return self._insert()
        if self._check("KEYWORD", "DECLARE"):
            return self._declare()
        if self._check("KEYWORD", "SET"):
            return self._set_var()
        if self._check("KEYWORD", "FOR"):
            return self._for_loop()
        if self._check("KEYWORD", "EXEC"):
            return self._exec_module()
        token = self._peek()
        raise ParseError(f"unexpected token {token.value!r} at {token.position}")

    def _create_table(self) -> CreateTable:
        self._expect("KEYWORD", "CREATE")
        self._expect("KEYWORD", "TABLE")
        temp = False
        if self._check("TEMP"):
            name = self._next().value
            temp = True
        else:
            name = self._expect("IDENT").value
        self._expect("KEYWORD", "AS")
        return CreateTable(name, self._query(), temp=temp)

    def _insert(self) -> InsertInto:
        self._expect("KEYWORD", "INSERT")
        self._expect("KEYWORD", "INTO")
        name = self._expect("IDENT").value
        return InsertInto(name, self._query())

    def _declare(self) -> Declare:
        self._expect("KEYWORD", "DECLARE")
        name = self._expect("VAR").value
        type_token = self._next()
        if type_token.kind not in ("IDENT", "KEYWORD"):
            raise ParseError(f"expected type name at {type_token.position}")
        return Declare(name, type_token.value)

    def _set_var(self) -> SetVar:
        self._expect("KEYWORD", "SET")
        name = self._expect("VAR").value
        self._expect("OP", "=")
        return SetVar(name, self._expression())

    def _for_loop(self) -> ForLoop:
        self._expect("KEYWORD", "FOR")
        row_var = self._expect("IDENT").value
        self._expect("KEYWORD", "IN")
        table = self._expect("IDENT").value
        self._expect("OP", ":")
        body: List = []
        while not self._check("KEYWORD", "END"):
            body.append(self._statement())
            self._accept("OP", ";")
        self._expect("KEYWORD", "END")
        self._expect("KEYWORD", "LOOP")
        return ForLoop(row_var, table, tuple(body))

    def _exec_module(self) -> ExecModule:
        self._expect("KEYWORD", "EXEC")
        module = self._expect("IDENT").value
        bindings: List[Tuple[str, object]] = []
        while self._check("IDENT"):
            stream = self._next().value
            self._expect("OP", "=")
            bindings.append((stream, self._expression()))
        return ExecModule(module, tuple(bindings))

    # -- queries ---------------------------------------------------------------------

    def _query(self):
        if self._check("KEYWORD", "POSEXPLODE"):
            return self._pos_explode()
        if self._check("KEYWORD", "READEXPLODE"):
            return self._read_explode()
        return self._select()

    def _pos_explode(self) -> PosExplode:
        self._expect("KEYWORD", "POSEXPLODE")
        self._expect("OP", "(")
        array = self._column_ref()
        self._expect("OP", ",")
        init = self._expression()
        self._expect("OP", ")")
        self._expect("KEYWORD", "FROM")
        return PosExplode(array, init, self._source())

    def _read_explode(self) -> ReadExplode:
        self._expect("KEYWORD", "READEXPLODE")
        self._expect("OP", "(")
        args = [self._expression()]
        while self._accept("OP", ","):
            args.append(self._expression())
        self._expect("OP", ")")
        self._expect("KEYWORD", "FROM")
        return ReadExplode(tuple(args), self._source())

    def _select(self) -> Select:
        self._expect("KEYWORD", "SELECT")
        items = [self._select_item()]
        while self._accept("OP", ","):
            items.append(self._select_item())
        self._expect("KEYWORD", "FROM")
        source = self._source()
        join = self._join_clause()
        where = None
        if self._accept("KEYWORD", "WHERE"):
            where = self._expression()
        group_by: List[ColumnRef] = []
        if self._accept("KEYWORD", "GROUP"):
            self._expect("KEYWORD", "BY")
            group_by.append(self._column_ref())
            while self._accept("OP", ","):
                group_by.append(self._column_ref())
        order_by: List[OrderItem] = []
        if self._accept("KEYWORD", "ORDER"):
            self._expect("KEYWORD", "BY")
            order_by.append(self._order_item())
            while self._accept("OP", ","):
                order_by.append(self._order_item())
        limit = None
        if self._accept("KEYWORD", "LIMIT"):
            first = self._expression()
            if self._accept("OP", ","):
                limit = (first, self._expression())
            else:
                limit = (Literal(0), first)
        return Select(
            tuple(items), source, join, where, tuple(group_by),
            tuple(order_by), limit,
        )

    def _order_item(self) -> OrderItem:
        column = self._column_ref()
        descending = False
        if self._accept("KEYWORD", "DESC"):
            descending = True
        else:
            self._accept("KEYWORD", "ASC")
        return OrderItem(column, descending)

    def _select_item(self) -> SelectItem:
        if self._accept("OP", "*"):
            return SelectItem(Star())
        expr = self._expression()
        alias = None
        if self._accept("KEYWORD", "AS"):
            alias = self._expect("IDENT").value
        return SelectItem(expr, alias)

    def _source(self):
        if self._accept("OP", "("):
            query = self._query()
            self._expect("OP", ")")
            return SubQuery(query)
        name_token = self._next()
        if name_token.kind not in ("IDENT", "TEMP"):
            raise ParseError(f"expected table name at {name_token.position}")
        partition = None
        if self._accept("KEYWORD", "PARTITION"):
            self._expect("OP", "(")
            partition = self._expression()
            self._expect("OP", ")")
        return TableRef(name_token.value, partition)

    def _join_clause(self) -> Optional[JoinClause]:
        kind = None
        for candidate in ("INNER", "LEFT", "OUTER"):
            if self._check("KEYWORD", candidate):
                self._next()
                kind = candidate.lower()
                break
        if kind is None:
            if self._accept("KEYWORD", "JOIN"):
                kind = "inner"
            else:
                return None
        else:
            self._expect("KEYWORD", "JOIN")
        source = self._source()
        self._expect("KEYWORD", "ON")
        left = self._column_ref()
        operator = self._next()
        if operator.value not in ("=", "=="):
            raise ParseError(f"JOIN condition must be an equality at {operator.position}")
        right = self._column_ref()
        return JoinClause(kind, source, left, right)

    # -- expressions -----------------------------------------------------------------

    def _expression(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self._accept("KEYWORD", "OR"):
            left = BinOp("OR", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._comparison()
        while self._accept("KEYWORD", "AND"):
            left = BinOp("AND", left, self._comparison())
        return left

    def _comparison(self):
        left = self._additive()
        for op in ("==", "!=", "<=", ">=", "<", ">", "="):
            if self._check("OP", op):
                self._next()
                normalized = "==" if op == "=" else op
                return BinOp(normalized, left, self._additive())
        return left

    def _additive(self):
        left = self._multiplicative()
        while True:
            if self._accept("OP", "+"):
                left = BinOp("+", left, self._multiplicative())
            elif self._accept("OP", "-"):
                left = BinOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self):
        left = self._unary()
        while True:
            if self._accept("OP", "*"):
                left = BinOp("*", left, self._unary())
            elif self._accept("OP", "/"):
                left = BinOp("/", left, self._unary())
            else:
                return left

    def _unary(self):
        if self._accept("KEYWORD", "NOT"):
            return UnaryOp("NOT", self._unary())
        if self._accept("OP", "-"):
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self):
        if self._accept("OP", "("):
            expr = self._expression()
            self._expect("OP", ")")
            return expr
        token = self._peek()
        if token.kind == "NUMBER":
            self._next()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "STRING":
            self._next()
            return Literal(token.value)
        if token.kind == "VAR":
            self._next()
            return VarRef(token.value)
        if token.kind == "KEYWORD" and token.value in ("SUM", "COUNT", "MIN", "MAX"):
            self._next()
            self._expect("OP", "(")
            args = []
            if self._accept("OP", "*"):
                args.append(Star())
            elif not self._check("OP", ")"):
                args.append(self._expression())
                while self._accept("OP", ","):
                    args.append(self._expression())
            self._expect("OP", ")")
            return FuncCall(token.value, tuple(args))
        if token.kind in ("IDENT", "TEMP"):
            return self._column_ref()
        raise ParseError(f"unexpected token {token.value!r} at {token.position}")

    def _column_ref(self) -> ColumnRef:
        token = self._next()
        if token.kind not in ("IDENT", "TEMP"):
            raise ParseError(f"expected identifier at {token.position}")
        if self._accept("OP", "."):
            column = self._expect("IDENT").value
            return ColumnRef(column, table=token.value)
        return ColumnRef(token.value)


def parse(text: str) -> Script:
    """Parse a query script into an AST."""
    return Parser(text).parse_script()


def parse_query(text: str):
    """Parse a single SELECT/PosExplode/ReadExplode query."""
    parser = Parser(text)
    query = parser._query()
    parser._expect("EOF")
    return query
