"""Pluggable execution backends for the extended-SQL executor.

ROADMAP item 2: one front end, pluggable executors.  The
:class:`~repro.sql.executor.Executor` owns parsing, the catalog,
variables, and row bindings; evaluating one plan *node* over
already-evaluated child tables is delegated to a :class:`Backend`:

* :class:`ReferenceBackend` — the original row-at-a-time interpreter.
  It materializes rows as Python dicts and is the bit-level oracle for
  every other implementation (including the hardware pipelines).
* ``VectorizedBackend`` (:mod:`repro.sql.fast_backend`, registered as
  ``"fast"``) — numpy columnar kernels, bit-identical to the reference
  by contract and pinned so by the differential test suite.

Backends are looked up by name through :func:`get_backend`;
:func:`register_backend` lets hosts plug in their own.

NULL contract (shared by all backends)
--------------------------------------

The dialect has no three-valued logic.  NULLs only *arise* from the
unmatched side of a LEFT/OUTER join, and they are materialized as
sentinel values by :func:`null_like`: ``0`` for numeric scalars,
``False`` for booleans, and an empty array for array columns.  From
that point on every operator treats the sentinel as an ordinary value:

* comparisons and arithmetic (:func:`apply_binop`) see ``0``/``False``
  — ``NULL == 0`` is true, ``NULL + 1`` is ``1``;
* aggregates include sentinel rows — ``COUNT(expr)`` counts truthiness,
  so a NULL (``0``) is *not* counted, while ``SUM``/``MIN``/``MAX``
  see the literal ``0``;
* group-by keys treat NULL as the value ``0`` (all NULLs group
  together, and together with real zeros).

Tables additionally carry *validity masks* (``Table.validity``) so
hosts can distinguish a sentinel from a real zero: joins mark
null-filled rows invalid, and row-selection verbs propagate the masks.
Expression evaluation ignores validity by design — queries that must
distinguish NULL from zero shift the domain instead (e.g. project
``SEQ + 1`` so ``0`` is unoccupied), which is also how the hardware
pipelines keep flits self-describing.  The truth-table test
``tests/test_null_contract.py`` pins this contract for both backends.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..genomics.cigar import decode_elements
from ..genomics.read import FLAG_REVERSE
from ..tables.schema import ColumnSpec, Schema
from ..tables.table import Table
from .ast_nodes import ColumnRef, FuncCall, Star
from .explode import pos_explode, read_explode

__all__ = [
    "Backend",
    "ReferenceBackend",
    "SqlError",
    "apply_binop",
    "available_backends",
    "get_backend",
    "null_like",
    "register_backend",
    "table_from_row_dicts",
]


class SqlError(ValueError):
    """Raised on semantic errors during execution."""


#: Schema of the bulk read-explode table stage drivers consume: one row
#: per base of every read, with the BQSR covariates precomputed.
EXPLODED_READS_SCHEMA = Schema.of(
    READID="int64",
    POS="uint32",
    OP="uint8",
    SEQ="uint8",
    QUAL="uint8",
    CYC="int32",
    CTX="int32",
)


def _infer_spec(name: str, value) -> ColumnSpec:
    if isinstance(value, np.ndarray):
        kind = {
            np.dtype(np.uint8): "uint8[]",
            np.dtype(np.uint16): "uint16[]",
            np.dtype(np.uint32): "uint32[]",
            np.dtype(np.bool_): "bool[]",
        }.get(value.dtype)
        if kind is None:
            kind = "uint32[]"
        return ColumnSpec(name, kind)
    if isinstance(value, (bool, np.bool_)):
        return ColumnSpec(name, "bool")
    if isinstance(value, (list, tuple)):
        return ColumnSpec(name, "uint32[]")
    return ColumnSpec(name, "int64")


def table_from_row_dicts(rows: List[dict], schema: Optional[Schema] = None) -> Table:
    """Build a table from per-row dicts, inferring the schema from the
    first row's values.

    An empty row list carries no schema information, so ``schema`` must
    be given explicitly in that case; otherwise :class:`SqlError` is
    raised.  When rows are present, ``schema`` is ignored and the
    schema is inferred as before (row-dict round trips normalize every
    scalar to int64/bool).
    """
    if not rows:
        if schema is None:
            raise SqlError(
                "cannot infer a schema from an empty row list; "
                "pass an explicit schema"
            )
        return Table.empty(schema)
    specs = tuple(_infer_spec(name, value) for name, value in rows[0].items())
    return Table.from_rows(Schema(specs), rows)


def apply_binop(op: str, left, right):
    """Scalar binary operator semantics shared by all backends.

    ``/`` is floor division on integers and true division on floats,
    mirroring the hardware ALU's integer divide.  NULL sentinels take
    part as ordinary ``0``/``False`` values (see the module docstring).
    """
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left // right if isinstance(left, (int, np.integer)) else left / right
    raise SqlError(f"unsupported operator {op}")


def null_like(value):
    """The NULL sentinel for a value's type: empty array / False / 0."""
    if isinstance(value, np.ndarray):
        return np.array([], dtype=value.dtype)
    if isinstance(value, (bool, np.bool_)):
        return False
    return 0


def qualify_name(name: str, qualifier: Optional[str]) -> str:
    """Output column name for a joined column: ``qualifier__name``."""
    if qualifier is None:
        return name
    return f"{qualifier}__{name}"


def _row_kind(spec: ColumnSpec) -> str:
    """Column kind after a row-dict round trip: scalars widen to int64
    (bool stays bool), array kinds are preserved."""
    if spec.is_array:
        return spec.kind
    return "bool" if spec.kind == "bool" else "int64"


def join_output_columns(
    left: Table,
    right: Table,
    left_name: Optional[str],
    right_name: Optional[str],
    include_left: bool = True,
    include_right: bool = True,
) -> List[Tuple[str, str, str, str]]:
    """The join's output column layout: ``(out_name, side, source, kind)``
    per column, left columns first, with a colliding right column
    overwriting the left one in place (dict-update semantics)."""
    order: List[str] = []
    info: Dict[str, Tuple[str, str, str]] = {}
    if include_left:
        for spec in left.schema.columns:
            out = qualify_name(spec.name, left_name)
            if out not in info:
                order.append(out)
            info[out] = ("left", spec.name, _row_kind(spec))
    if include_right:
        for spec in right.schema.columns:
            out = qualify_name(spec.name, right_name)
            if out not in info:
                order.append(out)
            info[out] = ("right", spec.name, _row_kind(spec))
    return [(out,) + info[out] for out in order]


def join_validity(
    left: Table,
    right: Table,
    columns: List[Tuple[str, str, str, str]],
    left_src: np.ndarray,
    right_src: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Validity masks for a join result.

    ``left_src``/``right_src`` give each output row's source row on that
    side (-1 for the null-filled side of an unmatched row).  A column is
    invalid where its side is null-filled or where the source row was
    already invalid in the input.
    """
    masks: Dict[str, np.ndarray] = {}
    for out_name, side, source, _kind in columns:
        src = left_src if side == "left" else right_src
        child = left if side == "left" else right
        valid = src >= 0
        base = child.validity(source)
        if base is not None and valid.any():
            carried = np.ones(len(src), dtype=bool)
            carried[valid] = base[src[valid]]
            valid = valid & carried
        if not valid.all():
            masks[out_name] = valid
    return masks


class Backend:
    """One plan-node-at-a-time execution strategy.

    The executor evaluates children and passes finished tables; each
    method returns the node's output table.  Implementations must be
    bit-identical to :class:`ReferenceBackend` — same values, dtypes,
    column order, row order, and validity masks.
    """

    name = "abstract"

    # -- relational operators -------------------------------------------------

    def project(self, executor, plan, child: Table) -> Table:
        raise NotImplementedError

    def filter(self, executor, plan, child: Table) -> Table:
        raise NotImplementedError

    def join(self, executor, plan, left: Table, right: Table) -> Table:
        raise NotImplementedError

    def group_by(self, executor, plan, child: Table) -> Table:
        raise NotImplementedError

    def aggregate(self, executor, plan, child: Table) -> Table:
        raise NotImplementedError

    def sort(self, executor, plan, child: Table) -> Table:
        raise NotImplementedError

    def limit(self, executor, plan, child: Table) -> Table:
        offset = int(executor._eval_scalar(plan.offset, None))
        count = int(executor._eval_scalar(plan.count, None))
        return child.limit(count, offset)

    def pos_explode(self, executor, plan, child: Table) -> Table:
        init_column = plan.init_pos
        if not isinstance(init_column, ColumnRef):
            raise SqlError("PosExplode init position must be a column")
        return pos_explode(child, plan.array.column, init_column.column)

    def read_explode(self, executor, plan, child: Table) -> Table:
        raise NotImplementedError

    # -- bulk kernels (stage drivers) -----------------------------------------

    def explode_reads(self, table: Table, read_length: int) -> Table:
        """Explode a READS-schema table into one row per base, including
        the BQSR cycle/context covariates (CYC/CTX are -1 where
        undefined: deleted bases, first bases, non-ACGT context)."""
        raise NotImplementedError


class ReferenceBackend(Backend):
    """The original row-at-a-time interpreter (the semantic oracle)."""

    name = "reference"

    def project(self, executor, plan, child: Table) -> Table:
        items = plan.items
        if len(items) == 1 and isinstance(items[0].expr, Star):
            return child
        rows = []
        for row in child.rows():
            out = {}
            for index, item in enumerate(items):
                name = executor._item_name(item, index)
                out[name] = executor._eval_scalar(item.expr, row)
            rows.append(out)
        if not rows:
            specs = tuple(
                ColumnSpec(executor._item_name(item, i), "int64")
                for i, item in enumerate(items)
            )
            return Table.empty(Schema(specs))
        return table_from_row_dicts(rows)

    def filter(self, executor, plan, child: Table) -> Table:
        return child.where(
            lambda row: bool(executor._eval_scalar(plan.predicate, row))
        )

    def join(self, executor, plan, left: Table, right: Table) -> Table:
        left_name = executor._plan_qualifier(plan.left)
        right_name = executor._plan_qualifier(plan.right)
        left_rows = list(left.rows())
        right_rows = list(right.rows())
        right_key = plan.right_key.column
        left_key = plan.left_key.column
        index: Dict[object, List[int]] = {}
        for i, row in enumerate(right_rows):
            index.setdefault(executor._row_value(row, right_key), []).append(i)

        def qualify(row: dict, qualifier: Optional[str]) -> dict:
            if qualifier is None:
                return dict(row)
            return {f"{qualifier}__{name}": value for name, value in row.items()}

        out_rows: List[dict] = []
        left_src: List[int] = []
        right_src: List[int] = []
        matched_right: set = set()
        null_right = {name: null_like(value) for name, value in
                      (right_rows[0].items() if right_rows else [])}
        for i, row in enumerate(left_rows):
            matches = index.get(executor._row_value(row, left_key), [])
            if matches:
                for j in matches:
                    matched_right.add(j)
                    combined = qualify(row, left_name)
                    combined.update(qualify(right_rows[j], right_name))
                    out_rows.append(combined)
                    left_src.append(i)
                    right_src.append(j)
            elif plan.kind in ("left", "outer"):
                combined = qualify(row, left_name)
                combined.update(qualify(null_right, right_name))
                out_rows.append(combined)
                left_src.append(i)
                right_src.append(-1)
        if plan.kind == "outer":
            null_left = {name: null_like(value) for name, value in
                         (left_rows[0].items() if left_rows else [])}
            for j, row in enumerate(right_rows):
                if j not in matched_right:
                    combined = qualify(null_left, left_name)
                    combined.update(qualify(row, right_name))
                    out_rows.append(combined)
                    left_src.append(-1)
                    right_src.append(j)
        columns = join_output_columns(
            left, right, left_name, right_name,
            include_left=left.num_rows > 0 or not out_rows,
            include_right=right.num_rows > 0 or not out_rows,
        )
        if not out_rows:
            schema = Schema(tuple(ColumnSpec(out, kind)
                                  for out, _side, _source, kind in columns))
            return Table.empty(schema)
        result = table_from_row_dicts(out_rows)
        masks = join_validity(
            left, right, columns,
            np.asarray(left_src, dtype=np.int64),
            np.asarray(right_src, dtype=np.int64),
        )
        if masks:
            result = Table(result.schema, result._columns, result.num_rows,
                           validity=masks)
        return result

    def group_by(self, executor, plan, child: Table) -> Table:
        groups: Dict[tuple, List[dict]] = {}
        for row in child.rows():
            key = tuple(executor._row_value(row, k.column) for k in plan.keys)
            groups.setdefault(key, []).append(row)
        out_rows = []
        for key, rows in groups.items():
            out = {k.column: value for k, value in zip(plan.keys, key)}
            for index, item in enumerate(plan.items):
                if isinstance(item.expr, ColumnRef):
                    continue  # key columns already present
                name = executor._item_name(item, index)
                out[name] = self._eval_aggregate(executor, item.expr, rows)
            out_rows.append(out)
        return table_from_row_dicts(
            out_rows, schema=group_output_schema(executor, plan, child)
        )

    def aggregate(self, executor, plan, child: Table) -> Table:
        rows = list(child.rows())
        out = {}
        for index, item in enumerate(plan.items):
            name = executor._item_name(item, index)
            out[name] = self._eval_aggregate(executor, item.expr, rows)
        return table_from_row_dicts([out])

    def _eval_aggregate(self, executor, expr: FuncCall, rows: List[dict]):
        if not isinstance(expr, FuncCall):
            raise SqlError(f"expected aggregate, got {expr!r}")
        name = expr.name.upper()
        if name == "COUNT" and (not expr.args or isinstance(expr.args[0], Star)):
            return len(rows)
        values = [executor._eval_scalar(expr.args[0], row) for row in rows]
        if name == "SUM":
            return int(sum(int(v) for v in values))
        if name == "COUNT":
            return sum(1 for v in values if v)
        if name == "MIN":
            return min(values) if values else 0
        if name == "MAX":
            return max(values) if values else 0
        raise SqlError(f"unsupported aggregate {name}")

    def sort(self, executor, plan, child: Table) -> Table:
        rows = list(child.rows())
        indices = list(range(len(rows)))
        # Stable multi-key sort: apply keys right-to-left.
        for item in reversed(plan.keys):
            indices.sort(
                key=lambda i: executor._row_value(
                    rows[i], item.column.column, item.column.table
                ),
                reverse=item.descending,
            )
        return child.take(indices)

    def read_explode(self, executor, plan, child: Table) -> Table:
        pieces = []
        for row in child.rows():
            values = [executor._eval_scalar(arg, row) for arg in plan.args]
            if len(values) == 3:
                pos, cigar, seq = values
                pieces.append(read_explode(int(pos), cigar, seq))
            elif len(values) == 4:
                pos, cigar, seq, qual = values
                pieces.append(read_explode(int(pos), cigar, seq, qual))
            else:
                raise SqlError("ReadExplode takes POS, CIGAR, SEQ [, QUAL]")
        if not pieces:
            return read_explode(0, [], [])
        result = pieces[0]
        for piece in pieces[1:]:
            result = result.concat(piece)
        return result

    def explode_reads(self, table: Table, read_length: int) -> Table:
        read_ids = (table.column("ROWID") if "ROWID" in table.schema
                    else np.arange(table.num_rows, dtype=np.int64))
        positions = table.column("POS")
        cigars = table.column("CIGAR")
        seqs = table.column("SEQ")
        quals = table.column("QUAL")
        flags = (table.column("FLAGS") if "FLAGS" in table.schema
                 else np.zeros(table.num_rows, dtype=np.uint32))
        out: Dict[str, List[int]] = {name: [] for name in
                                     EXPLODED_READS_SCHEMA.names}
        ins_pos = int(np.iinfo(np.uint32).max)
        del_code = int(np.iinfo(np.uint8).max)
        for i in range(table.num_rows):
            cigar = decode_elements(cigars[i])
            seq = seqs[i]
            qual = quals[i]
            reverse = bool(int(flags[i]) & FLAG_REVERSE)
            rid = int(read_ids[i])
            for op, ref_pos, read_index in cigar.walk(int(positions[i])):
                out["READID"].append(rid)
                if op == "M":
                    out["POS"].append(ref_pos)
                    out["OP"].append(0)
                elif op == "I":
                    out["POS"].append(ins_pos)
                    out["OP"].append(1)
                else:  # D
                    out["POS"].append(ref_pos)
                    out["OP"].append(2)
                if read_index >= 0:
                    out["SEQ"].append(int(seq[read_index]))
                    out["QUAL"].append(int(qual[read_index]))
                    if reverse:
                        cycle = read_length + (len(seq) - 1 - read_index)
                    else:
                        cycle = read_index
                    out["CYC"].append(cycle)
                    if read_index <= 0:
                        out["CTX"].append(-1)
                    else:
                        prev = int(seq[read_index - 1])
                        current = int(seq[read_index])
                        if prev > 3 or current > 3:
                            out["CTX"].append(-1)
                        else:
                            out["CTX"].append(prev * 4 + current)
                else:
                    out["SEQ"].append(del_code)
                    out["QUAL"].append(del_code)
                    out["CYC"].append(-1)
                    out["CTX"].append(-1)
        return Table.from_columns(EXPLODED_READS_SCHEMA, **out)


def group_output_schema(executor, plan, child: Table) -> Schema:
    """Schema of an (empty) GROUP BY result: key columns keep the
    child's row-dict kind, aggregate items come out int64."""
    specs: List[ColumnSpec] = []
    for key in plan.keys:
        if key.column in child.schema:
            specs.append(ColumnSpec(key.column, _row_kind(child.schema[key.column])))
        else:
            specs.append(_infer_spec(key.column, executor.variables.get(key.column, 0)))
    for index, item in enumerate(plan.items):
        if isinstance(item.expr, ColumnRef):
            continue
        specs.append(ColumnSpec(executor._item_name(item, index), "int64"))
    return Schema(tuple(specs))


#: Registered backend factories, by name.
_BACKENDS: Dict[str, type] = {"reference": ReferenceBackend}


def register_backend(name: str, factory: type) -> None:
    """Register a backend class under ``name`` for ``Executor(backend=name)``."""
    _BACKENDS[name] = factory


def get_backend(name: str) -> Backend:
    """Instantiate a registered backend by name."""
    from . import fast_backend  # noqa: F401  (registers "fast" on import)

    factory = _BACKENDS.get(name)
    if factory is None:
        known = ", ".join(sorted(_BACKENDS))
        raise SqlError(f"unknown SQL backend {name!r} (available: {known})")
    return factory()


def available_backends() -> List[str]:
    """Names of every registered backend."""
    from . import fast_backend  # noqa: F401

    return sorted(_BACKENDS)


class timed_operator:
    """Context manager charging one plan-node execution to the metrics
    registry: ``sql_operator_seconds{op=...,backend=...}`` and
    ``sql_operator_rows`` counters, which ``repro analyze`` attributes."""

    __slots__ = ("metrics", "op", "backend", "_start")

    def __init__(self, metrics, op: str, backend: str):
        self.metrics = metrics
        self.op = op
        self.backend = backend
        self._start = 0.0

    def __enter__(self) -> "timed_operator":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            elapsed = time.perf_counter() - self._start
            self.metrics.counter(
                "sql_operator_seconds", op=self.op, backend=self.backend
            ).inc(elapsed)

    def rows(self, count: int) -> None:
        """Record the node's output row count."""
        self.metrics.counter(
            "sql_operator_rows", op=self.op, backend=self.backend
        ).inc(count)
