"""Software executor for the extended-SQL dialect.

Interprets parsed scripts against a catalog of columnar tables.  This is
the *reference semantics* of Genesis queries: the hardware pipelines built
from the same logical plans must produce identical results, and the test
suite checks exactly that for the Figure 4 example query.

Supported surface (everything Figure 4 uses, Section III-B):
CREATE TABLE [#temp] AS <query>, INSERT INTO, DECLARE/SET @variables,
FOR row IN table loops, SELECT with INNER/LEFT/OUTER JOIN ... ON,
WHERE, GROUP BY, ORDER BY ... [ASC|DESC] (keys must appear in the select
list), LIMIT offset, count, SUM/COUNT/MIN/MAX aggregates, PosExplode,
ReadExplode, and EXEC <CustomModule> bindings registered by the host
(Section III-F).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..tables.schema import ColumnSpec, Schema
from ..tables.table import Table
from .ast_nodes import (
    BinOp,
    ColumnRef,
    CreateTable,
    Declare,
    ExecModule,
    ForLoop,
    FuncCall,
    InsertInto,
    Literal,
    Script,
    SelectItem,
    SetVar,
    Star,
    UnaryOp,
    VarRef,
)
from .explode import pos_explode, read_explode
from .parser import parse, parse_query
from .plan import (
    AggregateNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    PosExplodeNode,
    ProjectNode,
    ReadExplodeNode,
    ScanNode,
    SortNode,
    build_plan,
)


class SqlError(ValueError):
    """Raised on semantic errors during execution."""


def _infer_spec(name: str, value) -> ColumnSpec:
    if isinstance(value, np.ndarray):
        kind = {
            np.dtype(np.uint8): "uint8[]",
            np.dtype(np.uint16): "uint16[]",
            np.dtype(np.uint32): "uint32[]",
            np.dtype(np.bool_): "bool[]",
        }.get(value.dtype)
        if kind is None:
            kind = "uint32[]"
        return ColumnSpec(name, kind)
    if isinstance(value, (bool, np.bool_)):
        return ColumnSpec(name, "bool")
    if isinstance(value, (list, tuple)):
        return ColumnSpec(name, "uint32[]")
    return ColumnSpec(name, "int64")


def table_from_row_dicts(rows: List[dict]) -> Table:
    """Build a table from per-row dicts, inferring the schema from the
    first row's values."""
    if not rows:
        return Table.empty(Schema.of(EMPTY="int64"))
    specs = tuple(_infer_spec(name, value) for name, value in rows[0].items())
    return Table.from_rows(Schema(specs), rows)


class Executor:
    """Evaluates scripts against a mutable catalog."""

    def __init__(self) -> None:
        self.tables: Dict[str, Table] = {}
        self.partition_providers: Dict[str, Callable[[object], Table]] = {}
        self.variables: Dict[str, object] = {}
        self.custom_modules: Dict[str, Callable] = {}
        self._row_bindings: Dict[str, dict] = {}

    # -- host-facing registration -------------------------------------------------

    def register_table(self, name: str, table: Table) -> None:
        """Expose a table to queries under ``name``."""
        self.tables[name] = table

    def register_partitioned(
        self, name: str, provider: Callable[[object], Table]
    ) -> None:
        """Expose ``name PARTITION (pid)``: ``provider(pid)`` must return
        the partition's table."""
        self.partition_providers[name] = provider

    def set_variable(self, name: str, value) -> None:
        """Set a ``@variable`` (hosts use this for constants like P)."""
        self.variables[name] = value

    def register_custom_module(self, name: str, func: Callable) -> None:
        """Register an ``EXEC``-able custom operation (Section III-F).
        ``func(executor, **bindings)`` receives evaluated binding values."""
        self.custom_modules[name] = func

    # -- script execution -----------------------------------------------------------

    def execute(self, text: str) -> None:
        """Parse and run a whole script."""
        self.execute_script(parse(text))

    def execute_script(self, script: Script) -> None:
        """Run a parsed script."""
        for statement in script.statements:
            self._execute_statement(statement)

    def query(self, text: str) -> Table:
        """Parse and evaluate a single query, returning its table."""
        return self._eval_plan(build_plan(parse_query(text)))

    def _execute_statement(self, statement) -> None:
        if isinstance(statement, CreateTable):
            self.tables[statement.name] = self._eval_plan(build_plan(statement.query))
        elif isinstance(statement, InsertInto):
            result = self._eval_plan(build_plan(statement.query))
            existing = self.tables.get(statement.name)
            if existing is None or existing.num_rows == 0:
                self.tables[statement.name] = result
            else:
                self.tables[statement.name] = existing.concat(result)
        elif isinstance(statement, Declare):
            self.variables.setdefault(statement.name, 0)
        elif isinstance(statement, SetVar):
            self.variables[statement.name] = self._eval_scalar(statement.expr, None)
        elif isinstance(statement, ForLoop):
            table = self.tables.get(statement.table)
            if table is None:
                raise SqlError(f"unknown table {statement.table} in FOR loop")
            for row in table.rows():
                self._row_bindings[statement.row_var] = row
                for inner in statement.body:
                    self._execute_statement(inner)
            self._row_bindings.pop(statement.row_var, None)
        elif isinstance(statement, ExecModule):
            func = self.custom_modules.get(statement.module)
            if func is None:
                raise SqlError(f"unknown custom module {statement.module}")
            bindings = {
                name: self._eval_scalar(expr, None)
                for name, expr in statement.bindings
            }
            func(self, **bindings)
        else:
            raise SqlError(f"unsupported statement {statement!r}")

    # -- plan evaluation ---------------------------------------------------------------

    def _eval_plan(self, plan: PlanNode) -> Table:
        if isinstance(plan, ScanNode):
            return self._scan(plan)
        if isinstance(plan, ProjectNode):
            return self._project(self._eval_plan(plan.child), plan.items)
        if isinstance(plan, FilterNode):
            child = self._eval_plan(plan.child)
            return child.where(lambda row: bool(self._eval_scalar(plan.predicate, row)))
        if isinstance(plan, JoinNode):
            return self._join(plan)
        if isinstance(plan, GroupByNode):
            return self._group_by(plan)
        if isinstance(plan, AggregateNode):
            return self._aggregate(self._eval_plan(plan.child), plan.items)
        if isinstance(plan, SortNode):
            child = self._eval_plan(plan.child)
            rows = list(child.rows())
            indices = list(range(len(rows)))
            # Stable multi-key sort: apply keys right-to-left.
            for item in reversed(plan.keys):
                indices.sort(
                    key=lambda i: self._row_value(
                        rows[i], item.column.column, item.column.table
                    ),
                    reverse=item.descending,
                )
            return child.take(indices)
        if isinstance(plan, LimitNode):
            child = self._eval_plan(plan.child)
            offset = int(self._eval_scalar(plan.offset, None))
            count = int(self._eval_scalar(plan.count, None))
            return child.limit(count, offset)
        if isinstance(plan, PosExplodeNode):
            child = self._eval_plan(plan.child)
            init_column = plan.init_pos
            if not isinstance(init_column, ColumnRef):
                raise SqlError("PosExplode init position must be a column")
            return pos_explode(child, plan.array.column, init_column.column)
        if isinstance(plan, ReadExplodeNode):
            return self._read_explode(plan)
        raise SqlError(f"cannot evaluate plan node {plan!r}")

    def _scan(self, plan: ScanNode) -> Table:
        if plan.table in self._row_bindings:
            return table_from_row_dicts([dict(self._row_bindings[plan.table])])
        if plan.partition is not None:
            provider = self.partition_providers.get(plan.table)
            if provider is None:
                raise SqlError(f"table {plan.table} is not partitioned")
            pid = self._eval_scalar(plan.partition, None)
            return provider(pid)
        table = self.tables.get(plan.table)
        if table is None:
            raise SqlError(f"unknown table {plan.table}")
        return table

    def _project(self, table: Table, items) -> Table:
        if len(items) == 1 and isinstance(items[0].expr, Star):
            return table
        rows = []
        for row in table.rows():
            out = {}
            for index, item in enumerate(items):
                name = self._item_name(item, index)
                out[name] = self._eval_scalar(item.expr, row)
            rows.append(out)
        if not rows:
            specs = tuple(
                ColumnSpec(self._item_name(item, i), "int64")
                for i, item in enumerate(items)
            )
            return Table.empty(Schema(specs))
        return table_from_row_dicts(rows)

    @staticmethod
    def _item_name(item: SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            if item.expr.table:
                return f"{item.expr.table}__{item.expr.column}"
            return item.expr.column
        return f"EXPR{index}"

    def _join(self, plan: JoinNode) -> Table:
        left = self._eval_plan(plan.left)
        right = self._eval_plan(plan.right)
        left_name = self._plan_qualifier(plan.left)
        right_name = self._plan_qualifier(plan.right)
        left_rows = list(left.rows())
        right_rows = list(right.rows())
        right_key = plan.right_key.column
        left_key = plan.left_key.column
        index: Dict[object, List[int]] = {}
        for i, row in enumerate(right_rows):
            index.setdefault(self._row_value(row, right_key), []).append(i)

        def qualify(row: dict, qualifier: Optional[str]) -> dict:
            if qualifier is None:
                return dict(row)
            return {f"{qualifier}__{name}": value for name, value in row.items()}

        out_rows: List[dict] = []
        matched_right: set = set()
        null_right = {name: _null_like(value) for name, value in
                      (right_rows[0].items() if right_rows else [])}
        for row in left_rows:
            matches = index.get(self._row_value(row, left_key), [])
            if matches:
                for j in matches:
                    matched_right.add(j)
                    combined = qualify(row, left_name)
                    combined.update(qualify(right_rows[j], right_name))
                    out_rows.append(combined)
            elif plan.kind in ("left", "outer"):
                combined = qualify(row, left_name)
                combined.update(qualify(null_right, right_name))
                out_rows.append(combined)
        if plan.kind == "outer":
            null_left = {name: _null_like(value) for name, value in
                         (left_rows[0].items() if left_rows else [])}
            for j, row in enumerate(right_rows):
                if j not in matched_right:
                    combined = qualify(null_left, left_name)
                    combined.update(qualify(row, right_name))
                    out_rows.append(combined)
        return table_from_row_dicts(out_rows)

    def _plan_qualifier(self, plan: PlanNode) -> Optional[str]:
        if isinstance(plan, ScanNode):
            return plan.qualifier
        for child in plan.children():
            qualifier = self._plan_qualifier(child)
            if qualifier is not None:
                return qualifier
        return None

    def _group_by(self, plan: GroupByNode) -> Table:
        child = self._eval_plan(plan.child)
        groups: Dict[tuple, List[dict]] = {}
        for row in child.rows():
            key = tuple(self._row_value(row, k.column) for k in plan.keys)
            groups.setdefault(key, []).append(row)
        out_rows = []
        for key, rows in groups.items():
            out = {k.column: value for k, value in zip(plan.keys, key)}
            for index, item in enumerate(plan.items):
                if isinstance(item.expr, ColumnRef):
                    continue  # key columns already present
                name = self._item_name(item, index)
                out[name] = self._eval_aggregate(item.expr, rows)
            out_rows.append(out)
        return table_from_row_dicts(out_rows)

    def _aggregate(self, table: Table, items) -> Table:
        rows = list(table.rows())
        out = {}
        for index, item in enumerate(items):
            name = self._item_name(item, index)
            out[name] = self._eval_aggregate(item.expr, rows)
        return table_from_row_dicts([out])

    def _eval_aggregate(self, expr: FuncCall, rows: List[dict]):
        if not isinstance(expr, FuncCall):
            raise SqlError(f"expected aggregate, got {expr!r}")
        name = expr.name.upper()
        if name == "COUNT" and (not expr.args or isinstance(expr.args[0], Star)):
            return len(rows)
        values = [self._eval_scalar(expr.args[0], row) for row in rows]
        if name == "SUM":
            return int(sum(int(v) for v in values))
        if name == "COUNT":
            return sum(1 for v in values if v)
        if name == "MIN":
            return min(values) if values else 0
        if name == "MAX":
            return max(values) if values else 0
        raise SqlError(f"unsupported aggregate {name}")

    def _read_explode(self, plan: ReadExplodeNode) -> Table:
        child = self._eval_plan(plan.child)
        pieces = []
        for row in child.rows():
            values = [self._eval_scalar(arg, row) for arg in plan.args]
            if len(values) == 3:
                pos, cigar, seq = values
                pieces.append(read_explode(int(pos), cigar, seq))
            elif len(values) == 4:
                pos, cigar, seq, qual = values
                pieces.append(read_explode(int(pos), cigar, seq, qual))
            else:
                raise SqlError("ReadExplode takes POS, CIGAR, SEQ [, QUAL]")
        if not pieces:
            return read_explode(0, [], [])
        result = pieces[0]
        for piece in pieces[1:]:
            result = result.concat(piece)
        return result

    # -- scalar expressions ---------------------------------------------------------------

    def _row_value(self, row: Optional[dict], column: str, table: Optional[str] = None):
        if row is not None:
            if table is not None:
                qualified = f"{table}__{column}"
                if qualified in row:
                    return row[qualified]
                # A row binding like SingleRead.POS.
                binding = self._row_bindings.get(table)
                if binding is not None and column in binding:
                    return binding[column]
            if column in row:
                return row[column]
        if table is not None:
            binding = self._row_bindings.get(table)
            if binding is not None and column in binding:
                return binding[column]
        if column in self.variables:
            return self.variables[column]
        raise SqlError(f"cannot resolve column {table or ''}.{column}".strip("."))

    def _eval_scalar(self, expr, row: Optional[dict]):
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, VarRef):
            if expr.name not in self.variables:
                raise SqlError(f"undeclared variable @{expr.name}")
            return self.variables[expr.name]
        if isinstance(expr, ColumnRef):
            return self._row_value(row, expr.column, expr.table)
        if isinstance(expr, UnaryOp):
            value = self._eval_scalar(expr.operand, row)
            if expr.op == "NOT":
                return not value
            return -value
        if isinstance(expr, BinOp):
            left = self._eval_scalar(expr.left, row)
            if expr.op == "AND":
                return bool(left) and bool(self._eval_scalar(expr.right, row))
            if expr.op == "OR":
                return bool(left) or bool(self._eval_scalar(expr.right, row))
            right = self._eval_scalar(expr.right, row)
            return _apply_binop(expr.op, left, right)
        if isinstance(expr, FuncCall):
            raise SqlError(
                f"aggregate {expr.name} used outside SELECT/GROUP BY context"
            )
        raise SqlError(f"cannot evaluate expression {expr!r}")


def _apply_binop(op: str, left, right):
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left // right if isinstance(left, (int, np.integer)) else left / right
    raise SqlError(f"unsupported operator {op}")


def _null_like(value):
    if isinstance(value, np.ndarray):
        return np.array([], dtype=value.dtype)
    if isinstance(value, (bool, np.bool_)):
        return False
    return 0
