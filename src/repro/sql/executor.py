"""Software executor for the extended-SQL dialect.

Interprets parsed scripts against a catalog of columnar tables.  The
executor owns the front half — parsing, the catalog, ``@variables``,
FOR-loop row bindings, custom modules, and scalar expression
evaluation — and delegates each plan node's execution to a pluggable
:class:`~repro.sql.backends.Backend` (ROADMAP item 2: one front end,
pluggable executors).  The default ``"reference"`` backend is the
row-at-a-time interpreter that defines Genesis query semantics; the
``"fast"`` backend (:mod:`repro.sql.fast_backend`) executes the same
plans with vectorized numpy kernels, bit-identically.

Supported surface (everything Figure 4 uses, Section III-B):
CREATE TABLE [#temp] AS <query>, INSERT INTO, DECLARE/SET @variables,
FOR row IN table loops, SELECT with INNER/LEFT/OUTER JOIN ... ON,
WHERE, GROUP BY, ORDER BY ... [ASC|DESC] (keys must appear in the select
list), LIMIT offset, count, SUM/COUNT/MIN/MAX aggregates, PosExplode,
ReadExplode, and EXEC <CustomModule> bindings registered by the host
(Section III-F).

Each node execution is charged to the optional metrics registry as
``sql_operator_seconds{op=...,backend=...}`` /
``sql_operator_rows{...}`` counters so ``repro analyze`` can attribute
where backend time goes.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Union

from ..obs.registry import MetricsRegistry, registry_or_null
from ..obs.spans import active_spans
from .ast_nodes import (
    BinOp,
    ColumnRef,
    CreateTable,
    Declare,
    ExecModule,
    ForLoop,
    FuncCall,
    InsertInto,
    Literal,
    Script,
    SelectItem,
    SetVar,
    UnaryOp,
    VarRef,
)
from .backends import (
    Backend,
    SqlError,
    apply_binop,
    get_backend,
    null_like,
    table_from_row_dicts,
    timed_operator,
)
from .backends import _infer_spec  # noqa: F401  (back-compat re-export)
from .parser import parse, parse_query
from .plan import (
    AggregateNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    PosExplodeNode,
    ProjectNode,
    ReadExplodeNode,
    ScanNode,
    SortNode,
    build_plan,
)
from ..tables.table import Table

__all__ = ["Executor", "SqlError", "table_from_row_dicts"]

# Back-compat aliases: these helpers historically lived here; the shared
# backend contract in repro.sql.backends is now their home.
_apply_binop = apply_binop
_null_like = null_like


class Executor:
    """Evaluates scripts against a mutable catalog.

    ``backend`` selects the execution strategy by registry name
    (``"reference"`` or ``"fast"``) or accepts a :class:`Backend`
    instance directly.  ``metrics`` (optional) receives per-operator
    timing counters.
    """

    def __init__(
        self,
        backend: Union[str, Backend] = "reference",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tables: Dict[str, Table] = {}
        self.partition_providers: Dict[str, Callable[[object], Table]] = {}
        self.variables: Dict[str, object] = {}
        self.custom_modules: Dict[str, Callable] = {}
        self._row_bindings: Dict[str, dict] = {}
        self.backend = get_backend(backend) if isinstance(backend, str) else backend
        self.metrics = registry_or_null(metrics)
        # Cumulative host-microsecond axis for this executor's operator
        # spans on the fleet trace's "sql" lane.
        self._span_clock = 0.0

    # -- host-facing registration -------------------------------------------------

    def register_table(self, name: str, table: Table) -> None:
        """Expose a table to queries under ``name``."""
        self.tables[name] = table

    def register_partitioned(
        self, name: str, provider: Callable[[object], Table]
    ) -> None:
        """Expose ``name PARTITION (pid)``: ``provider(pid)`` must return
        the partition's table."""
        self.partition_providers[name] = provider

    def set_variable(self, name: str, value) -> None:
        """Set a ``@variable`` (hosts use this for constants like P)."""
        self.variables[name] = value

    def register_custom_module(self, name: str, func: Callable) -> None:
        """Register an ``EXEC``-able custom operation (Section III-F).
        ``func(executor, **bindings)`` receives evaluated binding values."""
        self.custom_modules[name] = func

    # -- script execution -----------------------------------------------------------

    def execute(self, text: str) -> None:
        """Parse and run a whole script."""
        self.execute_script(parse(text))

    def execute_script(self, script: Script) -> None:
        """Run a parsed script."""
        for statement in script.statements:
            self._execute_statement(statement)

    def query(self, text: str) -> Table:
        """Parse and evaluate a single query, returning its table."""
        return self._eval_plan(build_plan(parse_query(text)))

    def _execute_statement(self, statement) -> None:
        if isinstance(statement, CreateTable):
            self.tables[statement.name] = self._eval_plan(build_plan(statement.query))
        elif isinstance(statement, InsertInto):
            result = self._eval_plan(build_plan(statement.query))
            existing = self.tables.get(statement.name)
            if existing is None or existing.num_rows == 0:
                self.tables[statement.name] = result
            else:
                self.tables[statement.name] = existing.concat(result)
        elif isinstance(statement, Declare):
            self.variables.setdefault(statement.name, 0)
        elif isinstance(statement, SetVar):
            self.variables[statement.name] = self._eval_scalar(statement.expr, None)
        elif isinstance(statement, ForLoop):
            table = self.tables.get(statement.table)
            if table is None:
                raise SqlError(f"unknown table {statement.table} in FOR loop")
            for row in table.rows():
                self._row_bindings[statement.row_var] = row
                for inner in statement.body:
                    self._execute_statement(inner)
            self._row_bindings.pop(statement.row_var, None)
        elif isinstance(statement, ExecModule):
            func = self.custom_modules.get(statement.module)
            if func is None:
                raise SqlError(f"unknown custom module {statement.module}")
            bindings = {
                name: self._eval_scalar(expr, None)
                for name, expr in statement.bindings
            }
            func(self, **bindings)
        else:
            raise SqlError(f"unsupported statement {statement!r}")

    # -- plan evaluation ---------------------------------------------------------------

    def _eval_plan(self, plan: PlanNode) -> Table:
        backend = self.backend
        if isinstance(plan, ScanNode):
            return self._timed("scan", lambda: self._scan(plan))
        if isinstance(plan, ProjectNode):
            child = self._eval_plan(plan.child)
            return self._timed("project", lambda: backend.project(self, plan, child))
        if isinstance(plan, FilterNode):
            child = self._eval_plan(plan.child)
            return self._timed("filter", lambda: backend.filter(self, plan, child))
        if isinstance(plan, JoinNode):
            left = self._eval_plan(plan.left)
            right = self._eval_plan(plan.right)
            return self._timed("join", lambda: backend.join(self, plan, left, right))
        if isinstance(plan, GroupByNode):
            child = self._eval_plan(plan.child)
            return self._timed("group_by", lambda: backend.group_by(self, plan, child))
        if isinstance(plan, AggregateNode):
            child = self._eval_plan(plan.child)
            return self._timed(
                "aggregate", lambda: backend.aggregate(self, plan, child)
            )
        if isinstance(plan, SortNode):
            child = self._eval_plan(plan.child)
            return self._timed("sort", lambda: backend.sort(self, plan, child))
        if isinstance(plan, LimitNode):
            child = self._eval_plan(plan.child)
            return self._timed("limit", lambda: backend.limit(self, plan, child))
        if isinstance(plan, PosExplodeNode):
            child = self._eval_plan(plan.child)
            return self._timed(
                "pos_explode", lambda: backend.pos_explode(self, plan, child)
            )
        if isinstance(plan, ReadExplodeNode):
            child = self._eval_plan(plan.child)
            return self._timed(
                "read_explode", lambda: backend.read_explode(self, plan, child)
            )
        raise SqlError(f"cannot evaluate plan node {plan!r}")

    def _timed(self, op: str, thunk: Callable[[], Table]) -> Table:
        tracer = active_spans()
        if not self.metrics.enabled and not tracer.enabled:
            return thunk()
        started = time.perf_counter()
        if not self.metrics.enabled:
            result = thunk()
        else:
            with timed_operator(self.metrics, op, self.backend.name) as timer:
                result = thunk()
                timer.rows(result.num_rows)
        if tracer.enabled:
            # The sql lane ticks in host microseconds (there is no
            # virtual clock under an operator); operators tile a
            # per-executor cumulative axis so the lane reads as one
            # contiguous track per query mix.
            elapsed_us = (time.perf_counter() - started) * 1e6
            tracer.record(
                op, "sql", self._span_clock, self._span_clock + elapsed_us,
                trace_id="sql", lane="sql",
                backend=self.backend.name, rows=result.num_rows,
            )
            self._span_clock += elapsed_us
        return result

    def _scan(self, plan: ScanNode) -> Table:
        if plan.table in self._row_bindings:
            return table_from_row_dicts([dict(self._row_bindings[plan.table])])
        if plan.partition is not None:
            provider = self.partition_providers.get(plan.table)
            if provider is None:
                raise SqlError(f"table {plan.table} is not partitioned")
            pid = self._eval_scalar(plan.partition, None)
            return provider(pid)
        table = self.tables.get(plan.table)
        if table is None:
            raise SqlError(f"unknown table {plan.table}")
        return table

    @staticmethod
    def _item_name(item: SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            if item.expr.table:
                return f"{item.expr.table}__{item.expr.column}"
            return item.expr.column
        return f"EXPR{index}"

    def _plan_qualifier(self, plan: PlanNode) -> Optional[str]:
        if isinstance(plan, ScanNode):
            return plan.qualifier
        for child in plan.children():
            qualifier = self._plan_qualifier(child)
            if qualifier is not None:
                return qualifier
        return None

    # -- scalar expressions ---------------------------------------------------------------

    def _row_value(self, row: Optional[dict], column: str, table: Optional[str] = None):
        if row is not None:
            if table is not None:
                qualified = f"{table}__{column}"
                if qualified in row:
                    return row[qualified]
                # A row binding like SingleRead.POS.
                binding = self._row_bindings.get(table)
                if binding is not None and column in binding:
                    return binding[column]
            if column in row:
                return row[column]
        if table is not None:
            binding = self._row_bindings.get(table)
            if binding is not None and column in binding:
                return binding[column]
        if column in self.variables:
            return self.variables[column]
        raise SqlError(f"cannot resolve column {table or ''}.{column}".strip("."))

    def _eval_scalar(self, expr, row: Optional[dict]):
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, VarRef):
            if expr.name not in self.variables:
                raise SqlError(f"undeclared variable @{expr.name}")
            return self.variables[expr.name]
        if isinstance(expr, ColumnRef):
            return self._row_value(row, expr.column, expr.table)
        if isinstance(expr, UnaryOp):
            value = self._eval_scalar(expr.operand, row)
            if expr.op == "NOT":
                return not value
            return -value
        if isinstance(expr, BinOp):
            left = self._eval_scalar(expr.left, row)
            if expr.op == "AND":
                return bool(left) and bool(self._eval_scalar(expr.right, row))
            if expr.op == "OR":
                return bool(left) or bool(self._eval_scalar(expr.right, row))
            right = self._eval_scalar(expr.right, row)
            return apply_binop(expr.op, left, right)
        if isinstance(expr, FuncCall):
            raise SqlError(
                f"aggregate {expr.name} used outside SELECT/GROUP BY context"
            )
        raise SqlError(f"cannot evaluate expression {expr!r}")
