"""Extended-SQL front end (Section III-B).

The domain-specific language Genesis users write queries in: a tokenizer,
a recursive-descent parser, logical query plans, a software executor that
defines the reference semantics, the PosExplode/ReadExplode operations,
and the paper's Figure 4 script ready to run.
"""

from .ast_nodes import Script
from .backends import (
    Backend,
    ReferenceBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .executor import Executor, SqlError, table_from_row_dicts
from .explode import DEL_CODE, INS_POS, pos_explode, read_explode
from .fast_backend import VectorizedBackend
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse, parse_query
from .plan import (
    AggregateNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    PosExplodeNode,
    ProjectNode,
    ReadExplodeNode,
    ScanNode,
    SortNode,
    build_plan,
    describe,
    walk,
)
from .queries import FIGURE4_QUERY, run_figure4_query

__all__ = [
    "AggregateNode",
    "Backend",
    "DEL_CODE",
    "Executor",
    "FIGURE4_QUERY",
    "FilterNode",
    "GroupByNode",
    "INS_POS",
    "JoinNode",
    "LexError",
    "LimitNode",
    "ParseError",
    "PlanNode",
    "PosExplodeNode",
    "ProjectNode",
    "ReadExplodeNode",
    "ReferenceBackend",
    "ScanNode",
    "SortNode",
    "Script",
    "SqlError",
    "Token",
    "VectorizedBackend",
    "available_backends",
    "build_plan",
    "describe",
    "get_backend",
    "parse",
    "parse_query",
    "pos_explode",
    "read_explode",
    "register_backend",
    "run_figure4_query",
    "table_from_row_dicts",
    "tokenize",
    "walk",
]
