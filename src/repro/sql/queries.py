"""Canonical query scripts from the paper, ready to execute.

``FIGURE4_QUERY`` is the Figure 4 example — count, for every read of
partition P, the number of bases matching the reference — with the
paper's typos normalized for the executor:

* ``REF``'s position column is ``REFPOS`` in Table I, so I1 aliases it;
* the loop variable ``rlen`` is referenced as ``@rlen``, and the interval
  length is ``ENDPOS - POS + 1`` (ENDPOS is inclusive);
* the LIMIT offset is the read's position *relative to the partition
  start* (``@refstart``), which the prose implies ("the subset is obtained
  with the LIMIT base offset clause").

Hosts must provide, via :class:`repro.sql.executor.Executor`:
``READS``/``REF`` as partitioned tables, and the variables ``@P`` (the
partition id) and ``@refstart`` (the partition's base position).
"""

from __future__ import annotations

from typing import List

from ..tables.partition import PartitionedReads, PartitionedReference, PartitionId
from ..tables.table import Table
from .executor import Executor

FIGURE4_QUERY = """
/* I1: Extract Reads and Reference Partition P */
CREATE TABLE ReadPartition AS
SELECT POS, ENDPOS, CIGAR, SEQ
FROM READS PARTITION (@P);

CREATE TABLE ReferenceRow AS
SELECT REFPOS AS POS, SEQ
FROM REF PARTITION (@P);

/* I2: posExplode on ReferenceRow */
CREATE TABLE RelevantReference AS
PosExplode (ReferenceRow.SEQ, ReferenceRow.POS)
FROM ReferenceRow;

DECLARE @rlen int;
DECLARE @roff int;

/* Iterate over Rows */
FOR SingleRead IN ReadPartition:
  SET @rlen = SingleRead.ENDPOS - SingleRead.POS + 1;
  SET @roff = SingleRead.POS - @refstart;

  /* Q1: ReadExplode converts a read into a multi-row table */
  CREATE TABLE #AlignedRead AS
  ReadExplode (SingleRead.POS, SingleRead.CIGAR, SingleRead.SEQ)
  FROM SingleRead;

  /* Q2: Inner-join on the base pair's position */
  CREATE TABLE #ReadAndRef AS
  SELECT AlignedRead.SEQ, RelevantReference.SEQ
  FROM #AlignedRead
  INNER JOIN (SELECT * FROM RelevantReference LIMIT @roff, @rlen)
  ON AlignedRead.POS = RelevantReference.POS;

  /* Q3: Sum of matching base pairs */
  INSERT INTO Output
  SELECT SUM(AlignedRead.SEQ == RelevantReference.SEQ)
  FROM #ReadAndRef;
END LOOP;
"""


def run_figure4_query(
    reads: PartitionedReads,
    reference: PartitionedReference,
    pid: PartitionId,
    backend: str = "reference",
    metrics=None,
) -> List[int]:
    """Execute the Figure 4 script on one partition and return the
    per-read match counts (the Output table's single column).

    ``backend`` selects the SQL execution backend (``"reference"`` or
    ``"fast"``); ``metrics`` optionally collects per-operator timings.
    """
    executor = Executor(backend=backend, metrics=metrics)
    executor.register_partitioned("READS", lambda p: reads[p])

    def ref_provider(p: PartitionId) -> Table:
        from ..tables.partition import reference_row_table

        return reference_row_table(reference.lookup(p))

    executor.register_partitioned("REF", ref_provider)
    executor.set_variable("P", pid)
    executor.set_variable("refstart", pid.segment * reads.psize)
    executor.execute(FIGURE4_QUERY)
    output = executor.tables["Output"]
    column = output.schema.names[0]
    return [int(v) for v in output.column(column)]
