"""AST node definitions for the Genesis extended-SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

# -- expressions ---------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Literal(Expr):
    """A numeric or string constant."""

    value: object


@dataclass(frozen=True)
class VarRef(Expr):
    """A ``@variable`` reference."""

    name: str


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A column reference, optionally table-qualified (``t.COL``)."""

    column: str
    table: Optional[str] = None

    def display(self) -> str:
        """Human-readable name."""
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column


@dataclass(frozen=True)
class Star(Expr):
    """``SELECT *``."""


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation (comparison, arithmetic, AND/OR)."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    """NOT / unary minus."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    """An aggregate or scalar function call."""

    name: str
    args: Tuple[Expr, ...]


# -- query sources --------------------------------------------------------------


@dataclass(frozen=True)
class TableRef:
    """``FROM name [PARTITION (pid)]``."""

    name: str
    partition: Optional[Expr] = None


@dataclass(frozen=True)
class SubQuery:
    """``FROM (SELECT ...)``."""

    query: "Select"


@dataclass(frozen=True)
class JoinClause:
    """``[INNER|LEFT|OUTER] JOIN source ON left = right``."""

    kind: str
    source: object  # TableRef | SubQuery
    left_key: ColumnRef
    right_key: ColumnRef


@dataclass(frozen=True)
class SelectItem:
    """One item of the select list with an optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key with its direction."""

    column: ColumnRef
    descending: bool = False


@dataclass(frozen=True)
class Select:
    """A SELECT query (or the paper's explode-query forms)."""

    items: Tuple[SelectItem, ...]
    source: object  # TableRef | SubQuery
    join: Optional[JoinClause] = None
    where: Optional[Expr] = None
    group_by: Tuple[ColumnRef, ...] = ()
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[Tuple[Expr, Expr]] = None  # (offset, count)


@dataclass(frozen=True)
class PosExplode:
    """``PosExplode(COL, INITPOS) FROM source`` (Section III-B)."""

    array: ColumnRef
    init_pos: Expr
    source: object


@dataclass(frozen=True)
class ReadExplode:
    """``ReadExplode(POS, CIGAR, SEQ [, QUAL]) FROM source``."""

    args: Tuple[Expr, ...]
    source: object


# -- statements -----------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    """Base class for statements."""


@dataclass(frozen=True)
class CreateTable(Statement):
    """``CREATE TABLE name AS <query>`` (``#name`` for temp tables)."""

    name: str
    query: object  # Select | PosExplode | ReadExplode
    temp: bool = False


@dataclass(frozen=True)
class InsertInto(Statement):
    """``INSERT INTO name <query>``."""

    name: str
    query: object


@dataclass(frozen=True)
class Declare(Statement):
    """``DECLARE @name type``."""

    name: str
    type_name: str


@dataclass(frozen=True)
class SetVar(Statement):
    """``SET @name = expr``."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class ForLoop(Statement):
    """``FOR row IN table: <body> END LOOP;`` (Section III-B)."""

    row_var: str
    table: str
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class ExecModule(Statement):
    """``EXEC ModuleName InputStream1 = expr ...`` (Section III-F)."""

    module: str
    bindings: Tuple[Tuple[str, Expr], ...]


@dataclass(frozen=True)
class Script:
    """A whole query script: an ordered list of statements."""

    statements: Tuple[Statement, ...] = field(default_factory=tuple)
