"""Software semantics of the explode operations (Section III-B).

``ReadExplode`` converts one read row into a multi-row table with one row
per base (Figure 3).  Inserted bases carry the sentinel position
:data:`INS_POS`; deleted bases carry the sentinel base/quality
:data:`DEL_CODE`.  Using max-of-dtype sentinels keeps the exploded table
fully numpy-typed while preserving the paper's Ins/Del semantics: an
inserted base can never equi-join with a real reference position, and a
deleted base can never equal a real reference base.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..genomics.cigar import decode_elements
from ..tables.schema import Schema
from ..tables.table import Table

#: Sentinel POS for inserted bases (Figure 3's "Ins").
INS_POS = np.iinfo(np.uint32).max

#: Sentinel base/quality for deleted bases (Figure 3's "Del").
DEL_CODE = np.iinfo(np.uint8).max

#: Schema of a ReadExplode result with quality scores.
READ_EXPLODE_SCHEMA = Schema.of(POS="uint32", SEQ="uint8", QUAL="uint8")

#: Schema of a ReadExplode result without quality scores.
READ_EXPLODE_SCHEMA_NO_QUAL = Schema.of(POS="uint32", SEQ="uint8")


def read_explode(
    pos: int,
    cigar_codes,
    seq,
    qual=None,
) -> Table:
    """Explode one read into per-base rows (the Figure 3 operation).

    Soft-clipped bases are dropped; insertions get ``POS = INS_POS``;
    deletions get ``SEQ = QUAL = DEL_CODE``.
    """
    cigar = decode_elements(cigar_codes)
    positions: List[int] = []
    bases: List[int] = []
    quals: List[int] = []
    for op, ref_pos, read_index in cigar.walk(int(pos)):
        if op == "M":
            positions.append(ref_pos)
            bases.append(int(seq[read_index]))
            quals.append(int(qual[read_index]) if qual is not None else 0)
        elif op == "I":
            positions.append(INS_POS)
            bases.append(int(seq[read_index]))
            quals.append(int(qual[read_index]) if qual is not None else 0)
        else:  # D
            positions.append(ref_pos)
            bases.append(DEL_CODE)
            quals.append(DEL_CODE)
    if qual is not None:
        return Table.from_columns(
            READ_EXPLODE_SCHEMA, POS=positions, SEQ=bases, QUAL=quals
        )
    return Table.from_columns(READ_EXPLODE_SCHEMA_NO_QUAL, POS=positions, SEQ=bases)


def pos_explode(table: Table, array_column: str, init_pos_column: str,
                value_name: Optional[str] = None) -> Table:
    """PosExplode over every row of ``table`` (Hive/Spark semantics): the
    array column becomes one row per element with a POS column counting up
    from each row's init position.  The value column keeps the array
    column's name unless ``value_name`` overrides it."""
    out_value = value_name or array_column
    exploded = table.pos_explode(array_column, init_pos_column,
                                 out_pos="POS", out_value=out_value)
    return exploded
