"""The numpy-vectorized "fast" SQL backend.

Executes the same logical plans as the reference interpreter with
columnar kernels: boolean-mask selection for WHERE, ``np.lexsort``
stable sorts, an ``argsort``/``searchsorted`` sort-merge join,
first-appearance-ordered segmented aggregation via ``reduceat``, and a
fully vectorized read-explode (per-base CIGAR expansion without a
Python loop over bases).

Bit-identity contract: every kernel reproduces the reference backend's
values, dtypes, column order, row order, and validity masks exactly —
including its quirks (scalar outputs widen to int64 through the
row-dict round trip, ``/`` floors on integers, join match order is
left-major with right matches in original right order, group keys
follow first appearance).  Anything a kernel cannot reproduce
faithfully — array-valued expressions, non-numeric variables, a zero
divisor that the reference might short-circuit past — raises
:class:`Unvectorizable` internally and falls back to the inherited
reference implementation for that node, keeping behavior identical by
construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..genomics.read import FLAG_REVERSE
from ..tables.schema import ColumnSpec, Schema
from ..tables.table import Table
from .ast_nodes import BinOp, ColumnRef, FuncCall, Literal, Star, UnaryOp, VarRef
from .backends import (
    EXPLODED_READS_SCHEMA,
    ReferenceBackend,
    SqlError,
    group_output_schema,
    join_output_columns,
    join_validity,
    register_backend,
    table_from_row_dicts,
)
from .explode import (
    DEL_CODE,
    INS_POS,
    READ_EXPLODE_SCHEMA,
    READ_EXPLODE_SCHEMA_NO_QUAL,
)

__all__ = ["VectorizedBackend", "Unvectorizable"]


class Unvectorizable(Exception):
    """Internal signal: this node cannot be executed vectorized with
    reference-identical semantics; fall back to the reference kernel."""


def _broadcast(value, n: int) -> np.ndarray:
    if isinstance(value, (bool, np.bool_)):
        return np.full(n, bool(value), dtype=np.bool_)
    if isinstance(value, (int, np.integer)):
        return np.full(n, int(value), dtype=np.int64)
    if isinstance(value, (float, np.floating)):
        return np.full(n, float(value), dtype=np.float64)
    raise Unvectorizable


def _as_number(vec: np.ndarray) -> np.ndarray:
    """Promote booleans to int64 for arithmetic (True + True == 2)."""
    if vec.dtype == np.bool_:
        return vec.astype(np.int64)
    return vec


def _column_vector(table: Table, name: str) -> np.ndarray:
    spec = table.schema[name]
    if spec.is_array:
        raise Unvectorizable
    data = table.column(name)
    if spec.kind == "bool":
        return np.asarray(data, dtype=np.bool_)
    return np.asarray(data).astype(np.int64, copy=False)


def _resolve_ref(executor, table: Table, column: str,
                 qualifier: Optional[str]) -> Tuple[str, object]:
    """Mirror ``Executor._row_value`` resolution over a table's columns:
    returns ``("column", name)`` or ``("scalar", value)``."""
    if qualifier is not None:
        qualified = f"{qualifier}__{column}"
        if qualified in table.schema:
            return ("column", qualified)
        binding = executor._row_bindings.get(qualifier)
        if binding is not None and column in binding:
            return ("scalar", binding[column])
    if column in table.schema:
        return ("column", column)
    if column in executor.variables:
        return ("scalar", executor.variables[column])
    # Let the reference path raise the canonical SqlError.
    raise Unvectorizable


def _eval_vector(executor, expr, table: Table) -> np.ndarray:
    """Evaluate a scalar expression over every row at once."""
    n = table.num_rows
    if isinstance(expr, Literal):
        return _broadcast(expr.value, n)
    if isinstance(expr, VarRef):
        if expr.name not in executor.variables:
            raise Unvectorizable
        return _broadcast(executor.variables[expr.name], n)
    if isinstance(expr, ColumnRef):
        kind, value = _resolve_ref(executor, table, expr.column, expr.table)
        if kind == "column":
            return _column_vector(table, value)
        return _broadcast(value, n)
    if isinstance(expr, UnaryOp):
        vec = _eval_vector(executor, expr.operand, table)
        if expr.op == "NOT":
            return ~vec.astype(np.bool_)
        return -_as_number(vec)
    if isinstance(expr, BinOp):
        left = _eval_vector(executor, expr.left, table)
        right = _eval_vector(executor, expr.right, table)
        op = expr.op
        if op == "AND":
            return left.astype(np.bool_) & right.astype(np.bool_)
        if op == "OR":
            return left.astype(np.bool_) | right.astype(np.bool_)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            lhs, rhs = _as_number(left), _as_number(right)
            if op == "==":
                return lhs == rhs
            if op == "!=":
                return lhs != rhs
            if op == "<":
                return lhs < rhs
            if op == "<=":
                return lhs <= rhs
            if op == ">":
                return lhs > rhs
            return lhs >= rhs
        lhs, rhs = _as_number(left), _as_number(right)
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            # The reference may short-circuit past a zero divisor via
            # AND/OR, so a vectorized divide-by-zero cannot decide
            # whether to raise — defer to the reference.
            if rhs.size and (rhs == 0).any():
                raise Unvectorizable
            if lhs.dtype.kind == "f":
                return lhs / rhs
            return lhs // rhs
        raise Unvectorizable
    # FuncCall outside aggregate context etc.: reference raises SqlError.
    raise Unvectorizable


def _output_column(vec: np.ndarray) -> Tuple[str, np.ndarray]:
    """Kind + packed data for a computed vector, matching the row-dict
    round trip: bool stays bool, everything else lands as int64 (floats
    truncate toward zero, exactly like ``np.asarray(value, int64)``)."""
    if vec.dtype == np.bool_:
        return "bool", vec
    return "int64", vec.astype(np.int64, copy=False)


class VectorizedBackend(ReferenceBackend):
    """Columnar numpy execution, bit-identical to the reference."""

    name = "fast"

    # -- project -------------------------------------------------------------

    def project(self, executor, plan, child: Table) -> Table:
        items = plan.items
        if len(items) == 1 and isinstance(items[0].expr, Star):
            return child
        if child.num_rows == 0:
            return super().project(executor, plan, child)
        try:
            out: Dict[str, Tuple[ColumnSpec, object]] = {}
            for index, item in enumerate(items):
                name = executor._item_name(item, index)
                out[name] = self._project_item(executor, item.expr, child, name)
        except Unvectorizable:
            return super().project(executor, plan, child)
        schema = Schema(tuple(spec for spec, _ in out.values()))
        columns = {spec.name: data for spec, data in out.values()}
        return Table(schema, columns, child.num_rows)

    def _project_item(self, executor, expr, child: Table,
                      name: str) -> Tuple[ColumnSpec, object]:
        if isinstance(expr, ColumnRef):
            kind, value = _resolve_ref(executor, child, expr.column, expr.table)
            if kind == "column" and child.schema[value].is_array:
                spec = child.schema[value]
                out_kind = spec.kind if spec.kind in (
                    "uint8[]", "uint16[]", "uint32[]", "bool[]"
                ) else "uint32[]"
                out_spec = ColumnSpec(name, out_kind)
                return out_spec, Table._pack_column(out_spec, child.column(value))
        vec = _eval_vector(executor, expr, child)
        out_kind, data = _output_column(vec)
        return ColumnSpec(name, out_kind), data

    # -- filter --------------------------------------------------------------

    def filter(self, executor, plan, child: Table) -> Table:
        try:
            mask = _eval_vector(executor, plan.predicate, child).astype(np.bool_)
        except Unvectorizable:
            return super().filter(executor, plan, child)
        return child.where_mask(mask)

    # -- sort / limit --------------------------------------------------------

    def sort(self, executor, plan, child: Table) -> Table:
        try:
            keys: List[np.ndarray] = []
            for item in plan.keys:
                vec = _as_number(_eval_vector(executor, item.column, child))
                keys.append(-vec if item.descending else vec)
        except Unvectorizable:
            return super().sort(executor, plan, child)
        order = np.lexsort(tuple(reversed(keys)))
        return child.take(order)

    # -- aggregation ---------------------------------------------------------

    def aggregate(self, executor, plan, child: Table) -> Table:
        try:
            out = {}
            for index, item in enumerate(plan.items):
                name = executor._item_name(item, index)
                out[name] = self._whole_table_aggregate(executor, item.expr, child)
        except Unvectorizable:
            return super().aggregate(executor, plan, child)
        return table_from_row_dicts([out])

    def _whole_table_aggregate(self, executor, expr, child: Table):
        if not isinstance(expr, FuncCall):
            raise Unvectorizable
        name = expr.name.upper()
        if name == "COUNT" and (not expr.args or isinstance(expr.args[0], Star)):
            return child.num_rows
        vec = _eval_vector(executor, expr.args[0], child)
        if name == "SUM":
            return int(vec.astype(np.int64).sum())
        if name == "COUNT":
            return int(np.count_nonzero(vec))
        if name in ("MIN", "MAX"):
            if child.num_rows == 0:
                return 0
            value = vec.min() if name == "MIN" else vec.max()
            if vec.dtype == np.bool_:
                return bool(value)
            if vec.dtype.kind == "f":
                return float(value)
            return int(value)
        raise Unvectorizable

    def group_by(self, executor, plan, child: Table) -> Table:
        try:
            return self._group_by_fast(executor, plan, child)
        except Unvectorizable:
            return super().group_by(executor, plan, child)

    def _group_by_fast(self, executor, plan, child: Table) -> Table:
        n = child.num_rows
        if n == 0:
            return Table.empty(group_output_schema(executor, plan, child))

        key_vecs: List[np.ndarray] = []
        key_cols: List[Tuple[str, object]] = []  # ("column", name) | ("scalar", v)
        for key in plan.keys:
            if key.column in child.schema:
                spec = child.schema[key.column]
                if spec.is_array:
                    raise Unvectorizable
                key_vecs.append(
                    np.asarray(child.column(key.column)).astype(np.int64)
                )
                key_cols.append(("column", key.column))
            elif key.column in executor.variables:
                value = executor.variables[key.column]
                if not isinstance(value, (bool, int, np.bool_, np.integer)):
                    raise Unvectorizable
                key_vecs.append(np.full(n, int(value), dtype=np.int64))
                key_cols.append(("scalar", value))
            else:
                raise Unvectorizable

        order = np.lexsort(tuple(reversed(key_vecs)))
        sorted_keys = [vec[order] for vec in key_vecs]
        new_group = np.zeros(n, dtype=bool)
        new_group[0] = True
        for sorted_key in sorted_keys:
            new_group[1:] |= sorted_key[1:] != sorted_key[:-1]
        starts = np.nonzero(new_group)[0]
        n_groups = len(starts)
        # First-appearance output order, like the reference's dict of groups.
        first_original = order[starts]
        appear = np.argsort(first_original, kind="stable")
        rep_rows = first_original[appear]

        out: Dict[str, Tuple[ColumnSpec, object]] = {}
        for key, source in zip(plan.keys, key_cols):
            if source[0] == "column":
                spec = child.schema[source[1]]
                data = np.asarray(child.column(source[1]))[rep_rows]
                if spec.kind == "bool":
                    out[key.column] = (ColumnSpec(key.column, "bool"),
                                       data.astype(np.bool_))
                else:
                    out[key.column] = (ColumnSpec(key.column, "int64"),
                                       data.astype(np.int64))
            else:
                value = source[1]
                if isinstance(value, (bool, np.bool_)):
                    out[key.column] = (
                        ColumnSpec(key.column, "bool"),
                        np.full(n_groups, bool(value), dtype=np.bool_),
                    )
                else:
                    out[key.column] = (
                        ColumnSpec(key.column, "int64"),
                        np.full(n_groups, int(value), dtype=np.int64),
                    )

        counts = np.diff(np.append(starts, n))
        for index, item in enumerate(plan.items):
            if isinstance(item.expr, ColumnRef):
                continue  # key columns already present
            if not isinstance(item.expr, FuncCall):
                raise Unvectorizable
            name = executor._item_name(item, index)
            fname = item.expr.name.upper()
            args = item.expr.args
            if fname == "COUNT" and (not args or isinstance(args[0], Star)):
                out[name] = (ColumnSpec(name, "int64"),
                             counts[appear].astype(np.int64))
                continue
            vec = _eval_vector(executor, args[0], child)
            sorted_vec = vec[order]
            if fname == "SUM":
                values = np.add.reduceat(sorted_vec.astype(np.int64), starts)
                out[name] = (ColumnSpec(name, "int64"), values[appear])
            elif fname == "COUNT":
                truthy = (sorted_vec != 0).astype(np.int64)
                out[name] = (ColumnSpec(name, "int64"),
                             np.add.reduceat(truthy, starts)[appear])
            elif fname in ("MIN", "MAX"):
                reducer = np.minimum if fname == "MIN" else np.maximum
                values = reducer.reduceat(sorted_vec, starts)[appear]
                if sorted_vec.dtype == np.bool_:
                    out[name] = (ColumnSpec(name, "bool"), values)
                else:
                    out[name] = (ColumnSpec(name, "int64"),
                                 values.astype(np.int64))
            else:
                raise Unvectorizable

        schema = Schema(tuple(spec for spec, _ in out.values()))
        columns = {spec.name: data for spec, data in out.values()}
        return Table(schema, columns, n_groups)

    # -- join ----------------------------------------------------------------

    def join(self, executor, plan, left: Table, right: Table) -> Table:
        try:
            return self._join_fast(executor, plan, left, right)
        except Unvectorizable:
            return super().join(executor, plan, left, right)

    def _key_vector(self, executor, table: Table, column: str) -> np.ndarray:
        if column in table.schema:
            return _column_vector(table, column).astype(np.int64, copy=False)
        if column in executor.variables:
            value = executor.variables[column]
            if not isinstance(value, (bool, int, np.bool_, np.integer)):
                raise Unvectorizable
            return np.full(table.num_rows, int(value), dtype=np.int64)
        raise Unvectorizable

    def _join_fast(self, executor, plan, left: Table, right: Table) -> Table:
        left_name = executor._plan_qualifier(plan.left)
        right_name = executor._plan_qualifier(plan.right)
        left_keys = self._key_vector(executor, left, plan.left_key.column)
        right_keys = self._key_vector(executor, right, plan.right_key.column)
        n_left, n_right = left.num_rows, right.num_rows

        right_order = np.argsort(right_keys, kind="stable")
        right_sorted = right_keys[right_order]
        lo = np.searchsorted(right_sorted, left_keys, side="left")
        hi = np.searchsorted(right_sorted, left_keys, side="right")
        counts = hi - lo
        if plan.kind in ("left", "outer"):
            out_counts = np.maximum(counts, 1)
        else:
            out_counts = counts
        total = int(out_counts.sum())
        offsets = np.cumsum(out_counts) - out_counts
        left_src = np.repeat(np.arange(n_left, dtype=np.int64), out_counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, out_counts)
        has_match = np.repeat(counts > 0, out_counts)
        match_index = np.repeat(lo, out_counts) + within
        right_src = np.full(total, -1, dtype=np.int64)
        if total:
            right_src[has_match] = right_order[match_index[has_match]]
        if plan.kind == "outer":
            matched = np.zeros(n_right, dtype=bool)
            hits = right_src >= 0
            matched[right_src[hits]] = True
            extras = np.nonzero(~matched)[0]
            left_src = np.concatenate(
                [left_src, np.full(len(extras), -1, dtype=np.int64)]
            )
            right_src = np.concatenate([right_src, extras.astype(np.int64)])
        n_out = len(left_src)

        columns_info = join_output_columns(
            left, right, left_name, right_name,
            include_left=n_left > 0 or n_out == 0,
            include_right=n_right > 0 or n_out == 0,
        )
        schema = Schema(tuple(
            ColumnSpec(out, kind) for out, _side, _source, kind in columns_info
        ))
        if n_out == 0:
            return Table.empty(schema)

        columns: Dict[str, object] = {}
        for out_name, side, source, kind in columns_info:
            child = left if side == "left" else right
            src = left_src if side == "left" else right_src
            spec = child.schema[source]
            if spec.is_array:
                data = child.column(source)
                empty = np.array([], dtype=spec.dtype)
                columns[out_name] = [
                    data[int(i)] if i >= 0 else empty for i in src
                ]
                continue
            data = np.asarray(child.column(source))
            if len(data) == 0:
                gathered = np.zeros(n_out, dtype=data.dtype)
            else:
                gathered = data[np.maximum(src, 0)]
            if kind == "bool":
                columns[out_name] = np.where(src >= 0, gathered, False).astype(
                    np.bool_
                )
            else:
                columns[out_name] = np.where(
                    src >= 0, gathered.astype(np.int64), np.int64(0)
                )
        masks = join_validity(left, right, columns_info, left_src, right_src)
        return Table(schema, columns, n_out, validity=masks)

    # -- explode -------------------------------------------------------------

    def pos_explode(self, executor, plan, child: Table) -> Table:
        init = plan.init_pos
        if not isinstance(init, ColumnRef):
            raise SqlError("PosExplode init position must be a column")
        array_column = plan.array.column
        if (
            array_column not in child.schema
            or not child.schema[array_column].is_array
            or init.column not in child.schema
            or child.schema[init.column].is_array
        ):
            return super().pos_explode(executor, plan, child)
        arrays = child.column(array_column)
        inits = np.asarray(child.column(init.column)).astype(np.int64)
        lengths = np.fromiter(
            (len(a) for a in arrays), dtype=np.int64, count=child.num_rows
        )
        total = int(lengths.sum())
        if total == 0:
            positions = np.zeros(0, dtype=np.uint32)
            values = np.zeros(0, dtype=np.uint32)
        else:
            offsets = np.cumsum(lengths) - lengths
            within = (
                np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
            )
            positions = (np.repeat(inits, lengths) + within).astype(np.uint32)
            values = np.concatenate(
                [np.asarray(a) for a in arrays if len(a)]
            ).astype(np.uint32)
        out_schema = Schema.of(**{"POS": "uint32", array_column: "uint32"})
        return Table(
            out_schema,
            {"POS": positions, out_schema.names[-1]: values},
            total,
        )

    def read_explode(self, executor, plan, child: Table) -> Table:
        if len(plan.args) not in (3, 4) or child.num_rows == 0:
            return super().read_explode(executor, plan, child)
        try:
            names = []
            for arg in plan.args:
                if not isinstance(arg, ColumnRef):
                    raise Unvectorizable
                kind, value = _resolve_ref(executor, child, arg.column, arg.table)
                if kind != "column":
                    raise Unvectorizable
                names.append(value)
            pos_name, cigar_name, seq_name = names[0], names[1], names[2]
            qual_name = names[3] if len(names) == 4 else None
            if (
                child.schema[pos_name].is_array
                or not child.schema[cigar_name].is_array
                or not child.schema[seq_name].is_array
                or (qual_name is not None and not child.schema[qual_name].is_array)
            ):
                raise Unvectorizable
        except Unvectorizable:
            return super().read_explode(executor, plan, child)
        positions = np.asarray(child.column(pos_name)).astype(np.int64)
        quals = child.column(qual_name) if qual_name is not None else None
        _, _, pos_out, _, seq_out, qual_out = _explode_kernel(
            positions, child.column(cigar_name), child.column(seq_name), quals
        )
        if qual_name is not None:
            return Table(
                READ_EXPLODE_SCHEMA,
                {"POS": pos_out, "SEQ": seq_out, "QUAL": qual_out},
                len(pos_out),
            )
        return Table(
            READ_EXPLODE_SCHEMA_NO_QUAL,
            {"POS": pos_out, "SEQ": seq_out},
            len(pos_out),
        )

    def explode_reads(self, table: Table, read_length: int) -> Table:
        positions = np.asarray(table.column("POS")).astype(np.int64)
        cigars = table.column("CIGAR")
        seqs = table.column("SEQ")
        quals = table.column("QUAL")
        read_of, op_out, pos_out, read_idx, seq_out, qual_out = _explode_kernel(
            positions, cigars, seqs, quals
        )
        n = table.num_rows
        total = len(read_of)
        read_ids = (
            np.asarray(table.column("ROWID")).astype(np.int64)
            if "ROWID" in table.schema
            else np.arange(n, dtype=np.int64)
        )
        flags = (
            np.asarray(table.column("FLAGS")).astype(np.int64)
            if "FLAGS" in table.schema
            else np.zeros(n, dtype=np.int64)
        )
        seq_lens = np.fromiter((len(s) for s in seqs), dtype=np.int64, count=n)
        if total == 0:
            return Table.empty(EXPLODED_READS_SCHEMA)
        reverse = (flags[read_of] & FLAG_REVERSE) != 0
        cycles = np.where(
            reverse, read_length + seq_lens[read_of] - 1 - read_idx, read_idx
        )
        cycles = np.where(op_out == 2, -1, cycles).astype(np.int32)
        # Dinucleotide context: previous/current base, -1 for deletions,
        # first bases, and non-ACGT codes (oracle: bqsr.context_of).
        seq_offsets = np.cumsum(seq_lens) - seq_lens
        flat = (
            np.concatenate([np.asarray(s, dtype=np.uint8) for s in seqs])
            if int(seq_lens.sum())
            else np.zeros(0, dtype=np.uint8)
        )
        prev_index = seq_offsets[read_of] + np.maximum(read_idx - 1, 0)
        if len(flat):
            prev = flat[np.minimum(prev_index, len(flat) - 1)].astype(np.int64)
        else:
            prev = np.zeros(total, dtype=np.int64)
        current = seq_out.astype(np.int64)
        valid_ctx = (op_out != 2) & (read_idx > 0) & (prev <= 3) & (current <= 3)
        contexts = np.where(valid_ctx, prev * 4 + current, -1).astype(np.int32)
        return Table(
            EXPLODED_READS_SCHEMA,
            {
                "READID": read_ids[read_of],
                "POS": pos_out,
                "OP": op_out.astype(np.uint8),
                "SEQ": seq_out,
                "QUAL": qual_out,
                "CYC": cycles,
                "CTX": contexts,
            },
            total,
        )


def _explode_kernel(
    positions: np.ndarray,
    cigars,
    seqs,
    quals,
):
    """Vectorized per-base CIGAR expansion over many reads at once.

    Returns ``(read_of, op, pos, read_index, seq, qual)`` arrays in the
    exact row-major walk order of ``Cigar.walk``: ops are 0=M, 1=I, 2=D
    (soft clips dropped), insertions carry ``POS == INS_POS``, deletions
    carry ``SEQ == QUAL == DEL_CODE`` and ``read_index == -1``.
    """
    n = len(cigars)
    empty64 = np.zeros(0, dtype=np.int64)
    empty_result = (
        empty64,
        empty64,
        np.zeros(0, dtype=np.uint32),
        empty64,
        np.zeros(0, dtype=np.uint8),
        np.zeros(0, dtype=np.uint8),
    )
    if n == 0:
        return empty_result
    cig_lens = np.fromiter((len(c) for c in cigars), dtype=np.int64, count=n)
    if int(cig_lens.sum()) == 0:
        return empty_result
    codes = np.concatenate(
        [np.asarray(c, dtype=np.int64) for c in cigars if len(c)]
    )
    el_read = np.repeat(np.arange(n, dtype=np.int64), cig_lens)
    el_len = codes >> 2
    el_op = codes & 3  # 0=M 1=I 2=D 3=S, per cigar.OPS order
    read_consumed = np.where(el_op != 2, el_len, 0)  # M, I, S advance the read
    ref_consumed = np.where((el_op == 0) | (el_op == 2), el_len, 0)  # M, D
    first_element = np.cumsum(cig_lens) - cig_lens

    def start_within_read(consumed: np.ndarray) -> np.ndarray:
        prefix = np.cumsum(consumed) - consumed
        safe_first = np.minimum(first_element, len(prefix) - 1)
        return prefix - np.repeat(prefix[safe_first], cig_lens)

    read_start = start_within_read(read_consumed)
    ref_start = start_within_read(ref_consumed) + np.repeat(positions, cig_lens)

    keep = el_op != 3
    el_read = el_read[keep]
    el_len = el_len[keep]
    el_op = el_op[keep]
    read_start = read_start[keep]
    ref_start = ref_start[keep]

    total = int(el_len.sum())
    if total == 0:
        return empty_result
    base_of_element = np.repeat(np.arange(len(el_len), dtype=np.int64), el_len)
    offsets = np.cumsum(el_len) - el_len
    within = np.arange(total, dtype=np.int64) - offsets[base_of_element]
    op_out = el_op[base_of_element]
    ref_pos = ref_start[base_of_element] + np.where(op_out != 1, within, 0)
    read_idx = np.where(op_out != 2, read_start[base_of_element] + within, -1)
    read_of = el_read[base_of_element]
    pos_out = np.where(op_out == 1, np.int64(INS_POS), ref_pos).astype(np.uint32)

    seq_lens = np.fromiter((len(s) for s in seqs), dtype=np.int64, count=n)
    seq_offsets = np.cumsum(seq_lens) - seq_lens

    def gather(arrays) -> np.ndarray:
        flat = (
            np.concatenate([np.asarray(a, dtype=np.uint8) for a in arrays])
            if int(seq_lens.sum())
            else np.zeros(0, dtype=np.uint8)
        )
        index = seq_offsets[read_of] + np.maximum(read_idx, 0)
        if len(flat):
            values = flat[np.minimum(index, len(flat) - 1)]
        else:
            values = np.zeros(total, dtype=np.uint8)
        return np.where(op_out == 2, np.uint8(DEL_CODE), values)

    seq_out = gather(seqs)
    qual_out = gather(quals) if quals is not None else np.zeros(
        total, dtype=np.uint8
    )
    return read_of, op_out, pos_out, read_idx, seq_out, qual_out


register_backend("fast", VectorizedBackend)
