"""Logical query plans.

Section III-A: "SQL representations (i.e., queries) can also be represented
as a series of relational operators (often called the logical query plan)"
— and Section III-D maps each plan node to a Genesis hardware module and
each edge to a hardware queue.  This module defines the plan nodes and
builds plans from parsed queries; :mod:`repro.sql.executor` interprets
them in software and :mod:`repro.compiler` maps them to hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .ast_nodes import (
    ColumnRef,
    Expr,
    FuncCall,
    PosExplode,
    ReadExplode,
    Select,
    SelectItem,
    Star,
    SubQuery,
    TableRef,
)


@dataclass(frozen=True)
class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> Tuple["PlanNode", ...]:
        """Child plan nodes (leaves return an empty tuple)."""
        return ()


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """Scan a base table (or a FOR-loop row binding), optionally one
    partition of it."""

    table: str
    partition: Optional[Expr] = None
    qualifier: Optional[str] = None


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    """Column projection / computed expressions."""

    child: PlanNode
    items: Tuple[SelectItem, ...]

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class FilterNode(PlanNode):
    """WHERE predicate."""

    child: PlanNode
    predicate: Expr

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """Equi-join of two plans."""

    left: PlanNode
    right: PlanNode
    kind: str
    left_key: ColumnRef
    right_key: ColumnRef

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class GroupByNode(PlanNode):
    """GROUP BY with aggregate select items."""

    child: PlanNode
    keys: Tuple[ColumnRef, ...]
    items: Tuple[SelectItem, ...]

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class AggregateNode(PlanNode):
    """Whole-table aggregation (SELECT SUM(...) with no GROUP BY)."""

    child: PlanNode
    items: Tuple[SelectItem, ...]

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class SortNode(PlanNode):
    """ORDER BY keys (stable sort; leftmost key most significant)."""

    child: PlanNode
    keys: Tuple  # of OrderItem

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class LimitNode(PlanNode):
    """LIMIT offset, count."""

    child: PlanNode
    offset: Expr
    count: Expr

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class PosExplodeNode(PlanNode):
    """The PosExplode operation (Section III-B)."""

    child: PlanNode
    array: ColumnRef
    init_pos: Expr

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class ReadExplodeNode(PlanNode):
    """The ReadExplode operation (Section III-B, Figure 3)."""

    child: PlanNode
    args: Tuple[Expr, ...]

    def children(self):
        return (self.child,)


def _source_plan(source) -> PlanNode:
    if isinstance(source, TableRef):
        return ScanNode(source.name, source.partition, qualifier=source.name)
    if isinstance(source, SubQuery):
        return build_plan(source.query)
    raise TypeError(f"unsupported query source {source!r}")


def _has_aggregate(items: Tuple[SelectItem, ...]) -> bool:
    return any(isinstance(item.expr, FuncCall) for item in items)


def _is_star(items: Tuple[SelectItem, ...]) -> bool:
    return len(items) == 1 and isinstance(items[0].expr, Star)


def build_plan(query) -> PlanNode:
    """Lower a parsed query AST into a logical plan tree."""
    if isinstance(query, PosExplode):
        return PosExplodeNode(_source_plan(query.source), query.array, query.init_pos)
    if isinstance(query, ReadExplode):
        return ReadExplodeNode(_source_plan(query.source), query.args)
    if not isinstance(query, Select):
        raise TypeError(f"cannot plan {query!r}")

    plan = _source_plan(query.source)
    if query.join is not None:
        right = _source_plan(query.join.source)
        plan = JoinNode(
            plan, right, query.join.kind, query.join.left_key, query.join.right_key
        )
    if query.where is not None:
        plan = FilterNode(plan, query.where)
    if query.group_by:
        plan = GroupByNode(plan, query.group_by, query.items)
    elif _has_aggregate(query.items):
        plan = AggregateNode(plan, query.items)
    elif not _is_star(query.items):
        plan = ProjectNode(plan, query.items)
    if query.order_by:
        plan = SortNode(plan, query.order_by)
    if query.limit is not None:
        offset, count = query.limit
        plan = LimitNode(plan, offset, count)
    return plan


def walk(plan: PlanNode):
    """Yield every node of a plan tree, children before parents."""
    for child in plan.children():
        yield from walk(child)
    yield plan


def describe(plan: PlanNode, indent: int = 0) -> str:
    """Pretty-print a plan tree."""
    label = type(plan).__name__.replace("Node", "")
    if isinstance(plan, ScanNode):
        label += f"({plan.table})"
    elif isinstance(plan, JoinNode):
        label += f"({plan.kind})"
    lines = ["  " * indent + label]
    for child in plan.children():
        lines.append(describe(child, indent + 1))
    return "\n".join(lines)
