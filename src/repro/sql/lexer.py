"""Tokenizer for the Genesis extended-SQL dialect.

Handles the constructs of Figure 4: standard SQL keywords, ``@variables``,
``#temp_table`` names, qualified column references, ``/* ... */`` comments,
and the operator set the queries use (including ``==`` which the paper's
dialect allows alongside ``=``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = {
    "CREATE", "TABLE", "AS", "SELECT", "FROM", "WHERE", "GROUP", "BY",
    "INNER", "LEFT", "OUTER", "JOIN", "ON", "LIMIT", "INSERT", "INTO",
    "DECLARE", "SET", "FOR", "IN", "END", "LOOP", "PARTITION", "EXEC",
    "SUM", "COUNT", "MIN", "MAX", "AND", "OR", "NOT", "POSEXPLODE",
    "READEXPLODE", "INT", "ORDER", "ASC", "DESC",
}

#: Multi-character operators, longest first.
_OPERATORS = ["==", "!=", "<=", ">=", "<", ">", "=", "+", "-", "*", "/",
              "(", ")", ",", ".", ";", ":"]


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # KEYWORD, IDENT, NUMBER, STRING, OP, VAR, TEMP, EOF
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


class LexError(ValueError):
    """Raised on an unrecognizable character sequence."""


def tokenize(text: str) -> List[Token]:
    """Tokenize a query script into a token list ending with EOF."""
    tokens: List[Token] = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if text.startswith("/*", index):
            end = text.find("*/", index + 2)
            if end < 0:
                raise LexError(f"unterminated comment at {index}")
            index = end + 2
            continue
        if text.startswith("--", index):
            end = text.find("\n", index)
            index = length if end < 0 else end + 1
            continue
        if ch == "@":
            start = index + 1
            index = _ident_end(text, start)
            tokens.append(Token("VAR", text[start:index], start - 1))
            continue
        if ch == "#":
            start = index + 1
            index = _ident_end(text, start)
            tokens.append(Token("TEMP", text[start:index], start - 1))
            continue
        if ch.isdigit():
            start = index
            index = _number_end(text, start)
            tokens.append(Token("NUMBER", text[start:index], start))
            continue
        if ch == "'" or ch == '"':
            end = text.find(ch, index + 1)
            if end < 0:
                raise LexError(f"unterminated string at {index}")
            tokens.append(Token("STRING", text[index + 1:end], index))
            index = end + 1
            continue
        if ch.isalpha() or ch == "_":
            start = index
            index = _ident_end(text, start)
            word = text[start:index]
            kind = "KEYWORD" if word.upper() in KEYWORDS else "IDENT"
            value = word.upper() if kind == "KEYWORD" else word
            tokens.append(Token(kind, value, start))
            continue
        for op in _OPERATORS:
            if text.startswith(op, index):
                tokens.append(Token("OP", op, index))
                index += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at {index}")
    tokens.append(Token("EOF", "", length))
    return tokens


def _ident_end(text: str, start: int) -> int:
    index = start
    while index < len(text) and (text[index].isalnum() or text[index] == "_"):
        index += 1
    if index == start:
        raise LexError(f"expected identifier at {start}")
    return index


def _number_end(text: str, start: int) -> int:
    index = start
    while index < len(text) and (text[index].isdigit() or text[index] == "."):
        index += 1
    return index
