"""Column types and table schemas.

Table I of the Genesis paper types every column (``uint8_t``, ``uint32_t``,
fixed arrays, bools).  We mirror that with a small schema layer on top of
numpy dtypes: scalar columns are contiguous numpy arrays; array columns
(SEQ, QUAL, CIGAR) are ragged and stored as per-row numpy arrays, matching
how the hardware streams them one element (flit) at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

#: Scalar column kinds mapped to numpy dtypes (Table I's C types).
SCALAR_DTYPES = {
    "uint8": np.uint8,
    "uint16": np.uint16,
    "uint32": np.uint32,
    "int32": np.int32,
    "int64": np.int64,
    "bool": np.bool_,
}

#: Array-column kinds: per-row variable-length vectors of these dtypes.
ARRAY_DTYPES = {
    "uint8[]": np.uint8,
    "uint16[]": np.uint16,
    "uint32[]": np.uint32,
    "bool[]": np.bool_,
}


@dataclass(frozen=True)
class ColumnSpec:
    """One column: a name and a kind from the tables above."""

    name: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in SCALAR_DTYPES and self.kind not in ARRAY_DTYPES:
            raise ValueError(f"unknown column kind {self.kind!r}")
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"invalid column name {self.name!r}")

    @property
    def is_array(self) -> bool:
        """True for ragged per-row array columns (SEQ/QUAL/CIGAR-style)."""
        return self.kind in ARRAY_DTYPES

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of this column."""
        table = ARRAY_DTYPES if self.is_array else SCALAR_DTYPES
        return np.dtype(table[self.kind])

    @property
    def element_size(self) -> int:
        """Bytes per element; the ``elemsize`` the runtime's
        ``configure_mem`` call takes (paper Section III-E)."""
        return self.dtype.itemsize


class Schema:
    """An ordered collection of :class:`ColumnSpec`."""

    def __init__(self, columns: Tuple[ColumnSpec, ...]):
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in schema: {names}")
        self.columns = tuple(columns)
        self._by_name: Dict[str, ColumnSpec] = {c.name: c for c in columns}

    @classmethod
    def of(cls, **kinds: str) -> "Schema":
        """Build a schema from ``name=kind`` keyword pairs.

        >>> Schema.of(POS="uint32", SEQ="uint8[]").names
        ('POS', 'SEQ')
        """
        return cls(tuple(ColumnSpec(name, kind) for name, kind in kinds.items()))

    @property
    def names(self) -> Tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(column.name for column in self.columns)

    def __getitem__(self, name: str) -> ColumnSpec:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __repr__(self) -> str:
        body = ", ".join(f"{c.name}:{c.kind}" for c in self.columns)
        return f"Schema({body})"

    def subset(self, names) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        return Schema(tuple(self._by_name[name] for name in names))
