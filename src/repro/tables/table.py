"""Columnar tables with the relational operations Genesis's SQL needs.

The paper conceptualizes genomic data "as a very large relational database"
(Section III-B).  This module is the software-side realization: a columnar
:class:`Table` storing scalar columns as numpy arrays and ragged array
columns as lists of per-row numpy arrays, with the relational verbs the
extended-SQL executor lowers to (select / where / join / group-by / limit /
aggregate / explode).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .schema import ColumnSpec, Schema


class Table:
    """An immutable-by-convention columnar table.

    Columns may carry an optional per-row *validity mask* (a boolean numpy
    array, ``False`` marking rows whose value is a NULL sentinel rather
    than real data).  LEFT/OUTER joins produce such masks for the
    null-filled side; every row-selection verb propagates them.  Values
    stay fully materialized as sentinels (0 / False / empty array), so
    expression evaluation never branches on validity — see the NULL
    contract in :mod:`repro.sql.backends`.
    """

    def __init__(
        self,
        schema: Schema,
        columns: Dict[str, object],
        num_rows: int,
        validity: Optional[Dict[str, np.ndarray]] = None,
    ):
        self.schema = schema
        self._columns = columns
        self.num_rows = num_rows
        self._validity: Dict[str, np.ndarray] = dict(validity or {})
        for spec in schema.columns:
            if spec.name not in columns:
                raise ValueError(f"missing data for column {spec.name}")
            data = columns[spec.name]
            if len(data) != num_rows:
                raise ValueError(
                    f"column {spec.name} has {len(data)} rows, expected {num_rows}"
                )
        for name, mask in self._validity.items():
            if name not in self.schema:
                raise ValueError(f"validity mask for unknown column {name}")
            if len(mask) != num_rows:
                raise ValueError(f"validity mask for {name} has wrong length")

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[dict]) -> "Table":
        """Build a table from a sequence of per-row dicts."""
        columns: Dict[str, object] = {}
        for spec in schema.columns:
            values = [row[spec.name] for row in rows]
            columns[spec.name] = cls._pack_column(spec, values)
        return cls(schema, columns, len(rows))

    @classmethod
    def from_columns(cls, schema: Schema, **columns) -> "Table":
        """Build a table from per-column value sequences."""
        if not columns:
            raise ValueError("no columns given")
        num_rows = len(next(iter(columns.values())))
        packed = {
            spec.name: cls._pack_column(spec, columns[spec.name])
            for spec in schema.columns
        }
        return cls(schema, packed, num_rows)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """A zero-row table with the given schema."""
        return cls.from_rows(schema, [])

    @staticmethod
    def _pack_column(spec: ColumnSpec, values) -> object:
        if spec.is_array:
            return [np.asarray(value, dtype=spec.dtype) for value in values]
        return np.asarray(values, dtype=spec.dtype)

    # -- access -------------------------------------------------------------------

    def column(self, name: str):
        """The raw column: numpy array (scalar) or list of arrays (array)."""
        return self._columns[name]

    def validity(self, name: str) -> Optional[np.ndarray]:
        """Validity mask for ``name`` — ``None`` when every row is valid,
        else a boolean array with ``False`` marking NULL-sentinel rows."""
        if name not in self.schema:
            raise KeyError(name)
        return self._validity.get(name)

    def validity_masks(self) -> Dict[str, np.ndarray]:
        """All column validity masks (columns without NULLs are absent)."""
        return dict(self._validity)

    def __getitem__(self, name: str):
        return self._columns[name]

    def row(self, index: int) -> dict:
        """Materialize row ``index`` as a dict."""
        if not 0 <= index < self.num_rows:
            raise IndexError(f"row {index} out of range (num_rows={self.num_rows})")
        out = {}
        for spec in self.schema.columns:
            value = self._columns[spec.name][index]
            out[spec.name] = value if spec.is_array else value.item()
        return out

    def rows(self) -> Iterator[dict]:
        """Iterate rows as dicts (the FOR row IN table clause)."""
        for index in range(self.num_rows):
            yield self.row(index)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"Table({self.schema!r}, rows={self.num_rows})"

    # -- relational verbs -----------------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Projection: keep only ``names`` (SQL SELECT col, ...)."""
        schema = self.schema.subset(names)
        columns = {name: self._columns[name] for name in names}
        validity = {n: m for n, m in self._validity.items() if n in schema}
        return Table(schema, columns, self.num_rows, validity=validity)

    def take(self, indices) -> "Table":
        """Row selection by integer indices (stable order)."""
        indices = np.asarray(indices, dtype=np.int64)
        columns: Dict[str, object] = {}
        for spec in self.schema.columns:
            data = self._columns[spec.name]
            if spec.is_array:
                columns[spec.name] = [data[int(i)] for i in indices]
            else:
                columns[spec.name] = data[indices]
        validity = {name: mask[indices] for name, mask in self._validity.items()}
        return Table(self.schema, columns, len(indices), validity=validity)

    def where(self, predicate: Callable[[dict], bool]) -> "Table":
        """Row filter with a per-row predicate (SQL WHERE)."""
        keep = [i for i, row in enumerate(self.rows()) if predicate(row)]
        return self.take(keep)

    def where_mask(self, mask) -> "Table":
        """Row filter with a boolean mask (vectorized WHERE)."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.num_rows:
            raise ValueError("mask length must equal num_rows")
        return self.take(np.nonzero(mask)[0])

    def limit(self, count: int, offset: int = 0) -> "Table":
        """SQL LIMIT offset, count."""
        if count < 0 or offset < 0:
            raise ValueError("limit/offset must be non-negative")
        end = min(self.num_rows, offset + count)
        return self.take(np.arange(offset, max(offset, end)))

    def sort_by(self, names: Sequence[str]) -> "Table":
        """Stable sort by scalar key columns (leftmost is most significant)."""
        keys = [np.asarray(self._columns[name]) for name in reversed(names)]
        order = np.lexsort(keys)
        return self.take(order)

    def concat(self, other: "Table") -> "Table":
        """Vertical concatenation of two same-schema tables."""
        if other.schema != self.schema:
            raise ValueError("cannot concat tables with different schemas")
        columns: Dict[str, object] = {}
        for spec in self.schema.columns:
            a, b = self._columns[spec.name], other._columns[spec.name]
            columns[spec.name] = list(a) + list(b) if spec.is_array else np.concatenate([a, b])
        validity: Dict[str, np.ndarray] = {}
        for name in set(self._validity) | set(other._validity):
            va = self._validity.get(name)
            vb = other._validity.get(name)
            if va is None:
                va = np.ones(self.num_rows, dtype=bool)
            if vb is None:
                vb = np.ones(other.num_rows, dtype=bool)
            validity[name] = np.concatenate([va, vb])
        return Table(
            self.schema, columns, self.num_rows + other.num_rows, validity=validity
        )

    def with_column(self, spec: ColumnSpec, values) -> "Table":
        """A new table with one extra column appended."""
        if spec.name in self.schema:
            raise ValueError(f"column {spec.name} already exists")
        schema = Schema(self.schema.columns + (spec,))
        columns = dict(self._columns)
        columns[spec.name] = self._pack_column(spec, values)
        return Table(schema, columns, self.num_rows, validity=self._validity)

    def rename(self, mapping: Dict[str, str]) -> "Table":
        """A new table with columns renamed per ``mapping``."""
        specs = tuple(
            ColumnSpec(mapping.get(c.name, c.name), c.kind)
            for c in self.schema.columns
        )
        columns = {
            mapping.get(name, name): data for name, data in self._columns.items()
        }
        validity = {
            mapping.get(name, name): mask for name, mask in self._validity.items()
        }
        return Table(Schema(specs), columns, self.num_rows, validity=validity)

    # -- joins & aggregation -----------------------------------------------------------

    def join(
        self,
        other: "Table",
        on: str,
        how: str = "inner",
        suffix: str = "_R",
    ) -> "Table":
        """Equi-join on scalar key column ``on``.

        ``how`` is ``inner``, ``left``, or ``outer``, matching the three
        configurations of the hardware Joiner (Figure 6).  Right-side
        columns that collide get ``suffix`` appended.  For left/outer joins,
        missing scalar values are 0 and missing arrays are empty — mirroring
        the hardware convention where non-matching flits keep sentinel data.
        """
        if how not in ("inner", "left", "outer"):
            raise ValueError(f"unsupported join type {how!r}")
        left_keys = np.asarray(self._columns[on])
        right_keys = np.asarray(other._columns[on])
        right_index: Dict[object, List[int]] = {}
        for i, key in enumerate(right_keys):
            right_index.setdefault(key.item(), []).append(i)

        left_rows: List[int] = []
        right_rows: List[Optional[int]] = []
        matched_right: set = set()
        for i, key in enumerate(left_keys):
            matches = right_index.get(key.item())
            if matches:
                for j in matches:
                    left_rows.append(i)
                    right_rows.append(j)
                    matched_right.add(j)
            elif how in ("left", "outer"):
                left_rows.append(i)
                right_rows.append(None)
        extra_right: List[int] = []
        if how == "outer":
            extra_right = [j for j in range(other.num_rows) if j not in matched_right]

        out_specs: List[ColumnSpec] = list(self.schema.columns)
        right_names: Dict[str, str] = {}
        for spec in other.schema.columns:
            if spec.name == on:
                continue
            name = spec.name + suffix if spec.name in self.schema else spec.name
            right_names[spec.name] = name
            out_specs.append(ColumnSpec(name, spec.kind))
        out_schema = Schema(tuple(out_specs))

        columns: Dict[str, List] = {spec.name: [] for spec in out_specs}

        def left_value(spec: ColumnSpec, row: Optional[int]):
            if row is None:
                return np.array([], dtype=spec.dtype) if spec.is_array else spec.dtype.type(0)
            return self._columns[spec.name][row]

        def right_value(spec: ColumnSpec, row: Optional[int]):
            if row is None:
                return np.array([], dtype=spec.dtype) if spec.is_array else spec.dtype.type(0)
            return other._columns[spec.name][row]

        for li, ri in zip(left_rows, right_rows):
            for spec in self.schema.columns:
                columns[spec.name].append(left_value(spec, li))
            for spec in other.schema.columns:
                if spec.name == on:
                    continue
                columns[right_names[spec.name]].append(right_value(spec, ri))
        for ri in extra_right:
            for spec in self.schema.columns:
                if spec.name == on:
                    columns[on].append(other._columns[on][ri])
                else:
                    columns[spec.name].append(left_value(spec, None))
            for spec in other.schema.columns:
                if spec.name == on:
                    continue
                columns[right_names[spec.name]].append(right_value(spec, ri))

        packed = {
            spec.name: self._pack_column(spec, columns[spec.name])
            for spec in out_specs
        }
        return Table(out_schema, packed, len(columns[on]))

    def group_by(
        self,
        keys: Sequence[str],
        aggregations: Dict[str, Tuple[str, str]],
    ) -> "Table":
        """SQL GROUP BY with aggregations.

        ``aggregations`` maps output column name to ``(function, column)``
        where function is one of ``sum``, ``count``, ``min``, ``max`` — the
        reductions the hardware Reducer supports (Figure 6).  Output key
        columns preserve first-appearance order.
        """
        funcs = {
            "sum": lambda v: int(np.sum(v, dtype=np.int64)),
            "count": len,
            "min": lambda v: int(np.min(v)),
            "max": lambda v: int(np.max(v)),
        }
        for out_name, (func, _col) in aggregations.items():
            if func not in funcs:
                raise ValueError(f"unsupported aggregation {func!r} for {out_name}")

        groups: Dict[tuple, List[int]] = {}
        key_arrays = [np.asarray(self._columns[k]) for k in keys]
        for i in range(self.num_rows):
            key = tuple(arr[i].item() for arr in key_arrays)
            groups.setdefault(key, []).append(i)

        out_specs = [self.schema[k] for k in keys]
        out_specs += [ColumnSpec(name, "int64") for name in aggregations]
        out_schema = Schema(tuple(out_specs))
        columns: Dict[str, List] = {spec.name: [] for spec in out_specs}
        for key, rows in groups.items():
            for name, value in zip(keys, key):
                columns[name].append(value)
            for out_name, (func, col) in aggregations.items():
                values = np.asarray([self._columns[col][r] for r in rows])
                columns[out_name].append(funcs[func](values))
        packed = {
            spec.name: self._pack_column(spec, columns[spec.name])
            for spec in out_specs
        }
        return Table(out_schema, packed, len(groups))

    def aggregate(self, func: str, name: str):
        """Whole-table scalar aggregate (SUM/COUNT/MIN/MAX over a column)."""
        values = np.asarray(self._columns[name])
        if func == "sum":
            return int(np.sum(values, dtype=np.int64))
        if func == "count":
            return int(self.num_rows)
        if func == "min":
            return int(np.min(values))
        if func == "max":
            return int(np.max(values))
        raise ValueError(f"unsupported aggregate {func!r}")

    # -- explode operations (Section III-B) ----------------------------------------------

    def pos_explode(self, column: str, init_pos_column: str,
                    out_pos: str = "POS", out_value: str = "VAL") -> "Table":
        """PosExplode: expand an array column into one row per element with
        a generated position column starting at each row's init position.

        Matches Hive/Spark ``posexplode`` as the paper describes: position
        increments by one per exploded element.
        """
        spec = self.schema[column]
        if not spec.is_array:
            raise ValueError(f"PosExplode requires an array column, got {column}")
        positions: List[int] = []
        values: List = []
        inits = np.asarray(self._columns[init_pos_column])
        for i in range(self.num_rows):
            array = self._columns[column][i]
            start = int(inits[i])
            positions.extend(range(start, start + len(array)))
            values.extend(int(v) for v in array)
        out_schema = Schema.of(**{out_pos: "uint32", out_value: "uint32"})
        return Table.from_columns(out_schema, **{out_pos: positions, out_value: values})
