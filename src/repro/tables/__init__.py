"""Relational substrate: columnar tables, schemas, genomic tables, partitioning.

Implements the paper's "genomic data as a very large relational database"
conceptualization (Section III-B): a columnar Table with relational verbs,
the READS/REF schemas of Table I, and the (CHR, POS // PSIZE) partitioning
scheme with partition IDs.
"""

from .genomic_tables import (
    READS_SCHEMA,
    REF_SCHEMA,
    count_bases,
    max_array_length,
    reads_table_sorted,
    reads_to_table,
    reference_to_table,
    table_bytes,
    table_to_reads,
    validate_reads_table,
)
from .partition import (
    PartitionId,
    PartitionedReads,
    PartitionedReference,
    partition_reads,
    partition_reads_by_group,
    partition_reference,
    reference_row_table,
)
from .schema import ColumnSpec, Schema
from .table import Table

__all__ = [
    "ColumnSpec",
    "PartitionId",
    "PartitionedReads",
    "PartitionedReference",
    "READS_SCHEMA",
    "REF_SCHEMA",
    "Schema",
    "Table",
    "count_bases",
    "max_array_length",
    "partition_reads",
    "partition_reads_by_group",
    "partition_reference",
    "reads_table_sorted",
    "reads_to_table",
    "reference_row_table",
    "reference_to_table",
    "table_bytes",
    "table_to_reads",
    "validate_reads_table",
]
