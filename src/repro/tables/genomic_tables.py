"""The READS and REF tables of Genesis (Table I) and conversions.

``READS``: CHR uint8, POS uint32, ENDPOS uint32, CIGAR uint16[], SEQ uint8[],
QUAL uint8[] — plus the auxiliary columns the preprocessing stages consult
(FLAGS, RG, and a stable ROWID for joining results back).

``REF``: CHR uint8, REFPOS uint32, SEQ uint8[], IS_SNP bool[] — one row per
reference *segment* of PSIZE base pairs (plus a LEN-sized overlap tail so
reads that straddle a partition boundary still find their reference bases,
exactly as the paper's partitioning prescribes in Section III-B).
"""

from __future__ import annotations

from typing import List, Sequence


from ..genomics.cigar import decode_elements, encode_elements
from ..genomics.read import AlignedRead
from ..genomics.reference import ReferenceGenome
from .schema import Schema
from .table import Table

#: Schema of the READS table (Table I plus bookkeeping columns).
READS_SCHEMA = Schema.of(
    ROWID="int64",
    CHR="uint8",
    POS="uint32",
    ENDPOS="uint32",
    CIGAR="uint16[]",
    SEQ="uint8[]",
    QUAL="uint8[]",
    FLAGS="uint32",
    RG="uint8",
)

#: Schema of the REF table (Table I).
REF_SCHEMA = Schema.of(
    CHR="uint8",
    REFPOS="uint32",
    SEQ="uint8[]",
    IS_SNP="bool[]",
)


def reads_to_table(reads: Sequence[AlignedRead]) -> Table:
    """Convert aligned reads into the columnar READS table."""
    rows = []
    for rowid, read in enumerate(reads):
        rows.append({
            "ROWID": rowid,
            "CHR": read.chrom,
            "POS": read.pos,
            "ENDPOS": read.end_pos,
            "CIGAR": encode_elements(read.cigar),
            "SEQ": read.seq,
            "QUAL": read.qual,
            "FLAGS": read.flags,
            "RG": read.read_group,
        })
    return Table.from_rows(READS_SCHEMA, rows)


def table_to_reads(table: Table) -> List[AlignedRead]:
    """Convert a READS table back to :class:`AlignedRead` records.

    Read names are synthesized from ROWID; the preprocessing stages never
    consult names, only coordinates, CIGARs, sequences, and flags.
    """
    reads = []
    for row in table.rows():
        reads.append(AlignedRead(
            name=f"row{row['ROWID']}",
            chrom=int(row["CHR"]),
            pos=int(row["POS"]),
            cigar=decode_elements(row["CIGAR"]),
            seq=row["SEQ"],
            qual=row["QUAL"],
            flags=int(row["FLAGS"]),
            read_group=int(row["RG"]),
        ))
    return reads


def reference_to_table(genome: ReferenceGenome, psize: int, overlap: int) -> Table:
    """Fragment a reference genome into the REF table.

    Each row covers positions ``[n*psize, (n+1)*psize + overlap)`` of one
    chromosome: PSIZE bases plus a LEN-sized overlap so any read starting
    inside the segment finds its whole reference span in the same row
    (Section III-B: segments hold positions up to ``n*PSIZE + LEN``).
    """
    if psize <= 0 or overlap < 0:
        raise ValueError("psize must be positive and overlap non-negative")
    rows = []
    for chrom in genome.chromosomes:
        length = genome.length(chrom)
        for start in range(0, length, psize):
            end = min(length, start + psize + overlap)
            rows.append({
                "CHR": chrom,
                "REFPOS": start,
                "SEQ": genome.fetch(chrom, start, end),
                "IS_SNP": genome.fetch_snp(chrom, start, end),
            })
    return Table.from_rows(REF_SCHEMA, rows)


def table_bytes(table: Table, names: Sequence[str] = None) -> int:
    """Total payload bytes of the given columns (all columns by default).

    This is the quantity the runtime's transfer model charges when a column
    is shipped over PCIe to the accelerator (Section III-E / V-B).
    """
    names = list(names) if names is not None else list(table.schema.names)
    total = 0
    for name in names:
        spec = table.schema[name]
        data = table.column(name)
        if spec.is_array:
            total += sum(len(array) for array in data) * spec.element_size
        else:
            total += len(data) * spec.element_size
    return total


def max_array_length(table: Table, name: str) -> int:
    """Longest per-row array in an array column (the LEN/CLEN bound)."""
    spec = table.schema[name]
    if not spec.is_array:
        raise ValueError(f"{name} is not an array column")
    data = table.column(name)
    return max((len(array) for array in data), default=0)


def reads_table_sorted(table: Table) -> Table:
    """READS sorted by (CHR, POS) — the coordinate sort the mark-duplicates
    stage performs (Section IV-B)."""
    return table.sort_by(["CHR", "POS"])


def count_bases(table: Table) -> int:
    """Total number of read base pairs in a READS table."""
    return int(sum(len(seq) for seq in table.column("SEQ")))


def _check_reads_schema(table: Table) -> None:
    for name in ("CHR", "POS", "ENDPOS", "CIGAR", "SEQ", "QUAL"):
        if name not in table.schema:
            raise ValueError(f"not a READS table: missing column {name}")


def validate_reads_table(table: Table) -> None:
    """Sanity-check READS invariants: ENDPOS consistency with CIGAR and
    SEQ/QUAL length agreement.  Raises ``ValueError`` on violation."""
    _check_reads_schema(table)
    for row in table.rows():
        cigar = decode_elements(row["CIGAR"])
        if len(row["SEQ"]) != len(row["QUAL"]):
            raise ValueError(f"row {row.get('ROWID')}: SEQ/QUAL length mismatch")
        if cigar.read_length() != len(row["SEQ"]):
            raise ValueError(f"row {row.get('ROWID')}: CIGAR/SEQ length mismatch")
        end = int(row["POS"]) + cigar.reference_length() - 1
        if end != int(row["ENDPOS"]):
            raise ValueError(f"row {row.get('ROWID')}: ENDPOS inconsistent")
