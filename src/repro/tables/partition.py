"""Partitioning of READS and REF by (chromosome, position).

Section III-B: both tables are pre-partitioned so a read can find its
reference fragment by partition ID (PID).  The nth read partition of a
chromosome holds reads whose POS falls in ``[(n-1)*PSIZE, n*PSIZE]``; the
matching reference partition holds positions ``[(n-1)*PSIZE,
n*PSIZE + LEN]`` so reads straddling the boundary still see their full
reference span.  The paper uses PSIZE = 1 Mbp; it is configurable here so
laptop-scale workloads keep a realistic number of partitions.

For BQSR the reads are additionally partitioned by read group
(Section IV-D); :func:`partition_reads_by_group` implements that refinement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..genomics.reference import ReferenceGenome
from .genomic_tables import REF_SCHEMA, reference_to_table
from .table import Table


@dataclass(frozen=True)
class PartitionId:
    """A partition identifier: chromosome + segment index (+ read group for
    BQSR-style partitioning; -1 when unused)."""

    chrom: int
    segment: int
    read_group: int = -1

    def __str__(self) -> str:
        if self.read_group >= 0:
            return f"chr{self.chrom}:{self.segment}:rg{self.read_group}"
        return f"chr{self.chrom}:{self.segment}"


class PartitionedReads:
    """READS split into per-PID tables."""

    def __init__(self, psize: int, partitions: Dict[PartitionId, Table]):
        self.psize = psize
        self._partitions = dict(partitions)

    @property
    def pids(self) -> List[PartitionId]:
        """All partition ids, ordered by (chrom, segment, read group)."""
        return sorted(
            self._partitions,
            key=lambda p: (p.chrom, p.segment, p.read_group),
        )

    def __getitem__(self, pid: PartitionId) -> Table:
        return self._partitions[pid]

    def __len__(self) -> int:
        return len(self._partitions)

    def __iter__(self) -> Iterator[Tuple[PartitionId, Table]]:
        for pid in self.pids:
            yield pid, self._partitions[pid]

    def total_rows(self) -> int:
        """Total reads across all partitions."""
        return sum(table.num_rows for table in self._partitions.values())


def partition_reads(reads: Table, psize: int) -> PartitionedReads:
    """Partition a READS table by (CHR, POS // PSIZE)."""
    if psize <= 0:
        raise ValueError("psize must be positive")
    chroms = np.asarray(reads.column("CHR"))
    positions = np.asarray(reads.column("POS"))
    segments = positions // psize
    buckets: Dict[PartitionId, List[int]] = {}
    for index in range(reads.num_rows):
        pid = PartitionId(int(chroms[index]), int(segments[index]))
        buckets.setdefault(pid, []).append(index)
    partitions = {pid: reads.take(rows) for pid, rows in buckets.items()}
    return PartitionedReads(psize, partitions)


def partition_reads_by_group(reads: Table, psize: int) -> PartitionedReads:
    """Partition READS by (CHR, POS // PSIZE, RG) — the BQSR refinement."""
    if psize <= 0:
        raise ValueError("psize must be positive")
    chroms = np.asarray(reads.column("CHR"))
    positions = np.asarray(reads.column("POS"))
    groups = np.asarray(reads.column("RG"))
    segments = positions // psize
    buckets: Dict[PartitionId, List[int]] = {}
    for index in range(reads.num_rows):
        pid = PartitionId(int(chroms[index]), int(segments[index]), int(groups[index]))
        buckets.setdefault(pid, []).append(index)
    partitions = {pid: reads.take(rows) for pid, rows in buckets.items()}
    return PartitionedReads(psize, partitions)


class PartitionedReference:
    """REF split so that partition (chrom, n) serves read partition
    (chrom, n) directly, per the paper's PID correspondence."""

    def __init__(self, psize: int, overlap: int, partitions: Dict[Tuple[int, int], dict]):
        self.psize = psize
        self.overlap = overlap
        self._partitions = dict(partitions)

    def lookup(self, pid: PartitionId) -> dict:
        """REF row (as a dict) for a read partition's PID."""
        return self._partitions[(pid.chrom, pid.segment)]

    def __contains__(self, pid: PartitionId) -> bool:
        return (pid.chrom, pid.segment) in self._partitions

    def __len__(self) -> int:
        return len(self._partitions)


def partition_reference(
    genome: ReferenceGenome, psize: int, overlap: int
) -> PartitionedReference:
    """Build the partitioned REF table from a genome (Section III-B)."""
    table = reference_to_table(genome, psize, overlap)
    partitions: Dict[Tuple[int, int], dict] = {}
    for row in table.rows():
        key = (int(row["CHR"]), int(row["REFPOS"]) // psize)
        partitions[key] = row
    return PartitionedReference(psize, overlap, partitions)


def reference_row_table(ref_row: dict) -> Table:
    """Wrap one REF partition row back into a single-row Table (the
    ``ReferenceRow`` table of the Figure 4 query)."""
    return Table.from_rows(REF_SCHEMA, [{
        "CHR": ref_row["CHR"],
        "REFPOS": ref_row["REFPOS"],
        "SEQ": ref_row["SEQ"],
        "IS_SNP": ref_row["IS_SNP"],
    }])
