"""FM-index substrate: suffix arrays, BWT, backward search, seed finding.

Supports the Section IV-E claim that Genesis covers "FM-index based
seeding in the BWA-MEM aligner": a complete software FM-index plus the
seed-extraction kernel, with the hardware pipeline in
:mod:`repro.accel.fm_seeding`.
"""

from .bwt import TERMINATOR, bwt_from_suffix_array, inverse_bwt, prepare_text, suffix_array
from .index import SIGMA, FmIndex, SaInterval
from .seeding import Seed, find_seeds, seed_coverage, verify_seeds

__all__ = [
    "FmIndex",
    "SIGMA",
    "SaInterval",
    "Seed",
    "TERMINATOR",
    "bwt_from_suffix_array",
    "find_seeds",
    "inverse_bwt",
    "prepare_text",
    "seed_coverage",
    "suffix_array",
    "verify_seeds",
]
