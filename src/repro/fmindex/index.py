"""The FM-index: backward search over the BWT with sampled Occ/SA tables.

The classic compressed full-text index BWA-MEM's seeding is built on.
``Occ(c, i)`` — the number of occurrences of character ``c`` in
``BWT[0:i]`` — is answered from checkpoints every ``occ_sample`` rows plus
a short scan, and ``locate`` resolves SA intervals through a sampled
suffix array with LF-walks, exactly as real FM-index implementations do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .bwt import TERMINATOR, bwt_from_suffix_array, prepare_text, suffix_array

#: DNA alphabet size (A, C, G, T).
SIGMA = 4


@dataclass(frozen=True)
class SaInterval:
    """A half-open BWT row interval [lo, hi) of suffixes sharing a prefix."""

    lo: int
    hi: int

    @property
    def width(self) -> int:
        """Number of matches (0 when the interval is empty)."""
        return max(0, self.hi - self.lo)

    @property
    def is_empty(self) -> bool:
        """No suffix carries the searched pattern."""
        return self.hi <= self.lo


class FmIndex:
    """FM-index over an encoded DNA text."""

    def __init__(self, sequence, occ_sample: int = 32, sa_sample: int = 8):
        if occ_sample < 1 or sa_sample < 1:
            raise ValueError("sampling rates must be positive")
        text = prepare_text(sequence)
        self._sa = suffix_array(text)
        self.bwt = bwt_from_suffix_array(text, self._sa)
        self.length = len(text)
        self.occ_sample = occ_sample
        self.sa_sample = sa_sample
        self._build_tables()

    # -- construction -----------------------------------------------------------

    def _build_tables(self) -> None:
        counts = np.zeros(SIGMA, dtype=np.int64)
        for c in range(SIGMA):
            counts[c] = int(np.count_nonzero(self.bwt == c))
        # C[c]: number of text characters strictly smaller than c
        # (the terminator sorts first, hence the +1).
        self.c_table = np.zeros(SIGMA + 1, dtype=np.int64)
        self.c_table[0] = 1
        for c in range(1, SIGMA + 1):
            self.c_table[c] = self.c_table[c - 1] + counts[c - 1]
        # Occ checkpoints every occ_sample rows.
        n_checkpoints = self.length // self.occ_sample + 1
        self._occ = np.zeros((n_checkpoints, SIGMA), dtype=np.int64)
        running = np.zeros(SIGMA, dtype=np.int64)
        for i in range(self.length):
            if i % self.occ_sample == 0:
                self._occ[i // self.occ_sample] = running
            c = int(self.bwt[i])
            if c != TERMINATOR:
                running[c] += 1
        if self.length % self.occ_sample == 0:
            # Final checkpoint row for queries at i == length.
            pass
        self._occ_final = running
        # Sampled suffix array.
        self._sa_samples = {
            int(i): int(self._sa[i])
            for i in range(self.length)
            if self._sa[i] % self.sa_sample == 0
        }

    # -- core queries -------------------------------------------------------------

    def occ(self, c: int, i: int) -> int:
        """Occurrences of character ``c`` in ``BWT[0:i]``."""
        if not 0 <= c < SIGMA:
            raise ValueError(f"character code out of range: {c}")
        if not 0 <= i <= self.length:
            raise IndexError(f"occ index out of range: {i}")
        if i == self.length:
            return int(self._occ_final[c])
        checkpoint = i // self.occ_sample
        count = int(self._occ[checkpoint][c])
        for row in range(checkpoint * self.occ_sample, i):
            if int(self.bwt[row]) == c:
                count += 1
        return count

    def lf(self, i: int) -> int:
        """The LF mapping of BWT row ``i``."""
        c = int(self.bwt[i])
        if c == TERMINATOR:
            return 0
        return int(self.c_table[c]) + self.occ(c, i)

    def extend_backward(self, interval: SaInterval, c: int) -> SaInterval:
        """One backward-search step: prepend character ``c`` to the
        pattern represented by ``interval``."""
        lo = int(self.c_table[c]) + self.occ(c, interval.lo)
        hi = int(self.c_table[c]) + self.occ(c, interval.hi)
        return SaInterval(lo, hi)

    def whole_interval(self) -> SaInterval:
        """The interval of the empty pattern (every suffix)."""
        return SaInterval(0, self.length)

    def backward_search(self, pattern) -> SaInterval:
        """SA interval of all exact occurrences of ``pattern``."""
        interval = self.whole_interval()
        for c in reversed(list(pattern)):
            interval = self.extend_backward(interval, int(c))
            if interval.is_empty:
                return interval
        return interval

    def count(self, pattern) -> int:
        """Number of exact occurrences of ``pattern`` in the text."""
        return self.backward_search(pattern).width

    def locate(self, interval: SaInterval, limit: int = None) -> List[int]:
        """Text positions of the suffixes in ``interval``, via LF-walks to
        the nearest suffix-array sample."""
        positions: List[int] = []
        hi = interval.hi if limit is None else min(interval.hi, interval.lo + limit)
        for row in range(interval.lo, hi):
            steps = 0
            cursor = row
            while cursor not in self._sa_samples:
                cursor = self.lf(cursor)
                steps += 1
            positions.append((self._sa_samples[cursor] + steps) % self.length)
        return sorted(positions)

    def find(self, pattern, limit: int = None) -> List[int]:
        """All exact match positions of ``pattern``."""
        return self.locate(self.backward_search(pattern), limit)
