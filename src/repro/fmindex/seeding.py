"""FM-index seed finding (the BWA-MEM seeding kernel, Section IV-E).

Extracts *maximal exact match* seeds from a read against the indexed
reference: starting from the read's end, extend backward through the
FM-index until the interval empties (or the read is exhausted), emit the
seed if it is long enough, and restart just before the mismatch — the
greedy right-to-left variant of BWA-MEM's SMEM pass.

This is the software reference; :mod:`repro.accel.fm_seeding` runs the
same search through a Genesis-style pipeline with the Occ tables in an
SPM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .index import FmIndex, SaInterval


@dataclass(frozen=True)
class Seed:
    """One exact-match seed.

    ``read_start``/``length`` locate the seed in the read;
    ``interval`` is its SA interval (``interval.width`` reference hits).
    """

    read_start: int
    length: int
    interval: SaInterval

    @property
    def read_end(self) -> int:
        """One past the seed's final read offset."""
        return self.read_start + self.length

    @property
    def hits(self) -> int:
        """Number of reference occurrences."""
        return self.interval.width


def find_seeds(
    index: FmIndex,
    read: Sequence[int],
    min_seed_length: int = 19,
    max_hits: int = 64,
) -> List[Seed]:
    """Greedy right-to-left maximal exact-match seeds of ``read``.

    ``min_seed_length`` mirrors BWA-MEM's ``-k`` (default 19);
    ``max_hits`` drops ultra-repetitive seeds the aligner would skip.
    Returns seeds ordered by read position.
    """
    if min_seed_length < 1:
        raise ValueError("min_seed_length must be positive")
    seeds: List[Seed] = []
    end = len(read)
    while end > 0:
        interval = index.whole_interval()
        start = end
        last_good = None
        while start > 0:
            extended = index.extend_backward(interval, int(read[start - 1]))
            if extended.is_empty:
                break
            interval = extended
            start -= 1
            last_good = interval
        length = end - start
        if last_good is not None and length >= min_seed_length:
            if last_good.width <= max_hits:
                seeds.append(Seed(start, length, last_good))
        if start == end:
            # Not even one character matched (can't happen for DNA over a
            # full alphabet, but guard against degenerate indexes).
            end -= 1
        else:
            end = start if length >= min_seed_length else end - 1
    seeds.reverse()
    return seeds


def seed_coverage(seeds: List[Seed], read_length: int) -> float:
    """Fraction of read bases covered by at least one seed."""
    if read_length == 0:
        return 0.0
    covered = [False] * read_length
    for seed in seeds:
        for offset in range(seed.read_start, min(seed.read_end, read_length)):
            covered[offset] = True
    return sum(covered) / read_length


def verify_seeds(index: FmIndex, read: Sequence[int], seeds: List[Seed]) -> bool:
    """Check every seed truly occurs in the reference at its claimed
    positions (test helper)."""
    for seed in seeds:
        pattern = [int(c) for c in read[seed.read_start:seed.read_end]]
        if index.count(pattern) != seed.hits:
            return False
    return True
