"""Suffix arrays and the Burrows-Wheeler transform.

Substrate for the FM-index (Section IV-E names "FM-index based seeding in
the BWA-MEM aligner" as a Genesis target).  The suffix array uses the
prefix-doubling algorithm — O(n log^2 n), comfortably fast for the
reproduction's genome scales — and the BWT/inverse follow the textbook
constructions over the DNA alphabet plus a unique terminator.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: Terminator code appended to the text (sorts before every base code).
TERMINATOR = 255


def suffix_array(text: np.ndarray) -> np.ndarray:
    """Suffix array of ``text`` (which must already end with the unique
    :data:`TERMINATOR`), via prefix doubling."""
    text = np.asarray(text)
    n = len(text)
    if n == 0:
        raise ValueError("empty text")
    if text[-1] != TERMINATOR or np.count_nonzero(text == TERMINATOR) != 1:
        raise ValueError("text must end with exactly one terminator")
    # Initial ranks from single characters (terminator ranks lowest).
    keys = text.astype(np.int64).copy()
    keys[keys == TERMINATOR] = -1
    order = np.argsort(keys, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.concatenate([[0], np.cumsum(keys[order][1:] != keys[order][:-1])])
    k = 1
    while k < n:
        second = np.full(n, -1, dtype=np.int64)
        second[: n - k] = rank[k:]
        composite = rank * (n + 1) + (second + 1)
        order = np.argsort(composite, kind="stable")
        sorted_keys = composite[order]
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[order] = np.concatenate(
            [[0], np.cumsum(sorted_keys[1:] != sorted_keys[:-1])]
        )
        rank = new_rank
        if rank[order[-1]] == n - 1:
            break
        k *= 2
    return order.astype(np.int64)


def bwt_from_suffix_array(text: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """The Burrows-Wheeler transform: ``BWT[i] = text[SA[i] - 1]``."""
    text = np.asarray(text)
    sa = np.asarray(sa)
    return text[(sa - 1) % len(text)]


def prepare_text(sequence) -> np.ndarray:
    """Append the terminator to an encoded DNA sequence."""
    sequence = np.asarray(sequence, dtype=np.uint8)
    if np.any(sequence == TERMINATOR):
        raise ValueError("sequence already contains the terminator code")
    return np.concatenate([sequence, np.array([TERMINATOR], dtype=np.uint8)])


def inverse_bwt(bwt: np.ndarray) -> np.ndarray:
    """Reconstruct the original text (terminator included) from its BWT —
    used as a round-trip invariant in the tests."""
    bwt = np.asarray(bwt)
    n = len(bwt)
    keys = bwt.astype(np.int64).copy()
    keys[keys == TERMINATOR] = -1
    # LF mapping via a stable sort of the BWT column: BWT position i's
    # character occurrence sits at F-column row lf[i].
    order = np.argsort(keys, kind="stable")
    lf = np.empty(n, dtype=np.int64)
    lf[order] = np.arange(n)
    chars: List[int] = []
    row = 0  # F row 0 holds the terminator; BWT[0] is the last text char.
    for _ in range(n - 1):
        chars.append(int(bwt[row]))
        row = int(lf[row])
    return np.array(chars[::-1] + [TERMINATOR], dtype=np.uint8)
