"""The Genesis application-programmer interface (Section III-E).

Python counterparts of the paper's C++ host API:

* :meth:`GenesisRuntime.configure_mem` — blocking; registers one column
  with a memory reader/writer of a pipeline and copies input data to the
  accelerator memory (charging PCIe time);
* :meth:`GenesisRuntime.run_genesis` — non-blocking; simulates the
  pipeline (cycle count comes from the registered kernel) and schedules
  its completion on the virtual timeline;
* :meth:`GenesisRuntime.check_genesis` / :meth:`wait_genesis` — poll or
  block on completion;
* :meth:`GenesisRuntime.genesis_flush` — blocking; copies results back
  and returns them.

The host can interleave :meth:`host_compute` between ``run`` and ``wait``
to model the concurrent host/accelerator execution the non-blocking API
exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (storage -> accel)
    from ..storage.frontend import StorageFrontEnd

from ..faults.injector import FaultInjector
from ..faults.retry import RetryPolicy
from ..obs.log import get_logger
from ..obs.registry import MetricsRegistry, registry_or_null
from .device import DeviceConfig, DevicePool, GenesisDevice

_log = get_logger("runtime")

#: A kernel simulates one pipeline invocation: takes the configured input
#: columns (name -> data), returns (results dict, simulated cycles).
Kernel = Callable[[Dict[str, object]], Tuple[Dict[str, object], int]]


@dataclass
class ColumnBinding:
    """One configure_mem registration."""

    data: object
    elem_size: int
    length: int
    colname: str
    is_output: bool = False

    @property
    def nbytes(self) -> int:
        """Payload size used for the PCIe transfer model."""
        return self.elem_size * self.length


@dataclass
class PipelineState:
    """Host-visible state of one hardware pipeline."""

    kernel: Kernel
    columns: Dict[str, ColumnBinding] = field(default_factory=dict)
    results: Optional[Dict[str, object]] = None
    launched: bool = False


class GenesisRuntime:
    """Host-side manager for Genesis pipelines on one device.

    Pass a :class:`~repro.obs.registry.MetricsRegistry` to have the
    runtime publish its API-level traffic — PCIe bytes by direction,
    launches and simulated kernel cycles per pipeline — alongside the
    simulator metrics the same registry collects.

    Pass a :class:`~repro.faults.injector.FaultInjector` (and optionally
    a :class:`~repro.faults.retry.RetryPolicy`) to subject PCIe
    transfers and pipeline launches to the injector's fault plan; the
    device retries them, charging retried transfer time and backoff to
    the virtual timeline (see :class:`~repro.runtime.device.\
GenesisDevice`).

    Pass a :class:`~repro.storage.frontend.StorageFrontEnd` as
    ``storage`` to put the modelled in-SSD filter in front of the PCIe
    link: inside a ``storage.chunk(pid)`` context, input-column DMAs are
    charged at the chunk's survivor footprint (pruned exactly-matching
    reads ship descriptors, not payloads — DESIGN.md §3.10).  Kernel
    execution and results are unaffected by construction.
    """

    def __init__(
        self,
        config: Optional[DeviceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        device: Optional[GenesisDevice] = None,
        storage: Optional["StorageFrontEnd"] = None,
    ):
        if device is not None:
            if (
                config is not None
                or fault_injector is not None
                or retry_policy is not None
            ):
                raise ValueError(
                    "pass either a constructed device or its construction "
                    "parameters, not both"
                )
            # a pool member arrives pre-wired: keep its registry unless
            # the caller wants the traffic mirrored elsewhere
            self.registry = (
                registry_or_null(registry)
                if registry is not None else device.registry
            )
            self.device = device
        else:
            self.registry = registry_or_null(registry)
            self.device = GenesisDevice(
                config,
                fault_injector=fault_injector,
                retry_policy=retry_policy,
                registry=self.registry,
            )
        self.storage = storage
        self._pipelines: Dict[int, PipelineState] = {}

    # -- pipeline registry ---------------------------------------------------------

    def register_pipeline(self, pipeline_id: int, kernel: Kernel) -> None:
        """Bind a simulation kernel to a pipeline id (the bitstream-load
        analog; real deployments flash the FPGA image here)."""
        if pipeline_id in self._pipelines:
            raise ValueError(f"pipeline {pipeline_id} already registered")
        self._pipelines[pipeline_id] = PipelineState(kernel)

    def _state(self, pipeline_id: int) -> PipelineState:
        try:
            return self._pipelines[pipeline_id]
        except KeyError:
            raise KeyError(f"unknown pipeline {pipeline_id}") from None

    # -- the paper's five calls --------------------------------------------------------

    def configure_mem(
        self,
        data: object,
        elem_size: int,
        length: int,
        colname: str,
        pipeline_id: int,
        is_output: bool = False,
    ) -> None:
        """Blocking: register a column and copy input data to the device
        (the paper's ``configure_mem(addr, elemsize, len, colname,
        pipelineID)``).  Output columns reserve device memory but transfer
        nothing until :meth:`genesis_flush`."""
        state = self._state(pipeline_id)
        binding = ColumnBinding(data, elem_size, length, colname, is_output)
        state.columns[colname] = binding
        self.device.allocate(binding.nbytes)
        self.registry.counter("runtime.allocated_bytes").inc(binding.nbytes)
        if not is_output:
            charged = binding.nbytes
            if self.storage is not None:
                charged = self.storage.admit_nbytes(binding.nbytes)
                if charged != binding.nbytes:
                    self.registry.counter(
                        "runtime.storage_saved_bytes"
                    ).inc(binding.nbytes - charged)
            self.device.transfer(charged, "h2d")
            self.registry.counter(
                "runtime.transfer_bytes", direction="h2d"
            ).inc(charged)
        _log.debug(
            "configure_mem %s: %d bytes -> pipeline %d%s",
            colname, binding.nbytes, pipeline_id,
            " (output)" if is_output else "",
            extra={"pipeline": pipeline_id, "column": colname},
        )

    def run_genesis(self, pipeline_id: int) -> None:
        """Non-blocking: start the pipeline.  The kernel simulation runs
        eagerly (we need its cycle count) but completion is scheduled on
        the virtual timeline, so ``check_genesis`` stays meaningful."""
        state = self._state(pipeline_id)
        inputs = {
            name: binding.data
            for name, binding in state.columns.items()
            if not binding.is_output
        }
        results, cycles = state.kernel(inputs)
        state.results = results
        state.launched = True
        self.device.launch(pipeline_id, cycles)
        self.registry.counter(
            "runtime.launches", pipeline=pipeline_id
        ).inc()
        self.registry.counter(
            "runtime.kernel_cycles", pipeline=pipeline_id
        ).inc(cycles)
        _log.debug(
            "run_genesis pipeline %d: %d simulated cycles",
            pipeline_id, cycles, extra={"pipeline": pipeline_id},
        )

    def check_genesis(self, pipeline_id: int) -> bool:
        """Non-blocking completion poll."""
        state = self._state(pipeline_id)
        if not state.launched:
            return False
        return self.device.is_done(pipeline_id)

    def wait_genesis(self, pipeline_id: int) -> None:
        """Blocking wait for completion."""
        state = self._state(pipeline_id)
        if not state.launched:
            raise RuntimeError(f"pipeline {pipeline_id} was never launched")
        self.device.wait(pipeline_id)

    def genesis_flush(self, pipeline_id: int) -> Dict[str, object]:
        """Blocking: wait, copy results back over PCIe, return them."""
        state = self._state(pipeline_id)
        self.wait_genesis(pipeline_id)
        nbytes = sum(
            binding.nbytes
            for binding in state.columns.values()
            if binding.is_output
        )
        if nbytes:
            self.device.transfer(nbytes, "d2h")
            self.registry.counter(
                "runtime.transfer_bytes", direction="d2h"
            ).inc(nbytes)
        _log.debug(
            "genesis_flush pipeline %d: %d bytes back",
            pipeline_id, nbytes, extra={"pipeline": pipeline_id},
        )
        return state.results or {}

    # -- host-side modelling -------------------------------------------------------------

    def host_compute(self, seconds: float) -> None:
        """Model host CPU work overlapping the accelerator."""
        self.device.timeline.advance_host(seconds)

    @property
    def elapsed_seconds(self) -> float:
        """Virtual wall-clock since runtime creation."""
        return self.device.timeline.now


def pool_runtimes(pool: DevicePool) -> list:
    """One :class:`GenesisRuntime` per card of a
    :class:`~repro.runtime.device.DevicePool`, each publishing into its
    card's own registry — the multi-device analog of constructing one
    runtime over one device."""
    return [GenesisRuntime(device=device) for device in pool]
