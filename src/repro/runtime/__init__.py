"""Host runtime: the Genesis API of Section III-E over a modelled device.

configure_mem / run_genesis / check_genesis / wait_genesis / genesis_flush
with a virtual timeline that makes host/accelerator overlap and PCIe
transfer costs observable.
"""

from .api import (
    ColumnBinding,
    GenesisRuntime,
    Kernel,
    PipelineState,
    pool_runtimes,
)
from .device import (
    CLOCK_HZ,
    PCIE3_BANDWIDTH,
    PCIE4_BANDWIDTH,
    DeviceConfig,
    DevicePool,
    GenesisDevice,
    TransferRecord,
    VirtualTimeline,
)

__all__ = [
    "CLOCK_HZ",
    "ColumnBinding",
    "DeviceConfig",
    "DevicePool",
    "GenesisDevice",
    "GenesisRuntime",
    "Kernel",
    "PCIE3_BANDWIDTH",
    "PCIE4_BANDWIDTH",
    "PipelineState",
    "TransferRecord",
    "VirtualTimeline",
    "pool_runtimes",
]

from .batch import (
    BatchJob,
    BatchOutcome,
    compare_schedules,
    run_batch_pipelined,
    run_batch_serial,
)

__all__ += [
    "BatchJob",
    "BatchOutcome",
    "compare_schedules",
    "run_batch_pipelined",
    "run_batch_serial",
]
