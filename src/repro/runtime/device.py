"""Device model: FPGA card memory, PCIe link, and a virtual timeline.

The paper's host API (Section III-E) is non-blocking so the host CPU can
work while the accelerator runs.  To make that overlap observable without
real hardware, the runtime keeps a *virtual timeline* in simulated
seconds: blocking calls (``configure_mem``'s copy, ``genesis_flush``)
advance it by the PCIe transfer time, ``run_genesis`` schedules a
completion timestamp from simulated cycle counts, and host-side compute
advances it explicitly.  ``check_genesis`` then genuinely answers "has
the accelerator finished *yet*".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..faults.injector import FaultInjector, RetryBudgetExceeded
from ..faults.retry import RetryPolicy
from ..obs.ledger import record_event
from ..obs.registry import MetricsRegistry, registry_or_null

#: Fault-injection sites instrumented by the device model.
TRANSFER_FAULT_SITE = "runtime.transfer"
LAUNCH_FAULT_SITE = "runtime.launch"

#: Measured host->FPGA DMA bandwidth on the F1 (Section V-B): ~7 GB/s.
PCIE3_BANDWIDTH = 7e9

#: The paper's PCIe 4.0 what-if bandwidth: 32 GB/s.
PCIE4_BANDWIDTH = 32e9

#: Accelerator clock (Section V-A): 250 MHz.
CLOCK_HZ = 250e6


@dataclass
class DeviceConfig:
    """Tunables of the modelled F1 card."""

    pcie_bandwidth: float = PCIE3_BANDWIDTH
    clock_hz: float = CLOCK_HZ
    fpga_memory_bytes: int = 64 * 1024 ** 3
    #: Fixed software/driver overhead charged per DMA transfer.
    transfer_setup_seconds: float = 20e-6


@dataclass
class TransferRecord:
    """One host<->device DMA transfer attempt (failed attempts are kept
    with ``ok=False``; their time was spent on the link all the same)."""

    direction: str  # "h2d" or "d2h"
    nbytes: int
    seconds: float
    ok: bool = True


class VirtualTimeline:
    """Simulated wall-clock with separate host and device occupancy."""

    def __init__(self) -> None:
        self.now = 0.0
        self.host_busy_seconds = 0.0
        self.transfer_seconds = 0.0
        self.device_busy_seconds = 0.0

    def advance_host(self, seconds: float) -> None:
        """The host computes for ``seconds`` (accelerator may overlap)."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self.now += seconds
        self.host_busy_seconds += seconds

    def advance_transfer(self, seconds: float) -> None:
        """A blocking DMA occupies the host for ``seconds``."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self.now += seconds
        self.transfer_seconds += seconds

    def wait_until(self, timestamp: float) -> None:
        """Block the host until ``timestamp`` (no-op if already past)."""
        if timestamp > self.now:
            self.now = timestamp


class GenesisDevice:
    """The modelled FPGA card: tracks memory, transfers, and pipelines.

    Resilience: with a ``fault_injector``, DMA transfers and pipeline
    launches poll the ``runtime.transfer`` / ``runtime.launch`` sites
    (slot = arrival ordinal).  A failed transfer attempt still occupied
    the PCIe link, so its seconds are charged to the virtual timeline
    before the retry; retry backoff is charged as host time (never a
    real sleep — the timeline is simulated, so faulted runs stay
    deterministic).  Retries past ``retry_policy.max_retries`` raise
    :class:`~repro.faults.injector.RetryBudgetExceeded`.
    """

    def __init__(
        self,
        config: Optional[DeviceConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.config = config or DeviceConfig()
        self.timeline = VirtualTimeline()
        self.transfers: list = []
        self.fault_injector = fault_injector
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.registry = registry_or_null(registry)
        self._allocated = 0
        self._completion_at: Dict[int, float] = {}

    def _retry_loop(self, site: str, **context: object) -> int:
        """Poll ``site`` until the attempt runs clean; returns how many
        failed attempts preceded it.  Backoff charges host time."""
        injector = self.fault_injector
        if injector is None:
            return 0
        policy = self.retry_policy
        slot = injector.next_slot(site)
        attempt = 0
        while True:
            fault = injector.poll(site, slot, attempt, **context)
            if fault is None:
                return attempt
            self.registry.counter("runtime.faults", site=site).inc()
            if attempt >= policy.max_retries:
                raise RetryBudgetExceeded(
                    f"{site} slot {slot} failed {attempt + 1} attempt(s); "
                    f"retry budget ({policy.max_retries}) exhausted"
                ) from fault.to_exception()
            backoff = policy.backoff_seconds(slot, attempt)
            self.timeline.advance_host(backoff)
            self.registry.counter("runtime.retries", site=site).inc()
            self.registry.counter(
                "runtime.retry_backoff_seconds", site=site
            ).inc(backoff)
            record_event(
                "fault.retry",
                site=site, slot=slot, attempt=attempt, kind=fault.kind,
                backoff_seconds=backoff, **context,
            )
            if site == TRANSFER_FAULT_SITE:
                # the failed DMA occupied the link for its full time
                seconds = context.get("seconds", 0.0)
                self.transfers.append(
                    TransferRecord(
                        str(context.get("direction", "")),
                        int(context.get("nbytes", 0)),
                        float(seconds), ok=False,
                    )
                )
                self.timeline.advance_transfer(float(seconds))
                self.registry.counter(
                    "runtime.retry_transfer_seconds"
                ).inc(float(seconds))
            attempt += 1

    # -- memory & transfers --------------------------------------------------------

    def allocate(self, nbytes: int) -> None:
        """Reserve device memory (raises when the 64 GB card is full)."""
        if self._allocated + nbytes > self.config.fpga_memory_bytes:
            raise MemoryError(
                f"device memory exhausted: {self._allocated + nbytes} bytes "
                f"requested of {self.config.fpga_memory_bytes}"
            )
        self._allocated += nbytes

    def free_all(self) -> None:
        """Release all device memory."""
        self._allocated = 0

    @property
    def allocated_bytes(self) -> int:
        """Currently reserved device memory."""
        return self._allocated

    def transfer(self, nbytes: int, direction: str) -> float:
        """Perform a blocking DMA; returns the modelled seconds of the
        successful attempt (failed attempts charge the timeline too)."""
        if direction not in ("h2d", "d2h"):
            raise ValueError(f"bad transfer direction {direction!r}")
        seconds = (
            nbytes / self.config.pcie_bandwidth
            + self.config.transfer_setup_seconds
        )
        self._retry_loop(
            TRANSFER_FAULT_SITE,
            direction=direction, nbytes=nbytes, seconds=seconds,
        )
        self.transfers.append(TransferRecord(direction, nbytes, seconds))
        self.timeline.advance_transfer(seconds)
        return seconds

    # -- pipeline execution ------------------------------------------------------------

    def launch(self, pipeline_id: int, cycles: int) -> float:
        """Schedule pipeline completion ``cycles`` after *now*; returns the
        completion timestamp."""
        self._retry_loop(LAUNCH_FAULT_SITE, pipeline=pipeline_id)
        seconds = cycles / self.config.clock_hz
        completion = self.timeline.now + seconds
        self._completion_at[pipeline_id] = completion
        self.timeline.device_busy_seconds += seconds
        return completion

    def is_done(self, pipeline_id: int) -> bool:
        """Has the pipeline's completion timestamp passed?"""
        completion = self._completion_at.get(pipeline_id)
        if completion is None:
            return True
        return self.timeline.now >= completion

    def wait(self, pipeline_id: int) -> None:
        """Block the host until the pipeline finishes."""
        completion = self._completion_at.get(pipeline_id)
        if completion is not None:
            self.timeline.wait_until(completion)


class DevicePool:
    """N modelled cards, each with its own virtual timeline, PCIe link,
    device memory, and metrics registry.

    The pool is the hardware side of multi-device sharding
    (:mod:`repro.accel.sharding`): every shard of a run charges its
    transfers and compute to its own card, so per-device occupancy and
    utilization are observable exactly as a single-card run's are.  The
    cards are fully independent — nothing in the pool is shared state —
    which is what makes sharded runs deterministic regardless of how the
    host overlaps the device queues.

    ``fault_injectors`` optionally supplies one injector per device
    (runtime sites keep per-device slot counters that way); a single
    shared injector is deliberately not accepted, because concurrent
    device queues would race its slot counters.

    ``storage`` optionally attaches the modelled in-SSD filter
    (a :class:`~repro.storage.filter.StorageFilterPlan` or
    :class:`~repro.storage.frontend.StorageFrontEnd`): callers charging
    wave transfers consult :meth:`wave_nbytes` so only survivor bytes
    cross each card's PCIe link (DESIGN.md §3.10).  The pool itself
    stays byte-oriented — the front end is plan-time state, shared
    read-only across cards.
    """

    def __init__(
        self,
        devices: int = 1,
        config: Optional[DeviceConfig] = None,
        fault_injectors: Optional[list] = None,
        retry_policy: Optional[RetryPolicy] = None,
        storage: Optional[object] = None,
    ):
        if devices < 1:
            raise ValueError("need at least one device")
        if fault_injectors is not None and len(fault_injectors) != devices:
            raise ValueError(
                f"need one fault injector per device "
                f"({len(fault_injectors)} for {devices} devices)"
            )
        self.config = config or DeviceConfig()
        self.storage = storage
        self.registries = [MetricsRegistry() for _ in range(devices)]
        self.devices = [
            GenesisDevice(
                config=self.config,
                fault_injector=(
                    fault_injectors[index]
                    if fault_injectors is not None else None
                ),
                retry_policy=retry_policy,
                registry=self.registries[index],
            )
            for index in range(devices)
        ]

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self):
        return iter(self.devices)

    def device(self, index: int) -> GenesisDevice:
        """The card at ``index``."""
        return self.devices[index]

    def wave_nbytes(self, items: list, default: int) -> int:
        """H2D bytes to charge for a wave of ``(pid, Table)`` items:
        the storage filter's survivor footprint when one is attached,
        ``default`` (the raw modelled footprint) otherwise."""
        if self.storage is None:
            return default
        return self.storage.wave_nbytes(items)

    def least_loaded(self) -> int:
        """The index of the card whose timeline is furthest behind
        (ties break on the lowest index, so the choice is deterministic)."""
        return min(
            range(len(self.devices)),
            key=lambda index: (self.devices[index].timeline.now, index),
        )

    def busy_seconds(self) -> list:
        """Per-device accelerator occupancy, in device order."""
        return [d.timeline.device_busy_seconds for d in self.devices]

    def transfer_seconds(self) -> list:
        """Per-device PCIe link occupancy, in device order."""
        return [d.timeline.transfer_seconds for d in self.devices]

    def utilization(self) -> list:
        """Each card's busy share of the busiest card (1.0 for the
        critical-path device; empty-queue devices report 0)."""
        busy = self.busy_seconds()
        peak = max(busy) if busy else 0.0
        if peak <= 0:
            return [0.0 for _ in busy]
        return [seconds / peak for seconds in busy]
