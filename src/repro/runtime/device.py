"""Device model: FPGA card memory, PCIe link, and a virtual timeline.

The paper's host API (Section III-E) is non-blocking so the host CPU can
work while the accelerator runs.  To make that overlap observable without
real hardware, the runtime keeps a *virtual timeline* in simulated
seconds: blocking calls (``configure_mem``'s copy, ``genesis_flush``)
advance it by the PCIe transfer time, ``run_genesis`` schedules a
completion timestamp from simulated cycle counts, and host-side compute
advances it explicitly.  ``check_genesis`` then genuinely answers "has
the accelerator finished *yet*".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Measured host->FPGA DMA bandwidth on the F1 (Section V-B): ~7 GB/s.
PCIE3_BANDWIDTH = 7e9

#: The paper's PCIe 4.0 what-if bandwidth: 32 GB/s.
PCIE4_BANDWIDTH = 32e9

#: Accelerator clock (Section V-A): 250 MHz.
CLOCK_HZ = 250e6


@dataclass
class DeviceConfig:
    """Tunables of the modelled F1 card."""

    pcie_bandwidth: float = PCIE3_BANDWIDTH
    clock_hz: float = CLOCK_HZ
    fpga_memory_bytes: int = 64 * 1024 ** 3
    #: Fixed software/driver overhead charged per DMA transfer.
    transfer_setup_seconds: float = 20e-6


@dataclass
class TransferRecord:
    """One host<->device DMA transfer."""

    direction: str  # "h2d" or "d2h"
    nbytes: int
    seconds: float


class VirtualTimeline:
    """Simulated wall-clock with separate host and device occupancy."""

    def __init__(self) -> None:
        self.now = 0.0
        self.host_busy_seconds = 0.0
        self.transfer_seconds = 0.0
        self.device_busy_seconds = 0.0

    def advance_host(self, seconds: float) -> None:
        """The host computes for ``seconds`` (accelerator may overlap)."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self.now += seconds
        self.host_busy_seconds += seconds

    def advance_transfer(self, seconds: float) -> None:
        """A blocking DMA occupies the host for ``seconds``."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self.now += seconds
        self.transfer_seconds += seconds

    def wait_until(self, timestamp: float) -> None:
        """Block the host until ``timestamp`` (no-op if already past)."""
        if timestamp > self.now:
            self.now = timestamp


class GenesisDevice:
    """The modelled FPGA card: tracks memory, transfers, and pipelines."""

    def __init__(self, config: DeviceConfig = None):
        self.config = config or DeviceConfig()
        self.timeline = VirtualTimeline()
        self.transfers: list = []
        self._allocated = 0
        self._completion_at: Dict[int, float] = {}

    # -- memory & transfers --------------------------------------------------------

    def allocate(self, nbytes: int) -> None:
        """Reserve device memory (raises when the 64 GB card is full)."""
        if self._allocated + nbytes > self.config.fpga_memory_bytes:
            raise MemoryError(
                f"device memory exhausted: {self._allocated + nbytes} bytes "
                f"requested of {self.config.fpga_memory_bytes}"
            )
        self._allocated += nbytes

    def free_all(self) -> None:
        """Release all device memory."""
        self._allocated = 0

    @property
    def allocated_bytes(self) -> int:
        """Currently reserved device memory."""
        return self._allocated

    def transfer(self, nbytes: int, direction: str) -> float:
        """Perform a blocking DMA; returns the modelled seconds."""
        if direction not in ("h2d", "d2h"):
            raise ValueError(f"bad transfer direction {direction!r}")
        seconds = (
            nbytes / self.config.pcie_bandwidth
            + self.config.transfer_setup_seconds
        )
        self.transfers.append(TransferRecord(direction, nbytes, seconds))
        self.timeline.advance_transfer(seconds)
        return seconds

    # -- pipeline execution ------------------------------------------------------------

    def launch(self, pipeline_id: int, cycles: int) -> float:
        """Schedule pipeline completion ``cycles`` after *now*; returns the
        completion timestamp."""
        seconds = cycles / self.config.clock_hz
        completion = self.timeline.now + seconds
        self._completion_at[pipeline_id] = completion
        self.timeline.device_busy_seconds += seconds
        return completion

    def is_done(self, pipeline_id: int) -> bool:
        """Has the pipeline's completion timestamp passed?"""
        completion = self._completion_at.get(pipeline_id)
        if completion is None:
            return True
        return self.timeline.now >= completion

    def wait(self, pipeline_id: int) -> None:
        """Block the host until the pipeline finishes."""
        completion = self._completion_at.get(pipeline_id)
        if completion is not None:
            self.timeline.wait_until(completion)
