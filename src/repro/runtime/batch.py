"""Batch scheduling over the host API: pipelined vs. serial execution.

Section III-E's closing point: "the existence of these non-blocking calls
is to allow the host CPU to perform useful work while the accelerator is
running."  :func:`run_batch` makes that concrete: a list of jobs (each
with input bytes, a kernel, and host post-processing time) is driven
through one pipeline either serially (configure -> run -> wait -> host
work, repeat) or software-pipelined (the host prepares/post-processes job
``i`` while the accelerator runs job ``i+1``), and the virtual timeline
reports the wall-clock difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from .api import GenesisRuntime
from .device import DeviceConfig


@dataclass
class BatchJob:
    """One accelerator invocation in a batch."""

    name: str
    input_bytes: int
    cycles: int
    host_seconds: float = 0.0
    output_bytes: int = 0


@dataclass
class BatchOutcome:
    """Timing of one batch execution."""

    wall_seconds: float
    jobs: int

    def speedup_over(self, other: "BatchOutcome") -> float:
        """How much faster this schedule ran than ``other``."""
        if self.wall_seconds <= 0:
            return float("inf")
        return other.wall_seconds / self.wall_seconds


def _make_runtime(config: Optional[DeviceConfig]) -> GenesisRuntime:
    runtime = GenesisRuntime(config)
    runtime.register_pipeline(
        0, lambda inputs: ({}, inputs["IN"]["cycles"])
    )
    return runtime


def run_batch_serial(
    jobs: Sequence[BatchJob], config: Optional[DeviceConfig] = None
) -> BatchOutcome:
    """Blocking schedule: each job fully completes (transfer, compute,
    wait, host post-processing) before the next starts."""
    runtime = _make_runtime(config)
    for job in jobs:
        runtime.configure_mem(
            {"cycles": job.cycles}, 1, job.input_bytes, "IN", 0
        )
        if job.output_bytes:
            runtime.configure_mem(
                None, 1, job.output_bytes, "OUT", 0, is_output=True
            )
        runtime.run_genesis(0)
        runtime.wait_genesis(0)
        if job.output_bytes:
            runtime.genesis_flush(0)
        runtime.host_compute(job.host_seconds)
        runtime.device.free_all()
    return BatchOutcome(runtime.elapsed_seconds, len(jobs))


def run_batch_pipelined(
    jobs: Sequence[BatchJob], config: Optional[DeviceConfig] = None
) -> BatchOutcome:
    """Overlapped schedule: while the accelerator crunches job ``i``, the
    host performs job ``i-1``'s post-processing (and job ``i+1``'s
    preparation is covered by the next configure)."""
    runtime = _make_runtime(config)
    pending_host = 0.0
    for job in jobs:
        runtime.configure_mem(
            {"cycles": job.cycles}, 1, job.input_bytes, "IN", 0
        )
        if job.output_bytes:
            runtime.configure_mem(
                None, 1, job.output_bytes, "OUT", 0, is_output=True
            )
        runtime.run_genesis(0)
        # Overlap the previous job's host work with this run.
        if pending_host:
            runtime.host_compute(pending_host)
        runtime.wait_genesis(0)
        if job.output_bytes:
            runtime.genesis_flush(0)
        pending_host = job.host_seconds
        runtime.device.free_all()
    if pending_host:
        runtime.host_compute(pending_host)
    return BatchOutcome(runtime.elapsed_seconds, len(jobs))


def compare_schedules(
    jobs: Sequence[BatchJob], config: Optional[DeviceConfig] = None
) -> Dict[str, float]:
    """Run both schedules; returns wall times and the overlap speedup."""
    serial = run_batch_serial(jobs, config)
    pipelined = run_batch_pipelined(jobs, config)
    return {
        "serial_seconds": serial.wall_seconds,
        "pipelined_seconds": pipelined.wall_seconds,
        "overlap_speedup": pipelined.speedup_over(serial),
    }
