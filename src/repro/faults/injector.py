"""The fault injector: enacts a :class:`~repro.faults.plan.FaultPlan`.

One :class:`FaultInjector` is built per run and consulted at every
instrumented site.  The call pattern is always the same::

    slot = injector.next_slot("runtime.transfer")   # once per operation
    ...
    fault = injector.poll("runtime.transfer", slot, attempt)
    if fault is not None:
        ...charge the cost, retry...

``next_slot`` allocates slot indices in deterministic arrival order;
``poll`` answers "does the plan fault this (site, slot, attempt)?" and,
when it does, records the injection — an :class:`InjectedFault` in
``injector.injected``, a ``faults.injected`` counter in the registry,
and a ``fault.injected`` ledger event against the ambient run.

Decisions are pure functions of the plan: polling the same
``(site, slot, attempt)`` twice gives the same answer (only the first
poll records), so the parent process of a multi-worker scheduler can
decide faults before shipping work to the pool and the injected faults
stay identical across ``workers`` settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..obs.ledger import record_event
from ..obs.log import get_logger
from ..obs.registry import MetricsRegistry, registry_or_null
from .plan import FaultPlan, FaultSpec

_log = get_logger("faults")


class InjectedFaultError(RuntimeError):
    """Base of every injected failure; carries the injection coordinates
    so handlers can account it without parsing messages."""

    kind = "fault"

    def __init__(self, site: str, slot: int, attempt: int):
        super().__init__(
            f"injected {self.kind} at {site} slot {slot} attempt {attempt}"
        )
        self.site = site
        self.slot = slot
        self.attempt = attempt

    def __reduce__(self):
        # exceptions cross process boundaries (ProcessPoolExecutor
        # futures); the default reduce would replay the formatted
        # message into our three-argument __init__ and break the pool
        return (self.__class__, (self.site, self.slot, self.attempt))


class InjectedWorkerCrash(InjectedFaultError):
    """A worker process dying mid-wave."""

    kind = "worker_crash"


class InjectedWaveTimeout(InjectedFaultError):
    """A wave item hanging past its watchdog deadline."""

    kind = "wave_timeout"


class InjectedTransferError(InjectedFaultError):
    """A PCIe DMA transfer failing."""

    kind = "transfer_error"


class InjectedLaunchError(InjectedFaultError):
    """A device pipeline launch failing."""

    kind = "launch_error"


#: kind -> the exception class the injector raises / the worker enacts.
FAULT_EXCEPTIONS = {
    cls.kind: cls
    for cls in (
        InjectedWorkerCrash,
        InjectedWaveTimeout,
        InjectedTransferError,
        InjectedLaunchError,
    )
}


class RetryBudgetExceeded(RuntimeError):
    """An operation kept failing past its retry budget."""


@dataclass(frozen=True)
class InjectedFault:
    """The record of one injection (what ``injector.injected`` holds and
    the ``fault.injected`` ledger event carries)."""

    kind: str
    site: str
    slot: int
    attempt: int

    def to_exception(self) -> InjectedFaultError:
        """The exception enacting this fault."""
        return FAULT_EXCEPTIONS[self.kind](self.site, self.slot, self.attempt)


class FaultInjector:
    """Per-run mutable state over an immutable :class:`FaultPlan`.

    Pass a :class:`~repro.obs.registry.MetricsRegistry` to have every
    injection counted under ``faults.injected{site=,kind=}``; ledger
    events flow through the ambient run context automatically.
    """

    def __init__(
        self,
        plan: FaultPlan,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.plan = plan
        self.registry = registry_or_null(registry)
        self.injected: List[InjectedFault] = []
        self._slots: Dict[str, int] = {}
        #: (site, kind) -> (target slot set, attempts that fail).
        self._targets: List[Tuple[FaultSpec, Set[int]]] = [
            (spec, set(plan.targets(spec))) for spec in plan.specs
        ]
        self._recorded: Set[Tuple[str, str, int, int]] = set()

    def next_slot(self, site: str) -> int:
        """Allocate the next arrival-order slot index at ``site``."""
        slot = self._slots.get(site, 0)
        self._slots[site] = slot + 1
        return slot

    def due(self, site: str, slot: int, attempt: int) -> Optional[FaultSpec]:
        """The first spec faulting ``(site, slot, attempt)``, if any —
        side-effect free (no recording)."""
        for spec, targets in self._targets:
            if spec.site == site and slot in targets and attempt < spec.attempts:
                return spec
        return None

    def poll(
        self, site: str, slot: int, attempt: int, **context: object
    ) -> Optional[InjectedFault]:
        """Decide-and-record: returns the injected fault for this
        ``(site, slot, attempt)`` or ``None``.  Extra ``context`` fields
        (worker label, wave index...) land in the ledger event."""
        spec = self.due(site, slot, attempt)
        if spec is None:
            return None
        fault = InjectedFault(spec.kind, site, slot, attempt)
        key = (spec.kind, site, slot, attempt)
        if key not in self._recorded:
            self._recorded.add(key)
            self.injected.append(fault)
            self.registry.counter(
                "faults.injected", site=site, kind=spec.kind
            ).inc()
            record_event(
                "fault.injected", site=site, kind=spec.kind,
                slot=slot, attempt=attempt, **context,
            )
            _log.debug(
                "injected %s at %s slot %d attempt %d",
                spec.kind, site, slot, attempt,
                extra={"site": site, "kind": spec.kind, "slot": slot},
            )
        return fault

    def fire(self, site: str, slot: int, attempt: int, **context: object) -> None:
        """Poll and raise the fault's exception when one is due."""
        fault = self.poll(site, slot, attempt, **context)
        if fault is not None:
            raise fault.to_exception()

    def counts_by_kind(self) -> Dict[str, int]:
        """Injections recorded so far, tallied by kind."""
        counts: Dict[str, int] = {}
        for fault in self.injected:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return counts
