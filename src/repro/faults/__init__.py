"""Deterministic fault injection + the resilience vocabulary.

Genomic-scale systems treat failure as the common case: devices go
busy, slow, or away mid-run.  This package supplies the seeded fault
plans (:mod:`repro.faults.plan`), the injector that enacts them at
named sites (:mod:`repro.faults.injector`), and the retry policy
(:mod:`repro.faults.retry`) that the host scheduler
(:mod:`repro.accel.scheduler`) and the runtime API
(:mod:`repro.runtime`) recover with.  See DESIGN.md §3.5 for the fault
model and the recovery ladder.
"""

from .injector import (
    FAULT_EXCEPTIONS,
    FaultInjector,
    InjectedFault,
    InjectedFaultError,
    InjectedLaunchError,
    InjectedTransferError,
    InjectedWaveTimeout,
    InjectedWorkerCrash,
    RetryBudgetExceeded,
)
from .plan import (
    DEFAULT_SITES,
    FAULT_KINDS,
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    shard_fault_plan,
)
from .retry import NO_RETRY, RetryPolicy

__all__ = [
    "DEFAULT_SITES",
    "FAULT_EXCEPTIONS",
    "FAULT_KINDS",
    "KNOWN_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedFaultError",
    "InjectedLaunchError",
    "InjectedTransferError",
    "InjectedWaveTimeout",
    "InjectedWorkerCrash",
    "NO_RETRY",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "shard_fault_plan",
]
