"""Retry policy: exponential backoff with deterministic jitter.

The backoff for retrying ``(slot, attempt)`` is a pure function of the
policy — ``base * multiplier**attempt``, scaled by a jitter factor drawn
from a ``random.Random`` seeded by ``(policy seed, slot, attempt)`` and
capped at ``max_backoff`` — so two runs of the same faulted schedule
sleep the same amounts and the virtual-timeline accounting of the
runtime's transfer retries is reproducible.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class RetryPolicy:
    """How failed operations are retried.

    ``max_retries`` is the *retry* budget: an operation may run
    ``max_retries + 1`` times before :class:`~repro.faults.injector.\
RetryBudgetExceeded` propagates.  Jitter decorrelates retries without
    breaking determinism (see the module docstring).
    """

    max_retries: int = 2
    backoff_base: float = 0.005
    backoff_multiplier: float = 2.0
    jitter: float = 0.25
    max_backoff: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.max_backoff < 0:
            raise ValueError("backoff seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_seconds(self, slot: int, attempt: int) -> float:
        """The deterministic backoff before retry ``attempt`` (0-based:
        the sleep after the first failure is ``attempt=0``)."""
        base = self.backoff_base * self.backoff_multiplier ** attempt
        if self.jitter:
            rng = random.Random(f"{self.seed}|{slot}|{attempt}")
            base *= 1.0 + rng.uniform(0.0, self.jitter)
        return min(base, self.max_backoff)

    def sleep(
        self,
        slot: int,
        attempt: int,
        clock: Callable[[float], None] = time.sleep,
    ) -> float:
        """Sleep the backoff (``clock`` injectable for tests and for
        charging virtual timelines); returns the seconds slept."""
        seconds = self.backoff_seconds(slot, attempt)
        if seconds > 0:
            clock(seconds)
        return seconds


#: The no-retry policy (fail fast, zero backoff).
NO_RETRY = RetryPolicy(max_retries=0, backoff_base=0.0, jitter=0.0)
