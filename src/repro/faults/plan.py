"""Seeded, deterministic fault plans.

A :class:`FaultPlan` declares *which* faults a run will suffer — worker
crashes, wave-item timeouts, PCIe transfer errors, device launch
failures — and *where*: every injection point in the codebase is a named
**site** (``scheduler.wave``, ``runtime.transfer``, ``runtime.launch``),
and every logical operation arriving at a site is assigned a **slot**
index in deterministic arrival order (wave index for the scheduler,
transfer/launch ordinal for the runtime).

The determinism contract: **same seed + same plan ⇒ same injected
faults**.  Each spec's target slots are derived once, from a
``random.Random`` seeded by ``(plan seed, site, kind)`` — never from
wall-clock time, process ids, or host scheduling — so a faulted run is
exactly reproducible, including under ``workers=N`` fan-out (injection
decisions are made in the parent process, keyed by slot and attempt, not
by completion order).

Spec grammar (the CLI's ``--inject-faults`` argument)::

    SPEC  := item ("," item)*
    item  := KIND [":" COUNT] ["@" SITE] ["+" ATTEMPTS] ["~" SPREAD]

* ``KIND`` — one of ``worker_crash``, ``wave_timeout``,
  ``transfer_error``, ``launch_error``;
* ``COUNT`` — how many slots the spec faults (default 1);
* ``SITE`` — the injection site (defaults to the kind's natural site,
  see :data:`DEFAULT_SITES`);
* ``ATTEMPTS`` — how many consecutive attempts at a faulted slot fail
  before it succeeds (default 1: the first retry goes through);
* ``SPREAD`` — target slots are spaced by seeded gaps drawn from
  ``[0, SPREAD]`` (default 0: the first ``COUNT`` slots fault).

``worker_crash:2@scheduler.wave+2~3`` means: two waves, chosen by the
seed among the early slots, each crash twice before succeeding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

#: Every fault kind the injector knows how to enact.
FAULT_KINDS = (
    "worker_crash",
    "wave_timeout",
    "transfer_error",
    "launch_error",
)

#: The site each kind naturally injects at when the spec names none.
DEFAULT_SITES: Dict[str, str] = {
    "worker_crash": "scheduler.wave",
    "wave_timeout": "scheduler.wave",
    "transfer_error": "runtime.transfer",
    "launch_error": "runtime.launch",
}

#: Sites instrumented by the codebase (documented; the plan accepts any
#: name so tests can invent private sites).
KNOWN_SITES = ("scheduler.wave", "runtime.transfer", "runtime.launch")


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault: ``count`` slots at ``site`` fail with
    ``kind``, each for ``attempts`` consecutive attempts."""

    kind: str
    site: str = ""
    count: int = 1
    attempts: int = 1
    spread: int = 0
    #: Explicit target slots (overrides the seeded derivation).
    at: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(choose from {', '.join(FAULT_KINDS)})"
            )
        if not self.site:
            object.__setattr__(self, "site", DEFAULT_SITES[self.kind])
        if self.count < 1:
            raise ValueError("fault count must be >= 1")
        if self.attempts < 1:
            raise ValueError("fault attempts must be >= 1")
        if self.spread < 0:
            raise ValueError("fault spread must be >= 0")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one spec item (see the module grammar)."""
        item = text.strip()
        if not item:
            raise ValueError("empty fault spec item")
        spread = 0
        attempts = 1
        site = ""
        count = 1
        if "~" in item:
            item, raw = item.rsplit("~", 1)
            spread = int(raw)
        if "+" in item:
            item, raw = item.rsplit("+", 1)
            attempts = int(raw)
        if "@" in item:
            item, site = item.split("@", 1)
        if ":" in item:
            item, raw = item.split(":", 1)
            count = int(raw)
        return cls(
            kind=item.strip(), site=site.strip(), count=count,
            attempts=attempts, spread=spread,
        )

    def render(self) -> str:
        """The spec back in grammar form (normalized)."""
        text = self.kind
        if self.count != 1:
            text += f":{self.count}"
        text += f"@{self.site}"
        if self.attempts != 1:
            text += f"+{self.attempts}"
        if self.spread:
            text += f"~{self.spread}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs; the unit the CLI, the scheduler, and
    the runtime all share.

    The plan itself is immutable and picklable; all mutable bookkeeping
    (slot counters, injected-fault records) lives in the
    :class:`~repro.faults.injector.FaultInjector` built over it.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    @classmethod
    def from_spec(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the CLI spec string (see module grammar)."""
        specs = tuple(
            FaultSpec.parse(item)
            for item in text.split(",")
            if item.strip()
        )
        if not specs:
            raise ValueError(f"fault spec {text!r} declares no faults")
        return cls(seed=seed, specs=specs)

    def targets(self, spec: FaultSpec) -> Tuple[int, ...]:
        """The slot indices ``spec`` faults — pure function of
        ``(self.seed, spec)``, which is the determinism contract."""
        if spec.at is not None:
            return tuple(sorted(set(spec.at)))
        rng = random.Random(f"{self.seed}|{spec.site}|{spec.kind}")
        slots = []
        slot = rng.randrange(spec.spread + 1) if spec.spread else 0
        for _ in range(spec.count):
            slots.append(slot)
            slot += 1 + (rng.randrange(spec.spread + 1) if spec.spread else 0)
        return tuple(slots)

    def for_site(self, site: str) -> Tuple[FaultSpec, ...]:
        """The specs injecting at ``site``, in declaration order."""
        return tuple(spec for spec in self.specs if spec.site == site)

    def sites(self) -> Tuple[str, ...]:
        """Every site the plan touches."""
        seen: Dict[str, None] = {}
        for spec in self.specs:
            seen.setdefault(spec.site, None)
        return tuple(seen)

    def render(self) -> str:
        """The whole plan in spec-grammar form."""
        return ",".join(spec.render() for spec in self.specs)

    def describe(self) -> Iterable[str]:
        """Human lines: one per spec with its resolved target slots."""
        for spec in self.specs:
            yield (
                f"{spec.render()} -> slots {list(self.targets(spec))}"
                f" (seed {self.seed})"
            )


def shard_fault_plan(
    plan: FaultPlan,
    device_queues: Iterable[Iterable[int]],
    site: str = "scheduler.wave",
) -> Tuple[FaultPlan, ...]:
    """Split one fault plan into per-device plans for a shard layout.

    Under multi-device sharding each device queue numbers its wave slots
    locally from zero, so a global plan cannot be polled as-is.  This
    resolves every ``site`` spec's *global* target slots once (from the
    seed, exactly as a serial run would) and re-expresses them as
    explicit local slots on whichever device queue actually runs each
    global wave: ``device_queues[d]`` lists device ``d``'s waves by
    global index in execution order, so global wave ``g`` faults on
    device ``d`` at local slot ``device_queues[d].index(g)``.  The
    mapping is a pure function of ``(plan, layout)`` — faults stay
    keyed by ``(device, wave)`` and deterministic regardless of host
    thread scheduling.  Global targets beyond the wave count are
    dropped, exactly as a serial run never reaches them.  Specs for
    other sites are replicated into every device plan unchanged (the
    scheduler only polls ``site``; runtime sites keep their own
    per-device slot counters).
    """
    queues = [list(queue) for queue in device_queues]
    if not queues:
        raise ValueError("need at least one device queue")
    placement: Dict[int, Tuple[int, int]] = {}
    for device, queue in enumerate(queues):
        for local, global_index in enumerate(queue):
            placement[global_index] = (device, local)
    per_device: list = [[] for _ in queues]
    for spec in plan.specs:
        if spec.site != site:
            for specs in per_device:
                specs.append(spec)
            continue
        local_slots: Dict[int, list] = {}
        for g in plan.targets(spec):
            if g in placement:
                device, local = placement[g]
                local_slots.setdefault(device, []).append(local)
        for device, slots in local_slots.items():
            per_device[device].append(
                FaultSpec(
                    kind=spec.kind, site=spec.site, count=len(slots),
                    attempts=spec.attempts, spread=spec.spread,
                    at=tuple(sorted(slots)),
                )
            )
    return tuple(
        FaultPlan(seed=plan.seed, specs=tuple(specs))
        for specs in per_device
    )
