"""Hardware coordinate sort via a merge tree.

The mark-duplicates stage "also sorts all reads based on their starting
positions" (Section IV-B) — host-side in the paper.  This driver shows
the library covers it too: records are chunked into locally sorted runs
(the host or an insertion network provides runs), the runs stream through
a binary :class:`~repro.hw.modules.sorter.MergeUnit` tree, and the fully
ordered stream emerges at one record per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..genomics.read import AlignedRead
from ..hw.engine import Engine, RunStats
from ..hw.flit import Flit
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.module import Module
from ..hw.modules.sorter import build_merge_tree


class _RunFeeder(Module):
    """Streams one pre-framed run into a merge-tree leaf queue."""

    def __init__(self, name: str, flits: Sequence[Flit]):
        super().__init__(name)
        self._flits = list(flits)
        self._cursor = 0

    def tick(self, cycle: int) -> None:
        if self._cursor >= len(self._flits):
            return
        out = self.output()
        if not out.try_push(self._flits[self._cursor]):
            self._note_stalled(out)
            return
        self._cursor += 1
        self._note_busy()

    def is_idle(self) -> bool:
        return self._cursor >= len(self._flits)


class _RunCollector(Module):
    """Collects the merged run's payload values."""

    def __init__(self, name: str):
        super().__init__(name)
        self.keys: List[object] = []
        self.tags: List[object] = []

    def tick(self, cycle: int) -> None:
        queue = self.input()
        if queue.can_pop():
            flit = queue.pop()
            if flit.fields:
                self.keys.append(flit["key"])
                self.tags.append(flit.get("tag"))
            self._note_busy()


@dataclass
class HwSortResult:
    """Sorted keys (with carried tags) plus simulation statistics."""

    keys: List[object]
    tags: List[object]
    stats: RunStats


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return max(2, power)


def run_hw_sort(
    keys: Sequence,
    tags: Optional[Sequence] = None,
    n_leaves: int = 8,
    memory_config: Optional[MemoryConfig] = None,
) -> HwSortResult:
    """Sort ``keys`` (carrying optional per-record ``tags``) through a
    merge tree with ``n_leaves`` leaves.

    Records are split round-robin into ``n_leaves`` runs, each run sorted
    locally (the host-prepared-runs model), then merged in one hardware
    pass.  Ties preserve leaf order, so equal keys keep a deterministic
    order.
    """
    n_leaves = _next_power_of_two(n_leaves)
    records: List[Tuple[object, object]] = [
        (key, tags[i] if tags is not None else None)
        for i, key in enumerate(keys)
    ]
    runs: List[List[Tuple[object, object]]] = [[] for _ in range(n_leaves)]
    for index, record in enumerate(records):
        runs[index % n_leaves].append(record)
    for run in runs:
        run.sort(key=lambda record: record[0])

    engine = Engine(MemorySystem(memory_config))
    leaf_queues, out_queue, _units = build_merge_tree(engine, "sort", n_leaves)
    for index, (queue, run) in enumerate(zip(leaf_queues, runs)):
        flits = []
        for key, tag in run:
            flits.append(Flit({"key": key, "tag": tag}))
        if flits:
            flits[-1].last = True
        else:
            flits = [Flit({}, last=True)]
        feeder = _RunFeeder(f"feed{index}", flits)
        engine.add_module(feeder)
        feeder.connect_output("out", queue)
    collector = _RunCollector("collect")
    engine.add_module(collector)
    collector.connect_input("in", out_queue)
    stats = engine.run()
    return HwSortResult(keys=collector.keys, tags=collector.tags, stats=stats)


def coordinate_sort_reads(
    reads: Sequence[AlignedRead],
    n_leaves: int = 8,
    memory_config: Optional[MemoryConfig] = None,
) -> Tuple[List[AlignedRead], RunStats]:
    """The mark-duplicates coordinate sort, in hardware: orders reads by
    (chromosome, position) through the merge tree."""
    keys = [(read.chrom, read.pos) for read in reads]
    result = run_hw_sort(keys, tags=list(range(len(reads))), n_leaves=n_leaves,
                         memory_config=memory_config)
    ordered = [reads[index] for index in result.tags]
    return ordered, result.stats
