"""Genesis pipeline for callset set-operations (Section IV-E).

"Intersection of training/truth resource sets and callsets in Variant
Quality Score Recalibration (VQSR)" is on the paper's list of
Genesis-amenable operations — and it maps directly onto the library's
merge-Joiner: each callset is a stream of variant flits keyed by
``(chrom, pos, ref, alt)`` in coordinate order, and an inner/left join
yields the intersection/difference at one variant per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hw.engine import Engine, RunStats
from ..hw.flit import Flit
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.modules import Joiner, MemoryReader, MemoryWriter
from ..hw.pipeline import Pipeline
from ..variants.records import CallSet, Variant


def _variant_key(variant: Variant) -> Tuple[int, int, str, str]:
    return variant.key()


def _callset_flits(callset: CallSet, side: str) -> List[Flit]:
    """One item: the whole callset as keyed flits in key order."""
    ordered = sorted(callset, key=_variant_key)
    flits = [
        Flit({"key": _variant_key(variant), f"variant_{side}": variant})
        for variant in ordered
    ]
    if flits:
        flits[-1].last = True
    else:
        flits = [Flit({}, last=True)]
    return flits


@dataclass
class CallsetOpResult:
    """Result of one hardware callset operation."""

    callset: CallSet
    stats: RunStats


def _run_join(
    a: CallSet,
    b: CallSet,
    mode: str,
    keep,
    name: str,
    memory_config: Optional[MemoryConfig] = None,
) -> CallsetOpResult:
    engine = Engine(MemorySystem(memory_config))
    pipe = Pipeline("cs", engine)
    reader_a = pipe.add(MemoryReader("cs.a", engine.memory, elem_size=16))
    reader_b = pipe.add(MemoryReader("cs.b", engine.memory, elem_size=16))
    joiner = pipe.add(Joiner("cs.join", mode=mode, key_a="key", key_b="key"))
    writer = pipe.add(
        MemoryWriter("cs.writer", engine.memory, elem_size=16, field="variant_a")
    )
    engine.connect(reader_a, joiner, in_port="a")
    engine.connect(reader_b, joiner, in_port="b")
    engine.connect(joiner, writer)
    reader_a.set_stream(_callset_flits(a, "a"))
    reader_b.set_stream(_callset_flits(b, "b"))
    stats = engine.run()
    variants = [v for v in writer.collected if keep(v)]
    return CallsetOpResult(CallSet(variants, name=name), stats)


def run_callset_intersection(
    a: CallSet, b: CallSet, memory_config: Optional[MemoryConfig] = None
) -> CallsetOpResult:
    """Hardware intersection: inner join on the variant key."""
    return _run_join(
        a, b, "inner", keep=lambda v: True,
        name=f"{a.name}&{b.name}", memory_config=memory_config,
    )


def run_callset_difference(
    a: CallSet, b: CallSet, memory_config: Optional[MemoryConfig] = None
) -> CallsetOpResult:
    """Hardware difference (a - b): left join, keep unmatched left flits.

    Matched flits carry the right side's variant too; the writer's field
    filter alone cannot distinguish them, so the join output is post-
    filtered by membership — done here in the driver, mirroring the
    host-side LIMIT/WHERE the SQL layer would attach.
    """
    b_keys = b.keys()
    return _run_join(
        a, b, "left", keep=lambda v: v.key() not in b_keys,
        name=f"{a.name}-{b.name}", memory_config=memory_config,
    )
