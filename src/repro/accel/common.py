"""Shared plumbing for the Genesis accelerator drivers.

Each accelerator driver (example query, mark duplicates, metadata update,
BQSR) turns a READS partition and its REF partition row into the column
streams the memory readers consume, builds the dataflow pipeline, runs the
cycle simulation, and post-processes the memory-writer contents into
host-visible results.  The stream framing and the reference-SPM load phase
are identical across drivers and live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..genomics.read import FLAG_REVERSE
from ..hw.engine import Engine, RunStats
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.modules import MemoryReader, SpmUpdater
from ..hw.pipeline import Pipeline
from ..hw.spm import Scratchpad
from ..tables.table import Table


@dataclass
class ReadStreams:
    """The per-column streams of one READS partition."""

    pos: List[int]
    endpos: List[int]
    cigar: List[List[int]]
    seq: List[np.ndarray]
    qual: List[np.ndarray]
    flags: List[int]
    rowids: List[int]

    @property
    def num_reads(self) -> int:
        """Reads in the partition."""
        return len(self.pos)

    def reverse_flags(self) -> List[bool]:
        """Per-read reverse-strand booleans (BinIDGen metadata)."""
        return [bool(f & FLAG_REVERSE) for f in self.flags]

    def seq_lengths(self) -> List[int]:
        """Per-read stored sequence lengths."""
        return [len(s) for s in self.seq]


def read_streams(partition: Table) -> ReadStreams:
    """Extract the column streams from a READS partition table."""
    return ReadStreams(
        pos=[int(v) for v in partition.column("POS")],
        endpos=[int(v) for v in partition.column("ENDPOS")],
        cigar=[[int(c) for c in row] for row in partition.column("CIGAR")],
        seq=list(partition.column("SEQ")),
        qual=list(partition.column("QUAL")),
        flags=[int(v) for v in partition.column("FLAGS")],
        rowids=[int(v) for v in partition.column("ROWID")],
    )


def load_reference_spm(
    ref_row: dict,
    memory_config: Optional[MemoryConfig] = None,
    with_snp: bool = False,
) -> Tuple[Scratchpad, RunStats]:
    """Phase 1 of every reference-using accelerator: stream the REF
    partition row from memory into an on-chip SPM through a Memory Reader
    and a sequential-mode SPM Updater, and account its cycles.

    Each SPM word holds the reference base (and, when ``with_snp`` is set,
    the ``(base, is_snp)`` pair the BQSR pipeline needs).
    """
    seq = ref_row["SEQ"]
    words: Sequence[object]
    elem_size = 1
    if with_snp:
        snp = ref_row["IS_SNP"]
        words = [(int(b), bool(s)) for b, s in zip(seq, snp)]
    else:
        words = [int(b) for b in seq]

    engine = Engine(MemorySystem(memory_config))
    spm = Scratchpad("ref_spm", len(words))
    reader = engine.add_module(
        MemoryReader("ref_reader", engine.memory, elem_size=elem_size)
    )
    updater = engine.add_module(SpmUpdater("ref_updater", spm, mode="sequential"))
    engine.connect(reader, updater)
    reader.set_items([words])
    stats = engine.run()
    return spm, stats


@dataclass
class AcceleratorRun:
    """Result of simulating one accelerator invocation on one partition.

    ``pipeline`` is ``None`` for runs harvested by the partition scheduler
    (:mod:`repro.accel.scheduler`), whose per-partition results must stay
    picklable across worker processes; the statistics are always present.
    """

    pipeline: Optional[Pipeline]
    stats: RunStats
    load_stats: Optional[RunStats] = None

    @property
    def total_cycles(self) -> int:
        """Compute cycles including the SPM load phase."""
        cycles = self.stats.cycles
        if self.load_stats is not None:
            cycles += self.load_stats.cycles
        return cycles


def spm_base(ref_row: dict) -> int:
    """The genome coordinate of SPM word 0 for a REF partition row."""
    return int(ref_row["REFPOS"])
