"""Genesis mark-duplicates accelerator (Figure 10, Section IV-B).

The hardware part of this stage is deliberately small: a Memory Reader
streams the QUAL column, a SUM Reducer computes each read's quality-score
sum at one base per cycle, and a Memory Writer stores the per-read sums.
The host then generates the unclipped-5' keys and picks the surviving read
of every duplicate set using those sums (that remainder is
:func:`repro.gatk.markdup.mark_duplicates` with ``quality_sums``
injected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..gatk.markdup import MarkDuplicatesResult, mark_duplicates
from ..genomics.read import AlignedRead
from ..hw.engine import Engine, RunStats
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.modules import MemoryReader, MemoryWriter, Reducer
from ..hw.pipeline import Pipeline
from ..tables.table import Table


def build_markdup_pipeline(engine: Engine, name: str) -> Pipeline:
    """Wire one Figure 10 pipeline replica into ``engine``."""
    pipe = Pipeline(name, engine)
    reader = pipe.add(MemoryReader(f"{name}.qual", engine.memory, elem_size=1))
    summer = pipe.add(Reducer(f"{name}.sum", op="sum", field="value"))
    writer = pipe.add(MemoryWriter(f"{name}.writer", engine.memory, elem_size=4))
    engine.connect(reader, summer)
    engine.connect(summer, writer)
    return pipe


@dataclass
class MarkDupAccelResult:
    """Per-read quality sums plus simulation statistics.

    ``stats`` is ``None`` for partitions the scheduler never simulated
    (empty partitions have no reads to sum).
    """

    quality_sums: List[int]
    stats: Optional[RunStats]

    @classmethod
    def empty(cls) -> "MarkDupAccelResult":
        """The result shape of a partition with no reads."""
        return cls(quality_sums=[], stats=None)


def run_quality_sums(
    quals: Sequence,
    memory_config: Optional[MemoryConfig] = None,
    profiler=None,
) -> MarkDupAccelResult:
    """Simulate the quality-sum pipeline over per-read QUAL arrays.

    ``profiler`` is an optional :class:`repro.obs.Profiler`; when given it
    is attached to the engine before the run and left holding the run's
    observations for ``profiler.report()``.
    """
    engine = Engine(MemorySystem(memory_config))
    pipe = build_markdup_pipeline(engine, "md")
    pipe.modules["md.qual"].set_items([[int(q) for q in item] for item in quals])
    if profiler is not None:
        profiler.attach(engine)
    stats = engine.run()
    writer = pipe.modules["md.writer"]
    return MarkDupAccelResult(
        quality_sums=[int(item[0]) for item in writer.items], stats=stats
    )


def run_quality_sums_table(
    reads_table: Table, memory_config: Optional[MemoryConfig] = None
) -> MarkDupAccelResult:
    """Same, taking a READS table."""
    return run_quality_sums(reads_table.column("QUAL"), memory_config)


def accelerated_mark_duplicates(
    reads: Sequence[AlignedRead],
    memory_config: Optional[MemoryConfig] = None,
) -> MarkDuplicatesResult:
    """The full accelerated stage: hardware quality sums + host selection.

    The quality sums are computed in read-list order and handed to the
    host-side algorithm exactly as the paper's system does.
    """
    accel = run_quality_sums([read.qual for read in reads], memory_config)
    return mark_duplicates(reads, quality_sums=accel.quality_sums)
