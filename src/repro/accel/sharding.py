"""Multi-device sharding: N modelled cards, one bit-identical answer.

The partition-parallel scheduler (:mod:`repro.accel.scheduler`) drives
*one* simulated device, so total throughput is capped by one PCIe link
and one accelerator's pipelines — the ceiling the paper's scaling
analysis (Fig. 8/9) identifies.  This module adds the scale-out tier:
a :class:`~repro.runtime.device.DevicePool` of N cards, a shard planner
that assigns wave queues to devices, a plan-time work-stealing pass
that rebalances straggler queues, and a deterministic merge stage that
reassembles one answer from the per-device shards.

The determinism argument, in execution order:

1. **Waves are packed globally, then sharded whole.**  A wave's
   simulated cycles depend on its composition (the replicas share one
   memory system), so re-packing per device would change cycles the
   moment ``devices > 1``.  :func:`plan_shards` therefore runs the
   exact same :func:`~repro.accel.scheduler.pack_waves` a serial run
   uses and assigns *whole waves* to device queues — wave composition,
   and hence every simulated cycle count, is topology-invariant.
2. **Stealing happens at plan time, from deterministic costs.**  The
   steal loop moves trailing waves from the most-loaded queue to the
   least-loaded one while that strictly reduces the estimated makespan,
   using partition row counts as the cost model — a pure function of
   the inputs, never of host timing.  Stealing relocates *host work
   only*; the stolen wave simulates the same cycles wherever it runs.
3. **Faults stay keyed by (device, wave).**  A global fault plan is
   split by :func:`repro.faults.plan.shard_fault_plan` into per-device
   plans targeting each global wave at its actual local queue slot, and
   each device thread polls its own injector — no shared mutable state,
   no dependence on thread scheduling.
4. **The merge is canonical.**  Results are re-keyed in input partition
   order, per-device SPM caches are absorbed into the shared cache in
   device order, and BQSR covariate tables reduce per read group in
   canonical key order — the same answer regardless of which device
   finished first.

Net: for every ``(devices, workers)`` combination, with or without
injected faults, with or without steals, a sharded run is bit-identical
to the serial one in both results and simulated cycles; only host-side
wall-clock metrics differ.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan, shard_fault_plan
from ..faults.retry import RetryPolicy
from ..gatk.bqsr import CovariateTables
from ..obs.ledger import record_event
from ..obs.log import get_logger
from ..obs.registry import MetricsRegistry, registry_or_null
from ..obs.spans import active_spans
from ..runtime.device import DeviceConfig, DevicePool
from ..tables.partition import PartitionId
from .bqsr import merge_partition_results
from .scheduler import (
    ParallelRunStats,
    SpmImageCache,
    WaveDriver,
    WaveItem,
    WorkerStats,
    pack_waves,
    run_partitioned,
)

_log = get_logger("sharding")

#: Modelled host->device payload per read for the PCIe transfer model
#: (sequence + qualities + alignment metadata, order-of-magnitude).
MODEL_ROW_BYTES = 128

#: Shard assignment policies understood by :func:`plan_shards`.
SHARD_POLICIES = ("hash", "range")


def stable_shard_hash(pid: PartitionId) -> int:
    """A process-stable hash of a partition id (CRC32 of its rendered
    form).  Python's builtin ``hash`` is salted per process, which would
    make shard assignment — and thus fault placement and steal records —
    differ between runs."""
    return zlib.crc32(str(pid).encode("utf-8"))


@dataclass(frozen=True)
class StealRecord:
    """One plan-time steal: ``wave`` (global index) migrated from the
    ``source`` device queue to ``target``, carrying ``cost`` estimated
    rows of host work."""

    wave: int
    source: int
    target: int
    cost: int


@dataclass
class ShardWave:
    """One globally packed wave and its device placement."""

    global_index: int
    items: List[WaveItem]
    #: Deterministic cost estimate: summed partition rows (the wave's
    #: host work scales with its widest replica, but total rows is the
    #: better queue-load proxy and is what LPT packed by).
    cost: int
    #: The queue the assignment policy put the wave on.
    home_device: int
    #: The queue that actually runs it (differs after a steal).
    device: int


@dataclass
class ShardPlan:
    """The deterministic shard layout of one run: every wave's placement
    plus the steal log that produced it."""

    devices: int
    policy: str
    empty_pids: List[PartitionId]
    #: All waves in global (LPT) order.
    waves: List[ShardWave]
    steals: List[StealRecord]

    def device_waves(self, device: int) -> List[ShardWave]:
        """Device ``device``'s queue, largest-first (global order)."""
        return [wave for wave in self.waves if wave.device == device]

    def device_queues(self) -> List[List[int]]:
        """Global wave indices per device in execution order — the
        layout :func:`repro.faults.plan.shard_fault_plan` consumes."""
        return [
            [wave.global_index for wave in self.device_waves(device)]
            for device in range(self.devices)
        ]

    def loads(self) -> List[int]:
        """Post-steal estimated cost per device queue."""
        return [
            sum(wave.cost for wave in self.device_waves(device))
            for device in range(self.devices)
        ]

    def describe(self) -> Iterable[str]:
        """Human lines: one per device queue, then one per steal."""
        for device in range(self.devices):
            queue = self.device_waves(device)
            yield (
                f"device {device}: {len(queue)} wave(s), "
                f"~{sum(w.cost for w in queue)} rows "
                f"{[w.global_index for w in queue]}"
            )
        for steal in self.steals:
            yield (
                f"steal: wave {steal.wave} ({steal.cost} rows) "
                f"device {steal.source} -> {steal.target}"
            )


def plan_shards(
    partitions: Iterable[WaveItem],
    n_pipelines: int,
    devices: int,
    policy: str = "hash",
    steal: bool = True,
) -> ShardPlan:
    """Lay out a run across ``devices`` queues.

    Waves are packed globally (identical to a serial run — see the
    module determinism argument), assigned a home queue by ``policy``
    (``"hash"``: stable hash of the wave's lead partition id;
    ``"range"``: contiguous blocks of the LPT order), then rebalanced by
    the straggler-aware steal loop: while moving the most-loaded queue's
    trailing wave to the least-loaded queue strictly reduces the
    estimated makespan, move it and log a :class:`StealRecord`.  Ties
    break on the lowest device index, so the plan is a pure function of
    ``(partitions, n_pipelines, devices, policy, steal)``.
    """
    if devices < 1:
        raise ValueError("need at least one device")
    if policy not in SHARD_POLICIES:
        raise ValueError(
            f"unknown shard policy {policy!r} "
            f"(choose from {', '.join(SHARD_POLICIES)})"
        )
    empty_pids, packed = pack_waves(partitions, n_pipelines)
    waves: List[ShardWave] = []
    for index, wave in enumerate(packed):
        if policy == "hash":
            home = stable_shard_hash(wave[0][0]) % devices
        else:
            home = index * devices // len(packed)
        waves.append(
            ShardWave(
                global_index=index,
                items=list(wave),
                cost=sum(part.num_rows for _pid, part in wave),
                home_device=home,
                device=home,
            )
        )

    steals: List[StealRecord] = []
    if steal and devices > 1 and waves:
        queues = [
            [wave for wave in waves if wave.device == device]
            for device in range(devices)
        ]
        while True:
            loads = [sum(wave.cost for wave in queue) for queue in queues]
            source = max(range(devices), key=lambda d: (loads[d], -d))
            target = min(range(devices), key=lambda d: (loads[d], d))
            if source == target or len(queues[source]) <= 1:
                break
            victim = queues[source][-1]
            after_source = loads[source] - victim.cost
            after_target = loads[target] + victim.cost
            if max(after_source, after_target) >= loads[source]:
                break  # no strict makespan improvement left
            queues[source].pop()
            victim.device = target
            queues[target].append(victim)
            queues[target].sort(key=lambda wave: wave.global_index)
            steals.append(
                StealRecord(
                    wave=victim.global_index, source=source,
                    target=target, cost=victim.cost,
                )
            )

    return ShardPlan(
        devices=devices, policy=policy, empty_pids=empty_pids,
        waves=waves, steals=steals,
    )


@dataclass
class ShardedRunStats:
    """Aggregate statistics of a sharded run: per-device scheduler stats
    plus the shard plan's steal log and the pool's virtual occupancy.

    The simulated-cycle aggregates (:attr:`total_cycles`,
    :attr:`per_wave_cycles`, …) are reassembled in global wave order and
    equal the serial run's bit-for-bit; only the host-side fields
    (elapsed seconds, parallelism) reflect the actual fan-out.
    """

    devices: int
    workers: int
    per_device: List[ParallelRunStats]
    steals: List[StealRecord]
    #: Post-steal estimated cost per device queue (plan-time view).
    plan_loads: List[int]
    #: Simulated cycles per wave in global (serial) order.
    per_wave_cycles: List[int]
    #: Virtual accelerator occupancy per card, from the DevicePool.
    device_busy_seconds: List[float] = field(default_factory=list)
    #: Virtual PCIe occupancy per card, from the DevicePool.
    device_transfer_seconds: List[float] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    # -- simulated aggregates (topology-invariant) ---------------------------------

    @property
    def waves(self) -> int:
        return sum(stats.waves for stats in self.per_device)

    @property
    def total_cycles(self) -> int:
        return sum(self.per_wave_cycles)

    @property
    def spm_load_cycles(self) -> int:
        return sum(stats.spm_load_cycles for stats in self.per_device)

    @property
    def cycles_including_load(self) -> int:
        return self.total_cycles + self.spm_load_cycles

    @property
    def total_flits(self) -> int:
        return sum(stats.total_flits for stats in self.per_device)

    # -- host-side aggregates ------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        return sum(stats.wall_seconds for stats in self.per_device)

    @property
    def host_parallelism(self) -> float:
        """Effective concurrency across all device queues: summed
        per-wave engine seconds over end-to-end seconds."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.wall_seconds / self.elapsed_seconds

    @property
    def spm_cache_hits(self) -> int:
        return sum(stats.spm_cache_hits for stats in self.per_device)

    @property
    def spm_cache_misses(self) -> int:
        return sum(stats.spm_cache_misses for stats in self.per_device)

    @property
    def spm_cycles_saved(self) -> int:
        return sum(stats.spm_cycles_saved for stats in self.per_device)

    @property
    def per_worker(self) -> Dict[str, WorkerStats]:
        """Per-worker tallies across devices, keyed ``d<device>/<worker>``."""
        merged: Dict[str, WorkerStats] = {}
        for stats in self.per_device:
            prefix = f"d{stats.device}" if stats.device is not None else "d0"
            for worker, tally in stats.per_worker.items():
                merged[f"{prefix}/{worker}"] = tally
        return merged

    # -- resilience aggregates -----------------------------------------------------

    @property
    def faults_injected(self) -> int:
        return sum(stats.faults_injected for stats in self.per_device)

    @property
    def faults_by_kind(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for stats in self.per_device:
            for kind, count in stats.faults_by_kind.items():
                merged[kind] = merged.get(kind, 0) + count
        return merged

    @property
    def retries(self) -> int:
        return sum(stats.retries for stats in self.per_device)

    @property
    def watchdog_timeouts(self) -> int:
        return sum(stats.watchdog_timeouts for stats in self.per_device)

    @property
    def serial_fallback_waves(self) -> int:
        return sum(stats.serial_fallback_waves for stats in self.per_device)

    @property
    def pool_restarts(self) -> int:
        return sum(stats.pool_restarts for stats in self.per_device)

    # -- sharding-specific views ---------------------------------------------------

    @property
    def steal_count(self) -> int:
        return len(self.steals)

    def device_utilization(self) -> List[float]:
        """Each queue's simulated-cycle share of the critical-path
        queue (1.0 for the busiest device)."""
        cycles = [stats.total_cycles for stats in self.per_device]
        peak = max(cycles) if cycles else 0
        if peak <= 0:
            return [0.0 for _ in cycles]
        return [c / peak for c in cycles]


def _wave_nbytes(wave: ShardWave) -> int:
    """Modelled H2D payload of one wave (coarse: rows x row footprint)."""
    return wave.cost * MODEL_ROW_BYTES


def reduce_bqsr_results(
    results: Dict[PartitionId, object], read_length: int
) -> Dict[int, CovariateTables]:
    """Deterministic cross-device BQSR reduction: group the (already
    canonically ordered) per-partition results by read group and
    accumulate one :class:`~repro.gatk.bqsr.CovariateTables` per group.
    Covariate accumulation is integer addition, so any grouping of the
    same partitions reduces to the same tables — this helper fixes the
    order anyway so the reduction is reproducible byte-for-byte."""
    by_group: Dict[int, List[object]] = {}
    for pid in sorted(results, key=lambda p: (p.read_group, p.chrom, p.segment)):
        by_group.setdefault(pid.read_group, []).append(results[pid])
    return merge_partition_results(by_group, read_length)


def _record_storage_run(
    driver: WaveDriver,
    storage,
    device_queues: List[List[Tuple[int, List[WaveItem]]]],
    pool: DevicePool,
    total_cycles: int,
) -> None:
    """Ledger + trace the in-storage filter's work for one sharded run:
    a ``storage.wave`` event per wave, scan spans tiled on one
    ``storage:<n>`` lane per card, and the ``storage.run`` summary that
    ``repro analyze --storage`` sweeps (DESIGN.md §3.10)."""
    config = pool.config
    tracer = active_spans()
    total_raw = 0
    total_survivor = 0
    total_pruned = 0
    scan_total = 0.0
    for device, queue in enumerate(device_queues):
        cursor = 0
        for global_index, items in queue:
            raw = storage.wave_raw_nbytes(items)
            nbytes = storage.wave_nbytes(items)
            pruned = storage.wave_pruned_rows(items)
            scan = storage.wave_scan_seconds(items)
            total_raw += raw
            total_survivor += nbytes
            total_pruned += pruned
            scan_total += scan
            record_event(
                "storage.wave",
                stage=driver.stage, device=device, wave=global_index,
                raw_nbytes=raw, nbytes=nbytes, pruned_rows=pruned,
                scan_seconds=scan,
            )
            if tracer.enabled:
                cycles = int(round(scan * config.clock_hz))
                tracer.record(
                    f"scan:w{global_index}", "filter",
                    cursor, cursor + cycles,
                    trace_id=f"run-{driver.stage}-storage{device}",
                    lane=f"storage:{device}",
                    wave=global_index, device=device,
                    raw_nbytes=raw, nbytes=nbytes, pruned_rows=pruned,
                )
                cursor += cycles
    record_event(
        "storage.run",
        stage=driver.stage, devices=len(device_queues),
        filtered_fraction=storage.filtered_fraction,
        raw_nbytes=total_raw, survivor_nbytes=total_survivor,
        saved_nbytes=total_raw - total_survivor,
        pruned_rows=total_pruned,
        scan_seconds=scan_total,
        kernel_seconds=total_cycles / config.clock_hz,
        transfer_seconds=sum(pool.transfer_seconds()),
        internal_bandwidth=storage.config.internal_bandwidth,
        pcie_bandwidth=config.pcie_bandwidth,
        compression_ratio=storage.compression_ratio,
    )


def _record_shard_run(
    driver: WaveDriver, stats: ShardedRunStats, policy: str
) -> None:
    """Ledger the sharded run: one ``shard.device`` event per queue plus
    the ``shard.run`` summary ``repro analyze --sharding`` reads."""
    utilization = stats.device_utilization()
    for device, device_stats in enumerate(stats.per_device):
        record_event(
            "shard.device",
            stage=driver.stage, device=device,
            waves=device_stats.waves, cycles=device_stats.total_cycles,
            steals_in=device_stats.steals_in,
            steals_out=device_stats.steals_out,
            busy_seconds=(
                stats.device_busy_seconds[device]
                if device < len(stats.device_busy_seconds) else 0.0
            ),
            transfer_seconds=(
                stats.device_transfer_seconds[device]
                if device < len(stats.device_transfer_seconds) else 0.0
            ),
            elapsed_seconds=device_stats.elapsed_seconds,
            utilization=(
                utilization[device] if device < len(utilization) else 0.0
            ),
        )
    record_event(
        "shard.run",
        stage=driver.stage, devices=stats.devices, workers=stats.workers,
        policy=policy, waves=stats.waves, steals=stats.steal_count,
        total_cycles=stats.total_cycles,
        spm_load_cycles=stats.spm_load_cycles,
        per_wave_cycles=list(stats.per_wave_cycles),
        plan_loads=list(stats.plan_loads),
        elapsed_seconds=stats.elapsed_seconds,
        host_parallelism=stats.host_parallelism,
        faults_injected=stats.faults_injected,
    )


def run_sharded(
    driver: WaveDriver,
    partitions: Iterable[WaveItem],
    n_pipelines: int,
    devices: int = 1,
    workers: int = 1,
    spm_cache: Optional[SpmImageCache] = None,
    registry: Optional[MetricsRegistry] = None,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    wave_timeout: Optional[float] = None,
    policy: str = "hash",
    steal: bool = True,
    device_config: Optional[DeviceConfig] = None,
    storage=None,
) -> Tuple[Dict[PartitionId, object], ShardedRunStats]:
    """Run an accelerator stage sharded over ``devices`` modelled cards,
    each queue fanned out over ``workers`` host processes.

    ``storage`` optionally attaches the modelled in-SSD filter (a
    :class:`~repro.storage.filter.StorageFilterPlan`): wave H2D charges
    shrink to the survivor footprint — pruned exactly-matching reads
    ship descriptors the device expands against its resident REF
    partition — while the simulation itself is untouched, so results and
    per-stage kernel cycles are bit-identical to the unfiltered run
    (DESIGN.md §3.10).  With ``devices=1`` the filter additionally
    charges a single-card :class:`~repro.runtime.device.DevicePool`
    (normally the unsharded path skips transfer modelling entirely) so
    the savings are observable at any device count.

    ``devices=1`` delegates straight to
    :func:`~repro.accel.scheduler.run_partitioned` (no planning, no
    thread hop — the unsharded path keeps its cost).  For ``devices>1``
    the plan from :func:`plan_shards` runs one ``run_partitioned`` per
    device concurrently, each with its own SPM cache, fault injector
    (split from ``fault_plan`` by actual wave placement), and process
    pool, then merges deterministically: results in canonical input
    partition order, caches absorbed in device order.  See the module
    docstring for why the answer is bit-identical to serial.

    Unlike ``run_partitioned`` this takes the fault *plan*, not an
    injector — injectors hold per-run mutable state that cannot be
    shared across concurrent device queues.
    """
    if devices < 1:
        raise ValueError("need at least one device")
    parts = list(partitions)
    started = time.perf_counter()

    if devices == 1:
        injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        results, stats = run_partitioned(
            driver, parts, n_pipelines, workers=workers,
            spm_cache=spm_cache, registry=registry,
            fault_injector=injector, retry_policy=retry_policy,
            wave_timeout=wave_timeout,
        )
        device_busy: List[float] = []
        device_transfer: List[float] = []
        if storage is not None:
            # The unsharded path normally skips the transfer model; with
            # the filter on, charge a single-card pool so the survivor
            # savings are observable here too.  The wave packing below is
            # exactly what run_partitioned computed, so cycles line up.
            pool = DevicePool(1, config=device_config, storage=storage)
            card = pool.device(0)
            _empty, single_waves = pack_waves(parts, n_pipelines)
            for index, items in enumerate(single_waves):
                raw = sum(part.num_rows for _pid, part in items)
                card.transfer(
                    pool.wave_nbytes(items, raw * MODEL_ROW_BYTES), "h2d"
                )
                card.launch(index, stats.per_wave_cycles[index])
                card.wait(index)
            device_busy = pool.busy_seconds()
            device_transfer = pool.transfer_seconds()
            _record_storage_run(
                driver, storage,
                [list(enumerate(single_waves))], pool,
                sum(stats.per_wave_cycles),
            )
        sharded = ShardedRunStats(
            devices=1, workers=stats.workers, per_device=[stats],
            steals=[], plan_loads=[sum(p.num_rows for _pid, p in parts)],
            per_wave_cycles=list(stats.per_wave_cycles),
            device_busy_seconds=device_busy,
            device_transfer_seconds=device_transfer,
            elapsed_seconds=time.perf_counter() - started,
        )
        _record_shard_run(driver, sharded, policy)
        return results, sharded

    plan = plan_shards(parts, n_pipelines, devices, policy=policy, steal=steal)
    queues = [plan.device_waves(device) for device in range(devices)]
    device_plans: List[Optional[FaultPlan]] = [None] * devices
    if fault_plan is not None:
        device_plans = list(shard_fault_plan(fault_plan, plan.device_queues()))
    shared_cache = spm_cache if spm_cache is not None else SpmImageCache()
    seed_images = dict(shared_cache.images())
    pool = DevicePool(devices, config=device_config, storage=storage)
    _log.info(
        "%s: sharding %d wave(s) over %d device(s) (%s policy, "
        "%d steal(s), loads %s)",
        driver.stage, len(plan.waves), devices, policy,
        len(plan.steals), plan.loads(),
        extra={"stage": driver.stage},
    )

    def run_device(device: int):
        queue = queues[device]
        cache = SpmImageCache()
        cache.merge(seed_images)
        injector = (
            FaultInjector(device_plans[device])
            if device_plans[device] is not None else None
        )
        results, stats = run_partitioned(
            driver, [], n_pipelines, workers=workers,
            spm_cache=cache, registry=registry, fault_injector=injector,
            retry_policy=retry_policy, wave_timeout=wave_timeout,
            prepacked_waves=[wave.items for wave in queue],
            device=device, force_pool=True,
        )
        # charge the card's virtual timeline: H2D the wave, run it,
        # wait — per-device occupancy mirrors a single-card run's
        card = pool.device(device)
        for local, wave in enumerate(queue):
            card.transfer(
                pool.wave_nbytes(wave.items, _wave_nbytes(wave)), "h2d"
            )
            card.launch(wave.global_index, stats.per_wave_cycles[local])
            card.wait(wave.global_index)
        return results, stats, cache

    with ThreadPoolExecutor(max_workers=devices) as host_pool:
        outcomes = list(host_pool.map(run_device, range(devices)))

    # -- deterministic merge: canonical order regardless of finish order ----------

    merged: Dict[PartitionId, object] = {
        pid: driver.empty_result(pid) for pid in plan.empty_pids
    }
    for device_results, _stats, _cache in outcomes:
        merged.update(device_results)
    results = {pid: merged[pid] for pid, _part in parts}

    per_device: List[ParallelRunStats] = []
    per_wave_cycles = [0] * len(plan.waves)
    for device, (_results, stats, _cache) in enumerate(outcomes):
        stats.steals_in = sum(
            1 for steal in plan.steals if steal.target == device
        )
        stats.steals_out = sum(
            1 for steal in plan.steals if steal.source == device
        )
        for local, wave in enumerate(queues[device]):
            per_wave_cycles[wave.global_index] = stats.per_wave_cycles[local]
        per_device.append(stats)

    ext = registry_or_null(registry)
    for device, stats in enumerate(per_device):
        labels = {"stage": driver.stage, "device": str(device)}
        ext.counter("scheduler.steals_in", **labels).inc(stats.steals_in)
        ext.counter("scheduler.steals_out", **labels).inc(stats.steals_out)

    # Trace the modelled H2D link occupancy: one pcie:<n> lane per card,
    # waves tiled in queue order on a cumulative virtual-cycle axis
    # (parent-side after the merge, so the trace is thread-order-free).
    tracer = active_spans()
    if tracer.enabled:
        config = pool.config
        for device in range(devices):
            cursor = 0
            for wave in queues[device]:
                nbytes = pool.wave_nbytes(wave.items, _wave_nbytes(wave))
                seconds = (
                    config.transfer_setup_seconds
                    + nbytes / config.pcie_bandwidth
                )
                cycles = int(round(seconds * config.clock_hz))
                tracer.record(
                    f"h2d:w{wave.global_index}", "transfer",
                    cursor, cursor + cycles,
                    trace_id=f"run-{driver.stage}-pcie{device}",
                    lane=f"pcie:{device}",
                    wave=wave.global_index, device=device, nbytes=nbytes,
                )
                cursor += cycles

    sharded = ShardedRunStats(
        devices=devices, workers=workers, per_device=per_device,
        steals=list(plan.steals), plan_loads=plan.loads(),
        per_wave_cycles=per_wave_cycles,
        device_busy_seconds=pool.busy_seconds(),
        device_transfer_seconds=pool.transfer_seconds(),
        elapsed_seconds=time.perf_counter() - started,
    )

    # absorb per-device caches in device order (images first-wins on
    # identical keys, counters accumulate), so later stages replay hits
    for _results, _stats, device_cache in outcomes:
        shared_cache.absorb(device_cache)
    if storage is not None:
        _record_storage_run(
            driver, storage,
            [
                [(wave.global_index, wave.items) for wave in queues[device]]
                for device in range(devices)
            ],
            pool, sharded.total_cycles,
        )
    _record_shard_run(driver, sharded, policy)
    _log.info(
        "%s sharded done: %d cycles over %d wave(s) on %d device(s), "
        "%.3fs host (parallelism %.2f, %d steal(s))",
        driver.stage, sharded.total_cycles, sharded.waves, devices,
        sharded.elapsed_seconds, sharded.host_parallelism,
        sharded.steal_count,
        extra={"stage": driver.stage},
    )
    return results, sharded
