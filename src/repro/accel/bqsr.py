"""Genesis BQSR covariate-table-construction accelerator (Figure 12).

One pipeline bins every aligned base of one (partition, read-group) slice
and counts observations and errors per bin:

* READS memory readers (POS, ENDPOS, CIGAR, SEQ, QUAL) plus a per-read
  header stream (strand, stored length) for BinIDGen; REF.SEQ and
  REF.IS_SNP are loaded into the reference SPM (each word holds the
  ``(base, is_snp)`` pair);
* ReadToBases (clips emitted so the context covariate sees them) feeds
  BinIDGen, which attaches the two bin IDs ``b1``/``b2`` to aligned bases
  and drops everything else;
* an inner Joiner keyed on position merges the binned bases with the SPM's
  reference records; the ``!IS_SNP`` Filter drops known-variation sites;
* the filtered stream forks into the TotalCount SPM updaters (cycle and
  context tables) and cascades through the mismatch Filter into the
  ErrorCount SPM updaters — four read-modify-write scratchpads with the
  RAW-hazard interlock, exactly the Figure 12 topology (small ``b2 >= 0``
  guards protect the context tables from first-base flits that have no
  dinucleotide context);
* a drain phase streams all four SPMs back to memory through SPM Readers
  in drain mode and Memory Writers.

The host merges per-partition results into per-read-group
:class:`repro.gatk.bqsr.CovariateTables` and runs the quality-score update
sub-stage in software, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..gatk.bqsr import MAX_QUALITY, N_CONTEXTS, CovariateTables, n_cycle_values
from ..hw.engine import Engine, RunStats
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.modules import (
    BinIdGen,
    Filter,
    Fork,
    Joiner,
    MemoryReader,
    MemoryWriter,
    ReadToBases,
    SpmReader,
    SpmUpdater,
)
from ..hw.pipeline import Pipeline
from ..hw.spm import Scratchpad
from ..tables.table import Table
from .common import AcceleratorRun, load_reference_spm, read_streams, spm_base


def _not_snp(flit) -> bool:
    return not flit["ref"][1]


def _is_error(flit) -> bool:
    return int(flit["base"]) != int(flit["ref"][0])


def _has_context(flit) -> bool:
    return flit["b2"] >= 0


@dataclass
class BqsrSpms:
    """The four count scratchpads of Figure 12."""

    total_cycle: Scratchpad
    total_context: Scratchpad
    error_cycle: Scratchpad
    error_context: Scratchpad

    @classmethod
    def allocate(cls, read_length: int) -> "BqsrSpms":
        n_b1 = MAX_QUALITY * n_cycle_values(read_length)
        n_b2 = MAX_QUALITY * N_CONTEXTS
        return cls(
            total_cycle=Scratchpad("total_cycle", n_b1),
            total_context=Scratchpad("total_context", n_b2),
            error_cycle=Scratchpad("error_cycle", n_b1),
            error_context=Scratchpad("error_context", n_b2),
        )

    def all(self) -> List[Scratchpad]:
        """The four scratchpads in drain order."""
        return [
            self.total_cycle,
            self.total_context,
            self.error_cycle,
            self.error_context,
        ]


def build_bqsr_pipeline(
    engine: Engine,
    name: str,
    ref_spm: Scratchpad,
    base: int,
    spms: BqsrSpms,
    read_length: int,
) -> Pipeline:
    """Wire one Figure 12 pipeline replica into ``engine``."""
    pipe = Pipeline(name, engine)
    memory = engine.memory
    pos_reader = pipe.add(MemoryReader(f"{name}.pos", memory, elem_size=4))
    end_reader = pipe.add(MemoryReader(f"{name}.endpos", memory, elem_size=4))
    cigar_reader = pipe.add(MemoryReader(f"{name}.cigar", memory, elem_size=2))
    seq_reader = pipe.add(MemoryReader(f"{name}.seq", memory, elem_size=1))
    qual_reader = pipe.add(MemoryReader(f"{name}.qual", memory, elem_size=1))
    meta_reader = pipe.add(MemoryReader(f"{name}.meta", memory, elem_size=4))
    pos_fork = pipe.add(Fork(f"{name}.posfork", ports=2))
    r2b = pipe.add(ReadToBases(f"{name}.r2b", with_qual=True, emit_clips=True))
    binidgen = pipe.add(BinIdGen(f"{name}.binid", read_length=read_length))
    spm_reader = pipe.add(
        SpmReader(
            f"{name}.spmread",
            ref_spm,
            mode="interval",
            base_address=base,
            out_field="ref",
            addr_out_field="pos",
        )
    )
    joiner = pipe.add(Joiner(f"{name}.join", mode="inner", key_a="pos", key_b="pos"))
    snp_filter = pipe.add(Filter(f"{name}.snp", field="ref", predicate=_not_snp))
    total_fork = pipe.add(Fork(f"{name}.totalfork", ports=3))
    ctx_guard_total = pipe.add(Filter(f"{name}.ctxg1", field="b2", predicate=_has_context))
    error_filter = pipe.add(Filter(f"{name}.err", field="base", predicate=_is_error))
    error_fork = pipe.add(Fork(f"{name}.errfork", ports=2))
    ctx_guard_error = pipe.add(Filter(f"{name}.ctxg2", field="b2", predicate=_has_context))
    upd_total_cycle = pipe.add(
        SpmUpdater(f"{name}.utc", spms.total_cycle, mode="rmw", addr_field="b1")
    )
    upd_total_ctx = pipe.add(
        SpmUpdater(f"{name}.utx", spms.total_context, mode="rmw", addr_field="b2")
    )
    upd_error_cycle = pipe.add(
        SpmUpdater(f"{name}.uec", spms.error_cycle, mode="rmw", addr_field="b1")
    )
    upd_error_ctx = pipe.add(
        SpmUpdater(f"{name}.uex", spms.error_context, mode="rmw", addr_field="b2")
    )

    engine.connect(pos_reader, pos_fork)
    engine.connect(pos_fork, r2b, out_port="out0", in_port="pos")
    engine.connect(pos_fork, spm_reader, out_port="out1", in_port="start")
    engine.connect(end_reader, spm_reader, in_port="end")
    engine.connect(cigar_reader, r2b, in_port="cigar")
    engine.connect(seq_reader, r2b, in_port="seq")
    engine.connect(qual_reader, r2b, in_port="qual")
    engine.connect(r2b, binidgen, in_port="in")
    engine.connect(meta_reader, binidgen, in_port="meta")
    engine.connect(binidgen, joiner, in_port="a")
    engine.connect(spm_reader, joiner, in_port="b")
    engine.connect(joiner, snp_filter)
    engine.connect(snp_filter, total_fork)
    engine.connect(total_fork, upd_total_cycle, out_port="out0")
    engine.connect(total_fork, ctx_guard_total, out_port="out1")
    engine.connect(ctx_guard_total, upd_total_ctx)
    engine.connect(total_fork, error_filter, out_port="out2")
    engine.connect(error_filter, error_fork)
    engine.connect(error_fork, upd_error_cycle, out_port="out0")
    engine.connect(error_fork, ctx_guard_error, out_port="out1")
    engine.connect(ctx_guard_error, upd_error_ctx)
    return pipe


def configure_bqsr_streams(pipe: Pipeline, partition: Table) -> None:
    """Load one partition's column streams into the pipeline's readers."""
    streams = read_streams(partition)
    name = pipe.name
    pipe.modules[f"{name}.pos"].set_scalars(streams.pos)
    pipe.modules[f"{name}.endpos"].set_scalars(streams.endpos)
    pipe.modules[f"{name}.cigar"].set_items(streams.cigar)
    pipe.modules[f"{name}.seq"].set_items(streams.seq)
    pipe.modules[f"{name}.qual"].set_items(streams.qual)
    meta_reader = pipe.modules[f"{name}.meta"]
    meta_flits = []
    from ..hw.flit import Flit

    for reverse, seqlen in zip(streams.reverse_flags(), streams.seq_lengths()):
        meta_flits.append(Flit({"reverse": reverse, "seqlen": seqlen}, last=True))
    meta_reader.set_stream(meta_flits)


def drain_spms(
    spms: BqsrSpms, memory_config: Optional[MemoryConfig] = None
) -> RunStats:
    """The drain phase: stream all four SPMs to memory (Figure 12's SPM
    Reader -> Memory Writer tails).  Returns the drain cycle statistics."""
    engine = Engine(MemorySystem(memory_config))
    for index, spm in enumerate(spms.all()):
        reader = engine.add_module(
            SpmReader(f"drain{index}", spm, mode="drain", out_field="value")
        )
        writer = engine.add_module(
            MemoryWriter(f"drainw{index}", engine.memory, elem_size=4)
        )
        engine.connect(reader, writer)
    return engine.run()


@dataclass
class BqsrAccelResult:
    """One partition's covariate counts plus simulation statistics.

    ``run`` is ``None`` for partitions the scheduler never simulated
    (empty partitions contribute all-zero count tables).
    """

    total_cycle: np.ndarray
    total_context: np.ndarray
    error_cycle: np.ndarray
    error_context: np.ndarray
    run: Optional[AcceleratorRun]
    drain_stats: Optional[RunStats] = None
    hazard_stalls: int = 0

    @classmethod
    def empty(cls, read_length: int) -> "BqsrAccelResult":
        """The result shape of a partition slice with no reads."""
        n_b1 = MAX_QUALITY * n_cycle_values(read_length)
        n_b2 = MAX_QUALITY * N_CONTEXTS
        return cls(
            total_cycle=np.zeros(n_b1, dtype=np.int64),
            total_context=np.zeros(n_b2, dtype=np.int64),
            error_cycle=np.zeros(n_b1, dtype=np.int64),
            error_context=np.zeros(n_b2, dtype=np.int64),
            run=None,
        )


def run_bqsr_partition(
    partition: Table,
    ref_row: dict,
    read_length: int,
    memory_config: Optional[MemoryConfig] = None,
    drain: bool = True,
    profiler=None,
) -> BqsrAccelResult:
    """Simulate the Figure 12 pipeline on one partition slice.

    ``profiler`` is an optional :class:`repro.obs.Profiler` attached to
    the binning engine (SPM load and drain phases run unprofiled)."""
    ref_spm, load_stats = load_reference_spm(ref_row, memory_config, with_snp=True)
    spms = BqsrSpms.allocate(read_length)
    engine = Engine(MemorySystem(memory_config))
    pipe = build_bqsr_pipeline(
        engine, "bq", ref_spm, spm_base(ref_row), spms, read_length
    )
    configure_bqsr_streams(pipe, partition)
    if profiler is not None:
        profiler.attach(engine)
    stats = engine.run()
    drain_stats = drain_spms(spms, memory_config) if drain else None
    hazard_stalls = sum(
        module.hazard_stalls
        for module in pipe.modules.values()
        if isinstance(module, SpmUpdater)
    )
    return BqsrAccelResult(
        total_cycle=np.array(spms.total_cycle.dump(), dtype=np.int64),
        total_context=np.array(spms.total_context.dump(), dtype=np.int64),
        error_cycle=np.array(spms.error_cycle.dump(), dtype=np.int64),
        error_context=np.array(spms.error_context.dump(), dtype=np.int64),
        run=AcceleratorRun(pipeline=pipe, stats=stats, load_stats=load_stats),
        drain_stats=drain_stats,
        hazard_stalls=hazard_stalls,
    )


def merge_partition_results(
    results_by_group: Dict[int, Sequence[BqsrAccelResult]],
    read_length: int,
) -> Dict[int, CovariateTables]:
    """Host-side merge: accumulate per-partition counts into one
    :class:`CovariateTables` per read group."""
    merged: Dict[int, CovariateTables] = {}
    for read_group, results in results_by_group.items():
        table = CovariateTables(read_length)
        for result in results:
            table.total_cycle += result.total_cycle
            table.error_cycle += result.error_cycle
            table.total_context += result.total_context
            table.error_context += result.error_context
        merged[read_group] = table
    return merged
