"""Multi-pipeline execution of the real accelerators (Figure 8 applied).

The paper replicates each accelerator's pipeline 16x (8x for BQSR) so
independent partitions process concurrently behind the shared memory
fabric.  :func:`run_metadata_parallel` keeps the original metadata-update
entry point, now implemented on the generalized partition scheduler
(:mod:`repro.accel.scheduler`): N replicas of the pipeline live in ONE
engine with ONE memory system per wave, waves repeat until every
partition is done, and — new — waves can fan out over host worker
processes (``workers=``) while staying bit-identical to the serial
schedule.  Empty partitions are included in the results with empty tag
lists, matching the serial driver's per-partition result shapes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..hw.memory import MemoryConfig
from ..tables.partition import PartitionId
from .metadata import MetadataAccelResult
from .scheduler import (
    MetadataWaveDriver,
    ParallelRunStats,
    SpmImageCache,
    WorkerStats,
    run_partitioned,
)

__all__ = [
    "ParallelRunStats",
    "SpmImageCache",
    "WorkerStats",
    "run_metadata_parallel",
]


def run_metadata_parallel(
    partitions,
    reference,
    n_pipelines: int,
    memory_config: Optional[MemoryConfig] = None,
    mode: Optional[str] = None,
    workers: int = 1,
    spm_cache: Optional[SpmImageCache] = None,
) -> Tuple[Dict[PartitionId, MetadataAccelResult], ParallelRunStats]:
    """Run metadata update over many partitions with N replicated
    pipelines sharing one memory system per wave.

    ``mode`` selects the engine schedule per wave (``"event"`` skips
    idle replicas and fast-forwards shared-memory latency; ``"dense"``
    is the differential-testing fallback); ``workers`` fans the waves
    out over that many host processes.  Returns per-partition results
    (same key set as the input, empty partitions included) plus the
    aggregated wave statistics.
    """
    driver = MetadataWaveDriver(
        reference=reference, memory_config=memory_config, mode=mode
    )
    return run_partitioned(
        driver,
        partitions,
        n_pipelines,
        workers=workers,
        spm_cache=spm_cache,
    )
