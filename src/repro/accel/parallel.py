"""Deprecated alias module — use :mod:`repro.accel.scheduler`.

Everything that lived here (``run_metadata_parallel``,
``ParallelRunStats``, ``SpmImageCache``, ``WorkerStats``) moved into the
generalized partition scheduler.  Importing this module re-exports those
names and emits a :class:`DeprecationWarning`; nothing in ``src/`` or
``tests/`` imports it anymore (enforced by the ruff banned-api rule in
``pyproject.toml``), and it will be removed outright in a later PR.
"""

from __future__ import annotations

import warnings

from .scheduler import (  # noqa: F401  (re-exports for legacy callers)
    ParallelRunStats,
    SpmImageCache,
    WorkerStats,
    run_metadata_parallel,
)

__all__ = [
    "ParallelRunStats",
    "SpmImageCache",
    "WorkerStats",
    "run_metadata_parallel",
]

warnings.warn(
    "repro.accel.parallel is deprecated; import from repro.accel.scheduler",
    DeprecationWarning,
    stacklevel=2,
)
