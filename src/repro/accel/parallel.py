"""Multi-pipeline execution of the real accelerators (Figure 8 applied).

The paper replicates each accelerator's pipeline 16x (8x for BQSR) so
independent partitions process concurrently behind the shared memory
fabric.  These drivers do exactly that in simulation: N replicas of the
metadata-update pipeline live in ONE engine with ONE memory system, each
working a different partition; waves repeat until every partition is
done.  Results are bit-identical to the serial driver, and the measured
wall-cycles demonstrate the near-N-fold speedup the replication buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..hw.engine import Engine, RunStats
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.modules import join_md_tokens
from ..tables.partition import PartitionId
from .common import load_reference_spm, spm_base
from .metadata import (
    MetadataAccelResult,
    build_metadata_pipeline,
    configure_metadata_streams,
)


@dataclass
class ParallelRunStats:
    """Aggregate statistics of a waved multi-pipeline run.

    Besides the simulated-cycle accounting, the host-side fields
    aggregate the event scheduler's metrics across waves so multi-workload
    sweeps can report how much simulator time the wake sets and
    fast-forwarding saved (``ticks_executed`` vs ``ticks_possible``).
    """

    waves: int
    total_cycles: int
    spm_load_cycles: int
    per_wave_cycles: List[int]
    # host-side (simulator throughput) metrics, summed over waves
    wall_seconds: float = 0.0
    ticks_executed: int = 0
    ticks_possible: int = 0
    fast_forward_cycles: int = 0
    total_flits: int = 0

    @property
    def cycles_including_load(self) -> int:
        """Wall cycles including the reference SPM loads (which the
        replicas also perform concurrently, so each wave charges the
        slowest load)."""
        return self.total_cycles + self.spm_load_cycles

    @property
    def skip_ratio(self) -> float:
        """Fraction of dense-equivalent module ticks never executed."""
        if not self.ticks_possible:
            return 0.0
        return 1.0 - self.ticks_executed / self.ticks_possible

    @property
    def host_flits_per_second(self) -> float:
        """Simulated flits per host wall second across all waves."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_flits / self.wall_seconds


def run_metadata_parallel(
    partitions: List[Tuple[PartitionId, object]],
    reference,
    n_pipelines: int,
    memory_config: Optional[MemoryConfig] = None,
    mode: Optional[str] = None,
) -> Tuple[Dict[PartitionId, MetadataAccelResult], ParallelRunStats]:
    """Run metadata update over many partitions with N replicated
    pipelines sharing one memory system.

    ``mode`` selects the engine schedule per wave (``"event"`` skips
    idle replicas and fast-forwards shared-memory latency; ``"dense"``
    is the differential-testing fallback).  Returns per-partition
    results (same shape as the serial driver) plus the wave statistics.
    """
    if n_pipelines < 1:
        raise ValueError("need at least one pipeline")
    todo = [(pid, part) for pid, part in partitions if part.num_rows > 0]
    results: Dict[PartitionId, MetadataAccelResult] = {}
    per_wave_cycles: List[int] = []
    spm_load_cycles = 0
    waves = 0
    wall_seconds = 0.0
    ticks_executed = 0
    ticks_possible = 0
    fast_forward_cycles = 0
    total_flits = 0
    for wave_start in range(0, len(todo), n_pipelines):
        wave = todo[wave_start:wave_start + n_pipelines]
        waves += 1
        engine = Engine(MemorySystem(memory_config))
        wave_pipes = []
        wave_load_cycles = 0
        for index, (pid, part) in enumerate(wave):
            ref_row = reference.lookup(pid)
            spm, load_stats = load_reference_spm(ref_row, memory_config)
            wave_load_cycles = max(wave_load_cycles, load_stats.cycles)
            pipe = build_metadata_pipeline(
                engine, f"p{index}", spm, spm_base(ref_row)
            )
            configure_metadata_streams(pipe, part)
            wave_pipes.append((pid, pipe, load_stats))
        stats = engine.run(mode=mode)
        per_wave_cycles.append(stats.cycles)
        spm_load_cycles += wave_load_cycles
        wall_seconds += stats.wall_seconds
        ticks_executed += stats.ticks_executed
        ticks_possible += stats.ticks_possible
        fast_forward_cycles += stats.fast_forward_cycles
        total_flits += sum(stats.flits_by_module.values())
        for pid, pipe, load_stats in wave_pipes:
            name = pipe.name
            from .common import AcceleratorRun

            results[pid] = MetadataAccelResult(
                nm=[int(i[0]) for i in pipe.modules[f"{name}.nmw"].items],
                md=[join_md_tokens(i) for i in pipe.modules[f"{name}.mdw"].items],
                uq=[int(i[0]) for i in pipe.modules[f"{name}.uqw"].items],
                run=AcceleratorRun(pipe, stats, load_stats),
            )
    return results, ParallelRunStats(
        waves=waves,
        total_cycles=sum(per_wave_cycles),
        spm_load_cycles=spm_load_cycles,
        per_wave_cycles=per_wave_cycles,
        wall_seconds=wall_seconds,
        ticks_executed=ticks_executed,
        ticks_possible=ticks_possible,
        fast_forward_cycles=fast_forward_cycles,
        total_flits=total_flits,
    )
