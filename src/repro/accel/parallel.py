"""Multi-pipeline execution of the real accelerators (Figure 8 applied).

The paper replicates each accelerator's pipeline 16x (8x for BQSR) so
independent partitions process concurrently behind the shared memory
fabric.  These drivers do exactly that in simulation: N replicas of the
metadata-update pipeline live in ONE engine with ONE memory system, each
working a different partition; waves repeat until every partition is
done.  Results are bit-identical to the serial driver, and the measured
wall-cycles demonstrate the near-N-fold speedup the replication buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..hw.engine import Engine, RunStats
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.modules import join_md_tokens
from ..tables.partition import PartitionId
from .common import load_reference_spm, spm_base
from .metadata import (
    MetadataAccelResult,
    build_metadata_pipeline,
    configure_metadata_streams,
)


@dataclass
class ParallelRunStats:
    """Aggregate statistics of a waved multi-pipeline run."""

    waves: int
    total_cycles: int
    spm_load_cycles: int
    per_wave_cycles: List[int]

    @property
    def cycles_including_load(self) -> int:
        """Wall cycles including the reference SPM loads (which the
        replicas also perform concurrently, so each wave charges the
        slowest load)."""
        return self.total_cycles + self.spm_load_cycles


def run_metadata_parallel(
    partitions: List[Tuple[PartitionId, object]],
    reference,
    n_pipelines: int,
    memory_config: Optional[MemoryConfig] = None,
) -> Tuple[Dict[PartitionId, MetadataAccelResult], ParallelRunStats]:
    """Run metadata update over many partitions with N replicated
    pipelines sharing one memory system.

    Returns per-partition results (same shape as the serial driver) plus
    the wave statistics.
    """
    if n_pipelines < 1:
        raise ValueError("need at least one pipeline")
    todo = [(pid, part) for pid, part in partitions if part.num_rows > 0]
    results: Dict[PartitionId, MetadataAccelResult] = {}
    per_wave_cycles: List[int] = []
    spm_load_cycles = 0
    waves = 0
    for wave_start in range(0, len(todo), n_pipelines):
        wave = todo[wave_start:wave_start + n_pipelines]
        waves += 1
        engine = Engine(MemorySystem(memory_config))
        wave_pipes = []
        wave_load_cycles = 0
        for index, (pid, part) in enumerate(wave):
            ref_row = reference.lookup(pid)
            spm, load_stats = load_reference_spm(ref_row, memory_config)
            wave_load_cycles = max(wave_load_cycles, load_stats.cycles)
            pipe = build_metadata_pipeline(
                engine, f"p{index}", spm, spm_base(ref_row)
            )
            configure_metadata_streams(pipe, part)
            wave_pipes.append((pid, pipe, load_stats))
        stats = engine.run()
        per_wave_cycles.append(stats.cycles)
        spm_load_cycles += wave_load_cycles
        for pid, pipe, load_stats in wave_pipes:
            name = pipe.name
            from .common import AcceleratorRun

            results[pid] = MetadataAccelResult(
                nm=[int(i[0]) for i in pipe.modules[f"{name}.nmw"].items],
                md=[join_md_tokens(i) for i in pipe.modules[f"{name}.mdw"].items],
                uq=[int(i[0]) for i in pipe.modules[f"{name}.uqw"].items],
                run=AcceleratorRun(pipe, stats, load_stats),
            )
    return results, ParallelRunStats(
        waves=waves,
        total_cycles=sum(per_wave_cycles),
        spm_load_cycles=spm_load_cycles,
        per_wave_cycles=per_wave_cycles,
    )
