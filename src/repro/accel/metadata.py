"""Genesis metadata-update accelerator (Figure 11, Section IV-C).

One pipeline computes NM, MD, and UQ for every read of one partition:

* five READS memory readers (POS, ENDPOS, CIGAR, SEQ, QUAL) and one REF
  reader that initializes the reference SPM (phase 1, shared helper);
* ReadToBases explodes each read; the SPM Reader streams each read's
  reference interval; a **left** Joiner keyed on position merges them,
  preserving insertions (passthrough) and deletions;
* the joined stream forks to MDGen (MD tokens) and to the mismatch Filter,
  whose output forks again into a COUNT Reducer (NM) and a masked SUM
  Reducer over quality (UQ — masked to aligned bases only, so inserted/
  deleted bases contribute to NM but not UQ, matching GATK);
* three Memory Writers store NM, MD, and UQ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hw.engine import Engine
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.modules import (
    Filter,
    Fork,
    Joiner,
    MdGen,
    MemoryReader,
    MemoryWriter,
    ReadToBases,
    Reducer,
    SpmReader,
    StreamAlu,
    join_md_tokens,
)
from ..hw.pipeline import Pipeline
from ..hw.spm import Scratchpad
from ..tables.table import Table
from .common import AcceleratorRun, load_reference_spm, read_streams, spm_base


def _is_mismatch(flit) -> bool:
    """The Figure 11 filter condition: read base differs from reference.
    Inserted bases (no reference counterpart) and deleted bases (no read
    base) always count as mismatches."""
    if flit.get("op") != "M":
        return True
    return int(flit["base"]) != int(flit["ref"])


def build_metadata_pipeline(
    engine: Engine, name: str, spm: Scratchpad, base: int
) -> Pipeline:
    """Wire one Figure 11 pipeline replica into ``engine``."""
    pipe = Pipeline(name, engine)
    memory = engine.memory
    pos_reader = pipe.add(MemoryReader(f"{name}.pos", memory, elem_size=4))
    end_reader = pipe.add(MemoryReader(f"{name}.endpos", memory, elem_size=4))
    cigar_reader = pipe.add(MemoryReader(f"{name}.cigar", memory, elem_size=2))
    seq_reader = pipe.add(MemoryReader(f"{name}.seq", memory, elem_size=1))
    qual_reader = pipe.add(MemoryReader(f"{name}.qual", memory, elem_size=1))
    pos_fork = pipe.add(Fork(f"{name}.posfork", ports=2))
    r2b = pipe.add(ReadToBases(f"{name}.r2b", with_qual=True))
    spm_reader = pipe.add(
        SpmReader(
            f"{name}.spmread",
            spm,
            mode="interval",
            base_address=base,
            out_field="ref",
            addr_out_field="pos",
        )
    )
    joiner = pipe.add(Joiner(f"{name}.join", mode="left", key_a="pos", key_b="pos"))
    join_fork = pipe.add(Fork(f"{name}.joinfork", ports=2))
    mismatch = pipe.add(Filter(f"{name}.mismatch", field="base", predicate=_is_mismatch))
    mm_fork = pipe.add(Fork(f"{name}.mmfork", ports=2))
    is_m = pipe.add(
        StreamAlu(f"{name}.ism", op="CMP", field="op", constant="M", out_field="is_m")
    )
    nm_count = pipe.add(Reducer(f"{name}.nm", op="count", field="op"))
    uq_sum = pipe.add(
        Reducer(f"{name}.uq", op="sum", field="qual", mask_field="is_m")
    )
    mdgen = pipe.add(MdGen(f"{name}.mdgen"))
    nm_writer = pipe.add(MemoryWriter(f"{name}.nmw", memory, elem_size=4))
    uq_writer = pipe.add(MemoryWriter(f"{name}.uqw", memory, elem_size=4))
    md_writer = pipe.add(MemoryWriter(f"{name}.mdw", memory, elem_size=1, field="md"))

    engine.connect(pos_reader, pos_fork)
    engine.connect(pos_fork, r2b, out_port="out0", in_port="pos")
    engine.connect(pos_fork, spm_reader, out_port="out1", in_port="start")
    engine.connect(end_reader, spm_reader, in_port="end")
    engine.connect(cigar_reader, r2b, in_port="cigar")
    engine.connect(seq_reader, r2b, in_port="seq")
    engine.connect(qual_reader, r2b, in_port="qual")
    engine.connect(r2b, joiner, in_port="a")
    engine.connect(spm_reader, joiner, in_port="b")
    engine.connect(joiner, join_fork)
    engine.connect(join_fork, mismatch, out_port="out0")
    engine.connect(join_fork, mdgen, out_port="out1")
    engine.connect(mismatch, mm_fork)
    engine.connect(mm_fork, nm_count, out_port="out0")
    engine.connect(mm_fork, is_m, out_port="out1")
    engine.connect(is_m, uq_sum)
    engine.connect(nm_count, nm_writer)
    engine.connect(uq_sum, uq_writer)
    engine.connect(mdgen, md_writer)
    return pipe


def configure_metadata_streams(pipe: Pipeline, partition: Table) -> None:
    """Load one partition's column streams into the pipeline's readers."""
    streams = read_streams(partition)
    name = pipe.name
    pipe.modules[f"{name}.pos"].set_scalars(streams.pos)
    pipe.modules[f"{name}.endpos"].set_scalars(streams.endpos)
    pipe.modules[f"{name}.cigar"].set_items(streams.cigar)
    pipe.modules[f"{name}.seq"].set_items(streams.seq)
    pipe.modules[f"{name}.qual"].set_items(streams.qual)


def collect_metadata_outputs(
    pipe: Pipeline,
) -> Tuple[List[int], List[str], List[int]]:
    """Read back the NM/MD/UQ memory-writer contents of one pipeline."""
    name = pipe.name
    nm = [int(item[0]) for item in pipe.modules[f"{name}.nmw"].items]
    md = [join_md_tokens(item) for item in pipe.modules[f"{name}.mdw"].items]
    uq = [int(item[0]) for item in pipe.modules[f"{name}.uqw"].items]
    return nm, md, uq


@dataclass
class MetadataAccelResult:
    """Per-read NM/MD/UQ computed by the simulated pipeline.

    ``run`` is ``None`` for partitions the scheduler never simulated
    (empty partitions produce empty tag lists and no cycle accounting).
    """

    nm: List[int]
    md: List[str]
    uq: List[int]
    run: Optional[AcceleratorRun] = None

    @classmethod
    def empty(cls) -> "MetadataAccelResult":
        """The result shape of a partition with no reads."""
        return cls(nm=[], md=[], uq=[], run=None)


def run_metadata_update(
    partition: Table,
    ref_row: dict,
    memory_config: Optional[MemoryConfig] = None,
    profiler=None,
) -> MetadataAccelResult:
    """Simulate the Figure 11 pipeline on one partition.

    ``profiler`` is an optional :class:`repro.obs.Profiler` attached to
    the compute engine (the SPM load phase runs unprofiled — it is the
    same fixed setup work for every driver)."""
    spm, load_stats = load_reference_spm(ref_row, memory_config)
    engine = Engine(MemorySystem(memory_config))
    pipe = build_metadata_pipeline(engine, "mu", spm, spm_base(ref_row))
    configure_metadata_streams(pipe, partition)
    if profiler is not None:
        profiler.attach(engine)
    stats = engine.run()
    nm, md, uq = collect_metadata_outputs(pipe)
    return MetadataAccelResult(
        nm=nm,
        md=md,
        uq=uq,
        run=AcceleratorRun(pipeline=pipe, stats=stats, load_stats=load_stats),
    )
