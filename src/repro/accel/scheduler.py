"""Host-side partition scheduler: multi-core wave fan-out for every
accelerator, with a reference-SPM image cache.

The paper replicates each accelerator pipeline 16x (8x for BQSR) so
independent genome partitions process concurrently behind the shared
memory fabric (Figure 8).  The simulator reproduces the replication —
N replicas in ONE engine with ONE memory system per *wave* — but waves
themselves are embarrassingly parallel: each wave is an independent
engine over disjoint partitions.  :func:`run_partitioned` therefore
drives them three ways at once:

* **one entry point for all accelerators** — a :class:`WaveDriver`
  builds and harvests the replicas of one wave; concrete drivers exist
  for metadata update (:class:`MetadataWaveDriver`), mark duplicates
  (:class:`MarkdupWaveDriver`), and BQSR covariate construction
  (:class:`BqsrWaveDriver`);
* **multi-core fan-out** — with ``workers > 1`` the waves are dispatched
  onto a :class:`~concurrent.futures.ProcessPoolExecutor`.  Waves are
  packed largest-partition-first (an LPT schedule) and pulled from the
  executor's shared queue by whichever worker frees up first, so a
  straggler wave never serializes the tail;
* **SPM image caching** — :class:`SpmImageCache` memoizes the simulated
  reference-SPM load by ``(partition, memory config, snp flag)``.
  Repeated accelerator stages over the same partitions (and BQSR
  read-group slices of one segment) replay the cached image instead of
  re-simulating the load;
* **fault tolerance** — pass a
  :class:`~repro.faults.injector.FaultInjector` (and optionally a
  :class:`~repro.faults.retry.RetryPolicy` / ``wave_timeout``) and the
  scheduler survives injected and real failures alike: failed wave
  attempts are retried with exponential backoff under a retry budget,
  futures get a watchdog deadline, a broken pool is rebuilt, and when
  the pool keeps dying (or a wave exhausts its budget) execution
  degrades to serial in-process waves.  See DESIGN.md §3.5 for the
  fault model and the recovery ladder.

Results are bit-identical across ``workers`` settings: wave packing is
deterministic, every wave simulates in its own engine, and a cache
replay returns exactly the scratchpad contents and cycle statistics a
fresh load simulation would produce.  Only the host-side throughput
metrics (wall seconds, per-worker breakdowns, cache hit counts) vary.
The same holds under fault injection: a wave is a pure function of its
partitions, so a retried or serially re-run wave reproduces exactly the
results and simulated cycles of an undisturbed run.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..faults.injector import (
    FAULT_EXCEPTIONS,
    FaultInjector,
    InjectedFaultError,
    RetryBudgetExceeded,
)
from ..faults.retry import RetryPolicy
from ..hw.engine import Engine, RunStats
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.modules import SpmUpdater
from ..hw.spm import Scratchpad
from ..obs.ledger import record_event
from ..obs.log import get_logger, set_worker_id
from ..obs.registry import MetricsRegistry, registry_or_null
from ..obs.spans import active_spans
from ..tables.partition import PartitionId, PartitionedReference
from ..tables.table import Table
from .bqsr import (
    BqsrAccelResult,
    BqsrSpms,
    build_bqsr_pipeline,
    configure_bqsr_streams,
    drain_spms,
)
from .common import AcceleratorRun, load_reference_spm, spm_base
from .markdup import MarkDupAccelResult, build_markdup_pipeline
from .metadata import (
    MetadataAccelResult,
    build_metadata_pipeline,
    collect_metadata_outputs,
    configure_metadata_streams,
)

#: One (pid, partition) work item as accepted by the scheduler.
WaveItem = Tuple[PartitionId, Table]

#: The injection site wave attempts are polled at (slot = wave index).
WAVE_FAULT_SITE = "scheduler.wave"

#: Pool breakages tolerated (each rebuilds the pool) before the run
#: degrades permanently to serial in-process execution.
POOL_RESTART_BUDGET = 1

_log = get_logger("scheduler")


# -- SPM image cache -----------------------------------------------------------------


@dataclass
class CachedImage:
    """One memoized reference-SPM load: the word contents the load
    simulation produced plus its cycle statistics."""

    words: List[object]
    stats: RunStats


def _copy_stats(stats: RunStats) -> RunStats:
    """A fresh RunStats equal to ``stats`` (own dict instances, so a
    caller mutating one run's maps cannot corrupt the cache)."""
    return replace(
        stats,
        flits_by_module=dict(stats.flits_by_module),
        busy_by_module=dict(stats.busy_by_module),
        starve_by_module=dict(stats.starve_by_module),
    )


class SpmImageCache:
    """Memoizes reference-SPM load simulations.

    ``load_reference_spm`` is deterministic in the REF partition row, the
    memory configuration, and the snp flag, so its scratchpad image and
    cycle statistics can be keyed on
    ``(chrom, refpos, with_snp, memory parameters)`` and replayed.  A
    replay builds a fresh :class:`Scratchpad` (replicas never share the
    physical SPM) and returns a copy of the recorded statistics —
    bit-identical to re-simulating the load, minus the host time.
    """

    def __init__(self, max_images: Optional[int] = None):
        self._images: "OrderedDict[tuple, CachedImage]" = OrderedDict()
        self.max_images = max_images
        self.hits = 0
        self.misses = 0
        self.cycles_saved = 0

    @staticmethod
    def key(
        ref_row: dict,
        memory_config: Optional[MemoryConfig] = None,
        with_snp: bool = False,
    ) -> tuple:
        """The cache key of one REF partition row under one memory
        configuration (``None`` normalizes to the default config)."""
        config = memory_config or MemoryConfig()
        return (
            int(ref_row["CHR"]),
            int(ref_row["REFPOS"]),
            bool(with_snp),
            (config.channels, config.access_bytes, config.latency_cycles),
        )

    def load(
        self,
        ref_row: dict,
        memory_config: Optional[MemoryConfig] = None,
        with_snp: bool = False,
    ) -> Tuple[Scratchpad, RunStats]:
        """The cached equivalent of :func:`load_reference_spm`."""
        key = self.key(ref_row, memory_config, with_snp)
        image = self._images.get(key)
        if image is None:
            self.misses += 1
            spm, stats = load_reference_spm(
                ref_row, memory_config, with_snp=with_snp
            )
            self._store(key, CachedImage(words=spm.dump(), stats=stats))
            return spm, stats
        self.hits += 1
        self.cycles_saved += image.stats.cycles
        self._images.move_to_end(key)
        spm = Scratchpad("ref_spm", len(image.words))
        spm.load(image.words)
        return spm, _copy_stats(image.stats)

    def _store(self, key: tuple, image: CachedImage) -> None:
        self._images[key] = image
        if self.max_images is not None:
            while len(self._images) > self.max_images:
                self._images.popitem(last=False)

    def images(self) -> Dict[tuple, CachedImage]:
        """A snapshot of every cached image."""
        return dict(self._images)

    def images_for(self, keys: Iterable[tuple]) -> Dict[tuple, CachedImage]:
        """The subset of cached images present for ``keys``."""
        return {key: self._images[key] for key in keys if key in self._images}

    def merge(self, images: Dict[tuple, CachedImage]) -> None:
        """Adopt images (e.g. shipped back from a worker process) without
        overwriting entries already present."""
        for key, image in images.items():
            if key not in self._images:
                self._store(key, image)

    def absorb(self, other: "SpmImageCache") -> None:
        """Merge another pool into this one: images adopt idempotently
        (first writer wins, exactly like :meth:`merge`) and the
        hit/miss/cycles-saved counters accumulate, so a cache merged from
        per-device pools keeps the full replay history.  Absorbing the
        same pool twice double-counts nothing image-wise; counters are
        the caller's to absorb exactly once per pool."""
        self.merge(other.images())
        self.hits += other.hits
        self.misses += other.misses
        self.cycles_saved += other.cycles_saved

    def __len__(self) -> int:
        return len(self._images)


# -- wave drivers --------------------------------------------------------------------


class WaveDriver:
    """Builds, runs, and harvests one wave of replicated pipelines.

    A wave is N pipeline replicas in one engine sharing one memory
    system, each assigned a different partition — exactly the Figure 8
    replication.  Concrete drivers supply three hooks:
    ``empty_result`` (the result shape of a partition with no reads),
    ``build_replica`` (wire one replica and load its streams), and
    ``harvest`` (post-process one replica's outputs).  Drivers must be
    picklable: they are shipped to worker processes together with the
    wave's partitions.
    """

    stage = "wave"
    #: Whether replicas need a reference SPM loaded (and hence the cache).
    uses_reference = False
    #: Whether the reference SPM holds ``(base, is_snp)`` pairs.
    with_snp = False

    def empty_result(self, pid: PartitionId):
        """Result for a partition with no reads (never simulated)."""
        raise NotImplementedError

    def build_replica(
        self,
        engine: Engine,
        name: str,
        part: Table,
        spm: Optional[Scratchpad],
        base: int,
    ):
        """Wire one replica into ``engine`` and load its streams."""
        raise NotImplementedError

    def harvest(self, context, stats: RunStats, load_stats: Optional[RunStats]):
        """Turn one replica's writer contents into a per-partition result."""
        raise NotImplementedError

    def reference_row(self, pid: PartitionId) -> dict:
        """The REF partition row serving ``pid``."""
        return self.reference.lookup(pid)

    def wave_keys(self, wave: Sequence[WaveItem]) -> List[tuple]:
        """The SPM-cache keys a wave will look up (for seeding workers)."""
        if not self.uses_reference:
            return []
        return [
            SpmImageCache.key(
                self.reference_row(pid), self.memory_config, self.with_snp
            )
            for pid, _part in wave
        ]

    def run_wave(
        self, wave: Sequence[WaveItem], spm_cache: SpmImageCache
    ) -> Tuple[Dict[PartitionId, object], RunStats, int]:
        """Simulate one wave; returns per-partition results, the wave's
        engine statistics, and the wave's SPM load cycles (the replicas
        load concurrently, so the wave charges the slowest load)."""
        engine = Engine(MemorySystem(self.memory_config))
        contexts = []
        load_cycles = 0
        for index, (pid, part) in enumerate(wave):
            spm: Optional[Scratchpad] = None
            base = 0
            load_stats: Optional[RunStats] = None
            if self.uses_reference:
                ref_row = self.reference_row(pid)
                spm, load_stats = spm_cache.load(
                    ref_row, self.memory_config, self.with_snp
                )
                load_cycles = max(load_cycles, load_stats.cycles)
                base = spm_base(ref_row)
            context = self.build_replica(engine, f"p{index}", part, spm, base)
            contexts.append((pid, context, load_stats))
        stats = engine.run(mode=self.mode)
        results = {
            pid: self.harvest(context, stats, load_stats)
            for pid, context, load_stats in contexts
        }
        return results, stats, load_cycles


@dataclass
class MetadataWaveDriver(WaveDriver):
    """Waves of Figure 11 metadata-update replicas."""

    reference: PartitionedReference
    memory_config: Optional[MemoryConfig] = None
    mode: Optional[str] = None

    stage = "metadata"
    uses_reference = True

    def empty_result(self, pid: PartitionId) -> MetadataAccelResult:
        return MetadataAccelResult.empty()

    def build_replica(self, engine, name, part, spm, base):
        pipe = build_metadata_pipeline(engine, name, spm, base)
        configure_metadata_streams(pipe, part)
        return pipe

    def harvest(self, pipe, stats, load_stats) -> MetadataAccelResult:
        nm, md, uq = collect_metadata_outputs(pipe)
        return MetadataAccelResult(
            nm=nm, md=md, uq=uq, run=AcceleratorRun(None, stats, load_stats)
        )


@dataclass
class MarkdupWaveDriver(WaveDriver):
    """Waves of Figure 10 quality-sum replicas."""

    memory_config: Optional[MemoryConfig] = None
    mode: Optional[str] = None

    stage = "markdup"
    uses_reference = False

    def empty_result(self, pid: PartitionId) -> MarkDupAccelResult:
        return MarkDupAccelResult.empty()

    def build_replica(self, engine, name, part, spm, base):
        pipe = build_markdup_pipeline(engine, name)
        pipe.modules[f"{name}.qual"].set_items(
            [[int(q) for q in item] for item in part.column("QUAL")]
        )
        return pipe

    def harvest(self, pipe, stats, load_stats) -> MarkDupAccelResult:
        writer = pipe.modules[f"{pipe.name}.writer"]
        return MarkDupAccelResult(
            quality_sums=[int(item[0]) for item in writer.items], stats=stats
        )


@dataclass
class BqsrWaveDriver(WaveDriver):
    """Waves of Figure 12 covariate-construction replicas.

    Each replica owns its four count scratchpads; the reference SPM is
    loaded with ``(base, is_snp)`` words.  Read-group slices of the same
    genome segment share one REF row, so a wave over group partitions
    hits the SPM cache within a single run.
    """

    reference: PartitionedReference
    read_length: int
    memory_config: Optional[MemoryConfig] = None
    mode: Optional[str] = None
    drain: bool = True

    stage = "bqsr"
    uses_reference = True
    with_snp = True

    def empty_result(self, pid: PartitionId) -> BqsrAccelResult:
        return BqsrAccelResult.empty(self.read_length)

    def build_replica(self, engine, name, part, spm, base):
        spms = BqsrSpms.allocate(self.read_length)
        pipe = build_bqsr_pipeline(
            engine, name, spm, base, spms, self.read_length
        )
        configure_bqsr_streams(pipe, part)
        return pipe, spms

    def harvest(self, context, stats, load_stats) -> BqsrAccelResult:
        pipe, spms = context
        drain_stats = (
            drain_spms(spms, self.memory_config) if self.drain else None
        )
        hazard_stalls = sum(
            module.hazard_stalls
            for module in pipe.modules.values()
            if isinstance(module, SpmUpdater)
        )
        return BqsrAccelResult(
            total_cycle=np.array(spms.total_cycle.dump(), dtype=np.int64),
            total_context=np.array(spms.total_context.dump(), dtype=np.int64),
            error_cycle=np.array(spms.error_cycle.dump(), dtype=np.int64),
            error_context=np.array(spms.error_context.dump(), dtype=np.int64),
            run=AcceleratorRun(None, stats, load_stats),
            drain_stats=drain_stats,
            hazard_stalls=hazard_stalls,
        )


# -- aggregate statistics ------------------------------------------------------------


@dataclass
class WorkerStats:
    """One worker's share of a partitioned run."""

    waves: int = 0
    cycles: int = 0
    wall_seconds: float = 0.0
    elapsed_seconds: float = 0.0


@dataclass
class ParallelRunStats:
    """Aggregate statistics of a waved multi-pipeline run.

    Since the observability layer landed this is a *view*: the scheduler
    accounts every wave into a :class:`~repro.obs.registry.MetricsRegistry`
    and :meth:`from_registry` assembles the dataclass from the registry's
    contents; the fields and semantics are unchanged for existing callers.

    Besides the simulated-cycle accounting, the host-side fields
    aggregate the event scheduler's metrics across waves so multi-workload
    sweeps can report how much simulator time the wake sets and
    fast-forwarding saved (``ticks_executed`` vs ``ticks_possible``), and
    the scheduler fields record how the waves were spread over host
    workers and what the SPM image cache saved.
    """

    waves: int
    total_cycles: int
    spm_load_cycles: int
    per_wave_cycles: List[int]
    # host-side (simulator throughput) metrics, summed over waves
    wall_seconds: float = 0.0
    ticks_executed: int = 0
    ticks_possible: int = 0
    fast_forward_cycles: int = 0
    total_flits: int = 0
    # host scheduler metrics
    workers: int = 1
    elapsed_seconds: float = 0.0
    spm_cache_hits: int = 0
    spm_cache_misses: int = 0
    spm_cycles_saved: int = 0
    per_worker: Dict[str, WorkerStats] = field(default_factory=dict)
    # resilience metrics: faults/retries/fallbacks are deterministic for
    # a given (plan, seed, schedule); watchdog_timeouts and pool_restarts
    # count host-side infrastructure events and may vary across hosts
    faults_injected: int = 0
    faults_by_kind: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    backoff_seconds: float = 0.0
    watchdog_timeouts: int = 0
    serial_fallback_waves: int = 0
    pool_restarts: int = 0
    # sharding: which device queue this run drove (None when the run is
    # not part of a DevicePool shard) and how many waves the plan-time
    # steal loop moved into/out of that queue
    device: Optional[int] = None
    steals_in: int = 0
    steals_out: int = 0

    @property
    def cycles_including_load(self) -> int:
        """Wall cycles including the reference SPM loads (which the
        replicas also perform concurrently, so each wave charges the
        slowest load)."""
        return self.total_cycles + self.spm_load_cycles

    @property
    def skip_ratio(self) -> float:
        """Fraction of dense-equivalent module ticks never executed."""
        if not self.ticks_possible:
            return 0.0
        return 1.0 - self.ticks_executed / self.ticks_possible

    @property
    def host_flits_per_second(self) -> float:
        """Simulated flits per host wall second across all waves."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_flits / self.wall_seconds

    @property
    def host_parallelism(self) -> float:
        """Effective concurrency: summed per-wave engine seconds over the
        end-to-end scheduler seconds (≈1 serial, →N with N busy workers)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.wall_seconds / self.elapsed_seconds

    @classmethod
    def from_registry(
        cls,
        registry: MetricsRegistry,
        waves: int,
        workers: int,
        elapsed_seconds: float,
    ) -> "ParallelRunStats":
        """Assemble the stats view from one run's accounting registry
        (the ``scheduler.*`` / ``sim.*`` metrics ``run_partitioned``
        publishes per wave)."""
        per_wave_cycles = [0] * waves
        for labels, gauge in registry.values("scheduler.wave.cycles").items():
            per_wave_cycles[int(dict(labels)["wave"])] = gauge.value
        per_worker: Dict[str, WorkerStats] = {}
        for metric, attr in (
            ("scheduler.worker.waves", "waves"),
            ("scheduler.worker.cycles", "cycles"),
            ("scheduler.worker.wall_seconds", "wall_seconds"),
            ("scheduler.worker.elapsed_seconds", "elapsed_seconds"),
        ):
            for labels, counter in registry.values(metric).items():
                worker = dict(labels)["worker"]
                tally = per_worker.setdefault(worker, WorkerStats())
                setattr(tally, attr, counter.value)
        faults_by_kind = {
            dict(labels)["kind"]: counter.value
            for labels, counter in registry.values("scheduler.faults").items()
        }
        return cls(
            waves=waves,
            total_cycles=sum(per_wave_cycles),
            spm_load_cycles=registry.value("scheduler.spm_load_cycles"),
            per_wave_cycles=per_wave_cycles,
            wall_seconds=registry.value("sim.wall_seconds"),
            ticks_executed=registry.value("sim.ticks_executed"),
            ticks_possible=registry.value("sim.ticks_possible"),
            fast_forward_cycles=registry.value("sim.fast_forward_cycles"),
            total_flits=registry.value("sim.flits"),
            workers=workers,
            elapsed_seconds=elapsed_seconds,
            spm_cache_hits=registry.value("scheduler.spm_cache.hits"),
            spm_cache_misses=registry.value("scheduler.spm_cache.misses"),
            spm_cycles_saved=registry.value("scheduler.spm_cache.cycles_saved"),
            per_worker=per_worker,
            faults_injected=sum(faults_by_kind.values()),
            faults_by_kind=faults_by_kind,
            retries=registry.value("scheduler.retries"),
            backoff_seconds=registry.value("scheduler.backoff_seconds"),
            watchdog_timeouts=registry.value("scheduler.watchdog_timeouts"),
            serial_fallback_waves=registry.value(
                "scheduler.serial_fallback_waves"
            ),
            pool_restarts=registry.value("scheduler.pool_restarts"),
        )

    def publish(self, registry: MetricsRegistry, stage: str = "run") -> None:
        """Mirror the aggregates into an external registry (labelled by
        accelerator stage, plus the device queue when the run was one
        shard of a DevicePool) so cross-stage consumers — the runtime
        API, ``eval/experiments.py`` — see scheduler totals next to
        their own metrics."""
        labels = {"stage": stage}
        if self.device is not None:
            labels["device"] = str(self.device)
        registry.counter("scheduler.runs", **labels).inc()
        registry.counter("scheduler.waves", **labels).inc(self.waves)
        registry.counter("scheduler.cycles", **labels).inc(self.total_cycles)
        registry.counter(
            "scheduler.spm_load_cycles", **labels
        ).inc(self.spm_load_cycles)
        registry.counter(
            "scheduler.elapsed_seconds", **labels
        ).inc(self.elapsed_seconds)
        registry.counter(
            "scheduler.spm_cache.hits", **labels
        ).inc(self.spm_cache_hits)
        registry.counter(
            "scheduler.spm_cache.misses", **labels
        ).inc(self.spm_cache_misses)
        registry.counter(
            "scheduler.spm_cache.cycles_saved", **labels
        ).inc(self.spm_cycles_saved)
        registry.counter("sim.wall_seconds", **labels).inc(self.wall_seconds)
        registry.counter(
            "sim.ticks_executed", **labels
        ).inc(self.ticks_executed)
        registry.counter(
            "sim.ticks_possible", **labels
        ).inc(self.ticks_possible)
        registry.counter(
            "sim.fast_forward_cycles", **labels
        ).inc(self.fast_forward_cycles)
        registry.counter("sim.flits", **labels).inc(self.total_flits)
        registry.gauge("scheduler.workers", **labels).set(self.workers)
        for kind, count in self.faults_by_kind.items():
            registry.counter(
                "scheduler.faults", kind=kind, **labels
            ).inc(count)
        registry.counter("scheduler.retries", **labels).inc(self.retries)
        registry.counter(
            "scheduler.backoff_seconds", **labels
        ).inc(self.backoff_seconds)
        registry.counter(
            "scheduler.watchdog_timeouts", **labels
        ).inc(self.watchdog_timeouts)
        registry.counter(
            "scheduler.serial_fallback_waves", **labels
        ).inc(self.serial_fallback_waves)
        registry.counter(
            "scheduler.pool_restarts", **labels
        ).inc(self.pool_restarts)
        if self.device is not None:
            registry.counter(
                "scheduler.steals_in", **labels
            ).inc(self.steals_in)
            registry.counter(
                "scheduler.steals_out", **labels
            ).inc(self.steals_out)


# -- wave packing and dispatch -------------------------------------------------------


def pack_waves(
    partitions: Iterable[WaveItem], n_pipelines: int
) -> Tuple[List[PartitionId], List[List[WaveItem]]]:
    """Split partitions into empty pids and largest-first waves.

    Non-empty partitions are sorted by descending read count (ties break
    on input order, so packing is deterministic) and chunked into waves
    of ``n_pipelines``.  Largest-first packing keeps each wave's replicas
    similarly sized — the wave costs its slowest replica — and, under
    multi-worker dispatch, schedules the heavy waves first so the run
    never ends on a lone straggler (the LPT heuristic).
    """
    if n_pipelines < 1:
        raise ValueError("need at least one pipeline")
    empty: List[PartitionId] = []
    todo: List[Tuple[int, PartitionId, Table]] = []
    for index, (pid, part) in enumerate(partitions):
        if part.num_rows == 0:
            empty.append(pid)
        else:
            todo.append((index, pid, part))
    todo.sort(key=lambda item: (-item[2].num_rows, item[0]))
    waves = [
        [(pid, part) for _index, pid, part in todo[start:start + n_pipelines]]
        for start in range(0, len(todo), n_pipelines)
    ]
    return empty, waves


def _run_wave_task(
    driver, wave_index, wave, seed_images, fault_kind=None,
    hang_seconds=0.0, attempt=0,
):
    """Worker-side wave execution (module-level so it pickles).

    The worker runs against a private cache seeded with the images the
    parent already holds for this wave, and ships newly loaded images
    back so the parent cache (and later stages) can reuse them.

    ``fault_kind`` is the parent's injection decision for this attempt
    (decided deterministically before submission): the worker *enacts*
    it — an injected hang sleeps ``hang_seconds`` so the parent's
    watchdog genuinely fires, a ``worker_crash`` dies for real
    (``os._exit``, surfacing as ``BrokenProcessPool`` in the parent),
    and every other kind raises its
    :class:`~repro.faults.injector.InjectedFaultError` subclass, which
    travels back through the future like a real worker failure would.
    """
    set_worker_id(f"w{os.getpid()}")
    if fault_kind is not None:
        if fault_kind == "wave_timeout" and hang_seconds > 0:
            time.sleep(hang_seconds)
        if fault_kind == "worker_crash":
            os._exit(1)  # a genuine process death, not an exception
        raise FAULT_EXCEPTIONS[fault_kind](WAVE_FAULT_SITE, wave_index, attempt)
    cache = SpmImageCache()
    cache.merge(seed_images)
    started = time.perf_counter()
    results, stats, load_cycles = driver.run_wave(wave, cache)
    elapsed = time.perf_counter() - started
    _log.debug(
        "wave %d done: %d replicas, %d cycles, %.3fs",
        wave_index, len(wave), stats.cycles, elapsed,
        extra={"stage": driver.stage, "wave": wave_index},
    )
    new_images = {
        key: image
        for key, image in cache.images().items()
        if key not in seed_images
    }
    return (
        wave_index,
        results,
        stats,
        load_cycles,
        new_images,
        cache.hits,
        cache.misses,
        cache.cycles_saved,
        os.getpid(),
        elapsed,
    )


def _lay_run_spans(
    driver, waves, device, run_registry, stats, accounted_faults, policy
) -> None:
    """Lay one run's trace spans on its device lane (no-op without an
    ambient :func:`~repro.obs.spans.tracing` recorder).

    Spans are laid parent-side *after* the run from the per-wave
    accounting, in wave-index order on a cumulative virtual-cycle axis —
    so the trace is identical for every ``workers`` value, exactly like
    the cycle accounting itself.  Each wave gets a parent span with
    ``spm_load``/``kernel`` children tiling it, plus a zero-length fault
    marker per injected fault (carrying the deterministic backoff the
    retry would charge)."""
    tracer = active_spans()
    if not tracer.enabled:
        return
    lane_index = device if device is not None else 0
    lane = f"device:{lane_index}"
    trace_id = f"run-{driver.stage}-d{lane_index}"
    load_by_wave = {
        int(dict(labels)["wave"]): gauge.value
        for labels, gauge in
        run_registry.values("scheduler.wave.load_cycles").items()
    }
    faults_by_wave: Dict[int, List[Tuple[int, str]]] = {}
    for kind, wave_index, attempt in sorted(
        accounted_faults, key=lambda item: (item[1], item[2])
    ):
        faults_by_wave.setdefault(wave_index, []).append((attempt, kind))
    run_span = tracer.reserve()
    cursor = 0
    for wave_index, cycles in enumerate(stats.per_wave_cycles):
        load = load_by_wave.get(wave_index, 0)
        parent = tracer.record(
            f"{driver.stage}:w{wave_index}", "wave",
            cursor, cursor + load + cycles,
            trace_id=trace_id, parent_id=run_span, lane=lane,
            wave=wave_index, replicas=len(waves[wave_index]),
        )
        for attempt, kind in faults_by_wave.get(wave_index, ()):
            tracer.record(
                f"fault:{kind}", "fault", cursor, cursor,
                trace_id=trace_id, parent_id=parent, lane=lane,
                wave=wave_index, attempt=attempt, kind=kind,
                backoff_seconds=policy.backoff_seconds(wave_index, attempt),
            )
        if load > 0:
            tracer.record(
                "spm_load", "spm_load", cursor, cursor + load,
                trace_id=trace_id, parent_id=parent, lane=lane,
                wave=wave_index,
            )
        tracer.record(
            "kernel", "kernel", cursor + load, cursor + load + cycles,
            trace_id=trace_id, parent_id=parent, lane=lane,
            wave=wave_index,
        )
        cursor += load + cycles
    tracer.record(
        f"{driver.stage}:run", "run", 0, cursor,
        trace_id=trace_id, span_id=run_span, lane=lane,
        stage=driver.stage, waves=stats.waves, workers=stats.workers,
        device=device,
    )


def run_partitioned(
    driver: WaveDriver,
    partitions: Iterable[WaveItem],
    n_pipelines: int,
    workers: int = 1,
    spm_cache: Optional[SpmImageCache] = None,
    registry: Optional[MetricsRegistry] = None,
    fault_injector: Optional[FaultInjector] = None,
    retry_policy: Optional[RetryPolicy] = None,
    wave_timeout: Optional[float] = None,
    prepacked_waves: Optional[List[List[WaveItem]]] = None,
    device: Optional[int] = None,
    force_pool: bool = False,
    storage: Optional[object] = None,
) -> Tuple[Dict[PartitionId, object], ParallelRunStats]:
    """Run an accelerator over many partitions: N replicated pipelines
    per wave, waves fanned out over ``workers`` host processes.

    Empty partitions are never simulated; they appear in the results with
    the driver's empty shape so per-partition result sets match the
    serial drivers key-for-key.  Pass ``spm_cache`` to share reference-SPM
    images across stages (each call otherwise uses a private cache).
    Results and simulated cycles are bit-identical for every ``workers``
    value; only host-side metrics differ.

    All accounting flows through a per-run metrics registry (the
    returned :class:`ParallelRunStats` is a view over it); pass
    ``registry`` to additionally receive the aggregates — labelled by
    the driver's stage — in a registry shared across runs.

    Resilience: ``fault_injector`` injects the deterministic faults of
    its :class:`~repro.faults.plan.FaultPlan` at the ``scheduler.wave``
    site (slot = wave index, decided in the parent before dispatch, so
    injections are identical across ``workers`` settings).  Failed wave
    attempts — injected or real — are retried under ``retry_policy``
    (default :class:`~repro.faults.retry.RetryPolicy`) with exponential
    backoff; ``wave_timeout`` arms a watchdog deadline (seconds) around
    every pool future.  The degradation ladder is retry → requeue →
    serial in-process fallback (the serial rung retries with a fresh
    budget counted from its entry attempt); a wave that keeps faulting
    past the serial budget raises
    :class:`~repro.faults.injector.RetryBudgetExceeded`.  Non-injected
    exceptions from driver code propagate immediately — they are
    deterministic bugs, not infrastructure failures.

    Sharding hooks (used by :func:`repro.accel.sharding.run_sharded`):
    ``prepacked_waves`` executes an exact wave list instead of packing
    ``partitions`` — a device queue must run the globally packed waves
    it was assigned verbatim, because wave composition determines the
    shared-memory contention and thus the simulated cycles; ``device``
    labels the run's events and published metrics with the device queue
    it drove; ``force_pool`` dispatches through a process pool even at
    ``workers=1`` so concurrent device queues are not serialised by the
    interpreter lock.  None of the three affects results or cycles.

    ``storage`` optionally attaches the modelled in-SSD filter (a
    :class:`~repro.storage.filter.StorageFilterPlan` or
    :class:`~repro.storage.frontend.StorageFrontEnd`, DESIGN.md §3.10).
    ``run_partitioned`` models no PCIe transfers itself, so the filter
    changes nothing about execution here — it only annotates every wave
    with a ``storage.wave`` ledger event (survivor bytes, pruned rows,
    scan time) so single-run ledgers carry the same storage telemetry
    sharded runs get from :func:`repro.accel.sharding.run_sharded`
    (which does its own recording and deliberately does *not* forward
    ``storage`` down to its per-device ``run_partitioned`` calls).
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    if wave_timeout is not None and wave_timeout <= 0:
        raise ValueError("wave_timeout must be positive seconds")
    injector = fault_injector
    policy = retry_policy if retry_policy is not None else RetryPolicy()
    cache = spm_cache if spm_cache is not None else SpmImageCache()
    device_labels = {} if device is None else {"device": device}
    started = time.perf_counter()
    if prepacked_waves is not None:
        empty_pids, waves = [], [list(wave) for wave in prepacked_waves]
    else:
        empty_pids, waves = pack_waves(partitions, n_pipelines)
    results: Dict[PartitionId, object] = {
        pid: driver.empty_result(pid) for pid in empty_pids
    }
    _log.info(
        "%s: %d wave(s) of up to %d pipeline(s) over %d worker(s) "
        "(%d empty partition(s) skipped)",
        driver.stage, len(waves), n_pipelines, workers, len(empty_pids),
        extra={"stage": driver.stage},
    )

    run_registry = MetricsRegistry()

    def account(worker, wave_index, wave_results, stats, load_cycles, elapsed):
        results.update(wave_results)
        record_event(
            "scheduler.wave",
            stage=driver.stage, wave=wave_index, worker=worker,
            replicas=len(waves[wave_index]), cycles=stats.cycles,
            load_cycles=load_cycles, elapsed_seconds=elapsed,
            **device_labels,
        )
        if storage is not None:
            items = waves[wave_index]
            record_event(
                "storage.wave",
                stage=driver.stage, wave=wave_index,
                raw_nbytes=storage.wave_raw_nbytes(items),
                nbytes=storage.wave_nbytes(items),
                pruned_rows=storage.wave_pruned_rows(items),
                scan_seconds=storage.wave_scan_seconds(items),
                **device_labels,
            )
        run_registry.gauge(
            "scheduler.wave.cycles", wave=wave_index
        ).set(stats.cycles)
        run_registry.gauge(
            "scheduler.wave.seconds", wave=wave_index
        ).set(elapsed)
        run_registry.gauge(
            "scheduler.wave.load_cycles", wave=wave_index
        ).set(load_cycles)
        run_registry.counter("scheduler.spm_load_cycles").inc(load_cycles)
        run_registry.counter("sim.wall_seconds").inc(stats.wall_seconds)
        run_registry.counter("sim.ticks_executed").inc(stats.ticks_executed)
        run_registry.counter("sim.ticks_possible").inc(stats.ticks_possible)
        run_registry.counter(
            "sim.fast_forward_cycles"
        ).inc(stats.fast_forward_cycles)
        run_registry.counter("sim.flits").inc(
            sum(stats.flits_by_module.values())
        )
        run_registry.counter("scheduler.worker.waves", worker=worker).inc()
        run_registry.counter(
            "scheduler.worker.cycles", worker=worker
        ).inc(stats.cycles)
        run_registry.counter(
            "scheduler.worker.wall_seconds", worker=worker
        ).inc(stats.wall_seconds)
        run_registry.counter(
            "scheduler.worker.elapsed_seconds", worker=worker
        ).inc(elapsed)

    def account_cache(hits, misses, cycles_saved):
        run_registry.counter("scheduler.spm_cache.hits").inc(hits)
        run_registry.counter("scheduler.spm_cache.misses").inc(misses)
        run_registry.counter(
            "scheduler.spm_cache.cycles_saved"
        ).inc(cycles_saved)

    # -- resilience accounting (guarded so a re-poll after a pool rebuild
    #    never double-counts the same (wave, attempt) decision) ------------------

    accounted_faults: Set[Tuple[str, int, int]] = set()
    accounted_retries: Set[Tuple[int, int]] = set()

    def account_fault(kind, wave_index, attempt):
        key = (kind, wave_index, attempt)
        if key in accounted_faults:
            return
        accounted_faults.add(key)
        run_registry.counter("scheduler.faults", kind=kind).inc()

    def account_retry(wave_index, attempt, kind):
        key = (wave_index, attempt)
        if key in accounted_retries:
            return 0.0
        accounted_retries.add(key)
        backoff = policy.backoff_seconds(wave_index, attempt)
        run_registry.counter("scheduler.retries").inc()
        run_registry.counter("scheduler.backoff_seconds").inc(backoff)
        record_event(
            "fault.retry",
            stage=driver.stage, wave=wave_index, attempt=attempt,
            kind=kind, backoff_seconds=backoff,
        )
        _log.info(
            "wave %d attempt %d failed (%s); retrying after %.3fs",
            wave_index, attempt, kind, backoff,
            extra={"stage": driver.stage, "wave": wave_index},
        )
        return backoff

    def account_serial_fallback(wave_index, attempt, reason):
        run_registry.counter("scheduler.serial_fallback_waves").inc()
        record_event(
            "fault.serial_fallback",
            stage=driver.stage, wave=wave_index, attempt=attempt,
            reason=reason,
        )
        _log.warning(
            "wave %d degrades to serial in-process execution (%s)",
            wave_index, reason,
            extra={"stage": driver.stage, "wave": wave_index},
        )

    def poll_wave_fault(wave_index, attempt, worker):
        """The parent-side injection decision for one wave attempt."""
        if injector is None:
            return None
        return injector.poll(
            WAVE_FAULT_SITE, wave_index, attempt,
            stage=driver.stage, worker=worker,
        )

    def run_wave_serial(wave_index, start_attempt=0, worker="w0"):
        """One wave with the serial retry ladder: poll → enact → backoff
        → retry, until the attempt runs clean or the budget is gone."""
        attempt = start_attempt
        while True:
            fault = poll_wave_fault(wave_index, attempt, worker)
            if fault is None:
                t0 = time.perf_counter()
                wave_results, stats, load_cycles = driver.run_wave(
                    waves[wave_index], cache
                )
                elapsed = time.perf_counter() - t0
                _log.debug(
                    "wave %d done: %d replicas, %d cycles, %.3fs",
                    wave_index, len(waves[wave_index]), stats.cycles, elapsed,
                    extra={"stage": driver.stage, "wave": wave_index},
                )
                account(
                    worker, wave_index, wave_results, stats, load_cycles,
                    elapsed,
                )
                return
            account_fault(fault.kind, wave_index, attempt)
            if attempt - start_attempt >= policy.max_retries:
                raise RetryBudgetExceeded(
                    f"wave {wave_index} failed {attempt - start_attempt + 1} "
                    f"attempt(s); retry budget ({policy.max_retries}) "
                    "exhausted"
                ) from fault.to_exception()
            backoff = account_retry(wave_index, attempt, fault.kind)
            if backoff > 0:
                time.sleep(backoff)
            attempt += 1

    if not waves or (not force_pool and (workers == 1 or len(waves) <= 1)):
        workers_used = 1
        hits0, misses0, saved0 = cache.hits, cache.misses, cache.cycles_saved
        for wave_index in range(len(waves)):
            run_wave_serial(wave_index)
        account_cache(
            cache.hits - hits0,
            cache.misses - misses0,
            cache.cycles_saved - saved0,
        )
    else:
        workers_used = min(workers, len(waves))
        worker_pids: Dict[int, str] = {}

        def harvest(payload):
            (
                wave_index, wave_results, stats, load_cycles, new_images,
                wave_hits, wave_misses, wave_saved, worker_pid, elapsed,
            ) = payload
            cache.merge(new_images)
            cache.hits += wave_hits
            cache.misses += wave_misses
            cache.cycles_saved += wave_saved
            account_cache(wave_hits, wave_misses, wave_saved)
            label = worker_pids.setdefault(worker_pid, f"w{len(worker_pids)}")
            account(
                label, wave_index, wave_results, stats, load_cycles, elapsed,
            )

        # ready holds (wave_index, attempt) pairs awaiting (re)submission;
        # serial_waves collects budget-exhausted or degraded waves for the
        # in-process fallback pass after the pool drains.
        ready = deque((index, 0) for index in range(len(waves)))
        pending: Dict[object, Tuple[int, int, Optional[float]]] = {}
        serial_waves: List[Tuple[int, int]] = []
        abandoned: List[object] = []
        pool_restarts = 0
        pool = ProcessPoolExecutor(max_workers=workers_used)

        def submit(wave_index, attempt):
            fault = poll_wave_fault(wave_index, attempt, worker="pool")
            fault_kind = None
            hang = 0.0
            if fault is not None:
                fault_kind = fault.kind
                account_fault(fault_kind, wave_index, attempt)
                if fault_kind == "wave_timeout" and wave_timeout is not None:
                    # hang long enough that the parent watchdog fires
                    # first, short enough that pool shutdown stays quick
                    hang = min(wave_timeout * 2, wave_timeout + 1.0)
            wave = waves[wave_index]
            future = pool.submit(
                _run_wave_task, driver, wave_index, wave,
                cache.images_for(driver.wave_keys(wave)),
                fault_kind, hang, attempt,
            )
            deadline = (
                time.monotonic() + wave_timeout
                if wave_timeout is not None else None
            )
            pending[future] = (wave_index, attempt, deadline)

        def requeue(wave_index, attempt, kind):
            """The ladder after a failed attempt: retry on the pool while
            the budget lasts, then hand the wave to the serial pass."""
            if attempt >= policy.max_retries:
                account_serial_fallback(
                    wave_index, attempt, reason="retry budget exhausted"
                )
                serial_waves.append((wave_index, attempt + 1))
            else:
                backoff = account_retry(wave_index, attempt, kind)
                if backoff > 0:
                    time.sleep(backoff)
                ready.append((wave_index, attempt + 1))

        try:
            while ready or pending:
                broken = False
                try:
                    while ready:
                        index, attempt = ready.popleft()
                        submit(index, attempt)
                except BrokenProcessPool:
                    ready.appendleft((index, attempt))
                    broken = True
                if not broken:
                    timeout = None
                    if wave_timeout is not None and pending:
                        nearest = min(
                            deadline for (_, _, deadline) in pending.values()
                        )
                        timeout = max(0.0, nearest - time.monotonic())
                    done, _ = futures_wait(
                        set(pending), timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        index, attempt, _deadline = pending[future]
                        try:
                            payload = future.result()
                        except InjectedFaultError as error:
                            del pending[future]
                            requeue(index, attempt, error.kind)
                        except BrokenProcessPool:
                            # leave it in pending: the broken-pool
                            # handler below attributes the crash
                            broken = True
                        else:
                            del pending[future]
                            harvest(payload)
                if broken:
                    pool_restarts += 1
                    run_registry.counter("scheduler.pool_restarts").inc()
                    record_event(
                        "fault.pool_restart",
                        stage=driver.stage, restarts=pool_restarts,
                    )
                    # attribute the break: a pending wave whose attempt
                    # has a worker_crash due killed the pool — advance
                    # it through the retry ladder; innocent bystanders
                    # resubmit at the same attempt (no retry charged).
                    for index, attempt, _deadline in pending.values():
                        due = (
                            injector.due(WAVE_FAULT_SITE, index, attempt)
                            if injector is not None else None
                        )
                        if due is not None and due.kind == "worker_crash":
                            requeue(index, attempt, due.kind)
                        else:
                            ready.append((index, attempt))
                    pending.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    if pool_restarts > POOL_RESTART_BUDGET:
                        _log.warning(
                            "%s: pool died %d times; degrading %d wave(s) "
                            "to serial execution",
                            driver.stage, pool_restarts, len(ready),
                            extra={"stage": driver.stage},
                        )
                        while ready:
                            index, attempt = ready.popleft()
                            account_serial_fallback(
                                index, attempt, reason="pool kept dying"
                            )
                            serial_waves.append((index, attempt))
                        break
                    pool = ProcessPoolExecutor(max_workers=workers_used)
                    continue
                if wave_timeout is not None:
                    now = time.monotonic()
                    for future in list(pending):
                        index, attempt, deadline = pending[future]
                        if deadline is not None and now >= deadline:
                            del pending[future]
                            abandoned.append(future)
                            run_registry.counter(
                                "scheduler.watchdog_timeouts"
                            ).inc()
                            record_event(
                                "fault.watchdog_timeout",
                                stage=driver.stage, wave=index,
                                attempt=attempt,
                                timeout_seconds=wave_timeout,
                            )
                            requeue(index, attempt, "wave_timeout")
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

        if serial_waves:
            hits0, misses0 = cache.hits, cache.misses
            saved0 = cache.cycles_saved
            for index, attempt in sorted(serial_waves):
                run_wave_serial(index, start_attempt=attempt, worker="serial")
            account_cache(
                cache.hits - hits0,
                cache.misses - misses0,
                cache.cycles_saved - saved0,
            )

    stats = ParallelRunStats.from_registry(
        run_registry,
        waves=len(waves),
        workers=workers_used,
        elapsed_seconds=time.perf_counter() - started,
    )
    stats.device = device
    stats.publish(registry_or_null(registry), stage=driver.stage)
    _lay_run_spans(driver, waves, device, run_registry, stats,
                   accounted_faults, policy)
    record_event(
        "scheduler.run",
        **device_labels,
        stage=driver.stage, waves=stats.waves, workers=stats.workers,
        pipelines=n_pipelines, total_cycles=stats.total_cycles,
        spm_load_cycles=stats.spm_load_cycles,
        elapsed_seconds=stats.elapsed_seconds,
        spm_cache_hits=stats.spm_cache_hits,
        spm_cache_misses=stats.spm_cache_misses,
        faults_injected=stats.faults_injected,
        retries=stats.retries,
        watchdog_timeouts=stats.watchdog_timeouts,
        serial_fallback_waves=stats.serial_fallback_waves,
        pool_restarts=stats.pool_restarts,
    )
    if stats.faults_injected or stats.retries or stats.watchdog_timeouts:
        _log.info(
            "%s survived %d injected fault(s) (%s): %d retried, "
            "%d watchdog timeout(s), %d serial-fallback wave(s), "
            "%d pool restart(s)",
            driver.stage, stats.faults_injected,
            ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(stats.faults_by_kind.items())
            ) or "none",
            stats.retries, stats.watchdog_timeouts,
            stats.serial_fallback_waves, stats.pool_restarts,
            extra={"stage": driver.stage},
        )
    _log.info(
        "%s done: %d cycles over %d wave(s), %.3fs host "
        "(parallelism %.2f, spm cache %d/%d hit)",
        driver.stage, stats.total_cycles, stats.waves,
        stats.elapsed_seconds, stats.host_parallelism,
        stats.spm_cache_hits, stats.spm_cache_hits + stats.spm_cache_misses,
        extra={"stage": driver.stage},
    )
    return results, stats


def run_metadata_parallel(
    partitions: Iterable[WaveItem],
    reference: PartitionedReference,
    n_pipelines: int,
    memory_config: Optional[MemoryConfig] = None,
    mode: Optional[str] = None,
    workers: int = 1,
    spm_cache: Optional[SpmImageCache] = None,
) -> Tuple[Dict[PartitionId, MetadataAccelResult], ParallelRunStats]:
    """Run metadata update over many partitions with N replicated
    pipelines sharing one memory system per wave.

    ``mode`` selects the engine schedule per wave (``"event"`` skips
    idle replicas and fast-forwards shared-memory latency; ``"dense"``
    is the differential-testing fallback); ``workers`` fans the waves
    out over that many host processes.  Returns per-partition results
    (same key set as the input, empty partitions included) plus the
    aggregated wave statistics.
    """
    driver = MetadataWaveDriver(
        reference=reference, memory_config=memory_config, mode=mode
    )
    return run_partitioned(
        driver,
        partitions,
        n_pipelines,
        workers=workers,
        spm_cache=spm_cache,
    )
