"""The Genesis proof-of-concept accelerators (Section IV).

Drivers that compose hardware-library modules into the paper's pipelines,
simulate them cycle by cycle, and post-process results: the Figure 7
example query, mark duplicates (Figure 10), metadata update (Figure 11),
and BQSR covariate-table construction (Figure 12).
"""

from .bqsr import (
    BqsrAccelResult,
    BqsrSpms,
    build_bqsr_pipeline,
    configure_bqsr_streams,
    drain_spms,
    merge_partition_results,
    run_bqsr_partition,
)
from .common import AcceleratorRun, ReadStreams, load_reference_spm, read_streams
from .example_query import (
    ExampleQueryResult,
    build_example_pipeline,
    configure_example_streams,
    count_matching_bases_sw,
    run_example_query,
)
from .markdup import (
    MarkDupAccelResult,
    accelerated_mark_duplicates,
    build_markdup_pipeline,
    run_quality_sums,
    run_quality_sums_table,
)
from .metadata import (
    MetadataAccelResult,
    build_metadata_pipeline,
    configure_metadata_streams,
    run_metadata_update,
)

__all__ = [
    "AcceleratorRun",
    "BqsrAccelResult",
    "BqsrSpms",
    "ExampleQueryResult",
    "MarkDupAccelResult",
    "MetadataAccelResult",
    "ReadStreams",
    "accelerated_mark_duplicates",
    "build_bqsr_pipeline",
    "build_example_pipeline",
    "build_markdup_pipeline",
    "build_metadata_pipeline",
    "configure_bqsr_streams",
    "configure_example_streams",
    "configure_metadata_streams",
    "count_matching_bases_sw",
    "drain_spms",
    "load_reference_spm",
    "merge_partition_results",
    "read_streams",
    "run_bqsr_partition",
    "run_example_query",
    "run_metadata_update",
    "run_quality_sums",
    "run_quality_sums_table",
]

# Section IV-E extensions: other genomic data-manipulation operations.
from .active_region import (
    ActiveRegionAccelResult,
    AnchorInsertions,
    accelerated_active_regions,
    build_active_region_pipeline,
    run_active_region_partition,
)
from .callset_ops import (
    CallsetOpResult,
    run_callset_difference,
    run_callset_intersection,
)
from .fm_seeding import (
    FmSeeder,
    FmSeedingResult,
    build_fm_seeding_pipeline,
    full_occ_table,
    load_occ_spm,
    run_fm_seeding,
)

__all__ += [
    "ActiveRegionAccelResult",
    "AnchorInsertions",
    "CallsetOpResult",
    "FmSeeder",
    "FmSeedingResult",
    "accelerated_active_regions",
    "build_active_region_pipeline",
    "build_fm_seeding_pipeline",
    "full_occ_table",
    "load_occ_spm",
    "run_active_region_partition",
    "run_callset_difference",
    "run_callset_intersection",
    "run_fm_seeding",
]

from .scheduler import (
    BqsrWaveDriver,
    MarkdupWaveDriver,
    MetadataWaveDriver,
    ParallelRunStats,
    SpmImageCache,
    WaveDriver,
    WorkerStats,
    pack_waves,
    run_metadata_parallel,
    run_partitioned,
)

__all__ += [
    "BqsrWaveDriver",
    "MarkdupWaveDriver",
    "MetadataWaveDriver",
    "ParallelRunStats",
    "SpmImageCache",
    "WaveDriver",
    "WorkerStats",
    "pack_waves",
    "run_metadata_parallel",
    "run_partitioned",
]

from .sharding import (
    SHARD_POLICIES,
    ShardedRunStats,
    ShardPlan,
    ShardWave,
    StealRecord,
    plan_shards,
    reduce_bqsr_results,
    run_sharded,
    stable_shard_hash,
)

__all__ += [
    "SHARD_POLICIES",
    "ShardPlan",
    "ShardWave",
    "ShardedRunStats",
    "StealRecord",
    "plan_shards",
    "reduce_bqsr_results",
    "run_sharded",
    "stable_shard_hash",
]

from .sort import HwSortResult, coordinate_sort_reads, run_hw_sort

__all__ += ["HwSortResult", "coordinate_sort_reads", "run_hw_sort"]
