"""Genesis accelerator for active-region determination (Section IV-E).

The paper lists HaplotypeCaller's active-region determination among the
operations Genesis covers.  The pipeline composes existing library
modules plus one small custom module, exactly the extension story of
Section III-F:

* the metadata-update front end (readers, ReadToBases, reference SPM,
  left Joiner keyed on position);
* :class:`AnchorInsertions` — a custom module that replaces the ``INS``
  sentinel position of inserted bases with the last aligned position
  (insertions count as activity at their anchor);
* a depth path (aligned bases -> RMW SPM increment) and an activity path
  (mismatches / deletions / insertions -> RMW SPM increment), both
  through address ALUs that rebase genome positions onto SPM words;
* a host-side merge of per-partition buffers and the shared
  :func:`repro.gatk.active_region.extract_regions` thresholding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..gatk.active_region import (
    ActiveRegion,
    ActiveRegionConfig,
    ActivityProfile,
    extract_regions,
)
from ..genomics.reference import ReferenceGenome
from ..hw.engine import Engine
from ..hw.flit import INS, Flit
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.module import Module
from ..hw.modules import (
    Filter,
    Fork,
    Joiner,
    MemoryReader,
    ReadToBases,
    SpmReader,
    SpmUpdater,
    StreamAlu,
)
from ..hw.pipeline import Pipeline
from ..hw.spm import Scratchpad
from ..tables.table import Table
from .common import AcceleratorRun, load_reference_spm, read_streams, spm_base


class AnchorInsertions(Module):
    """Replaces inserted bases' ``INS`` position with their anchor — the
    most recent aligned/deleted position (or the read's start for a read
    whose body opens with an insertion)."""

    def __init__(self, name: str, pos_field: str = "pos"):
        super().__init__(name)
        self.pos_field = pos_field
        self._anchor: Optional[int] = None

    def tick(self, cycle: int) -> None:
        queue = self.input()
        out = self.output()
        if not queue.can_pop():
            self._note_starved()
            return
        if not out.can_push():
            self._note_stalled(out)
            return
        flit = queue.pop()
        if flit.fields:
            fields = dict(flit.fields)
            position = fields.get(self.pos_field)
            if position is INS:
                if self._anchor is not None:
                    fields[self.pos_field] = self._anchor
            else:
                self._anchor = position
            out.push(Flit(fields, last=flit.last))
        else:
            out.push(Flit({}, last=flit.last))
        if flit.last:
            self._anchor = None
        self._note_busy()


def _is_activity(flit) -> bool:
    """Mismatching aligned bases, deletions, and (anchored) insertions."""
    op = flit.get("op")
    if op in ("I", "D"):
        return True
    return int(flit["base"]) != int(flit["ref"])


def _has_anchor(flit) -> bool:
    return flit.get("pos") is not INS


def build_active_region_pipeline(
    engine: Engine,
    name: str,
    ref_spm: Scratchpad,
    base: int,
    activity_spm: Scratchpad,
    depth_spm: Scratchpad,
) -> Pipeline:
    """Wire one active-region pipeline replica into ``engine``."""
    pipe = Pipeline(name, engine)
    memory = engine.memory
    pos_reader = pipe.add(MemoryReader(f"{name}.pos", memory, elem_size=4))
    end_reader = pipe.add(MemoryReader(f"{name}.endpos", memory, elem_size=4))
    cigar_reader = pipe.add(MemoryReader(f"{name}.cigar", memory, elem_size=2))
    seq_reader = pipe.add(MemoryReader(f"{name}.seq", memory, elem_size=1))
    pos_fork = pipe.add(Fork(f"{name}.posfork", ports=2))
    r2b = pipe.add(ReadToBases(f"{name}.r2b", with_qual=False))
    anchor = pipe.add(AnchorInsertions(f"{name}.anchor"))
    spm_reader = pipe.add(SpmReader(
        f"{name}.spmread", ref_spm, mode="interval", base_address=base,
        out_field="ref", addr_out_field="pos",
    ))
    joiner = pipe.add(Joiner(
        f"{name}.join", mode="left", key_a="pos", key_b="pos",
        # Insertions were re-anchored upstream, so no INS keys remain;
        # keep the default passthrough for safety.
    ))
    join_fork = pipe.add(Fork(f"{name}.joinfork", ports=2))
    depth_filter = pipe.add(Filter(
        f"{name}.isaligned", field="op", op="==", constant="M"
    ))
    depth_addr = pipe.add(StreamAlu(
        f"{name}.daddr", op="SUB", field="pos", constant=base, out_field="addr"
    ))
    depth_updater = pipe.add(SpmUpdater(
        f"{name}.dupd", depth_spm, mode="rmw", addr_field="addr"
    ))
    activity_filter = pipe.add(Filter(
        f"{name}.isactive", field="op", predicate=_is_activity
    ))
    anchored_guard = pipe.add(Filter(
        f"{name}.hasanchor", field="pos", predicate=_has_anchor
    ))
    activity_addr = pipe.add(StreamAlu(
        f"{name}.aaddr", op="SUB", field="pos", constant=base, out_field="addr"
    ))
    activity_updater = pipe.add(SpmUpdater(
        f"{name}.aupd", activity_spm, mode="rmw", addr_field="addr"
    ))

    engine.connect(pos_reader, pos_fork)
    engine.connect(pos_fork, r2b, out_port="out0", in_port="pos")
    engine.connect(pos_fork, spm_reader, out_port="out1", in_port="start")
    engine.connect(end_reader, spm_reader, in_port="end")
    engine.connect(cigar_reader, r2b, in_port="cigar")
    engine.connect(seq_reader, r2b, in_port="seq")
    engine.connect(r2b, anchor)
    engine.connect(anchor, joiner, in_port="a")
    engine.connect(spm_reader, joiner, in_port="b")
    engine.connect(joiner, join_fork)
    engine.connect(join_fork, depth_filter, out_port="out0")
    engine.connect(depth_filter, depth_addr)
    engine.connect(depth_addr, depth_updater)
    engine.connect(join_fork, activity_filter, out_port="out1")
    engine.connect(activity_filter, anchored_guard)
    engine.connect(anchored_guard, activity_addr)
    engine.connect(activity_addr, activity_updater)
    return pipe


@dataclass
class ActiveRegionAccelResult:
    """One partition's activity/depth buffers plus simulation stats."""

    base: int
    activity: np.ndarray
    depth: np.ndarray
    run: AcceleratorRun


def run_active_region_partition(
    partition: Table,
    ref_row: dict,
    memory_config: Optional[MemoryConfig] = None,
) -> ActiveRegionAccelResult:
    """Simulate the active-region pipeline on one partition."""
    ref_spm, load_stats = load_reference_spm(ref_row, memory_config)
    size = len(ref_row["SEQ"])
    activity_spm = Scratchpad("activity", size)
    depth_spm = Scratchpad("depth", size)
    engine = Engine(MemorySystem(memory_config))
    pipe = build_active_region_pipeline(
        engine, "ar", ref_spm, spm_base(ref_row), activity_spm, depth_spm
    )
    streams = read_streams(partition)
    pipe.modules["ar.pos"].set_scalars(streams.pos)
    pipe.modules["ar.endpos"].set_scalars(streams.endpos)
    pipe.modules["ar.cigar"].set_items(streams.cigar)
    pipe.modules["ar.seq"].set_items(streams.seq)
    stats = engine.run()
    return ActiveRegionAccelResult(
        base=spm_base(ref_row),
        activity=np.array(activity_spm.dump(), dtype=np.int64),
        depth=np.array(depth_spm.dump(), dtype=np.int64),
        run=AcceleratorRun(pipeline=pipe, stats=stats, load_stats=load_stats),
    )


def accelerated_active_regions(
    workload_partitions,
    reference,
    genome: ReferenceGenome,
    config: Optional[ActiveRegionConfig] = None,
) -> Dict[int, List[ActiveRegion]]:
    """Full accelerated stage: per-partition pipelines, host-side buffer
    merge, shared thresholding.  Equivalent to
    :func:`repro.gatk.active_region.determine_active_regions`."""
    per_chrom: Dict[int, np.ndarray] = {}
    per_chrom_depth: Dict[int, np.ndarray] = {}
    for chrom in genome.chromosomes:
        length = genome.length(chrom)
        per_chrom[chrom] = np.zeros(length, dtype=np.int64)
        per_chrom_depth[chrom] = np.zeros(length, dtype=np.int64)
    for pid, part in workload_partitions:
        if part.num_rows == 0:
            continue
        result = run_active_region_partition(part, reference.lookup(pid))
        length = genome.length(pid.chrom)
        window = min(len(result.activity), length - result.base)
        sl = slice(result.base, result.base + window)
        per_chrom[pid.chrom][sl] += result.activity[:window]
        per_chrom_depth[pid.chrom][sl] += result.depth[:window]
    out: Dict[int, List[ActiveRegion]] = {}
    for chrom in genome.chromosomes:
        profile = ActivityProfile(
            chrom, 0, per_chrom[chrom], per_chrom_depth[chrom]
        )
        regions = extract_regions(profile, config)
        if regions:
            out[chrom] = regions
    return out
