"""Genesis pipeline for FM-index seeding (Section IV-E).

"FM-index based seeding in the BWA-MEM aligner" is on the paper's list of
Genesis-amenable operations.  The pipeline here:

* holds the rank (Occ) table in an on-chip SPM, one word per BWT row —
  the usual hardware trade of memory for the checkpoint-scan logic;
* streams reads in through a Memory Reader;
* runs the greedy right-to-left maximal-exact-match search in a custom
  :class:`FmSeeder` module (one backward-extension step per cycle, each
  step two SPM rank lookups);
* streams seed records out through a Memory Writer.

Functional equivalence with :func:`repro.fmindex.seeding.find_seeds` is
asserted in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..fmindex.index import SIGMA, FmIndex, SaInterval
from ..fmindex.seeding import Seed
from ..hw.engine import Engine, RunStats
from ..hw.flit import Flit
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.module import Module
from ..hw.modules import MemoryReader, MemoryWriter
from ..hw.pipeline import Pipeline
from ..hw.spm import Scratchpad


def full_occ_table(index: FmIndex) -> np.ndarray:
    """Dense Occ table: ``occ[i][c]`` = occurrences of c in BWT[0:i],
    with ``length + 1`` rows so queries at ``i == length`` resolve."""
    one_hot = np.zeros((index.length + 1, SIGMA), dtype=np.int64)
    for c in range(SIGMA):
        one_hot[1:, c] = np.cumsum(index.bwt == c)
    return one_hot


def load_occ_spm(index: FmIndex) -> Scratchpad:
    """Pack the dense Occ table into an SPM, one 4-tuple word per row."""
    table = full_occ_table(index)
    spm = Scratchpad("occ", len(table))
    spm.load([tuple(int(v) for v in row) for row in table])
    return spm


class FmSeeder(Module):
    """Custom module running the greedy SMEM search per read.

    Consumes one read (base flits, framed per item) into an internal
    buffer at one base per cycle, then performs one backward-extension
    step per cycle against the Occ SPM, emitting a seed flit
    ``{start, length, lo, hi}`` whenever a maximal match of at least
    ``min_seed_length`` bases closes, and a boundary flit per read.
    """

    def __init__(
        self,
        name: str,
        occ_spm: Scratchpad,
        c_table: Sequence[int],
        min_seed_length: int,
        max_hits: int,
        text_length: int,
    ):
        super().__init__(name)
        self.occ_spm = occ_spm
        self.c_table = [int(v) for v in c_table]
        self.min_seed_length = min_seed_length
        self.max_hits = max_hits
        self.text_length = text_length
        self._buffer: List[int] = []
        self._loaded = False
        self._end = 0
        self._start = 0
        self._interval: Optional[SaInterval] = None

    # -- search steps -----------------------------------------------------------

    def _rank(self, c: int, i: int) -> int:
        return self.occ_spm.read(i)[c]

    def _extend(self, interval: SaInterval, c: int) -> SaInterval:
        lo = self.c_table[c] + self._rank(c, interval.lo)
        hi = self.c_table[c] + self._rank(c, interval.hi)
        return SaInterval(lo, hi)

    def _begin_pass(self) -> None:
        self._start = self._end
        self._interval = SaInterval(0, self.text_length + 1)

    def _emit_seed_if_valid(self, out) -> None:
        length = self._end - self._start
        if length >= self.min_seed_length and self._interval.width >= 1:
            if self._interval.width <= self.max_hits:
                out.push(Flit({
                    "start": self._start,
                    "length": length,
                    "lo": self._interval.lo,
                    "hi": self._interval.hi,
                }, last=False))
                self._note_busy()
            self._end = self._start
        else:
            self._end -= 1

    # -- simulation ----------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        out = self.output()
        if not out.can_push():
            self._note_stalled(out)
            return

        if not self._loaded:
            queue = self.input()
            if not queue.can_pop():
                self._note_starved()
                return
            flit = queue.pop()
            if "value" in flit:
                self._buffer.append(int(flit["value"]))
            if flit.last:
                self._loaded = True
                self._end = len(self._buffer)
                self._begin_pass()
            return

        if self._end <= 0:
            out.push(Flit({}, last=True))
            self._note_busy()
            self._buffer = []
            self._loaded = False
            return

        # One extension step per cycle.
        if self._start > 0:
            extended = self._extend(
                self._interval, self._buffer[self._start - 1]
            )
            if not extended.is_empty:
                self._interval = extended
                self._start -= 1
                return
        # Maximal: either hit the read start or the next extension fails.
        self._emit_seed_if_valid(out)
        if self._end > 0:
            self._begin_pass()

    def is_idle(self) -> bool:
        return not self._loaded and not self._buffer


@dataclass
class FmSeedingResult:
    """Per-read seed lists plus simulation statistics."""

    seeds: List[List[Seed]]
    stats: RunStats


def build_fm_seeding_pipeline(
    engine: Engine,
    name: str,
    index: FmIndex,
    occ_spm: Scratchpad,
    min_seed_length: int,
    max_hits: int,
) -> Pipeline:
    """Wire the seeding pipeline: reader -> FmSeeder -> writer."""
    pipe = Pipeline(name, engine)
    reader = pipe.add(MemoryReader(f"{name}.seq", engine.memory, elem_size=1))
    seeder = pipe.add(FmSeeder(
        f"{name}.seeder", occ_spm, index.c_table[:SIGMA].tolist(),
        min_seed_length, max_hits, index.length - 1,
    ))
    writer = pipe.add(MemoryWriter(
        f"{name}.writer", engine.memory, elem_size=16, field="start"
    ))
    engine.connect(reader, seeder)
    engine.connect(seeder, writer)
    return pipe


def run_fm_seeding(
    index: FmIndex,
    reads: Sequence[Sequence[int]],
    min_seed_length: int = 19,
    max_hits: int = 64,
    memory_config: Optional[MemoryConfig] = None,
) -> FmSeedingResult:
    """Simulate the seeding pipeline over encoded reads."""
    engine = Engine(MemorySystem(memory_config))
    occ_spm = load_occ_spm(index)
    pipe = build_fm_seeding_pipeline(
        engine, "fm", index, occ_spm, min_seed_length, max_hits
    )
    pipe.modules["fm.seq"].set_items([[int(c) for c in read] for read in reads])

    # Collect full seed records, not just the writer's primary field.
    collected: List[List[Seed]] = []
    current: List[Seed] = []

    class SeedSink(MemoryWriter):
        def tick(self, cycle: int) -> None:
            queue = self.input()
            if not queue.can_pop():
                self._note_starved()
                return
            flit = queue.pop()
            if flit.fields:
                current.append(Seed(
                    read_start=flit["start"],
                    length=flit["length"],
                    interval=SaInterval(flit["lo"], flit["hi"]),
                ))
            if flit.last:
                collected.append(sorted(current, key=lambda s: s.read_start))
                current.clear()
            self._note_busy()

    # Replace the plain writer with the record-collecting sink.
    engine.remove_module(pipe.modules["fm.writer"])
    sink = SeedSink("fm.sink", engine.memory, elem_size=16)
    engine.add_module(sink)
    sink.connect_input("in", pipe.modules["fm.seeder"].output())
    stats = engine.run()
    return FmSeedingResult(seeds=collected, stats=stats)
