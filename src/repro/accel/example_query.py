"""The paper's worked example: count matching bases per read (Figures 4-7).

The SQL of Figure 4 asks, for every read in partition P, how many of its
base pairs match the reference.  Figure 7 composes the hardware pipeline:

  five memory readers (POS, ENDPOS, CIGAR, SEQ, REFS.SEQ), an SPM holding
  the reference partition (loaded by an SPM Updater), an SPM Reader
  streaming each read's reference interval, ReadToBases, an inner Joiner
  keyed on position, a Filter comparing read base to reference base, a
  COUNT Reducer, and a Memory Writer.

:func:`run_example_query` simulates exactly that pipeline;
:func:`count_matching_bases_sw` is the software reference semantics the
simulation is checked against (and what the SQL executor produces for the
Figure 4 query).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..genomics.cigar import decode_elements
from ..hw.engine import Engine
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.modules import (
    Filter,
    Fork,
    Joiner,
    MemoryReader,
    MemoryWriter,
    ReadToBases,
    Reducer,
    SpmReader,
)
from ..hw.pipeline import Pipeline
from ..hw.spm import Scratchpad
from ..tables.table import Table
from .common import AcceleratorRun, load_reference_spm, read_streams, spm_base


def count_matching_bases_sw(partition: Table, ref_row: dict) -> List[int]:
    """Software reference: per-read count of bases equal to the reference."""
    ref_seq = ref_row["SEQ"]
    offset = int(ref_row["REFPOS"])
    counts = []
    for row in partition.rows():
        cigar = decode_elements(row["CIGAR"])
        seq = row["SEQ"]
        matches = 0
        for op, ref_pos, read_index in cigar.walk(int(row["POS"])):
            if op != "M":
                continue
            if int(seq[read_index]) == int(ref_seq[ref_pos - offset]):
                matches += 1
        counts.append(matches)
    return counts


def build_example_pipeline(
    engine: Engine, name: str, spm: Scratchpad, base: int
) -> Pipeline:
    """Wire one Figure 7 pipeline replica into ``engine``.

    Returns the pipeline; the caller configures the reader streams via the
    modules registered as ``<name>.pos`` etc. and reads results from the
    ``<name>.writer`` module's collected items.
    """
    pipe = Pipeline(name, engine)
    memory = engine.memory
    pos_reader = pipe.add(MemoryReader(f"{name}.pos", memory, elem_size=4))
    end_reader = pipe.add(MemoryReader(f"{name}.endpos", memory, elem_size=4))
    cigar_reader = pipe.add(MemoryReader(f"{name}.cigar", memory, elem_size=2))
    seq_reader = pipe.add(MemoryReader(f"{name}.seq", memory, elem_size=1))
    pos_fork = pipe.add(Fork(f"{name}.posfork", ports=2))
    r2b = pipe.add(ReadToBases(f"{name}.r2b", with_qual=False))
    spm_reader = pipe.add(
        SpmReader(
            f"{name}.spmread",
            spm,
            mode="interval",
            base_address=base,
            out_field="ref",
            addr_out_field="pos",
        )
    )
    joiner = pipe.add(Joiner(f"{name}.join", mode="inner", key_a="pos", key_b="pos"))
    match_filter = pipe.add(
        Filter(f"{name}.match", field="base", op="==", other_field="ref")
    )
    counter = pipe.add(Reducer(f"{name}.count", op="count", field="base"))
    writer = pipe.add(MemoryWriter(f"{name}.writer", memory, elem_size=4))

    engine.connect(pos_reader, pos_fork)
    engine.connect(pos_fork, r2b, out_port="out0", in_port="pos")
    engine.connect(pos_fork, spm_reader, out_port="out1", in_port="start")
    engine.connect(end_reader, spm_reader, in_port="end")
    engine.connect(cigar_reader, r2b, in_port="cigar")
    engine.connect(seq_reader, r2b, in_port="seq")
    engine.connect(r2b, joiner, in_port="a")
    engine.connect(spm_reader, joiner, in_port="b")
    engine.connect(joiner, match_filter)
    engine.connect(match_filter, counter)
    engine.connect(counter, writer)
    return pipe


def configure_example_streams(pipe: Pipeline, partition: Table) -> None:
    """Load one partition's column streams into the pipeline's readers."""
    streams = read_streams(partition)
    pipe.modules[f"{pipe.name}.pos"].set_scalars(streams.pos)
    pipe.modules[f"{pipe.name}.endpos"].set_scalars(streams.endpos)
    pipe.modules[f"{pipe.name}.cigar"].set_items(streams.cigar)
    pipe.modules[f"{pipe.name}.seq"].set_items(streams.seq)


@dataclass
class ExampleQueryResult:
    """Per-read match counts plus simulation statistics."""

    counts: List[int]
    run: AcceleratorRun


def run_example_query(
    partition: Table,
    ref_row: dict,
    memory_config: Optional[MemoryConfig] = None,
) -> ExampleQueryResult:
    """Simulate the Figure 7 pipeline on one partition."""
    spm, load_stats = load_reference_spm(ref_row, memory_config)
    engine = Engine(MemorySystem(memory_config))
    pipe = build_example_pipeline(engine, "ex", spm, spm_base(ref_row))
    configure_example_streams(pipe, partition)
    stats = engine.run()
    writer = pipe.modules["ex.writer"]
    counts = [int(item[0]) for item in writer.items]
    return ExampleQueryResult(
        counts=counts,
        run=AcceleratorRun(pipeline=pipe, stats=stats, load_stats=load_stats),
    )
