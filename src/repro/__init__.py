"""Genesis: a hardware acceleration framework for genomic data analysis.

A complete Python reproduction of the ISCA 2020 paper by Ham et al.: the
extended-SQL front end, the composable hardware-module library realized as
a cycle-level dataflow simulator, the GATK4-preprocessing accelerators
(mark duplicates, metadata update, BQSR covariate construction), faithful
software baselines, the host runtime API, and the performance/cost models
that regenerate every table and figure of the evaluation.

Quick start::

    from repro import make_workload, run_metadata_update

    wl = make_workload(n_reads=100)
    pid, part = next(iter(wl.partitions))
    result = run_metadata_update(part, wl.reference.lookup(pid))
    print(result.nm[:5], result.run.total_cycles)

See README.md, DESIGN.md, and the examples/ directory.
"""

from .accel import (
    accelerated_mark_duplicates,
    run_bqsr_partition,
    run_example_query,
    run_metadata_update,
    run_quality_sums,
)
from .eval import make_workload
from .gatk import (
    build_covariate_tables,
    compute_read_metadata,
    mark_duplicates,
    run_bqsr,
    run_preprocessing,
    update_metadata,
)
from .genomics import (
    AlignedRead,
    Cigar,
    ReadSimulator,
    ReferenceGenome,
    SimulatorConfig,
)
from .runtime import GenesisRuntime
from .sql import Executor, parse
from .tables import (
    Table,
    partition_reads,
    partition_reference,
    reads_to_table,
)

__version__ = "1.0.0"

__all__ = [
    "AlignedRead",
    "Cigar",
    "Executor",
    "GenesisRuntime",
    "ReadSimulator",
    "ReferenceGenome",
    "SimulatorConfig",
    "Table",
    "__version__",
    "accelerated_mark_duplicates",
    "build_covariate_tables",
    "compute_read_metadata",
    "make_workload",
    "mark_duplicates",
    "parse",
    "partition_reads",
    "partition_reference",
    "reads_to_table",
    "run_bqsr",
    "run_bqsr_partition",
    "run_example_query",
    "run_metadata_update",
    "run_preprocessing",
    "run_quality_sums",
    "update_metadata",
]
