"""Accelerated-system timing model (Figure 13).

The wall-clock of one accelerated stage decomposes, as in Figure 13(b),
into three serial components:

* **HW** — accelerator compute: ``total_cycles / (clock * n_pipelines)``.
  Cycles-per-base comes from the cycle-level dataflow simulation
  (measured on sample partitions and extrapolated, justified because
  every pipeline is fully pipelined at one base per cycle plus small
  per-read overheads).
* **PCIe** — host<->device communication: column bytes over the measured
  7 GB/s link, scaled by a per-stage DMA *efficiency factor* (the
  mark-duplicates stage streams one huge contiguous column at near-peak
  bandwidth; metadata update ships many small per-partition column
  transfers and achieves a fraction of peak; BQSR batches per read group
  in between).  The three factors are calibrated once against the
  Figure 13(b) breakdown and documented in EXPERIMENTS.md.
* **Host** — the un-accelerated software remainder (duplicate-set
  selection for mark duplicates, tag attachment for metadata update,
  table merging + quality update for BQSR), modelled as a calibrated
  fraction of the software stage time.

The PCIe 4.0 what-if (Section V-B) scales only the PCIe component by the
bandwidth ratio, which is exactly how the paper derives its 33x / 16.4x
projections.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from .cpu_model import CpuModel

#: Accelerator clock (Section V-A).
CLOCK_HZ = 250e6

#: Measured PCIe 3.0 DMA bandwidth on the F1 (Section V-B).
PCIE3_BANDWIDTH = 7e9

#: The PCIe 4.0 what-if bandwidth (Section V-B).
PCIE4_BANDWIDTH = 32e9


@dataclass(frozen=True)
class StageCalibration:
    """Per-stage constants of the timing model."""

    name: str
    cpu_stage: str
    n_pipelines: int
    dma_efficiency: float
    host_fraction: float
    bytes_per_read: float
    default_cycles_per_base: float


#: Mark duplicates (Figure 10): QUAL column only, one contiguous stream.
MARKDUP_CAL = StageCalibration(
    name="markdup",
    cpu_stage="markdup",
    n_pipelines=16,
    dma_efficiency=1.0,
    host_fraction=0.4775,
    bytes_per_read=151,  # QUAL only
    default_cycles_per_base=1.05,
)

#: Metadata update (Figure 11): five READS columns in, NM/MD/UQ out,
#: shipped per 1 Mbp partition (thousands of small DMA bursts).
METADATA_CAL = StageCalibration(
    name="metadata",
    cpu_stage="metadata",
    n_pipelines=16,
    dma_efficiency=0.22,
    host_fraction=0.0191,
    bytes_per_read=350,  # POS+ENDPOS+CIGAR+SEQ+QUAL in, NM/MD/UQ out
    default_cycles_per_base=1.15,
)

#: BQSR covariate construction (Figure 12): same columns per read-group
#: batch, covariate tables drained out.
BQSR_CAL = StageCalibration(
    name="bqsr_table",
    cpu_stage="bqsr_table",
    n_pipelines=8,
    dma_efficiency=0.85,
    host_fraction=0.0249,
    bytes_per_read=340,
    default_cycles_per_base=1.10,
)

CALIBRATIONS: Dict[str, StageCalibration] = {
    cal.name: cal for cal in (MARKDUP_CAL, METADATA_CAL, BQSR_CAL)
}


@dataclass
class StageTiming:
    """The modelled timing of one accelerated stage."""

    stage: str
    hw_seconds: float
    pcie_seconds: float
    host_seconds: float
    cpu_seconds: float

    @property
    def total_seconds(self) -> float:
        """Accelerated stage wall-clock (serial components, Fig. 13(b))."""
        return self.hw_seconds + self.pcie_seconds + self.host_seconds

    @property
    def speedup(self) -> float:
        """Speedup over the software baseline (Figure 13(a))."""
        return self.cpu_seconds / self.total_seconds

    def breakdown(self) -> Dict[str, float]:
        """Runtime fractions of the accelerated stage (Figure 13(b))."""
        total = self.total_seconds
        return {
            "hw": self.hw_seconds / total,
            "pcie": self.pcie_seconds / total,
            "host": self.host_seconds / total,
        }


def model_stage(
    stage: str,
    n_reads: float,
    read_length: int,
    cycles_per_base: Optional[float] = None,
    pcie_bandwidth: float = PCIE3_BANDWIDTH,
    cpu: Optional[CpuModel] = None,
    calibration: Optional[StageCalibration] = None,
) -> StageTiming:
    """Model one accelerated stage over a workload of ``n_reads`` reads.

    ``cycles_per_base`` should come from the dataflow simulation (see
    :func:`repro.eval.experiments.measure_cycles_per_base`); the
    calibration default is used when omitted.
    """
    cal = calibration or CALIBRATIONS[stage]
    cpu = cpu or CpuModel()
    cpb = cycles_per_base if cycles_per_base is not None else cal.default_cycles_per_base
    total_bases = n_reads * read_length
    hw = total_bases * cpb / (CLOCK_HZ * cal.n_pipelines)
    pcie = (n_reads * cal.bytes_per_read) / (pcie_bandwidth * cal.dma_efficiency)
    cpu_seconds = cpu.stage_seconds(cal.cpu_stage, n_reads)
    host = cal.host_fraction * cpu_seconds
    return StageTiming(
        stage=stage,
        hw_seconds=hw,
        pcie_seconds=pcie,
        host_seconds=host,
        cpu_seconds=cpu_seconds,
    )


def model_stage_pcie4(stage: str, n_reads: float, read_length: int,
                      cycles_per_base: Optional[float] = None) -> StageTiming:
    """The PCIe 4.0 what-if of Section V-B."""
    return model_stage(
        stage, n_reads, read_length, cycles_per_base,
        pcie_bandwidth=PCIE4_BANDWIDTH,
    )


def with_pipelines(calibration: StageCalibration, n: int) -> StageCalibration:
    """A calibration with a different pipeline count (scaling ablations)."""
    if n < 1:
        raise ValueError("need at least one pipeline")
    return replace(calibration, n_pipelines=n)
