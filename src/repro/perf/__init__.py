"""Performance and cost models (Section V).

Calibrated software-stage timing (Figure 9), the three-component
accelerated-stage model (Figure 13), and the AWS cost arithmetic
(Tables II and III).  Calibration constants and their provenance are
documented in EXPERIMENTS.md.
"""

from .cost import (
    F1_2XLARGE,
    R5_4XLARGE,
    MachineRate,
    cost_reduction,
    performance_per_dollar,
    table3_row,
)
from .cpu_model import (
    BASELINE_CORES,
    FIG9_FRACTIONS,
    FIG9_FRACTIONS_ALIGN_ACCEL,
    GENAX_READS_PER_SECOND,
    PAPER_READS,
    PAPER_READ_LENGTH,
    SECONDS_PER_READ,
    THREE_STAGE_SECONDS,
    CpuModel,
)
from .timing import (
    BQSR_CAL,
    CALIBRATIONS,
    CLOCK_HZ,
    MARKDUP_CAL,
    METADATA_CAL,
    PCIE3_BANDWIDTH,
    PCIE4_BANDWIDTH,
    StageCalibration,
    StageTiming,
    model_stage,
    model_stage_pcie4,
    with_pipelines,
)

__all__ = [
    "BASELINE_CORES",
    "BQSR_CAL",
    "CALIBRATIONS",
    "CLOCK_HZ",
    "CpuModel",
    "F1_2XLARGE",
    "FIG9_FRACTIONS",
    "FIG9_FRACTIONS_ALIGN_ACCEL",
    "GENAX_READS_PER_SECOND",
    "MARKDUP_CAL",
    "METADATA_CAL",
    "MachineRate",
    "PAPER_READS",
    "PAPER_READ_LENGTH",
    "PCIE3_BANDWIDTH",
    "PCIE4_BANDWIDTH",
    "R5_4XLARGE",
    "SECONDS_PER_READ",
    "StageCalibration",
    "StageTiming",
    "THREE_STAGE_SECONDS",
    "cost_reduction",
    "model_stage",
    "model_stage_pcie4",
    "performance_per_dollar",
    "table3_row",
    "with_pipelines",
]
