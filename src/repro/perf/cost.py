"""AWS cost model (Tables II and III).

Table II publishes the November 2019 hourly prices of the two machines;
Table III derives per-stage cost reductions and normalized
performance-per-dollar from them.  The paper's metrics decompose as

* ``cost_reduction = speedup * (baseline_rate / accelerated_rate)``
* ``performance_per_dollar = speedup * cost_reduction``

which reproduces the published metadata-update (15.05x, 289.59x) and BQSR
(9.84x, 123.92x) rows exactly from their speedups.  (The published
mark-duplicates cost reduction equals its speedup, i.e. it omits the
price ratio; EXPERIMENTS.md records this discrepancy.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class MachineRate:
    """Hourly price of one AWS machine (Table II)."""

    name: str
    compute_per_hour: float
    storage_per_hour: float = 0.0

    @property
    def per_hour(self) -> float:
        """Total hourly rate."""
        return self.compute_per_hour + self.storage_per_hour

    def cost_of(self, seconds: float) -> float:
        """Dollars for ``seconds`` of use."""
        return self.per_hour * seconds / 3600.0


#: f1.2xlarge: the Genesis deployment target (Table II).
F1_2XLARGE = MachineRate("f1.2xlarge", compute_per_hour=1.65)

#: r5.4xlarge + 2 TB SSD: the GATK4 software baseline (Table II).
R5_4XLARGE = MachineRate("r5.4xlarge", compute_per_hour=1.01, storage_per_hour=0.28)


def cost_reduction(
    speedup: float,
    baseline: MachineRate = R5_4XLARGE,
    accelerated: MachineRate = F1_2XLARGE,
) -> float:
    """How much cheaper the accelerated run is, per genome."""
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    return speedup * baseline.per_hour / accelerated.per_hour


def performance_per_dollar(
    speedup: float,
    baseline: MachineRate = R5_4XLARGE,
    accelerated: MachineRate = F1_2XLARGE,
) -> float:
    """Normalized performance/$ (Table III's last column)."""
    return speedup * cost_reduction(speedup, baseline, accelerated)


def table3_row(speedup: float) -> Dict[str, float]:
    """One Table III row derived from a stage speedup."""
    return {
        "speedup": speedup,
        "cost_reduction": cost_reduction(speedup),
        "performance_per_dollar": performance_per_dollar(speedup),
    }
