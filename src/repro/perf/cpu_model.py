"""Calibrated CPU (GATK4 software) timing model.

We cannot run GATK 4.1.3 on an r5.4xlarge against NA12878, so the software
baseline's wall-clock is modelled from the paper's own published numbers:

* Figure 9's runtime fractions for the preprocessing stages, with and
  without an alignment accelerator;
* Section V-B: the three accelerated stages "take about three and a half
  hours for a single genome" on the 8-core machine (assuming perfectly
  scaled metadata update, as the paper does);
* the evaluated data set: ~700 M Illumina reads of 151 bp.

From these we derive per-read second costs for every stage, which the
model then scales to any synthetic workload size and core count.  All
constants are documented here and in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Figure 9, first bar: fraction of GATK4 preprocessing runtime per stage
#: on the 8-core system (no alignment accelerator).
FIG9_FRACTIONS = {
    "alignment": 0.634,
    "markdup": 0.100,
    "metadata": 0.154,
    "bqsr_table": 0.046,
    "bqsr_update": 0.043,
}

#: Figure 9, second bar: fractions once alignment is accelerated
#: (alignment shrinks to 0.7%).
FIG9_FRACTIONS_ALIGN_ACCEL = {
    "alignment": 0.007,
    "markdup": 0.272,
    "metadata": 0.418,
    "bqsr_table": 0.124,
    "bqsr_update": 0.116,
}

#: Section V-B: the three accelerated stages take ~3.5 h for one genome.
THREE_STAGE_SECONDS = 3.5 * 3600

#: The paper's data set: ~700 M reads of 151 bp.
PAPER_READS = 700e6
PAPER_READ_LENGTH = 151

#: The baseline machine's core count (r5.4xlarge: 8C/16T).
BASELINE_CORES = 8

_THREE_STAGE_FRACTION = (
    FIG9_FRACTIONS["markdup"]
    + FIG9_FRACTIONS["metadata"]
    + FIG9_FRACTIONS["bqsr_table"]
    + FIG9_FRACTIONS["bqsr_update"]
)

#: Derived: seconds per read (on 8 cores) for each stage.
SECONDS_PER_READ = {
    stage: (THREE_STAGE_SECONDS * FIG9_FRACTIONS[stage] / _THREE_STAGE_FRACTION)
    / PAPER_READS
    for stage in ("markdup", "metadata", "bqsr_table", "bqsr_update")
}
SECONDS_PER_READ["alignment"] = (
    THREE_STAGE_SECONDS
    * FIG9_FRACTIONS["alignment"]
    / _THREE_STAGE_FRACTION
    / PAPER_READS
)

#: GenAx-class alignment accelerator throughput (Section IV-A): 4058K reads/s.
GENAX_READS_PER_SECOND = 4_058_000


@dataclass
class CpuModel:
    """Software-stage timing scaled to a workload."""

    cores: int = BASELINE_CORES

    def stage_seconds(self, stage: str, n_reads: float) -> float:
        """Modelled software runtime of ``stage`` over ``n_reads`` reads."""
        if stage not in SECONDS_PER_READ:
            raise KeyError(f"unknown stage {stage!r}")
        scale = BASELINE_CORES / self.cores
        return SECONDS_PER_READ[stage] * n_reads * scale

    def preprocessing_breakdown(
        self, n_reads: float, alignment_accelerated: bool = False
    ) -> Dict[str, float]:
        """Per-stage seconds of the whole preprocessing phase (Figure 9).

        With ``alignment_accelerated``, alignment time comes from the
        GenAx throughput model instead of the software cost.
        """
        breakdown = {
            stage: self.stage_seconds(stage, n_reads)
            for stage in ("markdup", "metadata", "bqsr_table", "bqsr_update")
        }
        if alignment_accelerated:
            breakdown["alignment"] = n_reads / GENAX_READS_PER_SECOND
        else:
            breakdown["alignment"] = self.stage_seconds("alignment", n_reads)
        return breakdown

    @staticmethod
    def fractions(breakdown: Dict[str, float]) -> Dict[str, float]:
        """Normalize a seconds breakdown into runtime fractions."""
        total = sum(breakdown.values())
        if total <= 0:
            return {stage: 0.0 for stage in breakdown}
        return {stage: seconds / total for stage, seconds in breakdown.items()}
