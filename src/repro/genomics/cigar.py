"""CIGAR (Concise Idiosyncratic Gapped Alignment Report) arithmetic.

Section II of the Genesis paper describes aligned-read metadata as a list of
``(length, operation)`` pairs where the operation is one of

* ``M`` — aligned to the reference (match *or* mismatch),
* ``I`` — inserted relative to the reference,
* ``D`` — deleted relative to the reference,
* ``S`` — soft-clipped (present in the read, ignored by the aligner).

This module implements parsing/formatting plus the alignment arithmetic the
GATK4 preprocessing stages need: how many reference/read bases a CIGAR
consumes, the unclipped 5' positions used as mark-duplicates keys
(Section IV-B), and per-base walk used by ``ReadExplode`` (Figure 3).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

#: The CIGAR operations Genesis models (paper Section II).
OPS = "MIDS"

#: Operations that consume bases from the read sequence.
CONSUMES_READ = frozenset("MIS")

#: Operations that consume positions on the reference.
CONSUMES_REF = frozenset("MD")

_CIGAR_RE = re.compile(r"(\d+)([MIDS])")


@dataclass(frozen=True)
class CigarElement:
    """A single ``(length, op)`` CIGAR element."""

    length: int
    op: str

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unsupported CIGAR op: {self.op!r}")
        if self.length <= 0:
            raise ValueError(f"CIGAR element length must be positive: {self.length}")

    def __str__(self) -> str:
        return f"{self.length}{self.op}"


class Cigar:
    """An immutable CIGAR: a sequence of :class:`CigarElement`.

    >>> c = Cigar.parse("7M1I5M")
    >>> c.read_length(), c.reference_length()
    (13, 12)
    """

    __slots__ = ("elements",)

    def __init__(self, elements: Sequence[CigarElement]):
        self.elements: Tuple[CigarElement, ...] = tuple(elements)

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Cigar":
        """Parse a CIGAR string such as ``"3S6M1D2M"``."""
        if not text:
            raise ValueError("empty CIGAR string")
        pos = 0
        elements: List[CigarElement] = []
        for match in _CIGAR_RE.finditer(text):
            if match.start() != pos:
                raise ValueError(f"malformed CIGAR: {text!r}")
            elements.append(CigarElement(int(match.group(1)), match.group(2)))
            pos = match.end()
        if pos != len(text):
            raise ValueError(f"malformed CIGAR: {text!r}")
        return cls(elements)

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[int, str]]) -> "Cigar":
        """Build a CIGAR from ``(length, op)`` pairs."""
        return cls([CigarElement(length, op) for length, op in pairs])

    # -- dunder protocol ---------------------------------------------------

    def __str__(self) -> str:
        return "".join(str(element) for element in self.elements)

    def __repr__(self) -> str:
        return f"Cigar({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cigar):
            return NotImplemented
        return self.elements == other.elements

    def __hash__(self) -> int:
        return hash(self.elements)

    def __iter__(self) -> Iterator[CigarElement]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    # -- alignment arithmetic ---------------------------------------------

    def read_length(self) -> int:
        """Number of read bases this CIGAR describes (M + I + S)."""
        return sum(e.length for e in self.elements if e.op in CONSUMES_READ)

    def reference_length(self) -> int:
        """Number of reference positions this alignment spans (M + D)."""
        return sum(e.length for e in self.elements if e.op in CONSUMES_REF)

    def leading_soft_clip(self) -> int:
        """Length of the soft clip at the front of the read, if any."""
        if self.elements and self.elements[0].op == "S":
            return self.elements[0].length
        return 0

    def trailing_soft_clip(self) -> int:
        """Length of the soft clip at the end of the read, if any."""
        if self.elements and self.elements[-1].op == "S":
            return self.elements[-1].length
        return 0

    def is_canonical(self) -> bool:
        """True when soft clips appear only at the ends and no two adjacent
        elements share an operation (the form real aligners emit)."""
        for i, element in enumerate(self.elements):
            if element.op == "S" and i not in (0, len(self.elements) - 1):
                return False
            if i > 0 and self.elements[i - 1].op == element.op:
                return False
        return True

    # -- per-base walk (ReadExplode semantics, Figure 3) --------------------

    def walk(self, pos: int) -> Iterator[Tuple[str, int, int]]:
        """Yield ``(op, ref_pos, read_index)`` for every base the alignment
        touches, starting at reference position ``pos``.

        Soft-clipped bases are *skipped entirely* (the paper's ReadExplode
        drops them from the output).  For insertions ``ref_pos`` is ``-1``;
        for deletions ``read_index`` is ``-1``.
        """
        ref_pos = pos
        read_index = 0
        for element in self.elements:
            if element.op == "S":
                read_index += element.length
            elif element.op == "M":
                for _ in range(element.length):
                    yield ("M", ref_pos, read_index)
                    ref_pos += 1
                    read_index += 1
            elif element.op == "I":
                for _ in range(element.length):
                    yield ("I", -1, read_index)
                    read_index += 1
            elif element.op == "D":
                for _ in range(element.length):
                    yield ("D", ref_pos, -1)
                    ref_pos += 1

    # -- unclipped ends (mark-duplicates keys, Section IV-B) ----------------

    def unclipped_start(self, pos: int) -> int:
        """Unclipped 5' position of a forward read: ``POS`` minus the
        leading soft clip (paper Section IV-B)."""
        return pos - self.leading_soft_clip()

    def unclipped_end(self, pos: int) -> int:
        """Unclipped 5' position of a reverse read: the alignment end plus
        the trailing soft clip (footnote 1 in the paper)."""
        return pos + self.reference_length() - 1 + self.trailing_soft_clip()


def encode_elements(cigar: Cigar) -> List[int]:
    """Pack a CIGAR into ``uint16`` codes as the READS table stores it.

    Table I gives the CIGAR column type ``uint16_t[CLEN]``.  We use the SAM
    binary convention: ``code = (length << 2) | op_index`` with op order
    ``M, I, D, S``; lengths must fit in 14 bits.
    """
    codes = []
    for element in cigar:
        if element.length >= 1 << 14:
            raise ValueError("CIGAR element too long for uint16 encoding")
        codes.append((element.length << 2) | OPS.index(element.op))
    return codes


def decode_elements(codes: Sequence[int]) -> Cigar:
    """Inverse of :func:`encode_elements`."""
    return Cigar.from_pairs([(int(code) >> 2, OPS[int(code) & 0x3]) for code in codes])
