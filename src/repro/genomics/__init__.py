"""Genomic data substrate: sequences, CIGARs, reads, references, simulator.

This subpackage implements everything the Genesis paper assumes about the
genomic data itself (Section II): DNA sequences, CIGAR alignment metadata,
aligned read records, a reference genome with known-SNP annotations, an
Illumina-like read simulator (our substitute for NA12878, see DESIGN.md),
and a minimal SAM-style serialization.
"""

from .cigar import Cigar, CigarElement, decode_elements, encode_elements
from .read import AlignedRead, pair_key
from .reference import (
    CHROMOSOMES,
    GRCH38_CHROMOSOME_LENGTHS,
    Chromosome,
    ReferenceGenome,
    chromosome_name,
)
from .sequences import (
    BASES,
    N_CODE,
    decode_sequence,
    encode_base,
    encode_sequence,
    gc_content,
    random_sequence,
    reverse_complement,
)
from .simulator import ReadSimulator, SimulatorConfig

__all__ = [
    "AlignedRead",
    "BASES",
    "CHROMOSOMES",
    "Chromosome",
    "Cigar",
    "CigarElement",
    "GRCH38_CHROMOSOME_LENGTHS",
    "N_CODE",
    "ReadSimulator",
    "ReferenceGenome",
    "SimulatorConfig",
    "chromosome_name",
    "decode_elements",
    "decode_sequence",
    "encode_base",
    "encode_elements",
    "encode_sequence",
    "gc_content",
    "pair_key",
    "random_sequence",
    "reverse_complement",
]

from .fasta import fastq_stats, read_fasta, read_fastq, write_fasta, write_fastq

__all__ += ["fastq_stats", "read_fasta", "read_fastq", "write_fasta", "write_fastq"]
