"""Aligned read records.

An aligned read (paper Section II, "Genomic Read Data") carries the
chromosome it aligned to, the leftmost reference position, the base-pair
sequence, the per-base quality scores, the CIGAR alignment metadata, and a
handful of flags/metadata fields.  This module defines the in-memory record
used by the software baseline (:mod:`repro.gatk`) and converted to/from the
columnar READS table (:mod:`repro.tables.genomic_tables`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .cigar import Cigar
from .sequences import decode_sequence

#: SAM-style bit flags (the subset the preprocessing stages consult).
FLAG_PAIRED = 0x1
FLAG_PROPER_PAIR = 0x2
FLAG_UNMAPPED = 0x4
FLAG_MATE_UNMAPPED = 0x8
FLAG_REVERSE = 0x10
FLAG_MATE_REVERSE = 0x20
FLAG_FIRST_IN_PAIR = 0x40
FLAG_SECOND_IN_PAIR = 0x80
FLAG_SECONDARY = 0x100
FLAG_DUPLICATE = 0x400


@dataclass
class AlignedRead:
    """A single aligned read.

    Attributes mirror the READS table of Table I plus the SAM-style fields
    the GATK4 preprocessing stages need (flags, read group, mate info, and
    the NM/MD/UQ tags filled in by the metadata-update stage).
    """

    name: str
    chrom: int
    pos: int
    cigar: Cigar
    seq: np.ndarray
    qual: np.ndarray
    flags: int = 0
    mapq: int = 60
    read_group: int = 0
    mate_chrom: int = -1
    mate_pos: int = -1
    tags: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.seq = np.asarray(self.seq, dtype=np.uint8)
        self.qual = np.asarray(self.qual, dtype=np.uint8)
        if len(self.seq) != len(self.qual):
            raise ValueError("SEQ and QUAL must have equal length")
        if self.cigar.read_length() != len(self.seq):
            raise ValueError(
                f"CIGAR {self.cigar} describes {self.cigar.read_length()} bases "
                f"but SEQ has {len(self.seq)}"
            )

    # -- derived positions ---------------------------------------------------

    @property
    def end_pos(self) -> int:
        """Rightmost reference position covered (inclusive); ENDPOS in
        Table I."""
        return self.pos + self.cigar.reference_length() - 1

    @property
    def is_reverse(self) -> bool:
        """True when the read aligned to the reverse strand."""
        return bool(self.flags & FLAG_REVERSE)

    @property
    def is_paired(self) -> bool:
        """True for paired-end reads."""
        return bool(self.flags & FLAG_PAIRED)

    @property
    def is_duplicate(self) -> bool:
        """True once the mark-duplicates stage flagged this read."""
        return bool(self.flags & FLAG_DUPLICATE)

    def set_duplicate(self, value: bool = True) -> None:
        """Set or clear the duplicate flag."""
        if value:
            self.flags |= FLAG_DUPLICATE
        else:
            self.flags &= ~FLAG_DUPLICATE

    def unclipped_5prime(self) -> int:
        """The unclipped 5' coordinate used as the mark-duplicates key
        (Section IV-B): clip-adjusted start for forward reads, clip-adjusted
        end for reverse reads."""
        if self.is_reverse:
            return self.cigar.unclipped_end(self.pos)
        return self.cigar.unclipped_start(self.pos)

    # -- conveniences ----------------------------------------------------------

    @property
    def seq_str(self) -> str:
        """The base-pair sequence decoded to a string."""
        return decode_sequence(self.seq)

    def quality_sum(self) -> int:
        """Sum of all base quality scores; the quantity the mark-duplicates
        accelerator computes (Figure 10)."""
        return int(np.sum(self.qual, dtype=np.int64))

    def __repr__(self) -> str:
        return (
            f"AlignedRead({self.name!r}, chr={self.chrom}, pos={self.pos}, "
            f"cigar={self.cigar}, len={len(self.seq)})"
        )


def pair_key(read: AlignedRead, mate: Optional[AlignedRead] = None) -> tuple:
    """Mark-duplicates key for a read or a read pair.

    Footnote 1 of the paper: for paired-end data, the per-read unclipped 5'
    keys are concatenated to form the pair key.  Orientation is included the
    way Picard does, since two pairs only duplicate each other when their
    strands agree as well.
    """
    if mate is None:
        return (read.chrom, read.unclipped_5prime(), read.is_reverse)
    first = (read.chrom, read.unclipped_5prime(), read.is_reverse)
    second = (mate.chrom, mate.unclipped_5prime(), mate.is_reverse)
    return tuple(sorted([first, second]))
