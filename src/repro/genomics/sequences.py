"""Base-pair sequences and encodings.

The Genesis paper (Section II) represents every base pair as one character
from the DNA alphabet ``A, C, G, T``.  This module provides the canonical
encoding used throughout the reproduction: bases are stored as small unsigned
integers (``uint8``) so they can flow through the relational tables
(:mod:`repro.tables`) and the hardware dataflow simulator (:mod:`repro.hw`)
as fixed-width flits, exactly like the hardware in the paper streams them.
"""

from __future__ import annotations

import numpy as np

#: The DNA alphabet in canonical order.  Index == encoded value.
BASES = "ACGT"

#: Sentinel encoding for an unknown/ambiguous base ("N" in FASTA parlance).
N_CODE = 4

#: Characters for decoding, index N_CODE maps back to ``N``.
_DECODE = BASES + "N"

_ENCODE = {base: code for code, base in enumerate(_DECODE)}
_ENCODE["N"] = N_CODE

#: Complement lookup: A<->T, C<->G, N->N.
_COMPLEMENT_CODE = np.array([3, 2, 1, 0, 4], dtype=np.uint8)


def encode_base(base: str) -> int:
    """Encode a single base character to its ``uint8`` code.

    >>> encode_base("A"), encode_base("T")
    (0, 3)
    """
    try:
        return _ENCODE[base.upper()]
    except KeyError:
        raise ValueError(f"not a DNA base: {base!r}") from None


def decode_base(code: int) -> str:
    """Decode a ``uint8`` base code back to its character."""
    if not 0 <= code <= N_CODE:
        raise ValueError(f"not a base code: {code!r}")
    return _DECODE[code]


def encode_sequence(seq: str) -> np.ndarray:
    """Encode a base-pair string into a ``uint8`` numpy array.

    >>> encode_sequence("ACGTN").tolist()
    [0, 1, 2, 3, 4]
    """
    out = np.empty(len(seq), dtype=np.uint8)
    for i, base in enumerate(seq):
        out[i] = encode_base(base)
    return out


def decode_sequence(codes) -> str:
    """Decode an iterable of base codes into a base-pair string."""
    return "".join(decode_base(int(code)) for code in codes)


def complement(codes: np.ndarray) -> np.ndarray:
    """Complement an encoded sequence element-wise (A<->T, C<->G)."""
    return _COMPLEMENT_CODE[np.asarray(codes, dtype=np.uint8)]


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Reverse-complement an encoded sequence.

    Used to derive the reverse-strand mate of a paired-end read in the
    read simulator.
    """
    return complement(codes)[::-1]


def random_sequence(length: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a uniformly random encoded DNA sequence of ``length`` bases."""
    if length < 0:
        raise ValueError("length must be non-negative")
    return rng.integers(0, 4, size=length, dtype=np.uint8)


def gc_content(codes: np.ndarray) -> float:
    """Fraction of G/C bases in an encoded sequence (N bases excluded)."""
    codes = np.asarray(codes)
    known = codes[codes != N_CODE]
    if known.size == 0:
        return 0.0
    is_gc = (known == encode_base("G")) | (known == encode_base("C"))
    return float(np.count_nonzero(is_gc)) / known.size
