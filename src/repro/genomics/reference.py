"""Reference genome with known-SNP annotations.

The Genesis REF table (Table I) stores, per partition row, a reference
base-pair fragment plus an ``IS_SNP`` bitmap marking known variation sites
(the dbSNP138 sites in the paper's evaluation).  BQSR consults the bitmap to
avoid counting known variant positions as sequencing errors (Section IV-D).

The paper evaluates against GRCh38; we cannot ship that, so
:func:`ReferenceGenome.random` synthesizes a multi-chromosome genome at a
configurable scale with a seeded RNG, and :meth:`ReferenceGenome.grch38_like`
mirrors the *relative* chromosome lengths of GRCh38 so per-chromosome
experiments (Figure 13 c/d) retain their shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from .sequences import random_sequence

#: GRCh38 chromosome lengths in base pairs (chr1..22, X, Y), used to scale
#: synthetic genomes so the per-chromosome workload mix matches the paper's.
GRCH38_CHROMOSOME_LENGTHS = {
    1: 248_956_422, 2: 242_193_529, 3: 198_295_559, 4: 190_214_555,
    5: 181_538_259, 6: 170_805_979, 7: 159_345_973, 8: 145_138_636,
    9: 138_394_717, 10: 133_797_422, 11: 135_086_622, 12: 133_275_309,
    13: 114_364_328, 14: 107_043_718, 15: 101_991_189, 16: 90_338_345,
    17: 83_257_441, 18: 80_373_285, 19: 58_617_616, 20: 64_444_167,
    21: 46_709_983, 22: 50_818_468, 23: 156_040_895, 24: 57_227_415,
}

#: Chromosome identifiers in the paper's convention: 1..22, X (23), Y (24).
CHROMOSOMES = tuple(sorted(GRCH38_CHROMOSOME_LENGTHS))


def chromosome_name(chrom: int) -> str:
    """Human-readable name for a chromosome id (23 -> "X", 24 -> "Y")."""
    if chrom == 23:
        return "X"
    if chrom == 24:
        return "Y"
    return str(chrom)


@dataclass
class Chromosome:
    """One chromosome: its encoded sequence and known-SNP bitmap."""

    chrom: int
    seq: np.ndarray
    is_snp: np.ndarray

    def __post_init__(self) -> None:
        self.seq = np.asarray(self.seq, dtype=np.uint8)
        self.is_snp = np.asarray(self.is_snp, dtype=bool)
        if len(self.seq) != len(self.is_snp):
            raise ValueError("SEQ and IS_SNP must have equal length")

    def __len__(self) -> int:
        return len(self.seq)


class ReferenceGenome:
    """A collection of chromosomes addressed by chromosome id."""

    def __init__(self, chromosomes: Iterable[Chromosome]):
        self._by_chrom: Dict[int, Chromosome] = {}
        for chromosome in chromosomes:
            if chromosome.chrom in self._by_chrom:
                raise ValueError(f"duplicate chromosome id {chromosome.chrom}")
            self._by_chrom[chromosome.chrom] = chromosome
        if not self._by_chrom:
            raise ValueError("a genome needs at least one chromosome")

    # -- access ---------------------------------------------------------------

    @property
    def chromosomes(self) -> List[int]:
        """Sorted chromosome ids present in this genome."""
        return sorted(self._by_chrom)

    def __getitem__(self, chrom: int) -> Chromosome:
        return self._by_chrom[chrom]

    def __contains__(self, chrom: int) -> bool:
        return chrom in self._by_chrom

    def length(self, chrom: int) -> int:
        """Length of one chromosome in base pairs."""
        return len(self._by_chrom[chrom])

    def total_length(self) -> int:
        """Total genome length in base pairs."""
        return sum(len(c) for c in self._by_chrom.values())

    def fetch(self, chrom: int, start: int, end: int) -> np.ndarray:
        """Reference bases on ``chrom`` for positions ``[start, end)``
        (0-based, half-open)."""
        chromosome = self._by_chrom[chrom]
        if start < 0 or end > len(chromosome) or start > end:
            raise IndexError(f"fetch out of range: chr{chrom}:{start}-{end}")
        return chromosome.seq[start:end]

    def fetch_snp(self, chrom: int, start: int, end: int) -> np.ndarray:
        """IS_SNP bitmap slice for positions ``[start, end)``."""
        chromosome = self._by_chrom[chrom]
        if start < 0 or end > len(chromosome) or start > end:
            raise IndexError(f"fetch out of range: chr{chrom}:{start}-{end}")
        return chromosome.is_snp[start:end]

    # -- construction -----------------------------------------------------------

    @classmethod
    def random(
        cls,
        lengths: Dict[int, int],
        snp_rate: float = 0.001,
        seed: int = 0,
    ) -> "ReferenceGenome":
        """Synthesize a genome with the given per-chromosome lengths.

        ``snp_rate`` is the fraction of positions flagged as known SNP sites
        (human genomes carry roughly one known SNP per kilobase, which is
        what dbSNP-annotated pipelines see).
        """
        if not 0.0 <= snp_rate <= 1.0:
            raise ValueError("snp_rate must be in [0, 1]")
        rng = np.random.default_rng(seed)
        chromosomes = []
        for chrom, length in sorted(lengths.items()):
            seq = random_sequence(length, rng)
            is_snp = rng.random(length) < snp_rate
            chromosomes.append(Chromosome(chrom, seq, is_snp))
        return cls(chromosomes)

    @classmethod
    def grch38_like(
        cls,
        scale: float = 1e-5,
        snp_rate: float = 0.001,
        seed: int = 0,
        chromosomes: Iterable[int] = CHROMOSOMES,
    ) -> "ReferenceGenome":
        """A genome whose chromosome lengths are GRCh38's scaled by
        ``scale`` (so chr1 stays ~5x longer than chr21, etc.)."""
        lengths = {
            chrom: max(1000, int(GRCH38_CHROMOSOME_LENGTHS[chrom] * scale))
            for chrom in chromosomes
        }
        return cls.random(lengths, snp_rate=snp_rate, seed=seed)
