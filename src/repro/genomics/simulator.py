"""Illumina-like synthetic read simulator.

The paper evaluates on Illumina NA12878 reads (~700M reads, 151 bp).  That
data set is not redistributable at this scale, so this simulator produces a
synthetic equivalent that exercises every code path the Genesis accelerators
and the GATK4-style baseline care about:

* reads of a fixed machine length (default 151 bp) sampled from a reference,
* substitution errors at a per-base rate (so NM/MD/UQ and BQSR error counts
  are non-trivial),
* insertions and deletions (CIGAR ``I``/``D`` elements),
* soft clips at either end (CIGAR ``S`` elements; exercised by the
  unclipped-5' mark-duplicates keys),
* PCR duplicates — clusters of reads sharing an unclipped 5' key with
  independently redrawn quality scores (Section IV-B),
* paired-end reads with a reverse-strand mate (footnote 1),
* multiple read groups modelling sequencer lanes (the BQSR read-group
  covariate),
* a quality-score model with per-cycle and per-lane bias so BQSR's
  recalibration has real structure to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .cigar import Cigar, CigarElement
from .read import (
    FLAG_FIRST_IN_PAIR,
    FLAG_MATE_REVERSE,
    FLAG_PAIRED,
    FLAG_PROPER_PAIR,
    FLAG_REVERSE,
    FLAG_SECOND_IN_PAIR,
    AlignedRead,
)
from .reference import ReferenceGenome
from .sequences import reverse_complement


@dataclass
class SimulatorConfig:
    """Knobs for the read simulator.

    The defaults mirror the paper's data set where it is characterized:
    151 bp reads, a handful of lanes, ~1/1000 substitution error.
    """

    read_length: int = 151
    substitution_rate: float = 0.002
    insertion_rate: float = 0.0005
    deletion_rate: float = 0.0005
    max_indel_length: int = 3
    soft_clip_rate: float = 0.05
    max_soft_clip: int = 8
    duplicate_rate: float = 0.15
    max_duplicates: int = 4
    paired: bool = False
    mean_fragment_length: int = 400
    read_groups: int = 4
    base_quality: int = 32
    quality_spread: int = 6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.read_length < 8:
            raise ValueError("read_length must be at least 8")
        for name in ("substitution_rate", "insertion_rate", "deletion_rate",
                     "soft_clip_rate", "duplicate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


class ReadSimulator:
    """Samples aligned reads from a :class:`ReferenceGenome`.

    The simulator emits reads already *aligned* (true position, true CIGAR):
    Genesis accelerates post-alignment stages, so we skip re-discovering
    alignments and hand the preprocessing stages what a perfect aligner
    would have produced, with sequencing errors layered on top.
    """

    def __init__(self, genome: ReferenceGenome, config: Optional[SimulatorConfig] = None):
        self.genome = genome
        self.config = config or SimulatorConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._serial = 0
        # Per-lane quality bias: some lanes systematically over- or
        # under-report quality, the exact systematic effect BQSR corrects.
        self._lane_bias = self._rng.integers(
            -3, 4, size=max(1, self.config.read_groups)
        )

    # -- public API ------------------------------------------------------------

    def simulate(self, n_reads: int, chrom: Optional[int] = None) -> List[AlignedRead]:
        """Simulate ``n_reads`` source fragments (PCR duplication may emit
        more reads than that).  Restrict sampling to ``chrom`` if given."""
        reads: List[AlignedRead] = []
        while len(reads) < n_reads:
            reads.extend(self._simulate_fragment(chrom))
        reads.sort(key=lambda read: (read.chrom, read.pos))
        return reads

    def simulate_pairs(self, n_pairs: int, chrom: Optional[int] = None) -> List[AlignedRead]:
        """Simulate paired-end fragments; returns a flat, sorted read list."""
        reads: List[AlignedRead] = []
        for _ in range(n_pairs):
            reads.extend(self._simulate_pair(chrom))
        reads.sort(key=lambda read: (read.chrom, read.pos))
        return reads

    # -- fragment-level simulation ----------------------------------------------

    def _simulate_fragment(self, chrom: Optional[int]) -> List[AlignedRead]:
        """One sequenced DNA fragment plus any PCR duplicates of it."""
        template = self._draw_read(chrom)
        out = [template]
        if self._rng.random() < self.config.duplicate_rate:
            n_dups = int(self._rng.integers(1, self.config.max_duplicates + 1))
            for _ in range(n_dups):
                out.append(self._duplicate_of(template))
        return out

    def _simulate_pair(self, chrom: Optional[int]) -> List[AlignedRead]:
        """A forward/reverse read pair from one fragment."""
        config = self.config
        chrom = self._pick_chrom(chrom)
        fragment_len = max(
            2 * config.read_length,
            int(self._rng.normal(config.mean_fragment_length, 50)),
        )
        chrom_len = self.genome.length(chrom)
        if fragment_len >= chrom_len:
            fragment_len = chrom_len - 1
        start = int(self._rng.integers(0, chrom_len - fragment_len))
        name = self._next_name()
        read_group = int(self._rng.integers(0, max(1, config.read_groups)))

        first = self._read_at(chrom, start, name, read_group, reverse=False)
        mate_start = start + fragment_len - config.read_length
        second = self._read_at(chrom, mate_start, name, read_group, reverse=True)

        first.flags |= (FLAG_PAIRED | FLAG_PROPER_PAIR | FLAG_FIRST_IN_PAIR
                        | FLAG_MATE_REVERSE)
        second.flags |= FLAG_PAIRED | FLAG_PROPER_PAIR | FLAG_SECOND_IN_PAIR
        first.mate_chrom = second.mate_chrom = chrom
        first.mate_pos, second.mate_pos = second.pos, first.pos
        return [first, second]

    # -- read-level simulation ----------------------------------------------------

    def _draw_read(self, chrom: Optional[int]) -> AlignedRead:
        chrom = self._pick_chrom(chrom)
        max_start = self.genome.length(chrom) - 2 * self.config.read_length
        if max_start <= 0:
            raise ValueError(f"chromosome {chrom} too short for reads")
        start = int(self._rng.integers(0, max_start))
        read_group = int(self._rng.integers(0, max(1, self.config.read_groups)))
        reverse = bool(self._rng.random() < 0.5)
        return self._read_at(chrom, start, self._next_name(), read_group, reverse)

    def _read_at(
        self, chrom: int, start: int, name: str, read_group: int, reverse: bool
    ) -> AlignedRead:
        """Build one read: walk the reference from ``start`` emitting CIGAR
        elements and read bases until ``read_length`` bases are produced."""
        config = self.config
        rng = self._rng
        ref = self.genome[chrom].seq

        front_clip = 0
        back_clip = 0
        if rng.random() < config.soft_clip_rate:
            front_clip = int(rng.integers(1, config.max_soft_clip + 1))
        if rng.random() < config.soft_clip_rate:
            back_clip = int(rng.integers(1, config.max_soft_clip + 1))

        body_len = config.read_length - front_clip - back_clip
        seq: List[int] = []
        elements: List[CigarElement] = []

        if front_clip:
            elements.append(CigarElement(front_clip, "S"))
            seq.extend(int(b) for b in rng.integers(0, 4, size=front_clip))

        # The aligned body: mostly M, with occasional I/D events.
        ref_pos = start
        emitted = 0
        run_m = 0
        while emitted < body_len and ref_pos < len(ref) - config.max_indel_length:
            draw = rng.random()
            if draw < config.insertion_rate and emitted > 0 and emitted < body_len - 1:
                if run_m:
                    elements.append(CigarElement(run_m, "M"))
                    run_m = 0
                ins_len = min(
                    int(rng.integers(1, config.max_indel_length + 1)),
                    body_len - emitted - 1,
                )
                elements.append(CigarElement(ins_len, "I"))
                seq.extend(int(b) for b in rng.integers(0, 4, size=ins_len))
                emitted += ins_len
            elif draw < config.insertion_rate + config.deletion_rate and emitted > 0:
                if run_m:
                    elements.append(CigarElement(run_m, "M"))
                    run_m = 0
                del_len = int(rng.integers(1, config.max_indel_length + 1))
                elements.append(CigarElement(del_len, "D"))
                ref_pos += del_len
            else:
                base = int(ref[ref_pos])
                if rng.random() < config.substitution_rate:
                    base = (base + int(rng.integers(1, 4))) % 4
                seq.append(base)
                ref_pos += 1
                emitted += 1
                run_m += 1
        if run_m:
            elements.append(CigarElement(run_m, "M"))

        if back_clip:
            elements.append(CigarElement(back_clip, "S"))
            seq.extend(int(b) for b in rng.integers(0, 4, size=back_clip))

        qual = self._draw_qualities(len(seq), read_group)
        flags = FLAG_REVERSE if reverse else 0
        return AlignedRead(
            name=name,
            chrom=chrom,
            pos=start,
            cigar=Cigar(elements),
            seq=np.array(seq, dtype=np.uint8),
            qual=qual,
            flags=flags,
            read_group=read_group,
        )

    def _duplicate_of(self, template: AlignedRead) -> AlignedRead:
        """A PCR duplicate: same alignment key, fresh quality scores and an
        independent re-read of the bases (duplicates are separate optical
        measurements of the same amplified fragment)."""
        rng = self._rng
        seq = template.seq.copy()
        flips = rng.random(len(seq)) < self.config.substitution_rate
        seq[flips] = (seq[flips] + rng.integers(1, 4, size=int(flips.sum()))) % 4
        return AlignedRead(
            name=self._next_name(),
            chrom=template.chrom,
            pos=template.pos,
            cigar=template.cigar,
            seq=seq,
            qual=self._draw_qualities(len(seq), template.read_group),
            flags=template.flags,
            read_group=template.read_group,
        )

    # -- helpers ---------------------------------------------------------------

    def _draw_qualities(self, length: int, read_group: int) -> np.ndarray:
        """Quality scores with per-cycle decay and per-lane bias; clamped to
        the Phred range [2, 41] Illumina instruments emit."""
        config = self.config
        cycle_decay = np.linspace(0, 6, num=length)
        noise = self._rng.integers(
            -config.quality_spread, config.quality_spread + 1, size=length
        )
        lane = self._lane_bias[read_group % len(self._lane_bias)]
        scores = config.base_quality - cycle_decay + noise + lane
        return np.clip(np.round(scores), 2, 41).astype(np.uint8)

    def _pick_chrom(self, chrom: Optional[int]) -> int:
        if chrom is not None:
            if chrom not in self.genome:
                raise KeyError(f"no chromosome {chrom} in genome")
            return chrom
        chroms = self.genome.chromosomes
        lengths = np.array([self.genome.length(c) for c in chroms], dtype=float)
        return int(self._rng.choice(chroms, p=lengths / lengths.sum()))

    def _next_name(self) -> str:
        self._serial += 1
        return f"sim{self._serial:08d}"


def reverse_read_view(read: AlignedRead) -> np.ndarray:
    """The reverse-complemented sequence of a reverse-strand read, i.e. the
    bases in original machine (cycle) order.  BQSR's cycle covariate counts
    cycles in machine order, which for reverse reads runs opposite to
    reference order."""
    if not read.is_reverse:
        return read.seq
    return reverse_complement(read.seq)
