"""FASTA and FASTQ I/O.

Real genomics deployments exchange references as FASTA and raw reads as
FASTQ; Genesis's primary analysis stage consumes FASTQ before alignment.
These are minimal, dependency-free readers/writers for both formats, with
the chromosome-name conventions used across the reproduction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, TextIO, Tuple

import numpy as np

from .read import AlignedRead
from .reference import Chromosome, ReferenceGenome, chromosome_name
from .sequences import decode_sequence, encode_sequence

_LINE_WIDTH = 70


def _parse_chrom(name: str) -> int:
    cleaned = name.strip().split()[0]
    if cleaned.startswith("chr"):
        cleaned = cleaned[3:]
    return {"X": 23, "Y": 24}.get(cleaned) or int(cleaned)


# -- FASTA -----------------------------------------------------------------------


def write_fasta(handle: TextIO, genome: ReferenceGenome) -> int:
    """Write a genome as FASTA; returns the number of records."""
    count = 0
    for chrom in genome.chromosomes:
        handle.write(f">chr{chromosome_name(chrom)}\n")
        text = decode_sequence(genome[chrom].seq)
        for start in range(0, len(text), _LINE_WIDTH):
            handle.write(text[start:start + _LINE_WIDTH] + "\n")
        count += 1
    return count


def read_fasta(handle: TextIO, snp_rate: float = 0.0, seed: int = 0) -> ReferenceGenome:
    """Parse FASTA into a :class:`ReferenceGenome`.

    FASTA carries no known-SNP annotation; ``snp_rate`` optionally draws a
    synthetic IS_SNP bitmap (0 leaves all positions unmarked).
    """
    rng = np.random.default_rng(seed)
    chromosomes: List[Chromosome] = []
    name = None
    parts: List[str] = []

    def flush() -> None:
        if name is None:
            return
        seq = encode_sequence("".join(parts))
        if snp_rate > 0:
            is_snp = rng.random(len(seq)) < snp_rate
        else:
            is_snp = np.zeros(len(seq), dtype=bool)
        chromosomes.append(Chromosome(_parse_chrom(name), seq, is_snp))

    for line in handle:
        line = line.strip()
        if not line:
            continue
        if line.startswith(">"):
            flush()
            name = line[1:]
            parts = []
        else:
            parts.append(line)
    flush()
    return ReferenceGenome(chromosomes)


# -- FASTQ -----------------------------------------------------------------------


def write_fastq(handle: TextIO, reads: Iterable[AlignedRead]) -> int:
    """Write reads as FASTQ (sequence + qualities; alignment dropped, as
    FASTQ predates alignment).  Returns the record count."""
    count = 0
    for read in reads:
        quals = "".join(chr(int(q) + 33) for q in read.qual)
        handle.write(f"@{read.name}\n{read.seq_str}\n+\n{quals}\n")
        count += 1
    return count


def read_fastq(handle: TextIO) -> List[Tuple[str, np.ndarray, np.ndarray]]:
    """Parse FASTQ into ``(name, seq_codes, quals)`` tuples — the raw
    machine output the primary-analysis stage would hand to an aligner."""
    records: List[Tuple[str, np.ndarray, np.ndarray]] = []
    lines = [line.rstrip("\n") for line in handle if line.strip()]
    if len(lines) % 4 != 0:
        raise ValueError("FASTQ record count is not a multiple of 4")
    for i in range(0, len(lines), 4):
        header, seq_text, plus, qual_text = lines[i:i + 4]
        if not header.startswith("@") or not plus.startswith("+"):
            raise ValueError(f"malformed FASTQ record at line {i + 1}")
        if len(seq_text) != len(qual_text):
            raise ValueError(f"SEQ/QUAL length mismatch in record {header}")
        records.append((
            header[1:].split()[0],
            encode_sequence(seq_text),
            np.array([ord(ch) - 33 for ch in qual_text], dtype=np.uint8),
        ))
    return records


def fastq_stats(records) -> Dict[str, float]:
    """Basic QC statistics over FASTQ records (read count, mean length,
    mean quality) — the first thing any pipeline reports."""
    if not records:
        return {"reads": 0, "mean_length": 0.0, "mean_quality": 0.0}
    lengths = [len(seq) for _name, seq, _qual in records]
    quality_sum = sum(float(qual.sum()) for _n, _s, qual in records)
    total_bases = sum(lengths)
    return {
        "reads": len(records),
        "mean_length": total_bases / len(records),
        "mean_quality": quality_sum / max(1, total_bases),
    }
