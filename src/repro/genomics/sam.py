"""Minimal SAM-style text serialization for aligned reads.

Real pipelines exchange reads as SAM/BAM.  This module provides a small,
dependency-free text round-trip so examples can persist simulated data and
so the metadata-update stage's NM/MD/UQ tags appear in the familiar
``TAG:TYPE:VALUE`` form.  Only the fields the reproduction uses are encoded.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, TextIO

from .cigar import Cigar
from .read import AlignedRead
from .reference import ReferenceGenome, chromosome_name
from .sequences import encode_sequence

_HEADER_PREFIX = "@"


def _encode_tags(read: AlignedRead) -> List[str]:
    fields = [f"RG:Z:lane{read.read_group}"]
    for tag in ("NM", "UQ"):
        if tag in read.tags:
            fields.append(f"{tag}:i:{read.tags[tag]}")
    if "MD" in read.tags:
        fields.append(f"MD:Z:{read.tags['MD']}")
    return fields


def format_read(read: AlignedRead) -> str:
    """One SAM-style line for a read."""
    quals = "".join(chr(int(q) + 33) for q in read.qual)
    columns = [
        read.name,
        str(read.flags),
        chromosome_name(read.chrom),
        str(read.pos + 1),  # SAM is 1-based
        str(read.mapq),
        str(read.cigar),
        "=" if read.mate_chrom == read.chrom and read.is_paired else "*",
        str(read.mate_pos + 1) if read.mate_pos >= 0 else "0",
        "0",
        read.seq_str,
        quals,
    ]
    columns.extend(_encode_tags(read))
    return "\t".join(columns)


def parse_read(line: str) -> AlignedRead:
    """Parse one line produced by :func:`format_read`."""
    columns = line.rstrip("\n").split("\t")
    if len(columns) < 11:
        raise ValueError(f"malformed SAM line: {line!r}")
    name, flags, chrom, pos, mapq, cigar, _rnext, pnext, _tlen, seq, quals = columns[:11]
    chrom_id = {"X": 23, "Y": 24}.get(chrom) or int(chrom)
    read = AlignedRead(
        name=name,
        chrom=chrom_id,
        pos=int(pos) - 1,
        cigar=Cigar.parse(cigar),
        seq=encode_sequence(seq),
        qual=[ord(ch) - 33 for ch in quals],
        flags=int(flags),
        mapq=int(mapq),
        mate_pos=int(pnext) - 1,
    )
    for field in columns[11:]:
        tag, typ, value = field.split(":", 2)
        if tag == "RG":
            read.read_group = int(value.replace("lane", "") or 0)
        elif typ == "i":
            read.tags[tag] = int(value)
        else:
            read.tags[tag] = value
    return read


def write_sam(handle: TextIO, reads: Iterable[AlignedRead],
              genome: Optional[ReferenceGenome] = None) -> int:
    """Write reads (and an @SQ header if a genome is given); returns the
    number of read lines written."""
    if genome is not None:
        for chrom in genome.chromosomes:
            handle.write(
                f"@SQ\tSN:{chromosome_name(chrom)}\tLN:{genome.length(chrom)}\n"
            )
    count = 0
    for read in reads:
        handle.write(format_read(read) + "\n")
        count += 1
    return count


def read_sam(handle: TextIO) -> List[AlignedRead]:
    """Parse all read lines from a SAM-style stream, skipping headers."""
    reads = []
    for line in handle:
        if not line.strip() or line.startswith(_HEADER_PREFIX):
            continue
        reads.append(parse_read(line))
    return reads
