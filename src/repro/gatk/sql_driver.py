"""SQL-driven preprocessing stage drivers (Section IV via Section III-B).

The GATK4-style baselines in this package (:mod:`.markdup`,
:mod:`.metadata`, :mod:`.bqsr`) walk reads one Python object at a time.
This module re-expresses the data-parallel core of each stage as an
extended-SQL script over the READS/REF tables — the relational
formulation the Genesis accelerator executes — and runs it through
:class:`~repro.sql.executor.Executor`, so the same stage script executes
on the row-at-a-time ``"reference"`` backend or the numpy-vectorized
``"fast"`` backend bit-identically (``tests/test_sql_driver.py`` pins
both against the software oracles).

Division of labour mirrors the paper:

* **mark duplicates** (Figure 10): the host builds pair-aware fragments
  with dictionary-encoded keys; SQL does the coordinate sort, the
  per-key survivor selection (GROUP BY + MAX), and the duplicate join.
* **metadata update** (Figure 11): SQL explodes the reference partition,
  LEFT-joins exploded read bases against it, and reduces NM/UQ per read;
  the MD string is emitted by the ``MDGen`` custom module
  (Section III-F), exactly the paper's host/accelerator split.
* **BQSR covariate tables** (Figure 12): SQL joins M-bases with the
  reference, filters known SNPs, and GROUP-BYs the two covariate bins;
  the host scatter-adds the per-bin counts into the SPM-shaped arrays.

The reference-base join shifts the base domain (``SEQ + 1 AS REFP``) so
the LEFT-join NULL sentinel ``0`` cannot collide with base code 0 — the
backends' documented NULL contract (:mod:`repro.sql.backends`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs.registry import MetricsRegistry
from ..sql.executor import Executor
from ..tables.partition import (
    PartitionedReads,
    PartitionedReference,
    reference_row_table,
)
from ..tables.table import Table
from ..tables.schema import Schema
from ..genomics.read import AlignedRead
from .bqsr import CovariateTables, n_cycle_values
from .markdup import MarkDuplicatesResult, _mate_map, duplicate_key
from .metadata import MdBuilder, ReadMetadata

#: Fragment scores pack (quality, earliest-member tiebreak) into one
#: int64 so ``MAX(SCORE)`` reproduces the oracle's survivor choice:
#: highest summed quality, ties broken toward the earliest fragment.
_SCORE_BASE = 1 << 32

_READ_INDEX_SCHEMA = Schema.of(IDX="int64", CHR="uint8", POS="uint32")

_FRAGMENTS_SCHEMA = Schema.of(FRAGID="int64", KEYID="int64", SCORE="int64")

#: Coordinate sort (Section IV-B) as a query: stable ORDER BY (CHR, POS).
MARKDUP_SORT_QUERY = "SELECT IDX, CHR, POS FROM ReadIndex ORDER BY CHR, POS"

#: Survivor selection + duplicate identification over host-built
#: fragments (Figure 10's reduction, relationally).
MARKDUP_SCRIPT = """
CREATE TABLE Winners AS
SELECT KEYID, MAX(SCORE) AS BEST, COUNT(*) AS N
FROM Fragments GROUP BY KEYID;

CREATE TABLE Duplicates AS
SELECT Fragments.FRAGID AS FRAGID
FROM Fragments INNER JOIN Winners ON Fragments.KEYID = Winners.KEYID
WHERE Fragments.SCORE != Winners.BEST;

CREATE TABLE DupStats AS
SELECT COUNT(N > 1) AS SETS FROM Winners;
"""

#: Metadata update (Figure 11): explode the reference, LEFT-join read
#: bases on position, reduce NM/UQ per read, then hand the joined base
#: stream to the MDGen custom module for the MD string.
METADATA_SCRIPT = """
CREATE TABLE RefBases AS
PosExplode (ReferenceRow.SEQ, ReferenceRow.REFPOS)
FROM ReferenceRow;

CREATE TABLE RefShift AS
SELECT POS, SEQ + 1 AS REFP FROM RefBases;

CREATE TABLE Joined AS
SELECT Bases.READID AS READID, Bases.OP AS OP, Bases.SEQ AS SEQ,
       Bases.QUAL AS QUAL, RefShift.REFP AS REFP
FROM Bases LEFT JOIN RefShift ON Bases.POS = RefShift.POS;

CREATE TABLE Tags AS
SELECT READID,
       SUM((OP != 0) OR (SEQ + 1 != REFP)) AS NM,
       SUM(QUAL * ((OP == 0) AND (SEQ + 1 != REFP))) AS UQ
FROM Joined GROUP BY READID;

EXEC MDGen;
"""

#: BQSR covariate construction (Figure 12): M-bases joined with the
#: reference, known-SNP sites filtered, two GROUP BYs over the bin ids.
BQSR_SCRIPT = """
CREATE TABLE RefSeq AS
PosExplode (ReferenceRow.SEQ, ReferenceRow.REFPOS)
FROM ReferenceRow;

CREATE TABLE RefSnp AS
PosExplode (ReferenceRow.IS_SNP, ReferenceRow.REFPOS)
FROM ReferenceRow;

CREATE TABLE Ref AS
SELECT RefSeq.POS AS POS, RefSeq.SEQ AS REFSEQ, RefSnp.IS_SNP AS ISSNP
FROM RefSeq INNER JOIN RefSnp ON RefSeq.POS = RefSnp.POS;

CREATE TABLE MBases AS
SELECT POS, SEQ, QUAL, CYC, CTX FROM Bases WHERE OP == 0;

CREATE TABLE Obs AS
SELECT MBases.SEQ AS SEQ, MBases.QUAL AS QUAL, MBases.CYC AS CYC,
       MBases.CTX AS CTX, Ref.REFSEQ AS REFSEQ
FROM MBases INNER JOIN Ref ON MBases.POS = Ref.POS
WHERE Ref.ISSNP == 0;

CREATE TABLE CycleObs AS
SELECT QUAL * @NCYC + CYC AS B1, (SEQ != REFSEQ) AS ERR FROM Obs;

CREATE TABLE CycleBins AS
SELECT B1, COUNT(*) AS N, SUM(ERR) AS E FROM CycleObs GROUP BY B1;

CREATE TABLE ContextObs AS
SELECT QUAL * 16 + CTX AS B2, (SEQ != REFSEQ) AS ERR FROM Obs
WHERE CTX >= 0;

CREATE TABLE ContextBins AS
SELECT B2, COUNT(*) AS N, SUM(ERR) AS E FROM ContextObs GROUP BY B2;
"""


# -- mark duplicates ----------------------------------------------------------------


def _build_fragments(
    sorted_reads: List[AlignedRead], sums: List[int]
) -> Tuple[List[dict], List[Tuple[int, ...]]]:
    """Pair-aware fragments over coordinate-sorted reads: one row per
    fragment with a dictionary-encoded key and the packed score."""
    mates = _mate_map(sorted_reads)
    key_ids: Dict[tuple, int] = {}
    rows: List[dict] = []
    members_of: List[Tuple[int, ...]] = []
    visited: set = set()
    for index, read in enumerate(sorted_reads):
        if index in visited:
            continue
        mate = mates.get(index)
        if mate is not None:
            visited.add(mate)
            key = duplicate_key(read, sorted_reads[mate])
            members: Tuple[int, ...] = (index, mate)
            quality = sums[index] + sums[mate]
        else:
            key = duplicate_key(read)
            members = (index,)
            quality = sums[index]
        visited.add(index)
        key_id = key_ids.setdefault(key, len(key_ids))
        rows.append({
            "FRAGID": len(members_of),
            "KEYID": key_id,
            "SCORE": quality * _SCORE_BASE + (_SCORE_BASE - 1 - members[0]),
        })
        members_of.append(members)
    return rows, members_of


def sql_mark_duplicates(
    reads: List[AlignedRead],
    backend: str = "reference",
    metrics: Optional[MetricsRegistry] = None,
) -> MarkDuplicatesResult:
    """Mark-duplicates with the sort/group/join expressed in SQL.

    Bit-identical to :func:`repro.gatk.markdup.mark_duplicates` on any
    read set, on either execution backend.
    """
    if not reads:
        return MarkDuplicatesResult([], [], 0)
    executor = Executor(backend=backend, metrics=metrics)
    executor.register_table(
        "ReadIndex",
        Table.from_rows(_READ_INDEX_SCHEMA, [
            {"IDX": i, "CHR": read.chrom, "POS": read.pos}
            for i, read in enumerate(reads)
        ]),
    )
    order = executor.query(MARKDUP_SORT_QUERY)
    sorted_reads = [reads[int(i)] for i in order.column("IDX")]
    for read in sorted_reads:
        read.set_duplicate(False)
    sums = [read.quality_sum() for read in sorted_reads]

    rows, members_of = _build_fragments(sorted_reads, sums)
    executor.register_table(
        "Fragments", Table.from_rows(_FRAGMENTS_SCHEMA, rows)
    )
    executor.execute(MARKDUP_SCRIPT)

    duplicate_indices: List[int] = []
    for frag_id in executor.tables["Duplicates"].column("FRAGID"):
        for index in members_of[int(frag_id)]:
            sorted_reads[index].set_duplicate(True)
            duplicate_indices.append(index)
    duplicate_indices.sort()
    duplicate_sets = int(executor.tables["DupStats"].column("SETS")[0])
    return MarkDuplicatesResult(sorted_reads, duplicate_indices, duplicate_sets)


# -- metadata update ----------------------------------------------------------------


def _mdgen(executor: Executor, out: Dict[int, str]) -> None:
    """The MDGen custom module (Section III-F): consume the joined base
    stream in read order and emit one MD string per read."""
    joined = executor.tables["Joined"]
    read_ids = joined.column("READID")
    ops = joined.column("OP")
    seqs = joined.column("SEQ")
    refps = joined.column("REFP")
    builders: Dict[int, MdBuilder] = {}
    for i in range(joined.num_rows):
        builder = builders.setdefault(int(read_ids[i]), MdBuilder())
        op = int(ops[i])
        if op == 0:
            if int(seqs[i]) + 1 == int(refps[i]):
                builder.match()
            else:
                builder.mismatch(int(refps[i]) - 1)
        elif op == 2:
            builder.deletion(int(refps[i]) - 1)
    for read_id, builder in builders.items():
        out[read_id] = builder.finish()


def sql_update_metadata(
    partitions: PartitionedReads,
    reference: PartitionedReference,
    read_length: int,
    backend: str = "reference",
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[int, ReadMetadata]:
    """NM/MD/UQ per read (keyed by ROWID) via the Figure 11 query plan.

    Bit-identical to :func:`repro.gatk.metadata.compute_read_metadata`
    on every read, on either backend.
    """
    out: Dict[int, ReadMetadata] = {}
    for pid, part in partitions:
        executor = Executor(backend=backend, metrics=metrics)
        bases = executor._timed(
            "explode_reads",
            lambda: executor.backend.explode_reads(part, read_length),
        )
        executor.register_table("Bases", bases)
        executor.register_table(
            "ReferenceRow", reference_row_table(reference.lookup(pid))
        )
        md_out: Dict[int, str] = {}
        executor.register_custom_module(
            "MDGen", lambda ex, **_bindings: _mdgen(ex, md_out)
        )
        executor.execute(METADATA_SCRIPT)
        for rowid in part.column("ROWID"):
            out[int(rowid)] = ReadMetadata(nm=0, md="0", uq=0)
        tags = executor.tables["Tags"]
        for rid, nm, uq in zip(
            tags.column("READID"), tags.column("NM"), tags.column("UQ")
        ):
            out[int(rid)] = ReadMetadata(
                nm=int(nm), md=md_out.get(int(rid), "0"), uq=int(uq)
            )
    return out


# -- BQSR covariate tables ----------------------------------------------------------


def sql_build_covariate_tables(
    group_partitions: PartitionedReads,
    reference: PartitionedReference,
    read_length: int,
    backend: str = "reference",
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[int, CovariateTables]:
    """Covariate tables per read group via the Figure 12 query plan.

    ``group_partitions`` must be partitioned by read group
    (:func:`repro.tables.partition.partition_reads_by_group`) so each
    partition's bins land in one group's SPM arrays.  Bit-identical to
    :func:`repro.gatk.bqsr.build_covariate_tables`, on either backend.
    """
    tables: Dict[int, CovariateTables] = {}
    for pid, part in group_partitions:
        groups = np.unique(np.asarray(part.column("RG")))
        if pid.read_group >= 0:
            read_group = pid.read_group
        elif len(groups) == 1:
            read_group = int(groups[0])
        else:
            raise ValueError(
                f"partition {pid} mixes read groups {groups.tolist()}; "
                "use partition_reads_by_group"
            )
        table = tables.setdefault(read_group, CovariateTables(read_length))

        executor = Executor(backend=backend, metrics=metrics)
        bases = executor._timed(
            "explode_reads",
            lambda: executor.backend.explode_reads(part, read_length),
        )
        executor.register_table("Bases", bases)
        executor.register_table(
            "ReferenceRow", reference_row_table(reference.lookup(pid))
        )
        executor.set_variable("NCYC", n_cycle_values(read_length))
        executor.execute(BQSR_SCRIPT)

        cycle_bins = executor.tables["CycleBins"]
        np.add.at(table.total_cycle,
                  np.asarray(cycle_bins.column("B1")),
                  np.asarray(cycle_bins.column("N")))
        np.add.at(table.error_cycle,
                  np.asarray(cycle_bins.column("B1")),
                  np.asarray(cycle_bins.column("E")))
        context_bins = executor.tables["ContextBins"]
        np.add.at(table.total_context,
                  np.asarray(context_bins.column("B2")),
                  np.asarray(context_bins.column("N")))
        np.add.at(table.error_context,
                  np.asarray(context_bins.column("B2")),
                  np.asarray(context_bins.column("E")))
    return tables
