"""Active-region determination (HaplotypeCaller's first step).

Section IV-E names "active region determination in the HaplotypeCaller"
as a Genesis target: it is pure data manipulation — scan every aligned
base, accumulate per-position *activity* (mismatches and indel events)
and *depth*, then threshold and merge into candidate windows that the
expensive local-assembly step will examine.

This module is the software baseline; :mod:`repro.accel.active_region`
builds the Genesis pipeline that produces the identical activity/depth
buffers in hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..genomics.read import AlignedRead
from ..genomics.reference import ReferenceGenome


@dataclass(frozen=True)
class ActiveRegion:
    """One candidate window for local reassembly."""

    chrom: int
    start: int
    end: int  # inclusive

    def __len__(self) -> int:
        return self.end - self.start + 1

    def overlaps(self, other: "ActiveRegion") -> bool:
        """Do the two regions share any position?"""
        return (self.chrom == other.chrom
                and self.start <= other.end and other.start <= self.end)


@dataclass
class ActivityProfile:
    """Per-position activity and depth over one interval."""

    chrom: int
    start: int
    activity: np.ndarray
    depth: np.ndarray

    def __post_init__(self) -> None:
        self.activity = np.asarray(self.activity, dtype=np.int64)
        self.depth = np.asarray(self.depth, dtype=np.int64)
        if len(self.activity) != len(self.depth):
            raise ValueError("activity and depth must align")


def compute_activity(
    reads: Iterable[AlignedRead],
    genome: ReferenceGenome,
    chrom: int,
    start: int,
    length: int,
) -> ActivityProfile:
    """Accumulate activity/depth over ``[start, start+length)`` of one
    chromosome.

    Scoring: every aligned base adds 1 depth; a mismatching aligned base
    adds 1 activity; every deleted reference base adds 1 activity at its
    position; an insertion adds 1 activity at the anchoring position
    (the aligned position before the inserted bases).
    """
    activity = np.zeros(length, dtype=np.int64)
    depth = np.zeros(length, dtype=np.int64)
    ref = genome[chrom].seq

    def bump(array, position):
        offset = position - start
        if 0 <= offset < length:
            array[offset] += 1

    for read in reads:
        if read.chrom != chrom or read.is_duplicate:
            continue
        last_aligned = read.pos
        for op, ref_pos, read_index in read.cigar.walk(read.pos):
            if op == "M":
                bump(depth, ref_pos)
                if int(read.seq[read_index]) != int(ref[ref_pos]):
                    bump(activity, ref_pos)
                last_aligned = ref_pos
            elif op == "D":
                bump(activity, ref_pos)
                last_aligned = ref_pos
            elif op == "I":
                bump(activity, last_aligned)
    return ActivityProfile(chrom, start, activity, depth)


@dataclass
class ActiveRegionConfig:
    """Thresholds for region extraction."""

    min_depth: int = 4
    min_activity_fraction: float = 0.12
    max_gap: int = 10
    padding: int = 5
    min_region_size: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.min_activity_fraction <= 1.0:
            raise ValueError("min_activity_fraction must be in (0, 1]")


def extract_regions(
    profile: ActivityProfile,
    config: Optional[ActiveRegionConfig] = None,
) -> List[ActiveRegion]:
    """Threshold an activity profile into merged, padded regions.

    A position is *active* when its depth clears ``min_depth`` and
    activity/depth clears ``min_activity_fraction``.  Active positions
    within ``max_gap`` of each other merge; regions get ``padding`` on
    both sides (clamped to the profile interval).
    """
    config = config or ActiveRegionConfig()
    active = (
        (profile.depth >= config.min_depth)
        & (profile.activity >= config.min_activity_fraction * profile.depth)
        & (profile.activity > 0)
    )
    positions = np.nonzero(active)[0]
    if positions.size == 0:
        return []
    regions: List[Tuple[int, int]] = []
    run_start = run_end = int(positions[0])
    for offset in positions[1:]:
        offset = int(offset)
        if offset - run_end <= config.max_gap:
            run_end = offset
        else:
            regions.append((run_start, run_end))
            run_start = run_end = offset
    regions.append((run_start, run_end))

    out: List[ActiveRegion] = []
    limit = len(profile.activity) - 1
    for run_start, run_end in regions:
        if run_end - run_start + 1 < config.min_region_size:
            continue
        out.append(ActiveRegion(
            chrom=profile.chrom,
            start=profile.start + max(0, run_start - config.padding),
            end=profile.start + min(limit, run_end + config.padding),
        ))
    return out


def determine_active_regions(
    reads: Iterable[AlignedRead],
    genome: ReferenceGenome,
    config: Optional[ActiveRegionConfig] = None,
) -> Dict[int, List[ActiveRegion]]:
    """Whole-genome driver: per-chromosome activity + extraction."""
    reads = list(reads)
    out: Dict[int, List[ActiveRegion]] = {}
    for chrom in genome.chromosomes:
        profile = compute_activity(
            reads, genome, chrom, 0, genome.length(chrom)
        )
        regions = extract_regions(profile, config)
        if regions:
            out[chrom] = regions
    return out
