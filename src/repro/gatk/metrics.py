"""Alignment-summary and insert-size metrics (the Picard QC companions).

Pipelines always bracket the preprocessing stages with QC passes —
CollectAlignmentSummaryMetrics, CollectInsertSizeMetrics — which are pure
data-manipulation sweeps over the reads, squarely inside the class of
operations Genesis targets.  This module provides the software metrics
plus a Genesis pipeline (:func:`run_metrics_pipeline`) that computes the
reductions in hardware: sums, counts, min/max via Reducer modules over
the relevant columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..genomics.read import AlignedRead
from ..hw.engine import Engine, RunStats
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.modules import MemoryReader, MemoryWriter, Reducer


@dataclass
class AlignmentSummary:
    """Whole-set alignment statistics."""

    total_reads: int
    total_bases: int
    duplicate_reads: int
    reverse_reads: int
    soft_clipped_reads: int
    mean_read_length: float
    mean_quality: float
    indel_reads: int

    @property
    def duplicate_fraction(self) -> float:
        """Fraction of reads flagged duplicate."""
        if self.total_reads == 0:
            return 0.0
        return self.duplicate_reads / self.total_reads


def alignment_summary(reads: Sequence[AlignedRead]) -> AlignmentSummary:
    """Software CollectAlignmentSummaryMetrics."""
    total_reads = len(reads)
    total_bases = sum(len(read.seq) for read in reads)
    quality_total = sum(read.quality_sum() for read in reads)
    duplicate_reads = sum(1 for read in reads if read.is_duplicate)
    reverse_reads = sum(1 for read in reads if read.is_reverse)
    soft_clipped = sum(
        1 for read in reads
        if read.cigar.leading_soft_clip() or read.cigar.trailing_soft_clip()
    )
    indel_reads = sum(
        1 for read in reads if any(e.op in "ID" for e in read.cigar)
    )
    return AlignmentSummary(
        total_reads=total_reads,
        total_bases=total_bases,
        duplicate_reads=duplicate_reads,
        reverse_reads=reverse_reads,
        soft_clipped_reads=soft_clipped,
        mean_read_length=total_bases / total_reads if total_reads else 0.0,
        mean_quality=quality_total / total_bases if total_bases else 0.0,
        indel_reads=indel_reads,
    )


@dataclass
class InsertSizeMetrics:
    """Paired-end fragment-length statistics."""

    pairs: int
    mean: float
    std: float
    minimum: int
    maximum: int


def insert_sizes(reads: Iterable[AlignedRead]) -> List[int]:
    """Fragment lengths of proper pairs (counted once per pair, from the
    leftmost mate)."""
    by_name = {}
    for read in reads:
        if read.is_paired:
            by_name.setdefault(read.name, []).append(read)
    sizes = []
    for mates in by_name.values():
        if len(mates) != 2:
            continue
        left = min(mates, key=lambda r: r.pos)
        right = max(mates, key=lambda r: r.pos)
        sizes.append(right.end_pos - left.pos + 1)
    return sizes


def insert_size_metrics(reads: Iterable[AlignedRead]) -> InsertSizeMetrics:
    """Software CollectInsertSizeMetrics."""
    sizes = insert_sizes(reads)
    if not sizes:
        return InsertSizeMetrics(0, 0.0, 0.0, 0, 0)
    mean = sum(sizes) / len(sizes)
    variance = sum((s - mean) ** 2 for s in sizes) / len(sizes)
    return InsertSizeMetrics(
        pairs=len(sizes),
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(sizes),
        maximum=max(sizes),
    )


@dataclass
class HwMetricsResult:
    """Hardware-computed reductions plus simulation statistics."""

    total_bases: int
    quality_total: int
    min_length: int
    max_length: int
    stats: RunStats


def run_metrics_pipeline(
    reads: Sequence[AlignedRead],
    memory_config: Optional[MemoryConfig] = None,
) -> HwMetricsResult:
    """The Genesis QC pipeline: stream SEQ lengths and QUAL through
    whole-stream Reducers (count/sum/min/max) — four reductions sharing
    one pass over the data, one flit per cycle each."""
    engine = Engine(MemorySystem(memory_config))
    qual_reader = engine.add_module(
        MemoryReader("qc.qual", engine.memory, elem_size=1)
    )
    len_reader = engine.add_module(
        MemoryReader("qc.len", engine.memory, elem_size=4)
    )
    base_count = engine.add_module(
        Reducer("qc.bases", op="count", field="value", per_item=False)
    )
    qual_sum = engine.add_module(
        Reducer("qc.qsum", op="sum", field="value", per_item=False)
    )
    len_min = engine.add_module(
        Reducer("qc.lmin", op="min", field="value", per_item=False)
    )
    len_max = engine.add_module(
        Reducer("qc.lmax", op="max", field="value", per_item=False)
    )
    from ..hw.modules import Fork

    qual_fork = engine.add_module(Fork("qc.qfork", ports=2))
    len_fork = engine.add_module(Fork("qc.lfork", ports=2))
    sink_a = engine.add_module(MemoryWriter("qc.wa", engine.memory))
    sink_b = engine.add_module(MemoryWriter("qc.wb", engine.memory))
    sink_c = engine.add_module(MemoryWriter("qc.wc", engine.memory))
    sink_d = engine.add_module(MemoryWriter("qc.wd", engine.memory))

    engine.connect(qual_reader, qual_fork)
    engine.connect(qual_fork, base_count, out_port="out0")
    engine.connect(qual_fork, qual_sum, out_port="out1")
    engine.connect(len_reader, len_fork)
    engine.connect(len_fork, len_min, out_port="out0")
    engine.connect(len_fork, len_max, out_port="out1")
    engine.connect(base_count, sink_a)
    engine.connect(qual_sum, sink_b)
    engine.connect(len_min, sink_c)
    engine.connect(len_max, sink_d)

    qual_reader.set_items([[int(q) for q in read.qual] for read in reads])
    len_reader.set_scalars([len(read.seq) for read in reads])
    stats = engine.run()
    return HwMetricsResult(
        total_bases=base_count.stream_result(),
        quality_total=qual_sum.stream_result(),
        min_length=len_min.stream_result(),
        max_length=len_max.stream_result(),
        stats=stats,
    )
