"""Base quality score recalibration (GATK4 BQSR), software baseline.

Section IV-D.  BQSR has two sub-stages:

1. **Covariate table construction** — every aligned (M) base is binned by
   two policies and, per bin, the number of observations and the number of
   empirical errors (mismatch vs. reference at a non-known-SNP site) are
   counted:

   * policy 1 (*cycle*): ``b1 = q * n_cycle_values + cycle`` where cycle is
     the base's machine cycle.  Forward reads use the read offset directly;
     reverse reads get their own cycle range (the paper: 302 cycle values
     for 151 bp reads — 151 forward + 151 reverse).
   * policy 2 (*context*): ``b2 = q * 16 + context`` where context encodes
     the dinucleotide (previous base, current base); ``AA=0, AC=1, ...,
     TT=15`` per the paper.  The first aligned base of a read has no
     predecessor and is skipped in this table (as is any base following an
     inserted/deleted/clipped base, where the reference-orientation
     predecessor is not a sequencing predecessor).

   Bases at known SNP sites are excluded from *both* counters — in the
   Figure 12 pipeline the ``!IS_SNP`` filter precedes all four SPM
   updaters.

2. **Quality score update** — per-bin empirical quality scores are computed
   with the phred-scaled smoothed error rate, and every base's reported
   quality is shifted by the hierarchy of deltas (read group, reported
   quality, cycle, context), GATK-style.  This sub-stage runs on the host
   in the paper; the accelerator only builds the tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from ..genomics.read import AlignedRead
from ..genomics.reference import ReferenceGenome

#: Number of distinct dinucleotide contexts (4 x 4), fixed by the paper.
N_CONTEXTS = 16

#: Highest reported quality score modelled (Illumina emits <= 41; GATK
#: tables allocate some headroom).
MAX_QUALITY = 64


def n_cycle_values(read_length: int) -> int:
    """Number of cycle covariate values: forward plus reverse cycles
    (302 for the paper's 151 bp reads)."""
    return 2 * read_length


def cycle_of(read: AlignedRead, read_index: int, read_length: int) -> int:
    """Machine cycle of base ``read_index``.

    Forward reads: the offset itself.  Reverse reads: the machine read the
    bases in the opposite order, and the paper assigns reverse reads their
    own cycle-value range — so the cycle is ``read_length + reversed
    offset``.
    """
    if not read.is_reverse:
        return read_index
    return read_length + (len(read.seq) - 1 - read_index)


def context_of(read: AlignedRead, read_index: int) -> int:
    """Dinucleotide context id ``prev * 4 + current`` or -1 when the base
    has no in-read predecessor (first base)."""
    if read_index <= 0:
        return -1
    prev = int(read.seq[read_index - 1])
    current = int(read.seq[read_index])
    if prev > 3 or current > 3:
        return -1
    return prev * 4 + current


@dataclass
class CovariateTables:
    """The BQSR covariate tables for one read group.

    Four arrays, exactly the four SPM buffers of Figure 12: total and
    error counts for the cycle policy (indexed by ``b1``) and for the
    context policy (indexed by ``b2``).
    """

    read_length: int
    total_cycle: np.ndarray = field(default=None)
    error_cycle: np.ndarray = field(default=None)
    total_context: np.ndarray = field(default=None)
    error_context: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        n_b1 = MAX_QUALITY * n_cycle_values(self.read_length)
        n_b2 = MAX_QUALITY * N_CONTEXTS
        if self.total_cycle is None:
            self.total_cycle = np.zeros(n_b1, dtype=np.int64)
        if self.error_cycle is None:
            self.error_cycle = np.zeros(n_b1, dtype=np.int64)
        if self.total_context is None:
            self.total_context = np.zeros(n_b2, dtype=np.int64)
        if self.error_context is None:
            self.error_context = np.zeros(n_b2, dtype=np.int64)

    def bin_cycle(self, quality: int, cycle: int) -> int:
        """``b1 = q * n_cycle_values + cycle`` (paper Section IV-D)."""
        return quality * n_cycle_values(self.read_length) + cycle

    def bin_context(self, quality: int, context: int) -> int:
        """``b2 = q * 16 + context`` (paper Section IV-D)."""
        return quality * N_CONTEXTS + context

    def merge(self, other: "CovariateTables") -> None:
        """Accumulate another table (e.g. another partition's results)."""
        if other.read_length != self.read_length:
            raise ValueError("cannot merge tables with different read lengths")
        self.total_cycle += other.total_cycle
        self.error_cycle += other.error_cycle
        self.total_context += other.total_context
        self.error_context += other.error_context

    def observations(self) -> int:
        """Total observations in the cycle table (sanity metric)."""
        return int(self.total_cycle.sum())

    def errors(self) -> int:
        """Total errors in the cycle table (sanity metric)."""
        return int(self.error_cycle.sum())


def build_covariate_tables(
    reads: Sequence[AlignedRead],
    genome: ReferenceGenome,
    read_length: int,
) -> Dict[int, CovariateTables]:
    """Covariate-table construction over all reads, grouped by read group.

    Returns one :class:`CovariateTables` per read group — the same results
    the Figure 12 accelerator produces per (partition, read-group)
    invocation after host-side merging.
    """
    tables: Dict[int, CovariateTables] = {}
    for read in reads:
        table = tables.get(read.read_group)
        if table is None:
            table = CovariateTables(read_length)
            tables[read.read_group] = table
        accumulate_read(table, read, genome)
    return tables


def accumulate_read(
    table: CovariateTables, read: AlignedRead, genome: ReferenceGenome
) -> None:
    """Add one read's aligned bases into a covariate table."""
    chromosome = genome[read.chrom]
    ref = chromosome.seq
    is_snp = chromosome.is_snp
    for op, ref_pos, read_index in read.cigar.walk(read.pos):
        if op != "M":
            continue
        if is_snp[ref_pos]:
            continue
        quality = int(read.qual[read_index])
        error = int(read.seq[read_index]) != int(ref[ref_pos])
        cycle = cycle_of(read, read_index, table.read_length)
        b1 = table.bin_cycle(quality, cycle)
        table.total_cycle[b1] += 1
        if error:
            table.error_cycle[b1] += 1
        context = context_of(read, read_index)
        if context >= 0:
            b2 = table.bin_context(quality, context)
            table.total_context[b2] += 1
            if error:
                table.error_context[b2] += 1


# -- quality score update (host-side sub-stage) --------------------------------------


def empirical_quality(errors: int, observations: int) -> float:
    """Phred-scaled smoothed empirical quality: ``-10 log10((e+1)/(n+2))``.

    The +1/+2 smoothing matches GATK's approach of seeding each bin with a
    weak prior so empty bins do not explode.
    """
    rate = (errors + 1) / (observations + 2)
    return -10.0 * math.log10(rate)


def _expected_errors(total_by_q: Dict[int, int]) -> float:
    return sum(n * 10 ** (-q / 10.0) for q, n in total_by_q.items())


@dataclass
class RecalibrationModel:
    """The per-read-group hierarchical delta model GATK derives from the
    covariate tables: a global shift, per-reported-quality deltas, and
    per-cycle / per-context residual deltas."""

    read_length: int
    global_delta: float
    quality_delta: Dict[int, float]
    cycle_delta: Dict[Tuple[int, int], float]
    context_delta: Dict[Tuple[int, int], float]

    def recalibrate(self, quality: int, cycle: int, context: int) -> int:
        """Recalibrated quality for one base (clamped to [1, 41 + 10])."""
        value = (
            quality
            + self.global_delta
            + self.quality_delta.get(quality, 0.0)
            + self.cycle_delta.get((quality, cycle), 0.0)
            + self.context_delta.get((quality, context), 0.0)
        )
        return int(min(51, max(1, round(value))))


def fit_recalibration_model(table: CovariateTables) -> RecalibrationModel:
    """Derive the hierarchical recalibration model from one read group's
    covariate tables (GATK's BaseRecalibrator math, simplified to the
    cycle/context covariates the paper uses)."""
    n_cycles = n_cycle_values(table.read_length)

    total_by_q: Dict[int, int] = {}
    errors_by_q: Dict[int, int] = {}
    for q in range(MAX_QUALITY):
        start, end = q * n_cycles, (q + 1) * n_cycles
        n = int(table.total_cycle[start:end].sum())
        if n == 0:
            continue
        total_by_q[q] = n
        errors_by_q[q] = int(table.error_cycle[start:end].sum())

    total = sum(total_by_q.values())
    errors = sum(errors_by_q.values())
    if total == 0:
        return RecalibrationModel(table.read_length, 0.0, {}, {}, {})

    expected_q = -10.0 * math.log10(
        max(1e-12, _expected_errors(total_by_q) / total)
    )
    global_delta = empirical_quality(errors, total) - expected_q

    quality_delta: Dict[int, float] = {}
    for q, n in total_by_q.items():
        quality_delta[q] = (
            empirical_quality(errors_by_q[q], n) - q - global_delta
        )

    cycle_delta: Dict[Tuple[int, int], float] = {}
    context_delta: Dict[Tuple[int, int], float] = {}
    for q in total_by_q:
        base = q + global_delta + quality_delta[q]
        for cycle in range(n_cycles):
            b1 = table.bin_cycle(q, cycle)
            n = int(table.total_cycle[b1])
            if n == 0:
                continue
            delta = empirical_quality(int(table.error_cycle[b1]), n) - base
            if delta:
                cycle_delta[(q, cycle)] = delta
        for context in range(N_CONTEXTS):
            b2 = table.bin_context(q, context)
            n = int(table.total_context[b2])
            if n == 0:
                continue
            delta = empirical_quality(int(table.error_context[b2]), n) - base
            if delta:
                context_delta[(q, context)] = delta

    return RecalibrationModel(
        table.read_length, global_delta, quality_delta, cycle_delta, context_delta
    )


def apply_recalibration(
    reads: Sequence[AlignedRead],
    models: Dict[int, RecalibrationModel],
) -> int:
    """Quality-score update sub-stage: rewrite every base quality using the
    fitted models.  Returns the number of bases whose score changed."""
    changed = 0
    for read in reads:
        model = models.get(read.read_group)
        if model is None:
            continue
        new_qual = read.qual.copy()
        for index in range(len(read.seq)):
            quality = int(read.qual[index])
            cycle = cycle_of(read, index, model.read_length)
            context = context_of(read, index)
            new_qual[index] = model.recalibrate(quality, cycle, context)
        changed += int(np.count_nonzero(new_qual != read.qual))
        read.qual = new_qual
    return changed


def run_bqsr(
    reads: Sequence[AlignedRead],
    genome: ReferenceGenome,
    read_length: int,
) -> Tuple[Dict[int, CovariateTables], int]:
    """Both BQSR sub-stages: build tables, fit models, update qualities.
    Returns the tables and the number of changed base scores."""
    tables = build_covariate_tables(reads, genome, read_length)
    models = {rg: fit_recalibration_model(t) for rg, t in tables.items()}
    changed = apply_recalibration(reads, models)
    return tables, changed
