"""Mark-duplicates stage (GATK4 MarkDuplicates), software baseline.

Section IV-B of the paper: reads originating from the same DNA fragment
(PCR amplification copies) are identified by their *unclipped 5' position*
key — POS minus the leading soft clip for forward reads, the alignment end
plus the trailing soft clip for reverse reads.  Among reads sharing a key,
all but the one with the highest sum of base quality scores are marked as
duplicates.  The stage also coordinate-sorts the reads.

The Genesis accelerator only computes the per-read quality-score sums
(Figure 10); key generation and duplicate selection stay on the host.  This
module is both the software baseline and that host-side remainder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple  # noqa: F401

from ..genomics.read import AlignedRead, pair_key


@dataclass
class MarkDuplicatesResult:
    """Outcome of the mark-duplicates stage."""

    #: Reads in coordinate-sorted order (duplicate flags set in place).
    sorted_reads: List[AlignedRead]
    #: Indices (into ``sorted_reads``) of the reads marked duplicate.
    duplicate_indices: List[int]
    #: Number of duplicate sets that contained more than one read.
    duplicate_sets: int

    @property
    def num_duplicates(self) -> int:
        """How many reads were marked as duplicates."""
        return len(self.duplicate_indices)


def duplicate_key(read: AlignedRead, mate: Optional[AlignedRead] = None) -> tuple:
    """The mark-duplicates key for a read (or pair); see
    :func:`repro.genomics.read.pair_key`."""
    return pair_key(read, mate)


def select_survivor(
    members: Sequence[int], quality_sums: Sequence[int]
) -> Tuple[int, List[int]]:
    """Given member indices of one duplicate set and each read's quality
    sum, return ``(survivor, duplicates)``.

    The survivor is the member with the highest quality sum; ties break
    toward the earliest read, matching Picard's deterministic behaviour.
    """
    best = max(members, key=lambda index: (quality_sums[index], -index))
    return best, [index for index in members if index != best]


def mark_duplicates(
    reads: Sequence[AlignedRead],
    quality_sums: Optional[Sequence[int]] = None,
) -> MarkDuplicatesResult:
    """Run the full mark-duplicates stage.

    ``quality_sums`` lets a caller inject externally computed per-read
    quality sums — this is exactly the seam where the Genesis accelerator
    plugs in (it computes the sums; the host does everything else).  When
    omitted, sums are computed in software.
    """
    ordered = sorted(
        range(len(reads)), key=lambda i: (reads[i].chrom, reads[i].pos)
    )
    sorted_reads = [reads[i] for i in ordered]
    if quality_sums is None:
        sums = [read.quality_sum() for read in sorted_reads]
    else:
        if len(quality_sums) != len(reads):
            raise ValueError("quality_sums length must match reads")
        sums = [quality_sums[i] for i in ordered]

    # Group *fragments* (a pair counts as one unit with the summed
    # quality of both mates, footnote 1) by their unclipped-5' key.
    # Pair keys and single keys have different shapes, so singles never
    # collide with pairs.
    mates = _mate_map(sorted_reads)
    by_key: Dict[tuple, List[Tuple[Tuple[int, ...], int]]] = {}
    visited: set = set()
    for index, read in enumerate(sorted_reads):
        read.set_duplicate(False)
        if index in visited:
            continue
        mate = mates.get(index)
        if mate is not None:
            visited.add(mate)
            key = duplicate_key(read, sorted_reads[mate])
            members: Tuple[int, ...] = (index, mate)
            quality = sums[index] + sums[mate]
        else:
            key = duplicate_key(read)
            members = (index,)
            quality = sums[index]
        visited.add(index)
        by_key.setdefault(key, []).append((members, quality))

    duplicate_indices: List[int] = []
    duplicate_sets = 0
    for fragments in by_key.values():
        if len(fragments) < 2:
            continue
        duplicate_sets += 1
        best = max(
            range(len(fragments)),
            key=lambda i: (fragments[i][1], -fragments[i][0][0]),
        )
        for position, (members, _quality) in enumerate(fragments):
            if position == best:
                continue
            for index in members:
                sorted_reads[index].set_duplicate(True)
                duplicate_indices.append(index)
    duplicate_indices.sort()
    return MarkDuplicatesResult(sorted_reads, duplicate_indices, duplicate_sets)


def _mate_map(reads: Sequence[AlignedRead]) -> Dict[int, int]:
    """Pair up reads that share a name (paired-end mates).  Returns a map
    from read index to its mate's index."""
    by_name: Dict[str, List[int]] = {}
    for index, read in enumerate(reads):
        if read.is_paired:
            by_name.setdefault(read.name, []).append(index)
    mates: Dict[int, int] = {}
    for indices in by_name.values():
        if len(indices) == 2:
            first, second = indices
            mates[first] = second
            mates[second] = first
    return mates
