"""GATK4-style software baselines for the preprocessing stages.

Faithful pure-Python implementations of the three GATK4 data-preprocessing
stages the paper accelerates (Section IV): mark duplicates, metadata update
(SetNmMdAndUqTags), and base quality score recalibration.  These are the
functional ground truth the Genesis accelerators are validated against, and
also the host-side remainders of each accelerated stage.
"""

from .bqsr import (
    MAX_QUALITY,
    N_CONTEXTS,
    CovariateTables,
    RecalibrationModel,
    accumulate_read,
    apply_recalibration,
    build_covariate_tables,
    context_of,
    cycle_of,
    empirical_quality,
    fit_recalibration_model,
    n_cycle_values,
    run_bqsr,
)
from .markdup import (
    MarkDuplicatesResult,
    duplicate_key,
    mark_duplicates,
    select_survivor,
)
from .metadata import (
    MdBuilder,
    ReadMetadata,
    compute_read_metadata,
    compute_read_metadata_fragment,
    recover_reference,
    update_metadata,
)
from .pipeline import PreprocessingResult, run_preprocessing

__all__ = [
    "CovariateTables",
    "MAX_QUALITY",
    "MarkDuplicatesResult",
    "MdBuilder",
    "N_CONTEXTS",
    "PreprocessingResult",
    "ReadMetadata",
    "RecalibrationModel",
    "accumulate_read",
    "apply_recalibration",
    "build_covariate_tables",
    "compute_read_metadata",
    "compute_read_metadata_fragment",
    "context_of",
    "cycle_of",
    "duplicate_key",
    "empirical_quality",
    "fit_recalibration_model",
    "mark_duplicates",
    "n_cycle_values",
    "recover_reference",
    "run_bqsr",
    "run_preprocessing",
    "select_survivor",
    "update_metadata",
]

# Section IV-E extension: active-region determination (HaplotypeCaller).
from .active_region import (
    ActiveRegion,
    ActiveRegionConfig,
    ActivityProfile,
    compute_activity,
    determine_active_regions,
    extract_regions,
)

__all__ += [
    "ActiveRegion",
    "ActiveRegionConfig",
    "ActivityProfile",
    "compute_activity",
    "determine_active_regions",
    "extract_regions",
]

# QC companions: Picard-style metrics (pure data manipulation).
from .metrics import (
    AlignmentSummary,
    HwMetricsResult,
    InsertSizeMetrics,
    alignment_summary,
    insert_size_metrics,
    insert_sizes,
    run_metrics_pipeline,
)

__all__ += [
    "AlignmentSummary",
    "HwMetricsResult",
    "InsertSizeMetrics",
    "alignment_summary",
    "insert_size_metrics",
    "insert_sizes",
    "run_metrics_pipeline",
]
