"""Metadata-update stage (GATK4 SetNmMdAndUqTags), software baseline.

Section IV-C: for each read, compute

* **NM** — the edit distance to the reference over the aligned span:
  mismatching M bases plus all inserted and all deleted bases;
* **MD** — the string from which the reference can be recovered given the
  read: runs of matches encoded as integers, each mismatch emitting the
  *reference* base, each deletion emitting ``^`` plus the deleted reference
  bases.  Insertions do not appear (they have no reference base).  The
  paper's example (Figure 2): Read 1 with mismatches at aligned bases 2 and
  9 has ``MD = 1C6A3``;
* **UQ** — the sum of quality scores of the mismatching M bases, a proxy
  for the likelihood the read is erroneous.

This module is the ground truth the Figure 11 accelerator is checked
against (bit-identical NM/MD/UQ on every read).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..genomics.cigar import Cigar
from ..genomics.read import AlignedRead
from ..genomics.reference import ReferenceGenome
from ..genomics.sequences import decode_base


@dataclass(frozen=True)
class ReadMetadata:
    """The three tags the metadata-update stage attaches to a read."""

    nm: int
    md: str
    uq: int


class MdBuilder:
    """Incremental MD-tag builder with the exact semantics of the paper's
    MDGen custom module (Section IV-C): count matches; on a mismatch emit
    the match count then the reference base; on a deletion emit the match
    count then ``^`` plus the deleted reference bases."""

    def __init__(self) -> None:
        self._parts: List[str] = []
        self._match_run = 0
        self._in_deletion = False

    def match(self) -> None:
        """One matching M base."""
        self._match_run += 1
        self._in_deletion = False

    def mismatch(self, ref_base: int) -> None:
        """One mismatching M base; emits the reference base."""
        self._flush_run()
        self._parts.append(decode_base(int(ref_base)))
        self._in_deletion = False

    def deletion(self, ref_base: int) -> None:
        """One deleted reference base; consecutive deletions share one
        ``^`` marker."""
        if not self._in_deletion:
            self._flush_run()
            self._parts.append("^")
            self._in_deletion = True
        self._parts.append(decode_base(int(ref_base)))

    def finish(self) -> str:
        """The MD string.  Always ends with a (possibly zero) match count,
        per the SAM convention."""
        self._flush_run()
        return "".join(self._parts)

    def _flush_run(self) -> None:
        # SAM convention: match counts are always emitted, including the
        # explicit "0" between adjacent mismatches and at the ends.
        self._parts.append(str(self._match_run))
        self._match_run = 0


def compute_read_metadata(read: AlignedRead, genome: ReferenceGenome) -> ReadMetadata:
    """NM/MD/UQ for one read against the reference genome."""
    ref = genome[read.chrom].seq
    return _metadata_from_arrays(read.cigar, read.pos, read.seq, read.qual, ref, 0)


def compute_read_metadata_fragment(
    read: AlignedRead, ref_fragment, fragment_start: int
) -> ReadMetadata:
    """NM/MD/UQ using a reference *fragment* starting at ``fragment_start``
    — the partitioned form the accelerator sees (REF partition rows)."""
    return _metadata_from_arrays(
        read.cigar, read.pos, read.seq, read.qual, ref_fragment, fragment_start
    )


def _metadata_from_arrays(
    cigar: Cigar, pos: int, seq, qual, ref, ref_offset: int
) -> ReadMetadata:
    nm = 0
    uq = 0
    md = MdBuilder()
    for op, ref_pos, read_index in cigar.walk(pos):
        if op == "M":
            ref_base = int(ref[ref_pos - ref_offset])
            read_base = int(seq[read_index])
            if read_base == ref_base:
                md.match()
            else:
                md.mismatch(ref_base)
                nm += 1
                uq += int(qual[read_index])
        elif op == "I":
            nm += 1
        elif op == "D":
            md.deletion(int(ref[ref_pos - ref_offset]))
            nm += 1
    return ReadMetadata(nm=nm, md=md.finish(), uq=uq)


def update_metadata(
    reads: Sequence[AlignedRead], genome: ReferenceGenome
) -> List[ReadMetadata]:
    """Run the metadata-update stage over all reads, attaching NM/MD/UQ
    tags in place and returning the computed metadata."""
    out = []
    for read in reads:
        metadata = compute_read_metadata(read, genome)
        read.tags["NM"] = metadata.nm
        read.tags["MD"] = metadata.md
        read.tags["UQ"] = metadata.uq
        out.append(metadata)
    return out


def recover_reference(read: AlignedRead, md: str) -> str:
    """Reconstruct the aligned reference bases from a read and its MD tag.

    This is the defining property of MD ("enables the recovery of the
    reference base pair sequence", Section IV-C) and is used as a
    round-trip invariant in the test suite.
    """
    aligned_read_bases: List[int] = []
    for op, _ref_pos, read_index in read.cigar.walk(read.pos):
        if op == "M":
            aligned_read_bases.append(int(read.seq[read_index]))
    out: List[str] = []
    cursor = 0
    index = 0
    while index < len(md):
        ch = md[index]
        if ch.isdigit():
            start = index
            while index < len(md) and md[index].isdigit():
                index += 1
            run = int(md[start:index])
            for _ in range(run):
                out.append(decode_base(aligned_read_bases[cursor]))
                cursor += 1
        elif ch == "^":
            index += 1
            while index < len(md) and md[index].isalpha():
                out.append(md[index])
                index += 1
        else:
            out.append(ch)
            cursor += 1
            index += 1
    return "".join(out)
