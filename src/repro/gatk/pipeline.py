"""The GATK4 Best Practices data-preprocessing pipeline, end to end.

Section IV-A: the preprocessing phase is alignment -> mark duplicates ->
metadata update -> base quality score recalibration.  Genesis accelerates
the last three; alignment is out of scope (the paper assumes a GenAx-class
alignment accelerator) and our simulator emits already-aligned reads, so
the pipeline here starts post-alignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..genomics.read import AlignedRead
from ..genomics.reference import ReferenceGenome
from .bqsr import CovariateTables, run_bqsr
from .markdup import MarkDuplicatesResult, mark_duplicates
from .metadata import ReadMetadata, update_metadata


@dataclass
class PreprocessingResult:
    """Everything the preprocessing phase produced."""

    reads: List[AlignedRead]
    markdup: MarkDuplicatesResult
    metadata: List[ReadMetadata]
    covariate_tables: Dict[int, CovariateTables]
    recalibrated_bases: int


def run_preprocessing(
    reads: Sequence[AlignedRead],
    genome: ReferenceGenome,
    read_length: int,
) -> PreprocessingResult:
    """Run mark-duplicates, metadata-update, and BQSR in order.

    Duplicates remain in the read list (flagged) but are excluded from the
    BQSR covariate statistics, as GATK4 does.
    """
    markdup_result = mark_duplicates(reads)
    sorted_reads = markdup_result.sorted_reads
    metadata = update_metadata(sorted_reads, genome)
    non_duplicates = [read for read in sorted_reads if not read.is_duplicate]
    tables, changed = run_bqsr(non_duplicates, genome, read_length)
    return PreprocessingResult(
        reads=sorted_reads,
        markdup=markdup_result,
        metadata=metadata,
        covariate_tables=tables,
        recalibrated_bases=changed,
    )
