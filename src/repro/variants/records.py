"""Variant records and genotypes.

The second phase of secondary analysis (Section IV-A) identifies genomic
variants from the preprocessed reads.  The paper does not accelerate
variant *calling*, but its Section IV-E argues Genesis applies to the
data-manipulation parts of the variant pipelines (active-region
determination, joint genotyping, VQSR set intersection).  This substrate
provides the variant data model those operations manipulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..genomics.sequences import decode_sequence

#: Genotype codes: homozygous reference, heterozygous, homozygous alt.
GENOTYPES = ("0/0", "0/1", "1/1")


@dataclass(frozen=True)
class Variant:
    """One called variant (a VCF-style record).

    ``ref`` and ``alt`` are base strings; SNVs have length-1 strings,
    insertions have ``len(alt) > len(ref)``, deletions the opposite
    (VCF anchor-base convention).
    """

    chrom: int
    pos: int
    ref: str
    alt: str
    qual: float = 0.0
    genotype: str = "0/1"
    depth: int = 0
    alt_depth: int = 0

    def __post_init__(self) -> None:
        if not self.ref or not self.alt:
            raise ValueError("ref and alt must be non-empty")
        if self.genotype not in GENOTYPES:
            raise ValueError(f"unknown genotype {self.genotype!r}")

    @property
    def is_snv(self) -> bool:
        """Single-nucleotide variant?"""
        return len(self.ref) == 1 and len(self.alt) == 1

    @property
    def is_insertion(self) -> bool:
        """Insertion relative to the reference?"""
        return len(self.alt) > len(self.ref)

    @property
    def is_deletion(self) -> bool:
        """Deletion relative to the reference?"""
        return len(self.alt) < len(self.ref)

    @property
    def allele_fraction(self) -> float:
        """Fraction of covering reads supporting the alt allele."""
        if self.depth == 0:
            return 0.0
        return self.alt_depth / self.depth

    def key(self) -> Tuple[int, int, str, str]:
        """Identity key for callset set-operations (VQSR intersection)."""
        return (self.chrom, self.pos, self.ref, self.alt)


class CallSet:
    """An ordered collection of variants (one caller's output)."""

    def __init__(self, variants: Optional[List[Variant]] = None, name: str = ""):
        self.name = name
        self._variants: List[Variant] = sorted(
            variants or [], key=lambda v: (v.chrom, v.pos)
        )

    def __len__(self) -> int:
        return len(self._variants)

    def __iter__(self):
        return iter(self._variants)

    def __getitem__(self, index: int) -> Variant:
        return self._variants[index]

    def add(self, variant: Variant) -> None:
        """Insert one variant, keeping coordinate order."""
        self._variants.append(variant)
        self._variants.sort(key=lambda v: (v.chrom, v.pos))

    def keys(self) -> set:
        """The identity keys of all member variants."""
        return {variant.key() for variant in self._variants}

    def by_chromosome(self) -> Dict[int, List[Variant]]:
        """Variants grouped by chromosome."""
        grouped: Dict[int, List[Variant]] = {}
        for variant in self._variants:
            grouped.setdefault(variant.chrom, []).append(variant)
        return grouped

    def snvs(self) -> "CallSet":
        """The SNV subset."""
        return CallSet([v for v in self._variants if v.is_snv], self.name)

    def indels(self) -> "CallSet":
        """The insertion/deletion subset."""
        return CallSet([v for v in self._variants if not v.is_snv], self.name)

    def intersect(self, other: "CallSet") -> "CallSet":
        """Variants present (by key) in both callsets — the VQSR
        training/truth-set intersection of Section IV-E."""
        other_keys = other.keys()
        return CallSet(
            [v for v in self._variants if v.key() in other_keys],
            name=f"{self.name}&{other.name}",
        )

    def subtract(self, other: "CallSet") -> "CallSet":
        """Variants only in this callset."""
        other_keys = other.keys()
        return CallSet(
            [v for v in self._variants if v.key() not in other_keys],
            name=f"{self.name}-{other.name}",
        )

    def concordance(self, truth: "CallSet") -> Dict[str, float]:
        """Precision/recall/F1 against a truth set."""
        called = self.keys()
        true = truth.keys()
        if not called or not true:
            return {"precision": 0.0, "recall": 0.0, "f1": 0.0}
        tp = len(called & true)
        precision = tp / len(called)
        recall = tp / len(true)
        if precision + recall == 0:
            return {"precision": 0.0, "recall": 0.0, "f1": 0.0}
        return {
            "precision": precision,
            "recall": recall,
            "f1": 2 * precision * recall / (precision + recall),
        }


def snv(chrom: int, pos: int, ref_code: int, alt_code: int, **kwargs) -> Variant:
    """Convenience constructor for an SNV from encoded bases."""
    return Variant(
        chrom=chrom,
        pos=pos,
        ref=decode_sequence([ref_code]),
        alt=decode_sequence([alt_code]),
        **kwargs,
    )
