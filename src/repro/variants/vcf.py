"""Minimal VCF-style serialization for callsets."""

from __future__ import annotations

from typing import List, TextIO

from ..genomics.reference import chromosome_name
from .records import CallSet, Variant

_COLUMNS = "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tSAMPLE"


def format_variant(variant: Variant) -> str:
    """One VCF data line (1-based position, GT/DP/AD sample fields)."""
    info = f"DP={variant.depth}"
    sample = f"{variant.genotype}:{variant.depth}:{variant.alt_depth}"
    return "\t".join([
        chromosome_name(variant.chrom),
        str(variant.pos + 1),
        ".",
        variant.ref,
        variant.alt,
        f"{variant.qual:.2f}",
        "PASS",
        info,
        "GT:DP:AD",
        sample,
    ])


def parse_variant(line: str) -> Variant:
    """Parse one line produced by :func:`format_variant`."""
    columns = line.rstrip("\n").split("\t")
    if len(columns) < 10:
        raise ValueError(f"malformed VCF line: {line!r}")
    chrom = {"X": 23, "Y": 24}.get(columns[0]) or int(columns[0])
    genotype, depth, alt_depth = columns[9].split(":")
    return Variant(
        chrom=chrom,
        pos=int(columns[1]) - 1,
        ref=columns[3],
        alt=columns[4],
        qual=float(columns[5]),
        genotype=genotype,
        depth=int(depth),
        alt_depth=int(alt_depth),
    )


def write_vcf(handle: TextIO, callset: CallSet) -> int:
    """Write a callset as VCF text; returns the record count."""
    handle.write("##fileformat=VCFv4.2\n")
    handle.write(f"##source=repro-genesis:{callset.name or 'callset'}\n")
    handle.write(_COLUMNS + "\n")
    count = 0
    for variant in callset:
        handle.write(format_variant(variant) + "\n")
        count += 1
    return count


def read_vcf(handle: TextIO, name: str = "") -> CallSet:
    """Parse a VCF-style stream back into a callset."""
    variants: List[Variant] = []
    for line in handle:
        if not line.strip() or line.startswith("#"):
            continue
        variants.append(parse_variant(line))
    return CallSet(variants, name=name)
