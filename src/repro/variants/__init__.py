"""Variant-discovery substrate (Section IV-A's second phase).

Variant records and callsets, a pileup-based germline caller, donor-genome
truth injection, and VCF-style serialization — the pieces needed to run
secondary analysis end to end and to exercise the Section IV-E operations
(callset intersection for VQSR, active-region determination).
"""

from .caller import (
    CallerConfig,
    PileupColumn,
    build_pileup,
    call_variants,
    genotype_likelihoods,
    inject_true_variants,
)
from .records import GENOTYPES, CallSet, Variant, snv
from .vcf import format_variant, parse_variant, read_vcf, write_vcf

__all__ = [
    "CallSet",
    "CallerConfig",
    "GENOTYPES",
    "PileupColumn",
    "Variant",
    "build_pileup",
    "call_variants",
    "format_variant",
    "genotype_likelihoods",
    "inject_true_variants",
    "parse_variant",
    "read_vcf",
    "snv",
    "write_vcf",
]
