"""A pileup-based germline variant caller.

The variant-discovery phase the preprocessing pipeline feeds
(Section IV-A).  This caller is deliberately simple — a quality-weighted
pileup genotyper in the FreeBayes/bcftools mold, not HaplotypeCaller's
local assembly — but it is a *real* caller: it consumes the preprocessed
reads (duplicates excluded, recalibrated qualities honored), computes
genotype likelihoods per site, and emits :class:`Variant` records.  It
exists so the reproduction can demonstrate the full secondary-analysis
flow end to end and measure how preprocessing quality affects calls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..genomics.read import AlignedRead
from ..genomics.reference import ReferenceGenome
from ..genomics.sequences import decode_sequence
from .records import CallSet, Variant


@dataclass
class CallerConfig:
    """Thresholds of the pileup caller."""

    min_depth: int = 4
    min_base_quality: int = 10
    min_variant_quality: float = 20.0
    max_depth: int = 1000
    het_prior: float = 1e-3

    def __post_init__(self) -> None:
        if self.min_depth < 1:
            raise ValueError("min_depth must be at least 1")


@dataclass
class PileupColumn:
    """All read observations covering one reference position."""

    chrom: int
    pos: int
    bases: List[int]
    quals: List[int]

    @property
    def depth(self) -> int:
        """Number of observations."""
        return len(self.bases)

    def base_counts(self) -> Dict[int, int]:
        """Observation counts by base code."""
        counts: Dict[int, int] = {}
        for base in self.bases:
            counts[base] = counts.get(base, 0) + 1
        return counts


def build_pileup(
    reads: Iterable[AlignedRead],
    min_base_quality: int = 10,
    skip_duplicates: bool = True,
) -> Dict[Tuple[int, int], PileupColumn]:
    """Accumulate per-position pileup columns from aligned reads.

    Only aligned (M) bases contribute; soft clips, insertions, and
    deletions are skipped, as are duplicate-flagged reads and bases below
    the quality floor.
    """
    columns: Dict[Tuple[int, int], PileupColumn] = {}
    for read in reads:
        if skip_duplicates and read.is_duplicate:
            continue
        for op, ref_pos, read_index in read.cigar.walk(read.pos):
            if op != "M":
                continue
            quality = int(read.qual[read_index])
            if quality < min_base_quality:
                continue
            key = (read.chrom, ref_pos)
            column = columns.get(key)
            if column is None:
                column = PileupColumn(read.chrom, ref_pos, [], [])
                columns[key] = column
            column.bases.append(int(read.seq[read_index]))
            column.quals.append(quality)
    return columns


def genotype_likelihoods(
    column: PileupColumn, ref_base: int, alt_base: int
) -> Tuple[float, float, float]:
    """Log10 likelihoods of (hom-ref, het, hom-alt) for one column.

    Standard diploid model: each observation is correct with probability
    ``1 - e`` (``e`` from its Phred quality); under het, either allele is
    sequenced with probability 1/2.
    """
    log_rr = log_ra = log_aa = 0.0
    for base, quality in zip(column.bases, column.quals):
        error = 10 ** (-quality / 10.0)
        p_ref = 1 - error if base == ref_base else error / 3
        p_alt = 1 - error if base == alt_base else error / 3
        log_rr += math.log10(max(p_ref, 1e-300))
        log_aa += math.log10(max(p_alt, 1e-300))
        log_ra += math.log10(max(0.5 * (p_ref + p_alt), 1e-300))
    return log_rr, log_ra, log_aa


def call_variants(
    reads: Iterable[AlignedRead],
    genome: ReferenceGenome,
    config: Optional[CallerConfig] = None,
) -> CallSet:
    """Call SNVs from preprocessed reads against the reference."""
    config = config or CallerConfig()
    pileup = build_pileup(
        reads, min_base_quality=config.min_base_quality
    )
    calls: List[Variant] = []
    log_het_prior = math.log10(config.het_prior)
    log_hom_prior = math.log10(config.het_prior / 2)
    for (chrom, pos), column in sorted(pileup.items()):
        if not config.min_depth <= column.depth <= config.max_depth:
            continue
        ref_base = int(genome[chrom].seq[pos])
        counts = column.base_counts()
        alt_candidates = [b for b in counts if b != ref_base]
        if not alt_candidates:
            continue
        alt_base = max(alt_candidates, key=lambda b: counts[b])
        log_rr, log_ra, log_aa = genotype_likelihoods(column, ref_base, alt_base)
        posteriors = {
            "0/0": log_rr,
            "0/1": log_ra + log_het_prior,
            "1/1": log_aa + log_hom_prior,
        }
        genotype = max(posteriors, key=posteriors.get)
        if genotype == "0/0":
            continue
        sorted_logs = sorted(posteriors.values(), reverse=True)
        quality = 10.0 * (sorted_logs[0] - sorted_logs[1])
        if quality < config.min_variant_quality:
            continue
        calls.append(Variant(
            chrom=chrom,
            pos=pos,
            ref=decode_sequence([ref_base]),
            alt=decode_sequence([alt_base]),
            qual=round(min(quality, 9999.0), 2),
            genotype=genotype,
            depth=column.depth,
            alt_depth=counts[alt_base],
        ))
    return CallSet(calls, name="pileup")


def inject_true_variants(
    genome: ReferenceGenome,
    rate: float = 5e-4,
    het_fraction: float = 0.6,
    seed: int = 0,
    known_site_fraction: float = 0.9,
) -> Tuple[ReferenceGenome, CallSet]:
    """Create a *donor* genome that differs from the reference at random
    SNV sites, returning the donor and the truth callset.

    This models the biological sample: reads are simulated from the donor
    but analyzed against the reference, so a correct pipeline rediscovers
    exactly these variants.  Heterozygous sites are marked in the truth
    set; the donor carries the alt allele (read simulation of het sites at
    50 % allele fraction is approximated by full substitution for
    simplicity, so callers see hom-alt evidence for all truth sites).

    ``known_site_fraction`` of the variants land on the genome's IS_SNP
    positions, mirroring reality: dbSNP catalogs most true human
    variation, which is exactly why BQSR can mask known sites without
    mistaking real variants for sequencing errors.
    """
    from ..genomics.reference import Chromosome

    if not 0.0 <= known_site_fraction <= 1.0:
        raise ValueError("known_site_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    truth: List[Variant] = []
    chromosomes = []
    for chrom in genome.chromosomes:
        source = genome[chrom]
        seq = source.seq.copy()
        n_sites = int(rng.binomial(len(seq), rate))
        known = np.nonzero(source.is_snp)[0]
        n_known = min(int(round(n_sites * known_site_fraction)), len(known))
        site_set = set()
        if n_known:
            site_set.update(
                int(p) for p in rng.choice(known, size=n_known, replace=False)
            )
        while len(site_set) < n_sites:
            site_set.add(int(rng.integers(0, len(seq))))
        sites = np.array(sorted(site_set), dtype=np.int64)
        for pos in sites:
            ref_base = int(seq[pos])
            alt_base = (ref_base + int(rng.integers(1, 4))) % 4
            seq[pos] = alt_base
            genotype = "0/1" if rng.random() < het_fraction else "1/1"
            truth.append(Variant(
                chrom=chrom,
                pos=int(pos),
                ref=decode_sequence([ref_base]),
                alt=decode_sequence([alt_base]),
                genotype=genotype,
            ))
        chromosomes.append(Chromosome(chrom, seq, source.is_snp.copy()))
    return ReferenceGenome(chromosomes), CallSet(truth, name="truth")
