"""The storage front end the runtime layers consult when charging DMAs.

:class:`~repro.runtime.api.GenesisRuntime` and :class:`~repro.runtime.
device.DevicePool` do not know about partitions or chunks — they move
bytes.  :class:`StorageFrontEnd` adapts a :class:`~repro.storage.filter.
StorageFilterPlan` to that world: the runtime enters a chunk context
(:meth:`chunk`) before configuring a partition's column DMAs, and every
input-column transfer inside the context is charged at the chunk's
survivor fraction — pruned reads cost their descriptor share instead of
their payload.  Outside a chunk context (or for partitions the plan does
not cover) charging is unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from ..tables.partition import PartitionId
from .filter import StorageFilterPlan


class StorageFrontEnd:
    """Survivor-byte accounting for a :class:`~repro.runtime.api.
    GenesisRuntime` / :class:`~repro.runtime.device.DevicePool`."""

    def __init__(self, plan: StorageFilterPlan):
        self.plan = plan
        self._pid: Optional[PartitionId] = None
        #: Input bytes the filter kept off the PCIe link so far.
        self.saved_nbytes = 0

    # -- chunk context ---------------------------------------------------------

    def enter_chunk(self, pid: PartitionId) -> None:
        self._pid = pid

    def exit_chunk(self) -> None:
        self._pid = None

    @contextmanager
    def chunk(self, pid: PartitionId) -> Iterator["StorageFrontEnd"]:
        """Scope the survivor accounting to one partition's DMAs."""
        self.enter_chunk(pid)
        try:
            yield self
        finally:
            self.exit_chunk()

    # -- charging --------------------------------------------------------------

    def admit_nbytes(self, nbytes: int) -> int:
        """Bytes actually crossing PCIe for an input DMA of ``nbytes``.

        Inside a chunk context the charge scales by the chunk's survivor
        footprint (integer arithmetic, so the accounting is bit-stable);
        outside, or for unplanned partitions, the full size is charged.
        """
        if self._pid is None:
            return nbytes
        verdict = self.plan.verdicts.get(self._pid)
        if verdict is None or verdict.raw_nbytes <= 0:
            return nbytes
        charged = nbytes * verdict.survivor_nbytes // verdict.raw_nbytes
        self.saved_nbytes += nbytes - charged
        return charged

    # -- wave accounting (delegates, so a front end can stand in for the
    #    plan anywhere run_sharded/serve expect one) ---------------------------

    def wave_nbytes(self, items) -> int:
        return self.plan.wave_nbytes(items)

    def wave_raw_nbytes(self, items) -> int:
        return self.plan.wave_raw_nbytes(items)

    def wave_pruned_rows(self, items) -> int:
        return self.plan.wave_pruned_rows(items)

    def wave_scan_seconds(self, items) -> float:
        return self.plan.wave_scan_seconds(items)

    @property
    def filtered_fraction(self) -> float:
        return self.plan.filtered_fraction

    @property
    def config(self):
        return self.plan.config

    @property
    def compression_ratio(self) -> float:
        return self.plan.compression_ratio
