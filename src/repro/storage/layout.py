"""Chunked, compression-aware read layout (the SAGe-style on-SSD format).

SAGe (PAPERS.md) observes that large-scale sequence analysis is bottlenecked
on *data preparation* — decompressing and re-shaping reads before a single
useful cycle runs — and co-designs a storage format whose chunks decode
independently and stream straight into the accelerator.  This module is the
modelled equivalent for the Genesis READS table:

* chunks are **partition-aligned**: one :class:`ReadChunk` per
  ``(CHR, POS // PSIZE [, RG])`` partition, so the unit the SSD prunes or
  ships is exactly the unit the runtime schedules
  (:func:`~repro.tables.partition.partition_reads`);
* every column is **dictionary-encoded per chunk**: the distinct values of
  the chunk form a little dictionary and rows store fixed-width bit-packed
  codes.  Bases (4 symbols) pack to 2 bits, Phred qualities ([2, 41]) to 6,
  CIGARs (a handful of distinct ``(len, op)`` codes per chunk) to 2-4 —
  without any chunk-global assumptions, because the dictionary rides in the
  chunk;
* the encoding is **lossless and exact**: :func:`decode_chunk` rebuilds the
  partition's :class:`~repro.tables.table.Table` bit-identically (same
  dtypes, same row order), which the chunk round-trip differential tests
  enforce.

The byte sizes reported here feed the in-SSD scan timing model in
:mod:`repro.storage.filter` — the filter reads *encoded* bytes off NAND at
internal bandwidth, which is what makes scanning cheap relative to shipping
raw rows over PCIe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..tables.genomic_tables import READS_SCHEMA, table_bytes
from ..tables.partition import PartitionId
from ..tables.table import Table

#: Fixed per-chunk header bytes the layout charges (magic, pid, row count,
#: column directory) — small and constant by design.
CHUNK_HEADER_BYTES = 32

#: Per-column header bytes (value count, code width, dictionary length).
COLUMN_HEADER_BYTES = 8


def _pack_codes(codes: np.ndarray, width: int) -> np.ndarray:
    """Bit-pack ``codes`` (each ``< 2**width``) into a uint8 buffer."""
    if width == 0 or len(codes) == 0:
        return np.zeros(0, dtype=np.uint8)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((codes.astype(np.uint64)[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bits.reshape(-1))


def _unpack_codes(packed: np.ndarray, count: int, width: int) -> np.ndarray:
    """Inverse of :func:`_pack_codes`: ``count`` codes of ``width`` bits."""
    if width == 0 or count == 0:
        return np.zeros(count, dtype=np.int64)
    bits = np.unpackbits(packed)[: count * width].reshape(count, width)
    weights = (1 << np.arange(width - 1, -1, -1)).astype(np.int64)
    return bits.astype(np.int64) @ weights


@dataclass(frozen=True)
class EncodedColumn:
    """One dictionary-encoded column of a chunk.

    ``dictionary`` holds the chunk's distinct values (original dtype,
    sorted), ``packed`` the bit-packed per-value codes.  Array columns
    additionally carry their per-row ``lengths`` as a nested encoded
    column so the flat value stream re-splits exactly.
    """

    dictionary: np.ndarray
    packed: np.ndarray
    count: int
    width: int
    lengths: Optional["EncodedColumn"] = None

    @property
    def nbytes(self) -> int:
        total = (
            COLUMN_HEADER_BYTES + self.dictionary.nbytes + self.packed.nbytes
        )
        if self.lengths is not None:
            total += self.lengths.nbytes
        return total


def _encode_values(values: np.ndarray) -> EncodedColumn:
    dictionary, codes = np.unique(values, return_inverse=True)
    if len(dictionary) <= 1:
        width = 0
    else:
        width = int(np.ceil(np.log2(len(dictionary))))
    packed = _pack_codes(codes.reshape(-1), width)
    return EncodedColumn(
        dictionary=dictionary, packed=packed, count=len(values), width=width
    )


def _decode_values(column: EncodedColumn) -> np.ndarray:
    if column.count == 0:
        return column.dictionary[:0].copy()
    codes = _unpack_codes(column.packed, column.count, column.width)
    return column.dictionary[codes]


@dataclass(frozen=True)
class ReadChunk:
    """One partition's reads in the on-SSD layout.

    ``payload_nbytes`` is the raw columnar payload
    (:func:`~repro.tables.genomic_tables.table_bytes`) — what the chunk
    would cost to ship undecoded; ``encoded_nbytes`` is its footprint in
    this layout (dictionaries + packed codes + headers).
    """

    pid: PartitionId
    num_rows: int
    columns: Dict[str, EncodedColumn]
    payload_nbytes: int
    encoded_nbytes: int

    @property
    def compression_ratio(self) -> float:
        if self.encoded_nbytes <= 0:
            return 1.0
        return self.payload_nbytes / self.encoded_nbytes


def encode_partition(pid: PartitionId, part: Table) -> ReadChunk:
    """Encode one read partition into its chunk (lossless)."""
    columns: Dict[str, EncodedColumn] = {}
    for spec in part.schema.columns:
        data = part.column(spec.name)
        if spec.is_array:
            lengths = np.array([len(row) for row in data], dtype=np.int64)
            flat = (
                np.concatenate(data) if len(data) and lengths.sum() > 0
                else np.zeros(0, dtype=spec.dtype)
            )
            encoded = _encode_values(flat.astype(spec.dtype, copy=False))
            columns[spec.name] = EncodedColumn(
                dictionary=encoded.dictionary, packed=encoded.packed,
                count=encoded.count, width=encoded.width,
                lengths=_encode_values(lengths),
            )
        else:
            columns[spec.name] = _encode_values(np.asarray(data))
    encoded_nbytes = CHUNK_HEADER_BYTES + sum(
        column.nbytes for column in columns.values()
    )
    return ReadChunk(
        pid=pid, num_rows=part.num_rows, columns=columns,
        payload_nbytes=table_bytes(part), encoded_nbytes=encoded_nbytes,
    )


def decode_chunk(chunk: ReadChunk, schema=READS_SCHEMA) -> Table:
    """Rebuild the partition table from its chunk, bit-identically."""
    columns: Dict[str, object] = {}
    for spec in schema.columns:
        encoded = chunk.columns[spec.name]
        values = _decode_values(encoded)
        if spec.is_array:
            lengths = _decode_values(encoded.lengths)
            splits = np.cumsum(lengths)[:-1]
            rows = np.split(values.astype(spec.dtype, copy=False), splits)
            columns[spec.name] = [
                np.asarray(row, dtype=spec.dtype) for row in rows
            ]
        else:
            columns[spec.name] = values.astype(spec.dtype, copy=False)
    if chunk.num_rows == 0:
        return Table.empty(schema)
    return Table.from_columns(schema, **columns)


@dataclass
class ChunkedReadStore:
    """All chunks of one workload, in canonical partition order."""

    chunks: Dict[PartitionId, ReadChunk]

    @property
    def payload_nbytes(self) -> int:
        return sum(chunk.payload_nbytes for chunk in self.chunks.values())

    @property
    def encoded_nbytes(self) -> int:
        return sum(chunk.encoded_nbytes for chunk in self.chunks.values())

    @property
    def num_rows(self) -> int:
        return sum(chunk.num_rows for chunk in self.chunks.values())

    def compression_ratio(self) -> float:
        encoded = self.encoded_nbytes
        if encoded <= 0:
            return 1.0
        return self.payload_nbytes / encoded

    def __len__(self) -> int:
        return len(self.chunks)

    def __contains__(self, pid: PartitionId) -> bool:
        return pid in self.chunks


def chunk_store_from_partitions(
    partitions: Iterable[Tuple[PartitionId, Table]],
) -> ChunkedReadStore:
    """Encode every partition of a workload into the chunk store."""
    chunks: Dict[PartitionId, ReadChunk] = {}
    for pid, part in partitions:
        chunks[pid] = encode_partition(pid, part)
    return ChunkedReadStore(chunks=chunks)


def decode_store(store: ChunkedReadStore, schema=READS_SCHEMA) -> List[Tuple[PartitionId, Table]]:
    """Decode the whole store back to ``(pid, Table)`` pairs (test hook)."""
    return [
        (pid, decode_chunk(chunk, schema)) for pid, chunk in store.chunks.items()
    ]
