"""The modelled in-storage exact-match filter (GenStore-style).

GenStore (PAPERS.md) shows that in real sequencing data *most* reads match
the reference exactly, and that pruning them inside the SSD — where internal
NAND bandwidth far exceeds the external PCIe link — removes the dominant
data-movement cost before it is ever paid.  Genesis (PAPER.md, Fig. 9)
measures PCIe transfer as its end-to-end bottleneck, which makes the two a
natural stack: filter in storage, accelerate the survivors.

Correctness model (why filtering cannot change results or kernel cycles)
------------------------------------------------------------------------

A read is *exactly matching* when its CIGAR is a single full-length ``M``
and its bases equal the reference slice at ``[POS, POS + LEN)``.  Such a
read's payload is **redundant with the reference partition already resident
in the device's SPM** (the scheduler ships REF rows for metadata/BQSR
anyway): the device can reconstruct it from an 8-byte descriptor
(row id, offset, length, RG, flags).  The filter therefore changes *what
crosses PCIe*, never *what the kernels compute*:

* survivors ship their full modelled row footprint
  (:data:`~repro.accel.sharding.MODEL_ROW_BYTES` per row, as before);
* pruned reads ship only :data:`DESCRIPTOR_BYTES`;
* every wave still simulates every read — per-stage kernel cycles and
  results are bit-identical to the unfiltered run *by construction*, and
  the differential tests enforce it across stages × devices × workers,
  faults included.

Timing model
------------

The pruning scan runs "inside the SSD" on its own clock: it reads each
chunk's *encoded* bytes (the SAGe-style layout of
:mod:`repro.storage.layout`) at :attr:`StorageFilterConfig.
internal_bandwidth` plus a fixed per-chunk setup.  Scan time is reported in
``storage.*`` ledger events, ``storage:<n>`` trace lanes, and the
``repro analyze --storage`` what-if — it is *not* serialized into the card
timelines, modelling a streaming SSD whose scan of wave *k+1* overlaps the
PCIe transfer of wave *k* (internal bandwidth ≫ PCIe keeps it off the
critical path; the what-if exposes the non-overlapped bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..accel.sharding import MODEL_ROW_BYTES
from ..obs.ledger import record_event
from ..runtime.device import PCIE3_BANDWIDTH
from ..tables.partition import PartitionId, PartitionedReference
from ..tables.table import Table
from .layout import ChunkedReadStore, chunk_store_from_partitions

#: Bytes a pruned read still ships over PCIe: a descriptor from which the
#: device reconstructs the read against its resident REF partition
#: (row id, reference offset, length, RG, flags).
DESCRIPTOR_BYTES = 8

#: Default modelled SSD-internal bandwidth.  GenStore's premise is that
#: aggregate NAND channel bandwidth far exceeds the external link; 8x the
#: PCIe 3 x8 link Genesis models keeps the scan off the critical path.
INTERNAL_BANDWIDTH = 8 * PCIE3_BANDWIDTH


@dataclass(frozen=True)
class StorageFilterConfig:
    """Knobs of the in-SSD filter's timing and survivor accounting."""

    internal_bandwidth: float = INTERNAL_BANDWIDTH
    chunk_setup_seconds: float = 5e-6
    descriptor_bytes: int = DESCRIPTOR_BYTES

    def __post_init__(self) -> None:
        if self.internal_bandwidth <= 0:
            raise ValueError("internal_bandwidth must be positive")
        if not 0 <= self.descriptor_bytes < MODEL_ROW_BYTES:
            raise ValueError(
                "descriptor_bytes must be smaller than the modelled row "
                f"footprint ({MODEL_ROW_BYTES})"
            )


def exact_match_mask(part: Table, ref_row: Optional[dict]) -> np.ndarray:
    """Boolean mask of the partition's exactly-matching reads.

    A read qualifies when its CIGAR is one full-length ``M`` element and
    its bases equal the reference slice at its alignment span.  Reads the
    REF row cannot vouch for (no reference, span outside the segment's
    overlap tail) are conservatively kept — pruning is an accounting
    optimization, so "keep" is always safe.
    """
    mask = np.zeros(part.num_rows, dtype=bool)
    if ref_row is None or part.num_rows == 0:
        return mask
    ref_seq = np.asarray(ref_row["SEQ"])
    ref_start = int(ref_row["REFPOS"])
    positions = part.column("POS")
    cigars = part.column("CIGAR")
    seqs = part.column("SEQ")
    for row in range(part.num_rows):
        codes = cigars[row]
        # single element, op M (code & 3 == 0), covering the whole read
        if len(codes) != 1 or (int(codes[0]) & 0x3) != 0:
            continue
        length = int(codes[0]) >> 2
        seq = seqs[row]
        if length != len(seq):
            continue
        offset = int(positions[row]) - ref_start
        if offset < 0 or offset + length > len(ref_seq):
            continue
        if np.array_equal(seq, ref_seq[offset:offset + length]):
            mask[row] = True
    return mask


@dataclass(frozen=True)
class ChunkVerdict:
    """The filter's decision for one chunk: how many reads prune, and what
    the survivor path costs."""

    pid: PartitionId
    rows: int
    pruned_rows: int
    raw_nbytes: int
    survivor_nbytes: int
    encoded_nbytes: int
    scan_seconds: float

    @property
    def survivors(self) -> int:
        return self.rows - self.pruned_rows

    @property
    def saved_nbytes(self) -> int:
        return self.raw_nbytes - self.survivor_nbytes


@dataclass
class StorageFilterPlan:
    """The plan-time output of the in-SSD filter: one verdict per chunk.

    Everything here is a pure function of the partitions, the reference,
    and the config — the same determinism contract as
    :func:`~repro.accel.sharding.plan_shards`, so survivor accounting is
    identical on every topology.  The plan is the object
    :func:`~repro.accel.sharding.run_sharded`, :class:`~repro.serve.
    JobService`, and :class:`~repro.runtime.api.GenesisRuntime` (via
    :class:`~repro.storage.frontend.StorageFrontEnd`) consult when charging
    transfers.
    """

    config: StorageFilterConfig
    verdicts: Dict[PartitionId, ChunkVerdict]
    store: Optional[ChunkedReadStore] = field(default=None, repr=False)

    # -- totals ------------------------------------------------------------------

    @property
    def rows(self) -> int:
        return sum(v.rows for v in self.verdicts.values())

    @property
    def pruned_rows(self) -> int:
        return sum(v.pruned_rows for v in self.verdicts.values())

    @property
    def filtered_fraction(self) -> float:
        rows = self.rows
        return self.pruned_rows / rows if rows else 0.0

    @property
    def raw_nbytes(self) -> int:
        return sum(v.raw_nbytes for v in self.verdicts.values())

    @property
    def survivor_nbytes(self) -> int:
        return sum(v.survivor_nbytes for v in self.verdicts.values())

    @property
    def saved_nbytes(self) -> int:
        return self.raw_nbytes - self.survivor_nbytes

    @property
    def scan_seconds(self) -> float:
        return sum(v.scan_seconds for v in self.verdicts.values())

    @property
    def compression_ratio(self) -> float:
        return self.store.compression_ratio() if self.store else 1.0

    # -- per-wave accounting (the DevicePool/serve charging hooks) ---------------

    def wave_nbytes(self, items: Iterable[Tuple[PartitionId, Table]]) -> int:
        """Modelled H2D bytes of one wave on the survivor path.  Unknown
        partitions (not covered by the plan) ship at full footprint."""
        total = 0
        for pid, part in items:
            verdict = self.verdicts.get(pid)
            if verdict is None:
                total += part.num_rows * MODEL_ROW_BYTES
            else:
                total += verdict.survivor_nbytes
        return total

    def wave_raw_nbytes(self, items: Iterable[Tuple[PartitionId, Table]]) -> int:
        return sum(part.num_rows * MODEL_ROW_BYTES for _pid, part in items)

    def wave_pruned_rows(self, items: Iterable[Tuple[PartitionId, Table]]) -> int:
        return sum(
            self.verdicts[pid].pruned_rows
            for pid, _part in items if pid in self.verdicts
        )

    def wave_scan_seconds(self, items: Iterable[Tuple[PartitionId, Table]]) -> float:
        return sum(
            self.verdicts[pid].scan_seconds
            for pid, _part in items if pid in self.verdicts
        )

    def describe(self) -> str:
        return (
            f"storage filter: {self.pruned_rows}/{self.rows} reads pruned "
            f"in-SSD ({self.filtered_fraction:.0%}), H2D "
            f"{self.raw_nbytes} -> {self.survivor_nbytes} bytes "
            f"({self.saved_nbytes} saved), scan {self.scan_seconds * 1e3:.3f} ms "
            f"@ {self.config.internal_bandwidth / 1e9:.0f} GB/s internal, "
            f"chunk compression {self.compression_ratio:.1f}x"
        )


def plan_storage_filter(
    partitions: Iterable[Tuple[PartitionId, Table]],
    reference: Optional[PartitionedReference] = None,
    config: Optional[StorageFilterConfig] = None,
    store: Optional[ChunkedReadStore] = None,
    record: bool = True,
) -> StorageFilterPlan:
    """Run the modelled in-SSD filter over a partitioned workload.

    Encodes each partition into its chunk (unless a prebuilt ``store`` is
    given), scans it with :func:`exact_match_mask` against its REF
    partition, and prices the survivor path.  Records one ``storage.plan``
    ledger event unless ``record=False``.
    """
    config = config or StorageFilterConfig()
    parts = list(partitions)
    if store is None:
        store = chunk_store_from_partitions(parts)
    verdicts: Dict[PartitionId, ChunkVerdict] = {}
    for pid, part in parts:
        chunk = store.chunks[pid]
        ref_row = None
        if reference is not None and pid in reference:
            ref_row = reference.lookup(pid)
        pruned = int(exact_match_mask(part, ref_row).sum())
        rows = part.num_rows
        raw = rows * MODEL_ROW_BYTES
        survivor = (
            (rows - pruned) * MODEL_ROW_BYTES
            + pruned * config.descriptor_bytes
        )
        scan = (
            config.chunk_setup_seconds
            + chunk.encoded_nbytes / config.internal_bandwidth
        )
        verdicts[pid] = ChunkVerdict(
            pid=pid, rows=rows, pruned_rows=pruned,
            raw_nbytes=raw, survivor_nbytes=survivor,
            encoded_nbytes=chunk.encoded_nbytes, scan_seconds=scan,
        )
    plan = StorageFilterPlan(config=config, verdicts=verdicts, store=store)
    if record:
        record_event(
            "storage.plan",
            chunks=len(verdicts), rows=plan.rows,
            pruned_rows=plan.pruned_rows,
            filtered_fraction=plan.filtered_fraction,
            raw_nbytes=plan.raw_nbytes,
            survivor_nbytes=plan.survivor_nbytes,
            saved_nbytes=plan.saved_nbytes,
            encoded_nbytes=store.encoded_nbytes,
            payload_nbytes=store.payload_nbytes,
            compression_ratio=plan.compression_ratio,
            scan_seconds=plan.scan_seconds,
            internal_bandwidth=config.internal_bandwidth,
        )
    return plan


def storage_wave_nbytes(
    storage: Optional[StorageFilterPlan],
    items: List[Tuple[PartitionId, Table]],
    default: int,
) -> int:
    """Survivor bytes when a plan is active, ``default`` otherwise."""
    if storage is None:
        return default
    return storage.wave_nbytes(items)
