"""The modelled in-storage filtering tier (GenStore/SAGe-style).

A chunked, compression-aware read layout (:mod:`repro.storage.layout`), an
exact-match pruning engine with its own in-SSD timing model
(:mod:`repro.storage.filter`), and the front end the runtime charges
transfers through (:mod:`repro.storage.frontend`).  See DESIGN.md §3.10.
"""

from .filter import (
    DESCRIPTOR_BYTES,
    INTERNAL_BANDWIDTH,
    ChunkVerdict,
    StorageFilterConfig,
    StorageFilterPlan,
    exact_match_mask,
    plan_storage_filter,
    storage_wave_nbytes,
)
from .frontend import StorageFrontEnd
from .layout import (
    ChunkedReadStore,
    EncodedColumn,
    ReadChunk,
    chunk_store_from_partitions,
    decode_chunk,
    decode_store,
    encode_partition,
)

__all__ = [
    "DESCRIPTOR_BYTES",
    "INTERNAL_BANDWIDTH",
    "ChunkVerdict",
    "ChunkedReadStore",
    "EncodedColumn",
    "ReadChunk",
    "StorageFilterConfig",
    "StorageFilterPlan",
    "StorageFrontEnd",
    "chunk_store_from_partitions",
    "decode_chunk",
    "decode_store",
    "encode_partition",
    "exact_match_mask",
    "plan_storage_filter",
    "storage_wave_nbytes",
]
