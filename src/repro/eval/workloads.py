"""Standard synthetic workloads for the evaluation harness.

The paper evaluates on NA12878 (~700 M reads, 151 bp) against GRCh38 with
dbSNP138 sites.  The reproduction's workloads are laptop-scale synthetic
equivalents (see DESIGN.md): a GRCh38-proportioned genome, Illumina-like
reads with PCR duplicates and lane structure, and the paper's partitioning
scheme.  Timing experiments measure cycles-per-base on these workloads and
extrapolate to paper scale through :mod:`repro.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..genomics.read import AlignedRead
from ..genomics.reference import CHROMOSOMES, ReferenceGenome
from ..genomics.simulator import ReadSimulator, SimulatorConfig
from ..tables.genomic_tables import reads_to_table
from ..tables.partition import (
    PartitionedReads,
    PartitionedReference,
    partition_reads,
    partition_reads_by_group,
    partition_reference,
)
from ..tables.table import Table


@dataclass
class Workload:
    """A fully prepared evaluation workload."""

    genome: ReferenceGenome
    reads: List[AlignedRead]
    table: Table
    partitions: PartitionedReads
    group_partitions: PartitionedReads
    reference: PartitionedReference
    read_length: int
    psize: int
    overlap: int

    @property
    def n_reads(self) -> int:
        """Total reads in the workload."""
        return len(self.reads)

    def reads_on_chromosome(self, chrom: int) -> int:
        """Read count aligned to one chromosome."""
        return sum(1 for read in self.reads if read.chrom == chrom)


def make_workload(
    n_reads: int = 400,
    read_length: int = 100,
    genome_scale: float = 2e-6,
    psize: int = 4000,
    snp_rate: float = 0.002,
    read_groups: int = 4,
    seed: int = 7,
    chromosomes=None,
    duplicate_rate: float = 0.15,
) -> Workload:
    """Build the standard synthetic workload.

    Defaults give a few hundred reads across all 24 GRCh38-proportioned
    chromosomes with several partitions per chromosome — small enough for
    cycle simulation, structured enough to exercise every code path.
    """
    genome = ReferenceGenome.grch38_like(
        scale=genome_scale,
        snp_rate=snp_rate,
        seed=seed,
        chromosomes=chromosomes or CHROMOSOMES,
    )
    config = SimulatorConfig(
        read_length=read_length,
        read_groups=read_groups,
        duplicate_rate=duplicate_rate,
        seed=seed + 1,
    )
    simulator = ReadSimulator(genome, config)
    reads = simulator.simulate(n_reads)
    table = reads_to_table(reads)
    overlap = read_length + 3 * config.max_indel_length + 8
    return Workload(
        genome=genome,
        reads=reads,
        table=table,
        partitions=partition_reads(table, psize),
        group_partitions=partition_reads_by_group(table, psize),
        reference=partition_reference(genome, psize, overlap),
        read_length=read_length,
        psize=psize,
        overlap=overlap,
    )


def make_single_chromosome_workload(
    chrom: int = 20,
    n_reads: int = 120,
    read_length: int = 80,
    seed: int = 11,
    **kwargs,
) -> Workload:
    """A small one-chromosome workload for unit-test-speed experiments."""
    return make_workload(
        n_reads=n_reads,
        read_length=read_length,
        seed=seed,
        chromosomes=(chrom,),
        **kwargs,
    )


def per_chromosome_counts(workload: Workload) -> Dict[int, int]:
    """Read counts by chromosome (drives Figure 13(c)/(d) scaling)."""
    counts: Dict[int, int] = {}
    for read in workload.reads:
        counts[read.chrom] = counts.get(read.chrom, 0) + 1
    return counts
