"""Per-figure / per-table experiment drivers (the EXPERIMENTS.md index).

Every table and figure of the paper's evaluation has a driver here that
the benchmark suite calls; each returns plain data structures so benches
can both print the reproduced rows/series and assert their shape against
:data:`PAPER_TARGETS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..accel.bqsr import run_bqsr_partition
from ..accel.example_query import (
    build_example_pipeline,
    configure_example_streams,
)
from ..accel.markdup import run_quality_sums
from ..accel.metadata import run_metadata_update
from ..gatk.bqsr import n_cycle_values
from ..hw.engine import Engine
from ..hw.memory import MemoryConfig, MemorySystem
from ..hw.resources import ResourceVector, estimate_accelerator
from ..perf.cost import table3_row
from ..perf.cpu_model import PAPER_READS, CpuModel
from ..perf.timing import (
    StageTiming,
    model_stage,
    model_stage_pcie4,
)
from ..tables.genomic_tables import count_bases
from .workloads import Workload, make_workload

#: Published results the reproduction is compared against.
PAPER_TARGETS = {
    "speedup": {"markdup": 2.08, "metadata": 19.25, "bqsr_table": 12.59},
    "speedup_pcie4": {"metadata": 33.0, "bqsr_table": 16.4},
    "cost_reduction": {"markdup": 2.08, "metadata": 15.05, "bqsr_table": 9.84},
    "performance_per_dollar": {
        "markdup": 4.31, "metadata": 289.59, "bqsr_table": 123.92,
    },
    "pcie_fraction": {"metadata": 0.534, "bqsr_table": 0.295},
    "markdup_host_fraction": 0.9935,
    "resources": {  # Table IV: (LUTs, registers, BRAM MB)
        "markdup": (228_000, 272_000, 0.34),
        "metadata": (333_000, 424_000, 4.95),
        "bqsr_table": (502_000, 257_000, 1.69),
    },
    "fig9_fractions": {
        "alignment": 0.634, "markdup": 0.100, "metadata": 0.154,
        "bqsr_table": 0.046, "bqsr_update": 0.043,
    },
}

#: NHGRI cost-per-genome survey points (Figure 1, background; USD).
NHGRI_COST_PER_GENOME = [
    (2001, 95_263_072), (2002, 70_175_437), (2003, 53_751_684),
    (2004, 28_780_376), (2005, 13_801_124), (2006, 10_474_556),
    (2007, 7_743_398), (2008, 1_352_982), (2009, 154_714),
    (2010, 46_774), (2011, 16_712), (2012, 7_666), (2013, 5_826),
    (2014, 4_905), (2015, 3_970), (2016, 1_271), (2017, 1_121),
    (2018, 1_015), (2019, 942),
]


def figure1_sequencing_cost() -> List[Tuple[int, float]]:
    """Figure 1: cost of sequencing a genome by year (NHGRI survey)."""
    return list(NHGRI_COST_PER_GENOME)


def figure9_breakdown(
    n_reads: float = PAPER_READS, cores: int = 8
) -> Dict[str, Dict[str, float]]:
    """Figure 9: preprocessing runtime fractions, both bars."""
    model = CpuModel(cores=cores)
    plain = model.preprocessing_breakdown(n_reads, alignment_accelerated=False)
    accel = model.preprocessing_breakdown(n_reads, alignment_accelerated=True)
    return {
        "gatk4": model.fractions(plain),
        "gatk4_with_alignment_accel": model.fractions(accel),
        "seconds": plain,
    }


@dataclass
class CpbMeasurement:
    """Cycles-per-base measured by cycle simulation."""

    stage: str
    cycles: int
    bases: int

    @property
    def cycles_per_base(self) -> float:
        """Sustained cycles per base pair (excludes SPM load/drain, which
        amortize to <3% at the paper's 1 Mbp partitions)."""
        return self.cycles / self.bases if self.bases else 0.0


def measure_cycles_per_base(
    stage: str, workload: Workload, max_partitions: Optional[int] = 4
) -> CpbMeasurement:
    """Run the stage's accelerator on sample partitions and measure the
    sustained cycles-per-base the timing model extrapolates with."""
    total_cycles = 0
    total_bases = 0
    if stage == "markdup":
        quals = [read.qual for read in workload.reads]
        result = run_quality_sums(quals)
        total_cycles = result.stats.cycles
        total_bases = sum(len(q) for q in quals)
    elif stage == "metadata":
        for pid, part in list(workload.partitions)[:max_partitions]:
            if part.num_rows == 0:
                continue
            result = run_metadata_update(part, workload.reference.lookup(pid))
            total_cycles += result.run.stats.cycles
            total_bases += count_bases(part)
    elif stage == "bqsr_table":
        for pid, part in list(workload.group_partitions)[:max_partitions]:
            if part.num_rows == 0:
                continue
            result = run_bqsr_partition(
                part, workload.reference.lookup(pid), workload.read_length,
                drain=False,
            )
            total_cycles += result.run.stats.cycles
            total_bases += count_bases(part)
    else:
        raise KeyError(f"unknown stage {stage!r}")
    return CpbMeasurement(stage, total_cycles, total_bases)


def figure13(
    workload: Optional[Workload] = None,
    n_reads: float = PAPER_READS,
    read_length: int = 151,
) -> Dict[str, Dict[str, StageTiming]]:
    """Figure 13(a)/(b): speedups and runtime breakdowns at paper scale,
    with cycles-per-base measured by simulation on ``workload``."""
    workload = workload or make_workload()
    out: Dict[str, Dict[str, StageTiming]] = {"pcie3": {}, "pcie4": {}}
    for stage in ("markdup", "metadata", "bqsr_table"):
        cpb = measure_cycles_per_base(stage, workload).cycles_per_base
        out["pcie3"][stage] = model_stage(stage, n_reads, read_length, cpb)
        out["pcie4"][stage] = model_stage_pcie4(stage, n_reads, read_length, cpb)
    return out


def figure13_per_chromosome(
    workload: Workload,
    stage: str,
    n_reads: float = PAPER_READS,
    read_length: int = 151,
) -> Dict[int, float]:
    """Figure 13(c)/(d): per-chromosome speedups.

    Each chromosome's workload share scales the paper-scale read count;
    cycles-per-base is measured per chromosome, so partition-fill effects
    produce the chromosome-to-chromosome variation the figure shows.
    """
    per_chrom: Dict[int, Tuple[int, int]] = {}
    partitions = (
        workload.group_partitions if stage == "bqsr_table" else workload.partitions
    )
    for pid, part in partitions:
        if part.num_rows == 0:
            continue
        ref_row = workload.reference.lookup(pid)
        if stage == "metadata":
            result = run_metadata_update(part, ref_row)
            cycles = result.run.stats.cycles
        elif stage == "bqsr_table":
            result = run_bqsr_partition(
                part, ref_row, workload.read_length, drain=False
            )
            cycles = result.run.stats.cycles
        else:
            raise KeyError("per-chromosome supports metadata/bqsr_table")
        prev_cycles, prev_bases = per_chrom.get(pid.chrom, (0, 0))
        per_chrom[pid.chrom] = (prev_cycles + cycles, prev_bases + count_bases(part))

    total_reads = workload.n_reads
    speedups: Dict[int, float] = {}
    for chrom, (cycles, bases) in sorted(per_chrom.items()):
        share = workload.reads_on_chromosome(chrom) / total_reads
        timing = model_stage(stage, n_reads * share, read_length, cycles / bases)
        speedups[chrom] = timing.speedup
    return speedups


def table3(timings: Dict[str, StageTiming]) -> Dict[str, Dict[str, float]]:
    """Table III rows derived from the Figure 13 speedups."""
    return {stage: table3_row(timing.speedup) for stage, timing in timings.items()}


# -- Table IV -----------------------------------------------------------------------

#: Paper-scale SPM capacities in bytes, per pipeline (see EXPERIMENTS.md):
#: metadata holds a 1 Mbp reference partition at 2 bits/base; BQSR holds a
#: 256 Kbp (read-group-sliced) partition at 3 bits/base plus the four
#: 2-byte count buffers for 64 quality bins.
_METADATA_SPM = [(1_000_000 + 151) // 4]
_BQSR_SPM = [
    (256_000 * 3) // 8,
    2 * 64 * n_cycle_values(151),
    2 * 64 * n_cycle_values(151),
    2 * 64 * 16,
    2 * 64 * 16,
]


def _census(build, *args) -> Dict[str, int]:
    engine = Engine(MemorySystem())
    pipe = build(engine, "cen", *args)
    return pipe.module_census()


def table4_estimates() -> Dict[str, ResourceVector]:
    """Table IV: modelled FPGA resource usage of the three accelerators
    (module census from the actually-built pipelines, SPM capacities at
    paper scale, pipeline counts from Section V-A)."""
    from ..accel.bqsr import BqsrSpms, build_bqsr_pipeline
    from ..accel.markdup import build_markdup_pipeline
    from ..accel.metadata import build_metadata_pipeline
    from ..hw.spm import Scratchpad

    dummy_ref = Scratchpad("cen_ref", 8)
    markdup_census = _census(build_markdup_pipeline)
    metadata_census = _census(build_metadata_pipeline, dummy_ref, 0)
    bqsr_census = _census(
        build_bqsr_pipeline, dummy_ref, 0, BqsrSpms.allocate(8), 151
    )
    # The reference-SPM load path (reader + updater) replicates with every
    # pipeline in hardware; add it to the SPM-using censuses.
    for census in (metadata_census, bqsr_census):
        census["MemoryReader"] = census.get("MemoryReader", 0) + 1
        census["SpmUpdater"] = census.get("SpmUpdater", 0) + 1
    return {
        "markdup": estimate_accelerator(markdup_census, [], 16, reducer_lanes=64),
        "metadata": estimate_accelerator(metadata_census, _METADATA_SPM, 16),
        "bqsr_table": estimate_accelerator(bqsr_census, _BQSR_SPM, 8),
    }


# -- Profiling -----------------------------------------------------------------------


def profile_stage(
    stage: str,
    workload: Optional[Workload] = None,
    memory_config: Optional[MemoryConfig] = None,
    mode: Optional[str] = None,
):
    """Profile one representative run of an accelerated stage.

    Runs the stage's serial driver with a :class:`repro.obs.Profiler`
    attached and returns the validated
    :class:`~repro.obs.profile.ProfileReport` — the queryable per-module
    / queue / memory-channel breakdown Figure 9-style bottleneck analysis
    needs.  ``mode`` forces the engine schedule (default: the engine's
    own default, event).
    """
    from ..hw.engine import Engine as _Engine
    from ..obs import Profiler

    workload = workload or make_workload()
    profiler = Profiler(name=stage)
    saved_mode = _Engine.default_mode
    if mode is not None:
        _Engine.default_mode = mode
    try:
        if stage == "markdup":
            quals = [read.qual for read in workload.reads]
            run_quality_sums(quals, memory_config, profiler=profiler)
            extra = {"stage": stage, "reads": len(quals)}
        elif stage == "metadata":
            pid, part = next(
                (pid, part)
                for pid, part in workload.partitions
                if part.num_rows > 0
            )
            run_metadata_update(
                part, workload.reference.lookup(pid), memory_config,
                profiler=profiler,
            )
            extra = {"stage": stage, "partition": str(pid),
                     "reads": part.num_rows}
        elif stage in ("bqsr", "bqsr_table"):
            pid, part = next(
                (pid, part)
                for pid, part in workload.group_partitions
                if part.num_rows > 0
            )
            run_bqsr_partition(
                part, workload.reference.lookup(pid), workload.read_length,
                memory_config, drain=False, profiler=profiler,
            )
            extra = {"stage": stage, "partition": str(pid),
                     "reads": part.num_rows}
        else:
            raise KeyError(f"unknown stage {stage!r}")
    finally:
        _Engine.default_mode = saved_mode
    report = profiler.report(extra=extra)
    report.validate()
    return report


# -- Host scheduler ------------------------------------------------------------------


def _wave_driver(stage: str, workload: Workload, memory_config=None):
    """The partition-scheduler driver for one accelerated stage."""
    from ..accel.scheduler import (
        BqsrWaveDriver,
        MarkdupWaveDriver,
        MetadataWaveDriver,
    )

    if stage == "markdup":
        return MarkdupWaveDriver(memory_config=memory_config)
    if stage == "metadata":
        return MetadataWaveDriver(
            reference=workload.reference, memory_config=memory_config
        )
    if stage == "bqsr_table":
        return BqsrWaveDriver(
            reference=workload.reference,
            read_length=workload.read_length,
            memory_config=memory_config,
        )
    raise KeyError(f"unknown stage {stage!r}")


def scheduler_scaling(
    workload: Optional[Workload] = None,
    stage: str = "metadata",
    worker_counts: Tuple[int, ...] = (1, 2, 4),
    n_pipelines: int = 4,
    memory_config=None,
) -> Dict[int, Dict[str, float]]:
    """Host-scheduler ablation: one partitioned run fanned out over each
    worker count.  Simulated cycles must not change with ``workers`` —
    only the host-side wall clock does; a mismatch raises."""
    from ..accel.scheduler import run_partitioned

    workload = workload or make_workload()
    partitions = (
        workload.group_partitions if stage == "bqsr_table" else workload.partitions
    )
    driver = _wave_driver(stage, workload, memory_config)
    out: Dict[int, Dict[str, float]] = {}
    baseline_cycles: Optional[int] = None
    for workers in worker_counts:
        _results, stats = run_partitioned(
            driver, partitions, n_pipelines, workers=workers
        )
        if baseline_cycles is None:
            baseline_cycles = stats.total_cycles
        elif stats.total_cycles != baseline_cycles:
            raise AssertionError(
                f"workers={workers} changed simulated cycles: "
                f"{stats.total_cycles} != {baseline_cycles}"
            )
        out[workers] = {
            "elapsed_seconds": stats.elapsed_seconds,
            "wall_seconds": stats.wall_seconds,
            "host_parallelism": stats.host_parallelism,
            "total_cycles": float(stats.total_cycles),
            "spm_cache_hits": float(stats.spm_cache_hits),
            "spm_cache_misses": float(stats.spm_cache_misses),
        }
    return out


# -- Figure 8 ------------------------------------------------------------------------


def figure8_scaling(
    workload: Optional[Workload] = None,
    pipeline_counts: Tuple[int, ...] = (1, 2, 4, 8),
    memory_config: Optional[MemoryConfig] = None,
) -> Dict[int, float]:
    """Figure 8 ablation: aggregate throughput (bases/cycle) of N replicated
    example-query pipelines sharing one memory system.

    With a deliberately narrow memory configuration the knee where
    arbitration saturates the channels becomes visible at small N.
    """
    workload = workload or make_workload(n_reads=120, read_length=60,
                                         chromosomes=(20,), seed=3)
    memory_config = memory_config or MemoryConfig(channels=1, access_bytes=8)
    parts = [(pid, part) for pid, part in workload.partitions if part.num_rows > 0]
    throughput: Dict[int, float] = {}
    for n in pipeline_counts:
        engine = Engine(MemorySystem(memory_config))
        total_bases = 0
        built = []
        for index in range(n):
            pid, part = parts[index % len(parts)]
            ref_row = workload.reference.lookup(pid)
            from ..accel.common import load_reference_spm, spm_base

            spm, _ = load_reference_spm(ref_row, memory_config)
            pipe = build_example_pipeline(engine, f"p{index}", spm, spm_base(ref_row))
            configure_example_streams(pipe, part)
            built.append(pipe)
            total_bases += count_bases(part)
        stats = engine.run()
        throughput[n] = total_bases / stats.cycles
    return throughput
