"""Evaluation harness: standard workloads and per-figure experiment drivers."""

from .experiments import (
    NHGRI_COST_PER_GENOME,
    PAPER_TARGETS,
    CpbMeasurement,
    figure1_sequencing_cost,
    figure8_scaling,
    figure9_breakdown,
    figure13,
    figure13_per_chromosome,
    measure_cycles_per_base,
    table3,
    table4_estimates,
)
from .workloads import (
    Workload,
    make_single_chromosome_workload,
    make_workload,
    per_chromosome_counts,
)

__all__ = [
    "CpbMeasurement",
    "NHGRI_COST_PER_GENOME",
    "PAPER_TARGETS",
    "Workload",
    "figure13",
    "figure13_per_chromosome",
    "figure1_sequencing_cost",
    "figure8_scaling",
    "figure9_breakdown",
    "make_single_chromosome_workload",
    "make_workload",
    "measure_cycles_per_base",
    "per_chromosome_counts",
    "table3",
    "table4_estimates",
]
