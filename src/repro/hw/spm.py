"""On-chip scratchpad memory (SPM).

Section III-C: Genesis maps frequently reused tables (the reference
partition, the BQSR count buffers) onto on-chip scratchpads.  The SPM model
provides word-addressed storage with single-cycle access plus the
read-modify-write hazard interlock the paper describes for the SPM Updater:
the update pipeline has three stages (read, modify, write) and an incoming
flit whose address matches any in-flight address must not enter the read
stage until the conflict drains.
"""

from __future__ import annotations

from typing import Dict, List


class Scratchpad:
    """Word-addressed on-chip storage."""

    def __init__(self, name: str, size: int, fill: int = 0):
        if size < 1:
            raise ValueError("scratchpad size must be positive")
        self.name = name
        self.size = size
        self._data: List[int] = [fill] * size
        # statistics
        self.reads = 0
        self.writes = 0

    def read(self, address: int) -> int:
        """Read one word (single-cycle)."""
        self._check(address)
        self.reads += 1
        return self._data[address]

    def write(self, address: int, value) -> None:
        """Write one word (single-cycle)."""
        self._check(address)
        self.writes += 1
        self._data[address] = value

    def load(self, values, offset: int = 0) -> None:
        """Bulk initialization used by tests/drivers (the hardware path
        goes through an SPM Updater in sequential-write mode)."""
        for index, value in enumerate(values):
            self.write(offset + index, value)

    def dump(self) -> List[int]:
        """A copy of the whole contents (drain-to-memory view)."""
        return list(self._data)

    def clear(self, fill: int = 0) -> None:
        """Reset all words to ``fill``."""
        for index in range(self.size):
            self._data[index] = fill

    def _check(self, address: int) -> None:
        if not 0 <= address < self.size:
            raise IndexError(f"{self.name}: address {address} out of range")

    def __len__(self) -> int:
        return self.size


class RmwInterlock:
    """The three-stage read-modify-write hazard tracker.

    ``try_enter(cycle, address)`` returns False (stall) when the address
    matches any of the updates still inside the three pipeline stages —
    i.e. entered fewer than 3 cycles ago.  On True the address is recorded
    as in flight.
    """

    STAGES = 3

    def __init__(self) -> None:
        self._in_flight: Dict[int, int] = {}
        self.hazard_stalls = 0

    def try_enter(self, cycle: int, address: int) -> bool:
        """Attempt to admit an update to ``address`` at ``cycle``."""
        self._expire(cycle)
        if address in self._in_flight:
            self.hazard_stalls += 1
            return False
        self._in_flight[address] = cycle
        return True

    def _expire(self, cycle: int) -> None:
        expired = [
            address
            for address, entered in self._in_flight.items()
            if cycle - entered >= self.STAGES
        ]
        for address in expired:
            del self._in_flight[address]

    def pending(self) -> int:
        """Updates that may still occupy a pipeline stage — an upper
        bound, since entries are lazily expired on the next
        ``try_enter``/``busy`` call.  Expiry is keyed to cycle stamps,
        not call counts, so the interlock behaves identically under the
        dense and event-driven engine schedules."""
        return len(self._in_flight)

    def busy(self, cycle: int) -> bool:
        """True while updates are still in the pipeline stages."""
        self._expire(cycle)
        return bool(self._in_flight)
