"""Pipeline containers: named module groups and parallel replication.

Section III-D: a Genesis accelerator is one dataflow pipeline, optionally
replicated N times (Figure 8) with all replicas sharing the memory system
through the arbitration fabric.  :class:`Pipeline` names and tracks the
modules of one replica; :func:`replicate` stamps out N copies of a builder
function into one engine so the shared-memory contention is simulated for
real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .engine import Engine, RunStats
from .module import Module


class Pipeline:
    """One hardware pipeline: a named bag of modules wired into an engine."""

    def __init__(self, name: str, engine: Engine):
        self.name = name
        self.engine = engine
        self.modules: Dict[str, Module] = {}

    def add(self, module: Module) -> Module:
        """Register a module under its own name and add it to the engine."""
        if module.name in self.modules:
            raise ValueError(f"{self.name}: duplicate module {module.name}")
        self.modules[module.name] = module
        self.engine.add_module(module)
        return module

    def module_census(self) -> Dict[str, int]:
        """Count of module instances by type name (resource modelling)."""
        census: Dict[str, int] = {}
        for module in self.modules.values():
            type_name = type(module).__name__
            census[type_name] = census.get(type_name, 0) + 1
        return census

    def total_flits(self) -> int:
        """Total flits emitted by all modules in this pipeline."""
        return sum(module.flits_out for module in self.modules.values())


@dataclass
class ReplicaSet:
    """N replicas of one pipeline sharing an engine (Figure 8)."""

    engine: Engine
    replicas: List[Pipeline]

    @property
    def n(self) -> int:
        """Number of parallel pipelines."""
        return len(self.replicas)

    def total_flits(self) -> int:
        """Flits emitted across every replica (host-throughput metric)."""
        return sum(pipe.total_flits() for pipe in self.replicas)

    def run(
        self, max_cycles: int = 100_000_000, mode: Optional[str] = None
    ) -> RunStats:
        """Run the shared engine to quiescence.  With the event scheduler
        (the default) whole replicas sleep while their memory readers
        wait on DRAM, so an N-replica engine costs far fewer host ticks
        than N times a single pipeline."""
        return self.engine.run(max_cycles=max_cycles, mode=mode)


def replicate(
    engine: Engine,
    n: int,
    builder: Callable[[Engine, str], Pipeline],
    prefix: str = "pipe",
) -> ReplicaSet:
    """Instantiate ``n`` copies of ``builder`` into one engine.

    ``builder(engine, name)`` must construct one pipeline's modules and
    wiring and return the :class:`Pipeline`.  All replicas share the
    engine's memory system, so channel arbitration and bandwidth
    saturation emerge naturally.
    """
    if n < 1:
        raise ValueError("need at least one replica")
    replicas = [builder(engine, f"{prefix}{i}") for i in range(n)]
    return ReplicaSet(engine, replicas)
