"""Flits: the atomic unit of dataflow communication.

Section III-C: a *stream* is a sequence of *data items*, each divided into
*flits* — the atomic unit of communication and operation; modules consume
and produce one flit per cycle.  A flit here carries a payload dict of
named fields plus a ``last`` bit marking the final flit of its data item
(the hardware analog of an end-of-item framing signal), which is what lets
Reducers operate at item granularity and Joiners stay item-aligned.

Two field-value sentinels come straight from the paper's ReadExplode
semantics (Figure 3): ``INS`` marks the reference position of an inserted
base (not present in the reference) and ``DEL`` marks the base/quality of a
deleted base (not present in the read).
"""

from __future__ import annotations

from typing import Dict, Iterable, List


class _Sentinel:
    """A named singleton sentinel value."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


#: Reference position of an inserted base (Figure 3's "Ins").
INS = _Sentinel("INS")

#: Base/quality value of a deleted base (Figure 3's "Del").
DEL = _Sentinel("DEL")


class Flit:
    """One flit: named fields plus the end-of-item marker."""

    __slots__ = ("fields", "last")

    def __init__(self, fields: Dict[str, object], last: bool = False):
        self.fields = fields
        self.last = last

    def __getitem__(self, name: str):
        return self.fields[name]

    def get(self, name: str, default=None):
        """Field access with a default, like ``dict.get``."""
        return self.fields.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self.fields

    def merged(self, other_fields: Dict[str, object], last: bool = None) -> "Flit":
        """A new flit with ``other_fields`` merged in (Joiner concatenation
        of data fields, Figure 6)."""
        fields = dict(self.fields)
        fields.update(other_fields)
        return Flit(fields, self.last if last is None else last)

    def __repr__(self) -> str:
        marker = "*" if self.last else ""
        return f"Flit({self.fields}{marker})"


def item_flits(values: Iterable, field: str = "value") -> List[Flit]:
    """Frame a sequence of values as one data item: one flit per value,
    ``last`` set on the final flit.  An empty sequence produces a single
    empty-payload flit with ``last`` set (a null item keeps streams
    item-aligned)."""
    values = list(values)
    if not values:
        return [Flit({}, last=True)]
    flits = [Flit({field: value}) for value in values]
    flits[-1].last = True
    return flits


def scalar_flit(value, field: str = "value") -> Flit:
    """A single-flit item carrying one scalar."""
    return Flit({field: value}, last=True)


def split_items(flits: Iterable[Flit]) -> List[List[Flit]]:
    """Group a flat flit sequence back into items using the last bits."""
    items: List[List[Flit]] = []
    current: List[Flit] = []
    for flit in flits:
        current.append(flit)
        if flit.last:
            items.append(current)
            current = []
    if current:
        items.append(current)
    return items
