"""Cycle-driven simulation engine.

Drives a set of modules, queues, and the memory system cycle by cycle:
every cycle each module ticks once (moving at most one flit per port),
memory ticks, and then all queues commit their staged pushes so flits
advance one hop per cycle.  The run ends when every source has drained,
every queue is empty, and every module reports idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .memory import MemorySystem
from .module import Module
from .queue import HardwareQueue


@dataclass
class RunStats:
    """Summary of one simulation run."""

    cycles: int
    flits_by_module: Dict[str, int] = field(default_factory=dict)
    busy_by_module: Dict[str, int] = field(default_factory=dict)
    starve_by_module: Dict[str, int] = field(default_factory=dict)
    memory_bytes: int = 0
    memory_requests: int = 0

    def throughput(self, flits: int) -> float:
        """Flits per cycle for a given flit count."""
        return flits / self.cycles if self.cycles else 0.0


class Engine:
    """Owns the simulated clock and everything attached to it."""

    def __init__(
        self,
        memory: Optional[MemorySystem] = None,
        default_queue_capacity: int = 8,
    ):
        self.memory = memory or MemorySystem()
        self.modules: List[Module] = []
        self.queues: List[HardwareQueue] = []
        self.default_queue_capacity = default_queue_capacity
        self._queue_serial = 0
        self.cycle = 0

    # -- construction helpers ------------------------------------------------------

    def add_module(self, module: Module) -> Module:
        """Register a module with the engine."""
        self.modules.append(module)
        return module

    def new_queue(self, name: str = None, capacity: int = None) -> HardwareQueue:
        """Create and register a fresh queue (engine default capacity when
        none is given)."""
        self._queue_serial += 1
        if capacity is None:
            capacity = self.default_queue_capacity
        queue = HardwareQueue(name or f"q{self._queue_serial}", capacity)
        self.queues.append(queue)
        return queue

    def connect(
        self,
        producer: Module,
        consumer: Module,
        out_port: str = "out",
        in_port: str = "in",
        capacity: int = None,
    ) -> HardwareQueue:
        """Wire producer's ``out_port`` to consumer's ``in_port`` through a
        new queue."""
        queue = self.new_queue(
            f"{producer.name}.{out_port}->{consumer.name}.{in_port}", capacity
        )
        producer.connect_output(out_port, queue)
        consumer.connect_input(in_port, queue)
        return queue

    # -- simulation --------------------------------------------------------------

    def step(self) -> None:
        """Advance the clock by one cycle."""
        for module in self.modules:
            module.tick(self.cycle)
        self.memory.tick(self.cycle)
        for queue in self.queues:
            queue.commit()
        self.cycle += 1

    def is_quiescent(self) -> bool:
        """True when no work remains anywhere."""
        if not self.memory.is_idle():
            return False
        if any(not queue.is_empty() for queue in self.queues):
            return False
        return all(module.is_idle() for module in self.modules)

    def run(self, max_cycles: int = 100_000_000) -> RunStats:
        """Run until quiescent (or raise after ``max_cycles``)."""
        start = self.cycle
        idle_streak = 0
        while idle_streak < 2:
            if self.cycle - start >= max_cycles:
                raise RuntimeError(
                    f"simulation did not finish within {max_cycles} cycles "
                    "(deadlock or runaway stream?)"
                )
            self.step()
            idle_streak = idle_streak + 1 if self.is_quiescent() else 0
        return self._stats(self.cycle - start)

    def _stats(self, cycles: int) -> RunStats:
        return RunStats(
            cycles=cycles,
            flits_by_module={m.name: m.flits_out for m in self.modules},
            busy_by_module={m.name: m.busy_cycles for m in self.modules},
            starve_by_module={m.name: m.starve_cycles for m in self.modules},
            memory_bytes=self.memory.bytes_transferred,
            memory_requests=self.memory.requests_served,
        )
