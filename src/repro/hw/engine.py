"""Activity-driven simulation engine with a cycle-dense fallback.

The engine drives a set of modules, queues, and the memory system while
preserving registered-queue semantics: within a cycle each active module
ticks once (moving at most one flit per port), memory ticks, and staged
queue pushes commit so flits advance one hop per cycle.  The run ends when
every source has drained, every queue is empty, and every module reports
idle.

Two scheduling modes produce bit-identical cycle counts and functional
results:

* ``event`` (default) — an activity-driven scheduler.  The engine keeps a
  *wake set*: a module is ticked only when one of its input queues
  committed a flit, a memory response landed
  (:meth:`repro.hw.module.Module._wake`), or it self-declares pending
  internal work via :meth:`repro.hw.module.Module.wants_tick`.  The
  fourth classic wake source — an output queue draining — is subsumed:
  a producer blocked on a full queue holds undelivered state, reports
  non-idle, and therefore keeps itself in the wake set until the push
  lands.  Queues are committed off a
  *dirty list* (only queues with staged flits), and when the wake set is
  empty while memory requests are in flight the clock *fast-forwards*
  straight to the next response cycle instead of spinning.  Quiescence
  falls out of the scheduler for free: an empty wake set with clean
  queues and idle memory ends the run (an O(1) check), after a single
  O(modules) verification pass that distinguishes completion from
  deadlock.
* ``dense`` — the classic loop that ticks every module and commits every
  queue each cycle.  Kept for differential testing and for harnesses with
  modules that tick on wall-clock-like conditions the wake contract
  cannot see.

Correctness of the skipping rests on one contract: a sleeping module's
tick would not have changed any simulation state (only its starve/stall
counters, which are defined per *executed* tick).  Cycle counts, flit
counts, queue occupancies, memory traffic, and all functional outputs are
identical across modes; executed-tick statistics (``ticks_executed``,
starve tallies) naturally differ — that difference is the measured win.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Dict, List, Optional

from .memory import MemorySystem
from .module import Module
from .queue import HardwareQueue


@dataclass
class RunStats:
    """Summary of one simulation run.

    ``cycles`` counts *simulated* cycles and is identical across engine
    modes; the host-side fields record what the simulation cost to run:
    ``ticks_executed`` module ticks actually executed out of
    ``ticks_possible`` (modules x cycles, what the dense loop would do),
    ``fast_forward_cycles`` cycles skipped in one clock jump while only
    memory latency was outstanding, and ``wall_seconds`` host wall time
    inside ``Engine.run``.
    """

    cycles: int
    flits_by_module: Dict[str, int] = field(default_factory=dict)
    busy_by_module: Dict[str, int] = field(default_factory=dict)
    starve_by_module: Dict[str, int] = field(default_factory=dict)
    memory_bytes: int = 0
    memory_requests: int = 0
    # host-side metrics
    mode: str = "dense"
    wall_seconds: float = 0.0
    ticks_executed: int = 0
    ticks_possible: int = 0
    fast_forward_cycles: int = 0

    def throughput(self, flits: int) -> float:
        """Flits per cycle for a given flit count."""
        return flits / self.cycles if self.cycles else 0.0

    @property
    def skip_ratio(self) -> float:
        """Fraction of dense-equivalent module ticks the scheduler never
        executed (0.0 for a dense run)."""
        if not self.ticks_possible:
            return 0.0
        return 1.0 - self.ticks_executed / self.ticks_possible

    def host_flits_per_second(self, flits: int) -> float:
        """Host-side simulation throughput for a given flit count."""
        return flits / self.wall_seconds if self.wall_seconds > 0 else 0.0


class Engine:
    """Owns the simulated clock and everything attached to it."""

    #: Scheduling mode ``run()`` uses when none is passed explicitly.
    #: Override per instance (``engine.default_mode = "dense"``) or
    #: globally on the class for differential testing.
    default_mode = "event"

    def __init__(
        self,
        memory: Optional[MemorySystem] = None,
        default_queue_capacity: int = 8,
    ):
        self.memory = memory or MemorySystem()
        self.modules: List[Module] = []
        self.queues: List[HardwareQueue] = []
        self.default_queue_capacity = default_queue_capacity
        self._queue_serial = 0
        self.cycle = 0
        #: Optional observer (:class:`repro.obs.profile.Profiler`).  With
        #: no probe attached, each simulated cycle pays exactly one
        #: ``is None`` check — the metrics-disabled path stays free.
        self.probe = None
        # event-scheduler state (inert in dense mode)
        self._event_active = False
        self._dirty: List[HardwareQueue] = []
        self._wake_next: List[Module] = []
        self._activity = 0

    # -- construction helpers ------------------------------------------------------

    def add_module(self, module: Module) -> Module:
        """Register a module with the engine."""
        module._engine = self
        module._index = len(self.modules)
        self.modules.append(module)
        return module

    def remove_module(self, module: Module) -> None:
        """Detach a module from the engine and from every queue it was
        wired to.  Drivers that swap a stock module for a custom one must
        use this (not ``engine.modules.remove``) so the scheduler's module
        indices and the queues' producer/consumer wake lists stay
        consistent."""
        self.modules.remove(module)
        module._engine = None
        module._index = -1
        for index, survivor in enumerate(self.modules):
            survivor._index = index
        for queue in list(module.inputs.values()) + list(module.outputs.values()):
            if module in queue.consumers:
                queue.consumers.remove(module)
            if module in queue.producers:
                queue.producers.remove(module)

    def new_queue(self, name: str = None, capacity: int = None) -> HardwareQueue:
        """Create and register a fresh queue (engine default capacity when
        none is given)."""
        self._queue_serial += 1
        if capacity is None:
            capacity = self.default_queue_capacity
        queue = HardwareQueue(name or f"q{self._queue_serial}", capacity)
        queue.attach(self)
        self.queues.append(queue)
        return queue

    def connect(
        self,
        producer: Module,
        consumer: Module,
        out_port: str = "out",
        in_port: str = "in",
        capacity: int = None,
    ) -> HardwareQueue:
        """Wire producer's ``out_port`` to consumer's ``in_port`` through a
        new queue."""
        queue = self.new_queue(
            f"{producer.name}.{out_port}->{consumer.name}.{in_port}", capacity
        )
        producer.connect_output(out_port, queue)
        consumer.connect_input(in_port, queue)
        return queue

    # -- scheduler callbacks -------------------------------------------------------
    #
    # Queues inline their push/pop bookkeeping (dirty-list membership and
    # the activity counter) directly against the engine's attributes — at
    # tens of thousands of flit moves per run a callback per move is the
    # difference between the event scheduler winning and losing on wall
    # time.  There is deliberately *no* pop wake-up: a sleeping producer
    # is, by the quiescence contract, idle with empty inputs — it holds
    # nothing it could push into the freed slot, while a producer stalled
    # on a full queue reports non-idle and keeps itself awake through
    # ``wants_tick``.

    def _wake_from_event(self, module: Module) -> None:
        """Out-of-band completion (memory/SPM response): tick the module
        next cycle."""
        if self._event_active:
            self._schedule(module, self.cycle + 1)

    def _schedule(self, module: Module, at_cycle: int) -> None:
        if module._wake_cycle >= at_cycle:
            return
        module._wake_cycle = at_cycle
        self._wake_next.append(module)

    # -- simulation --------------------------------------------------------------

    def step(self) -> None:
        """Advance the clock by one cycle, ticking everything (the dense
        schedule; manual stepping and the tracer use this)."""
        for module in self.modules:
            module.tick(self.cycle)
        self.memory.tick(self.cycle)
        for queue in self.queues:
            queue.commit()
            queue._dirty = False
        self._dirty.clear()
        if self.probe is not None:
            self.probe.on_cycle(self, self.cycle)
        self.cycle += 1

    def is_quiescent(self) -> bool:
        """True when no work remains anywhere."""
        if not self.memory.is_idle():
            return False
        if any(not queue.is_empty() for queue in self.queues):
            return False
        return all(module.is_idle() for module in self.modules)

    def run(self, max_cycles: int = 100_000_000, mode: Optional[str] = None) -> RunStats:
        """Run until quiescent (or raise a deadlock report after
        ``max_cycles``).  ``mode`` is ``"event"`` or ``"dense"``; defaults
        to :attr:`default_mode`."""
        mode = mode or self.default_mode
        if mode == "dense":
            return self._run_dense(max_cycles)
        if mode == "event":
            return self._run_event(max_cycles)
        raise ValueError(f"unknown engine mode {mode!r}")

    def _run_dense(self, max_cycles: int) -> RunStats:
        start = self.cycle
        t0 = time.perf_counter()
        idle_streak = 0
        while idle_streak < 2:
            if self.cycle - start >= max_cycles:
                raise RuntimeError(self._deadlock_report(max_cycles))
            self.step()
            idle_streak = idle_streak + 1 if self.is_quiescent() else 0
        cycles = self.cycle - start
        stats = self._stats(
            cycles,
            mode="dense",
            wall_seconds=time.perf_counter() - t0,
            ticks_executed=cycles * len(self.modules),
            fast_forward_cycles=0,
        )
        if self.probe is not None:
            self.probe.on_run_end(self, stats)
        return stats

    def _run_event(self, max_cycles: int) -> RunStats:
        start = self.cycle
        t0 = time.perf_counter()
        ticks_executed = 0
        fast_forwarded = 0
        last_activity: Optional[int] = None
        memory = self.memory
        modules = self.modules
        probe = self.probe

        by_index = attrgetter("_index")
        self._event_active = True
        try:
            # Every module gets the first cycle; after that, events rule.
            pending = list(modules)
            for module in pending:
                module._wake_cycle = self.cycle
                module._was_idle = module.is_idle()

            while True:
                if self.cycle - start >= max_cycles:
                    raise RuntimeError(self._deadlock_report(max_cycles))

                if not pending and not self._dirty:
                    if memory.is_idle():
                        break  # quiescent -- or deadlocked; verified below
                    if not memory.has_pending():
                        # Dead cycles: nothing to tick until the oldest
                        # in-flight memory response lands.  Jump there.
                        target = memory.next_response_cycle()
                        if target > self.cycle:
                            fast_forwarded += target - self.cycle
                            self.cycle = target

                # ---- one active cycle ----
                # The loop body below is the simulator's hot path; the
                # scheduling bookkeeping is inlined (no _schedule calls,
                # base wake contract evaluated without a method call)
                # because per-tick call overhead is what decides whether
                # skipping ticks beats the dense loop on wall time.
                cycle = self.cycle
                next_cycle = cycle + 1
                pending.sort(key=by_index)  # dense ticks in registration order
                agenda = pending
                pending = self._wake_next = wake_next = []
                activity_before = self._activity
                ticks_executed += len(agenda)
                for module in agenda:
                    module.tick(cycle)
                    if module._static_idle:
                        idle = True  # base is_idle: constant, never flips
                    else:
                        idle = module.is_idle()
                        if idle != module._was_idle:
                            module._was_idle = idle
                            self._activity += 1
                    if module._custom_wake:
                        want = module.wants_tick()
                    elif not idle:
                        want = True
                    else:
                        # Base contract, inlined: tick again while input
                        # data is buffered.
                        want = False
                        for queue in module._in_queues:
                            if queue._items:
                                want = True
                                break
                    if want and module._wake_cycle < next_cycle:
                        module._wake_cycle = next_cycle
                        wake_next.append(module)

                if memory.has_work():
                    completed_before = memory.responses_completed
                    memory.tick(cycle)
                    if memory.responses_completed != completed_before:
                        self._activity += 1

                if self._dirty:
                    dirty = self._dirty
                    self._dirty = []
                    for queue in dirty:
                        queue._dirty = False
                        queue.commit()
                        for consumer in queue.consumers:
                            if consumer._wake_cycle < next_cycle:
                                consumer._wake_cycle = next_cycle
                                wake_next.append(consumer)

                if self._activity != activity_before:
                    last_activity = cycle
                if probe is not None:
                    probe.on_cycle(self, cycle)
                self.cycle = next_cycle
        finally:
            self._event_active = False
            self._wake_next = []

        # The wake set drained with idle memory and clean queues.  One
        # O(modules)+O(queues) pass tells completion from deadlock -- the
        # only full scan of the run.
        if not self.is_quiescent():
            raise RuntimeError(self._deadlock_report(None))

        # Match the dense loop's accounting exactly: quiescence is first
        # *observed* on the step after the last state change, and one more
        # confirming step runs after that.
        if last_activity is None:
            cycles = 2
        else:
            cycles = last_activity - start + 2
        self.cycle = start + cycles
        stats = self._stats(
            cycles,
            mode="event",
            wall_seconds=time.perf_counter() - t0,
            ticks_executed=ticks_executed,
            fast_forward_cycles=fast_forwarded,
        )
        if probe is not None:
            probe.on_run_end(self, stats)
        return stats

    # -- diagnostics ---------------------------------------------------------------

    def _deadlock_report(self, max_cycles: Optional[int]) -> str:
        """A deadlock/overflow message naming the stuck parts: non-idle
        modules, non-empty and full queues, and outstanding memory
        requests -- instead of a bare 'deadlock?'."""
        if max_cycles is not None:
            lines = [
                f"simulation did not finish within {max_cycles} cycles "
                f"(cycle {self.cycle})"
            ]
        else:
            lines = [
                f"simulation deadlocked at cycle {self.cycle}: no module "
                "can make progress but work remains"
            ]
        stuck = [m for m in self.modules if not m.is_idle()]
        if stuck:
            lines.append("  non-idle modules:")
            for module in stuck[:12]:
                lines.append(
                    f"    {module!r} busy={module.busy_cycles} "
                    f"starved={module.starve_cycles} stalled={module.stall_cycles}"
                )
            if len(stuck) > 12:
                lines.append(f"    ... and {len(stuck) - 12} more")
        backed_up = [q for q in self.queues if not q.is_empty()]
        if backed_up:
            lines.append("  non-empty queues:")
            for queue in backed_up[:12]:
                state = "FULL" if queue.is_full() else f"{queue.occupancy()}"
                lines.append(
                    f"    {queue.name}: {state}/{queue.capacity} "
                    f"(full_stalls={queue.full_stalls})"
                )
            if len(backed_up) > 12:
                lines.append(f"    ... and {len(backed_up) - 12} more")
        pending = self.memory.pending_by_port()
        if pending or self.memory.in_flight():
            lines.append(
                f"  memory: {sum(pending.values())} requests awaiting grant "
                f"on ports {sorted(pending)} "
                f"({self.memory.in_flight()} in flight)"
            )
        if len(lines) == 1:
            lines.append("  (all modules idle, all queues empty)")
        return "\n".join(lines)

    def _stats(
        self,
        cycles: int,
        mode: str = "dense",
        wall_seconds: float = 0.0,
        ticks_executed: int = 0,
        fast_forward_cycles: int = 0,
    ) -> RunStats:
        return RunStats(
            cycles=cycles,
            flits_by_module={m.name: m.flits_out for m in self.modules},
            busy_by_module={m.name: m.busy_cycles for m in self.modules},
            starve_by_module={m.name: m.starve_cycles for m in self.modules},
            memory_bytes=self.memory.bytes_transferred,
            memory_requests=self.memory.requests_served,
            mode=mode,
            wall_seconds=wall_seconds,
            ticks_executed=ticks_executed,
            ticks_possible=cycles * len(self.modules),
            fast_forward_cycles=fast_forward_cycles,
        )
