"""Accelerator-side memory system model.

The AWS F1 card carries 64 GB of DDR4 across four channels; Figure 8 shows
every pipeline's memory readers/writers arbitrated through local arbiters
onto per-channel global arbiters.  This model captures the two properties
that shape Genesis performance:

* **bandwidth** — each channel services one fixed-size access (default
  64 B) per cycle, so total bandwidth is ``channels * 64 B/cycle``
  (4 x 16 GB/s at 250 MHz, the F1's DDR4 configuration);
* **latency** — a fixed response latency per request (default 40 cycles),
  hidden by the readers' prefetch buffers exactly as in the paper.

Requesters (memory reader/writer modules) register a port; each port is
assigned to a channel round-robin.  Per cycle, each channel grants one
outstanding request via a round-robin arbiter over its ports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Tuple

from .arbiter import RoundRobinArbiter

#: Memory access granularity in bytes (the paper's example value).
ACCESS_BYTES = 64


@dataclass
class MemoryConfig:
    """Memory system parameters (defaults model the F1's 4-channel DDR4
    at a 250 MHz accelerator clock)."""

    channels: int = 4
    access_bytes: int = ACCESS_BYTES
    latency_cycles: int = 40

    def __post_init__(self) -> None:
        if self.channels < 1 or self.access_bytes < 1 or self.latency_cycles < 0:
            raise ValueError("invalid memory configuration")

    def bandwidth_bytes_per_cycle(self) -> int:
        """Aggregate bandwidth of all channels."""
        return self.channels * self.access_bytes


class MemorySystem:
    """Request-level memory model with per-channel round-robin arbitration."""

    def __init__(self, config: MemoryConfig = None):
        self.config = config or MemoryConfig()
        self._ports: List[Tuple[int, Callable[[int], None]]] = []
        self._pending: List[Deque[int]] = []
        self._in_flight: Deque[Tuple[int, int, Callable[[int], None], int]] = deque()
        self._arbiters: List[RoundRobinArbiter] = []
        self._ports_by_channel: List[List[int]] = [
            [] for _ in range(self.config.channels)
        ]
        # statistics
        self.requests_served = 0
        self.bytes_transferred = 0
        self.busy_channel_cycles = 0

    # -- port registration ------------------------------------------------------

    def register_port(self, on_response: Callable[[int], None] = None) -> int:
        """Register a requester.  ``on_response(count)`` is called when its
        read requests complete (writers pass None).  Returns the port id."""
        port = len(self._ports)
        channel = port % self.config.channels
        self._ports.append((channel, on_response))
        self._pending.append(deque())
        self._ports_by_channel[channel].append(port)
        self._arbiters = [
            RoundRobinArbiter(f"mem.ch{c}", max(1, len(ports)))
            for c, ports in enumerate(self._ports_by_channel)
        ]
        return port

    # -- request issue -----------------------------------------------------------

    def request(self, port: int, count: int = 1) -> None:
        """Enqueue ``count`` access-granularity requests from ``port``."""
        if count < 1:
            raise ValueError("count must be positive")
        self._pending[port].extend([1] * count)

    def pending_requests(self, port: int) -> int:
        """Requests of ``port`` not yet granted a channel slot."""
        return len(self._pending[port])

    def in_flight(self) -> int:
        """Requests granted but not yet completed."""
        return len(self._in_flight)

    # -- simulation ---------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """One cycle: each channel grants one request; complete responses
        whose latency elapsed."""
        for channel, ports in enumerate(self._ports_by_channel):
            if not ports:
                continue
            requesting = [bool(self._pending[p]) for p in ports]
            if not any(requesting):
                continue
            winner = self._arbiters[channel].grant(requesting)
            if winner is None:
                continue
            port = ports[winner]
            self._pending[port].popleft()
            self.requests_served += 1
            self.bytes_transferred += self.config.access_bytes
            self.busy_channel_cycles += 1
            _channel, on_response = self._ports[port]
            ready_at = cycle + self.config.latency_cycles
            self._in_flight.append((ready_at, port, on_response, 1))
        while self._in_flight and self._in_flight[0][0] <= cycle:
            _ready, _port, on_response, count = self._in_flight.popleft()
            if on_response is not None:
                on_response(count)

    def is_idle(self) -> bool:
        """True when no requests are pending or in flight."""
        return not self._in_flight and all(not q for q in self._pending)
