"""Accelerator-side memory system model.

The AWS F1 card carries 64 GB of DDR4 across four channels; Figure 8 shows
every pipeline's memory readers/writers arbitrated through local arbiters
onto per-channel global arbiters.  This model captures the two properties
that shape Genesis performance:

* **bandwidth** — each channel services one fixed-size access (default
  64 B) per cycle, so total bandwidth is ``channels * 64 B/cycle``
  (4 x 16 GB/s at 250 MHz, the F1's DDR4 configuration);
* **latency** — a fixed response latency per request (default 40 cycles),
  hidden by the readers' prefetch buffers exactly as in the paper.

Requesters (memory reader/writer modules) register a port; each port is
assigned to a channel round-robin.  Per cycle, each channel grants one
outstanding request via a round-robin arbiter over its ports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .arbiter import RoundRobinArbiter

#: Memory access granularity in bytes (the paper's example value).
ACCESS_BYTES = 64


@dataclass
class MemoryConfig:
    """Memory system parameters (defaults model the F1's 4-channel DDR4
    at a 250 MHz accelerator clock)."""

    channels: int = 4
    access_bytes: int = ACCESS_BYTES
    latency_cycles: int = 40

    def __post_init__(self) -> None:
        if self.channels < 1 or self.access_bytes < 1 or self.latency_cycles < 0:
            raise ValueError("invalid memory configuration")

    def bandwidth_bytes_per_cycle(self) -> int:
        """Aggregate bandwidth of all channels."""
        return self.channels * self.access_bytes


class MemorySystem:
    """Request-level memory model with per-channel round-robin arbitration."""

    def __init__(self, config: Optional[MemoryConfig] = None):
        self.config = config or MemoryConfig()
        self._ports: List[Tuple[int, Callable[[int], None]]] = []
        self._pending: List[Deque[int]] = []
        self._in_flight: Deque[Tuple[int, int, Callable[[int], None], int]] = deque()
        self._arbiters: List[RoundRobinArbiter] = []
        self._ports_by_channel: List[List[int]] = [
            [] for _ in range(self.config.channels)
        ]
        self._pending_total = 0
        # Per-channel pending counts let tick() skip a channel without
        # rebuilding its request vector (the arbitration loop runs every
        # simulated cycle while any request is queued, in both engine
        # modes, so this is shared hot path).
        self._pending_by_channel: List[int] = [0] * self.config.channels
        # statistics
        self.requests_served = 0
        self.bytes_transferred = 0
        self.busy_channel_cycles = 0
        self.responses_completed = 0
        #: Grants issued per channel — the profiler's per-channel
        #: utilization is grants/cycles (one access per channel-cycle).
        self.channel_grants: List[int] = [0] * self.config.channels

    # -- port registration ------------------------------------------------------

    def register_port(self, on_response: Optional[Callable[[int], None]] = None) -> int:
        """Register a requester.  ``on_response(count)`` is called when its
        read requests complete (writers pass None).  Returns the port id."""
        port = len(self._ports)
        channel = port % self.config.channels
        self._ports.append((channel, on_response))
        self._pending.append(deque())
        self._ports_by_channel[channel].append(port)
        self._arbiters = [
            RoundRobinArbiter(f"mem.ch{c}", max(1, len(ports)))
            for c, ports in enumerate(self._ports_by_channel)
        ]
        return port

    # -- request issue -----------------------------------------------------------

    def request(self, port: int, count: int = 1) -> None:
        """Enqueue ``count`` access-granularity requests from ``port``."""
        if count < 1:
            raise ValueError("count must be positive")
        self._pending[port].extend([1] * count)
        self._pending_total += count
        self._pending_by_channel[self._ports[port][0]] += count

    def pending_requests(self, port: int) -> int:
        """Requests of ``port`` not yet granted a channel slot."""
        return len(self._pending[port])

    def in_flight(self) -> int:
        """Requests granted but not yet completed."""
        return len(self._in_flight)

    # -- event-driven scheduling hooks -------------------------------------------

    def has_pending(self) -> bool:
        """True while any request still waits for a channel grant (the
        arbiters then need a tick every cycle).  O(1)."""
        return self._pending_total > 0

    def has_work(self) -> bool:
        """True when ticking this cycle could change memory state."""
        return self._pending_total > 0 or bool(self._in_flight)

    def next_response_cycle(self) -> Optional[int]:
        """The cycle the oldest in-flight request completes (None when
        nothing is in flight).  In-flight entries are ordered by their
        ready cycle — grants are issued in cycle order with a fixed
        latency — so this is the engine's fast-forward target when every
        module is asleep and no request is waiting for a grant."""
        return self._in_flight[0][0] if self._in_flight else None

    # -- simulation ---------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """One cycle: each channel grants one request; complete responses
        whose latency elapsed."""
        if self._pending_total:
            pending = self._pending
            for channel, ports in enumerate(self._ports_by_channel):
                if not self._pending_by_channel[channel]:
                    continue
                requesting = [bool(pending[p]) for p in ports]
                winner = self._arbiters[channel].grant(requesting)
                if winner is None:
                    continue
                port = ports[winner]
                pending[port].popleft()
                self._pending_total -= 1
                self._pending_by_channel[channel] -= 1
                self.requests_served += 1
                self.bytes_transferred += self.config.access_bytes
                self.busy_channel_cycles += 1
                self.channel_grants[channel] += 1
                _channel, on_response = self._ports[port]
                ready_at = cycle + self.config.latency_cycles
                self._in_flight.append((ready_at, port, on_response, 1))
        in_flight = self._in_flight
        while in_flight and in_flight[0][0] <= cycle:
            _ready, _port, on_response, count = in_flight.popleft()
            self.responses_completed += 1
            if on_response is not None:
                on_response(count)

    def is_idle(self) -> bool:
        """True when no requests are pending or in flight."""
        return not self._in_flight and self._pending_total == 0

    def pending_by_port(self) -> Dict[int, int]:
        """Outstanding (ungranted) request counts per port — deadlock
        diagnostics."""
        return {
            port: len(queue)
            for port, queue in enumerate(self._pending)
            if queue
        }
