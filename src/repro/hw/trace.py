"""Cycle tracing: record per-module activity and render text timelines.

A debugging/analysis aid for the dataflow simulator: attach a
:class:`Tracer` to an engine and every cycle it samples each module's
state (busy / starved / stalled / idle).  The trace renders as a compact
text "waveform" — invaluable when a composed pipeline underperforms and
you need to see where bubbles originate — and computes per-module
utilization summaries for the benchmark reports.

The Tracer is a thin view over :class:`repro.obs.timeline.TimelineRecorder`
(the same recorder the profiler uses), which keys every sample to an
explicit cycle stamp.  That fixes two long-standing sampling bugs: a
tracer attached mid-run starts at the next cycle boundary instead of
recording a phantom pre-attach cycle, and calling ``sample()`` twice
without stepping no longer double-counts the cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.timeline import TimelineRecorder

from .engine import Engine

#: Activity symbols: busy, starved (waiting for input), stalled (output
#: full), idle.
SYMBOLS = {"busy": "#", "starved": ".", "stalled": "x", "idle": " "}


@dataclass
class ModuleTrace:
    """One module's sampled activity."""

    name: str
    samples: List[str] = field(default_factory=list)

    def utilization(self) -> float:
        """Fraction of traced cycles the module moved a flit."""
        if not self.samples:
            return 0.0
        return self.samples.count("busy") / len(self.samples)

    def stall_fraction(self) -> float:
        """Fraction of traced cycles lost to output back-pressure."""
        if not self.samples:
            return 0.0
        return self.samples.count("stalled") / len(self.samples)

    def starve_fraction(self) -> float:
        """Fraction of traced cycles waiting on inputs."""
        if not self.samples:
            return 0.0
        return self.samples.count("starved") / len(self.samples)


class Tracer:
    """Samples an engine's modules every cycle.

    Usage::

        tracer = Tracer(engine)
        while not engine.is_quiescent():
            engine.step()
            tracer.sample()
        print(tracer.render())
    """

    def __init__(self, engine: Engine, max_cycles: int = 10_000):
        self.engine = engine
        self.max_cycles = max_cycles
        self._recorder = TimelineRecorder(engine, max_cycles=max_cycles)

    @property
    def attach_cycle(self) -> int:
        """The engine cycle the tracer attached at; sampling covers
        activity from this cycle boundary on."""
        return self._recorder.attach_cycle

    @property
    def cycles_traced(self) -> int:
        """Distinct cycles recorded so far."""
        return self._recorder.cycles_recorded

    def sample(self) -> bool:
        """Record the cycle the engine just finished (call after
        ``engine.step()``).  Samples are keyed by cycle number: a repeat
        call without an intervening step, or a call before the first
        post-attach step, is ignored (returns False)."""
        return self._recorder.sample()

    def run_traced(self, max_cycles: Optional[int] = None) -> None:
        """Drive the engine to quiescence while sampling every cycle."""
        limit = max_cycles or self.max_cycles
        idle_streak = 0
        while idle_streak < 2 and self.cycles_traced < limit:
            self.engine.step()
            self.sample()
            idle_streak = idle_streak + 1 if self.engine.is_quiescent() else 0

    @property
    def traces(self) -> Dict[str, ModuleTrace]:
        """Per-module sample lists, materialized from the recorder's
        coalesced spans (one entry per module, present from attach even
        before the first sample)."""
        out: Dict[str, ModuleTrace] = {}
        for name, timeline in self._recorder.timelines.items():
            trace = ModuleTrace(name)
            for span in timeline.spans:
                trace.samples.extend([span.state] * span.cycles)
            out[name] = trace
        return out

    # -- rendering -----------------------------------------------------------------

    def render(self, start: int = 0, width: int = 72) -> str:
        """A text waveform: one row per module, one column per cycle.

        ``#`` busy, ``.`` starved, ``x`` stalled, space idle.
        """
        traces = self.traces
        label_width = max((len(name) for name in traces), default=0)
        lines = [
            f"cycles {start}..{min(start + width, self.cycles_traced)} "
            f"(# busy, . starved, x stalled)"
        ]
        for name in traces:
            samples = traces[name].samples[start:start + width]
            wave = "".join(SYMBOLS[state] for state in samples)
            lines.append(f"{name.rjust(label_width)} |{wave}|")
        return "\n".join(lines)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-module utilization/stall/starve fractions."""
        return {
            name: {
                "utilization": trace.utilization(),
                "stalled": trace.stall_fraction(),
                "starved": trace.starve_fraction(),
            }
            for name, trace in self.traces.items()
        }

    def bottleneck(self) -> Optional[str]:
        """The busiest module — where the pipeline's critical path sits."""
        traces = self.traces
        if not traces:
            return None
        return max(traces.values(), key=ModuleTrace.utilization).name
