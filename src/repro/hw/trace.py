"""Cycle tracing: record per-module activity and render text timelines.

A debugging/analysis aid for the dataflow simulator: attach a
:class:`Tracer` to an engine and every cycle it samples each module's
state (busy / starved / stalled / idle).  The trace renders as a compact
text "waveform" — invaluable when a composed pipeline underperforms and
you need to see where bubbles originate — and computes per-module
utilization summaries for the benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .engine import Engine

#: Activity symbols: busy, starved (waiting for input), stalled (output
#: full), idle.
SYMBOLS = {"busy": "#", "starved": ".", "stalled": "x", "idle": " "}


@dataclass
class ModuleTrace:
    """One module's sampled activity."""

    name: str
    samples: List[str] = field(default_factory=list)

    def utilization(self) -> float:
        """Fraction of traced cycles the module moved a flit."""
        if not self.samples:
            return 0.0
        return self.samples.count("busy") / len(self.samples)

    def stall_fraction(self) -> float:
        """Fraction of traced cycles lost to output back-pressure."""
        if not self.samples:
            return 0.0
        return self.samples.count("stalled") / len(self.samples)

    def starve_fraction(self) -> float:
        """Fraction of traced cycles waiting on inputs."""
        if not self.samples:
            return 0.0
        return self.samples.count("starved") / len(self.samples)


class Tracer:
    """Samples an engine's modules every cycle.

    Usage::

        tracer = Tracer(engine)
        while not engine.is_quiescent():
            engine.step()
            tracer.sample()
        print(tracer.render())
    """

    def __init__(self, engine: Engine, max_cycles: int = 10_000):
        self.engine = engine
        self.max_cycles = max_cycles
        self.traces: Dict[str, ModuleTrace] = {
            module.name: ModuleTrace(module.name) for module in engine.modules
        }
        self._previous = {
            module.name: (module.busy_cycles, module.starve_cycles,
                          module.stall_cycles)
            for module in engine.modules
        }
        self.cycles_traced = 0

    def sample(self) -> None:
        """Record one cycle's activity (call after ``engine.step()``)."""
        if self.cycles_traced >= self.max_cycles:
            return
        self.cycles_traced += 1
        for module in self.engine.modules:
            previous = self._previous.get(module.name, (0, 0, 0))
            busy, starved, stalled = (
                module.busy_cycles, module.starve_cycles, module.stall_cycles
            )
            if busy > previous[0]:
                state = "busy"
            elif stalled > previous[2]:
                state = "stalled"
            elif starved > previous[1]:
                state = "starved"
            else:
                state = "idle"
            trace = self.traces.get(module.name)
            if trace is None:
                trace = ModuleTrace(module.name)
                self.traces[module.name] = trace
            trace.samples.append(state)
            self._previous[module.name] = (busy, starved, stalled)

    def run_traced(self, max_cycles: Optional[int] = None) -> None:
        """Drive the engine to quiescence while sampling every cycle."""
        limit = max_cycles or self.max_cycles
        idle_streak = 0
        while idle_streak < 2 and self.cycles_traced < limit:
            self.engine.step()
            self.sample()
            idle_streak = idle_streak + 1 if self.engine.is_quiescent() else 0

    # -- rendering -----------------------------------------------------------------

    def render(self, start: int = 0, width: int = 72) -> str:
        """A text waveform: one row per module, one column per cycle.

        ``#`` busy, ``.`` starved, ``x`` stalled, space idle.
        """
        label_width = max((len(name) for name in self.traces), default=0)
        lines = [
            f"cycles {start}..{min(start + width, self.cycles_traced)} "
            f"(# busy, . starved, x stalled)"
        ]
        for name in self.traces:
            samples = self.traces[name].samples[start:start + width]
            wave = "".join(SYMBOLS[state] for state in samples)
            lines.append(f"{name.rjust(label_width)} |{wave}|")
        return "\n".join(lines)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-module utilization/stall/starve fractions."""
        return {
            name: {
                "utilization": trace.utilization(),
                "stalled": trace.stall_fraction(),
                "starved": trace.starve_fraction(),
            }
            for name, trace in self.traces.items()
        }

    def bottleneck(self) -> Optional[str]:
        """The busiest module — where the pipeline's critical path sits."""
        if not self.traces:
            return None
        return max(self.traces.values(), key=ModuleTrace.utilization).name
