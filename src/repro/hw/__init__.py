"""Genesis hardware library: a cycle-level dataflow simulator.

Implements the paper's hardware substrate (Section III-C/D) in simulation:
flits and streams, bounded hardware queues with back-pressure, a
cycle-driven engine, a banked memory system with two-level arbitration
(Figure 8), on-chip scratchpads with the RMW hazard interlock, the module
library of Figure 6, and an additive FPGA resource model (Table IV).
"""

from .arbiter import RoundRobinArbiter, TwoLevelArbiter
from .engine import Engine, RunStats
from .flit import DEL, INS, Flit, item_flits, scalar_flit, split_items
from .memory import ACCESS_BYTES, MemoryConfig, MemorySystem
from .module import Module, SinkModule, SourceModule
from .pipeline import Pipeline, ReplicaSet, replicate
from .queue import HardwareQueue
from .resources import (
    MODULE_COSTS,
    SHELL_COST,
    VU9P_BRAM_BYTES,
    VU9P_LUTS,
    VU9P_REGISTERS,
    ResourceVector,
    estimate_accelerator,
    estimate_pipeline,
)
from .spm import RmwInterlock, Scratchpad

__all__ = [
    "ACCESS_BYTES",
    "DEL",
    "Engine",
    "Flit",
    "HardwareQueue",
    "INS",
    "MemoryConfig",
    "MemorySystem",
    "MODULE_COSTS",
    "Module",
    "Pipeline",
    "ReplicaSet",
    "ResourceVector",
    "RmwInterlock",
    "RoundRobinArbiter",
    "RunStats",
    "Scratchpad",
    "SHELL_COST",
    "SinkModule",
    "SourceModule",
    "TwoLevelArbiter",
    "VU9P_BRAM_BYTES",
    "VU9P_LUTS",
    "VU9P_REGISTERS",
    "estimate_accelerator",
    "estimate_pipeline",
    "item_flits",
    "replicate",
    "scalar_flit",
    "split_items",
]

from .trace import ModuleTrace, Tracer

__all__ += ["ModuleTrace", "Tracer"]
