"""FPGA resource model (Table IV).

We cannot synthesize bitstreams, so resource usage is modelled additively:
every module instance costs a fixed number of CLB LUTs and registers
(constants calibrated once against Table IV and documented in DESIGN.md),
scratchpads cost BRAM by capacity, and a fixed *shell* overhead models the
AWS F1 interface logic (DMA, PCIe, DDR controllers) present in every
design.  The model's purpose is to reproduce the *shape* of Table IV —
which accelerator is LUT-heavy, which is BRAM-heavy, and roughly how much
of the VU9P each consumes — not exact post-route numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

#: Xilinx VU9P capacities as reported in Table IV.
VU9P_LUTS = 895_000
VU9P_REGISTERS = 1_790_000
VU9P_BRAM_BYTES = int(7.56 * 1024 * 1024)


@dataclass(frozen=True)
class ResourceVector:
    """LUT / register / BRAM consumption."""

    luts: int = 0
    registers: int = 0
    bram_bytes: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.luts + other.luts,
            self.registers + other.registers,
            self.bram_bytes + other.bram_bytes,
        )

    def scaled(self, factor: int) -> "ResourceVector":
        """This vector times an instance count."""
        return ResourceVector(
            self.luts * factor, self.registers * factor, self.bram_bytes * factor
        )

    def utilization(self) -> Dict[str, float]:
        """Fraction of the VU9P consumed, per resource class."""
        return {
            "luts": self.luts / VU9P_LUTS,
            "registers": self.registers / VU9P_REGISTERS,
            "bram": self.bram_bytes / VU9P_BRAM_BYTES,
        }


#: Per-module-instance costs (calibrated against Table IV; see DESIGN.md
#: and EXPERIMENTS.md).  Reducers additionally pay per reduction-tree lane
#: (the mark-duplicates Reducer consumes a whole 64 B memory line per
#: cycle, hence 64 lanes; stream-granularity reducers use 1).
MODULE_COSTS: Dict[str, ResourceVector] = {
    "MemoryReader": ResourceVector(500, 800, 4096),
    "MemoryWriter": ResourceVector(400, 650, 2048),
    "Reducer": ResourceVector(400, 700, 0),
    "Filter": ResourceVector(350, 500, 0),
    "Joiner": ResourceVector(1_000, 1_500, 0),
    "StreamAlu": ResourceVector(450, 650, 0),
    "Fork": ResourceVector(150, 250, 0),
    "ReadToBases": ResourceVector(1_500, 2_200, 0),
    "MdGen": ResourceVector(1_000, 1_500, 0),
    # BinIDGen computes two bin IDs per cycle with integer multipliers and
    # reverse-cycle arithmetic — by far the widest datapath in any pipeline.
    "BinIdGen": ResourceVector(12_000, 9_000, 0),
    # The SPM Updater's RMW mode carries the three-stage hazard CAM and the
    # banked update port (Section III-C), dominating its area.
    "SpmUpdater": ResourceVector(2_500, 2_600, 0),
    "SpmReader": ResourceVector(500, 800, 0),
    # Extension modules (Section IV-E pipelines and the merge sorter).
    "MergeUnit": ResourceVector(900, 1_300, 0),
    "AnchorInsertions": ResourceVector(400, 600, 0),
    "FmSeeder": ResourceVector(3_200, 3_800, 0),
}

#: Extra cost per reduction-tree lane beyond the first.
REDUCER_LANE_COST = ResourceVector(70, 110, 0)

#: Per-queue cost (the hardware FIFOs between modules).
QUEUE_COST = ResourceVector(60, 160, 0)

#: Fixed shell overhead (PCIe/DMA/DDR controllers of the F1 shell).
SHELL_COST = ResourceVector(125_000, 140_000, 256 * 1024)

#: Per-pipeline arbitration overhead (local arbiters, Figure 8).
ARBITER_COST = ResourceVector(500, 800, 0)


def estimate_pipeline(
    module_census: Mapping[str, int],
    spm_bytes: Iterable[int] = (),
    num_queues: int = None,
    reducer_lanes: int = 1,
) -> ResourceVector:
    """Resource vector of ONE pipeline replica.

    ``module_census`` maps module type name to instance count (what
    :meth:`repro.hw.pipeline.Pipeline.module_census` returns);
    ``spm_bytes`` lists each scratchpad's capacity in bytes;
    ``reducer_lanes`` sets the reduction-tree width of the pipeline's
    reducers.  When ``num_queues`` is omitted it is approximated as 1.5x
    the module count.
    """
    if reducer_lanes < 1:
        raise ValueError("reducer_lanes must be at least 1")
    total = ResourceVector()
    module_count = 0
    for type_name, count in module_census.items():
        cost = MODULE_COSTS.get(type_name)
        if cost is None:
            raise KeyError(f"no resource cost for module type {type_name}")
        total = total + cost.scaled(count)
        if type_name == "Reducer" and reducer_lanes > 1:
            total = total + REDUCER_LANE_COST.scaled((reducer_lanes - 1) * count)
        module_count += count
    if num_queues is None:
        num_queues = int(module_count * 1.5)
    total = total + QUEUE_COST.scaled(num_queues)
    total = total + ARBITER_COST
    for size in spm_bytes:
        total = total + ResourceVector(200, 300, int(size))
    return total


def estimate_accelerator(
    module_census: Mapping[str, int],
    spm_bytes: Iterable[int],
    num_pipelines: int,
    reducer_lanes: int = 1,
) -> ResourceVector:
    """Full-accelerator estimate: N replicated pipelines plus the shell."""
    pipeline = estimate_pipeline(
        module_census, spm_bytes, reducer_lanes=reducer_lanes
    )
    return pipeline.scaled(num_pipelines) + SHELL_COST
