"""Bounded hardware queues connecting dataflow modules.

Section III-C: "multiple independent modules are connected to each other
via hardware queues".  A queue here is a bounded FIFO with *registered*
semantics: a flit pushed in cycle N becomes visible to the consumer in
cycle N+1 (the engine commits staged pushes at the end of every cycle).
That single-cycle hop latency is what makes the simulation behave like a
pipelined circuit regardless of the order modules are ticked in.

Queues track occupancy statistics so benchmarks can report where
back-pressure accumulates.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .flit import Flit


class HardwareQueue:
    """A bounded FIFO of flits with end-of-cycle commit semantics."""

    def __init__(self, name: str, capacity: int = 8):
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.name = name
        self.capacity = capacity
        self._items: Deque[Flit] = deque()
        self._staged: List[Flit] = []
        # statistics
        self.total_pushed = 0
        self.max_occupancy = 0
        self.full_stalls = 0

    # -- producer side -------------------------------------------------------

    def can_push(self) -> bool:
        """True when there is room for one more flit this cycle."""
        return len(self._items) + len(self._staged) < self.capacity

    def push(self, flit: Flit) -> None:
        """Stage one flit; it becomes visible after the cycle commits."""
        if not self.can_push():
            self.full_stalls += 1
            raise RuntimeError(f"push to full queue {self.name}")
        self._staged.append(flit)
        self.total_pushed += 1

    # -- consumer side ---------------------------------------------------------

    def can_pop(self) -> bool:
        """True when a committed flit is available."""
        return bool(self._items)

    def peek(self) -> Optional[Flit]:
        """The head flit without consuming it (None when empty)."""
        return self._items[0] if self._items else None

    def pop(self) -> Flit:
        """Consume and return the head flit."""
        if not self._items:
            raise RuntimeError(f"pop from empty queue {self.name}")
        return self._items.popleft()

    # -- engine hooks ---------------------------------------------------------

    def commit(self) -> None:
        """End-of-cycle: make staged flits visible."""
        if self._staged:
            self._items.extend(self._staged)
            self._staged.clear()
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)

    def is_empty(self) -> bool:
        """True when nothing is committed or staged."""
        return not self._items and not self._staged

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"HardwareQueue({self.name}, {len(self._items)}/{self.capacity})"
