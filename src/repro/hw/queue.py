"""Bounded hardware queues connecting dataflow modules.

Section III-C: "multiple independent modules are connected to each other
via hardware queues".  A queue here is a bounded FIFO with *registered*
semantics: a flit pushed in cycle N becomes visible to the consumer in
cycle N+1 (the engine commits staged pushes at the end of every cycle).
That single-cycle hop latency is what makes the simulation behave like a
pipelined circuit regardless of the order modules are ticked in.

Queues are also the event source of the activity-driven scheduler: when
attached to an engine they report pushes (the queue becomes *dirty* and
needs an end-of-cycle commit) and pops (activity that resets the
quiescence clock; no wake-up is needed because a blocked producer keeps
itself awake by reporting non-idle).  Queues built standalone (unit
tests, ad-hoc harnesses) work exactly as before; the hooks are inert
until :meth:`attach` is called.

Queues track occupancy statistics so benchmarks can report where
back-pressure accumulates; ``full_stalls`` counts the cycles a producer
reported being blocked on this queue (via
:meth:`repro.hw.module.Module._note_stalled`), which is what the
Fig-13(b)-style attribution plots consume.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional

from .flit import Flit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine
    from .module import Module


class HardwareQueue:
    """A bounded FIFO of flits with end-of-cycle commit semantics."""

    def __init__(self, name: str, capacity: int = 8):
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.name = name
        self.capacity = capacity
        self._items: Deque[Flit] = deque()
        self._staged: List[Flit] = []
        # scheduler wiring (None when used standalone)
        self._scheduler: Optional["Engine"] = None
        self._dirty = False
        self.producers: List["Module"] = []
        self.consumers: List["Module"] = []
        # statistics
        self.total_pushed = 0
        self.max_occupancy = 0
        self.full_stalls = 0

    # -- scheduler wiring -----------------------------------------------------

    def attach(self, scheduler: "Engine") -> None:
        """Attach this queue to an engine so pushes and pops feed the
        activity-driven scheduler (no-op behaviour change otherwise)."""
        self._scheduler = scheduler

    # -- producer side -------------------------------------------------------

    def can_push(self) -> bool:
        """True when there is room for one more flit this cycle."""
        return len(self._items) + len(self._staged) < self.capacity

    def push(self, flit: Flit) -> None:
        """Stage one flit; it becomes visible after the cycle commits.

        Pushing to a full queue is a module bug (back-pressure must be
        checked first) and raises.  Use :meth:`try_push` for the
        non-raising variant.
        """
        if len(self._items) + len(self._staged) >= self.capacity:
            raise RuntimeError(f"push to full queue {self.name}")
        self._staged.append(flit)
        self.total_pushed += 1
        # Scheduler bookkeeping, inlined (this is the hottest path in the
        # simulator): the push is activity and the queue now needs an
        # end-of-cycle commit.
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler._activity += 1
            if not self._dirty:
                self._dirty = True
                scheduler._dirty.append(self)

    def try_push(self, flit: Flit) -> bool:
        """Stage one flit if there is room; returns False (and leaves the
        queue untouched) when full.  Producers that use this path should
        record the stall against this queue with ``_note_stalled(queue)``
        so back-pressure attribution stays accurate."""
        if not self.can_push():
            return False
        self.push(flit)
        return True

    # -- consumer side ---------------------------------------------------------

    def can_pop(self) -> bool:
        """True when a committed flit is available."""
        return bool(self._items)

    def peek(self) -> Optional[Flit]:
        """The head flit without consuming it (None when empty)."""
        return self._items[0] if self._items else None

    def pop(self) -> Flit:
        """Consume and return the head flit."""
        if not self._items:
            raise RuntimeError(f"pop from empty queue {self.name}")
        flit = self._items.popleft()
        # A pop is activity (it resets the quiescence clock) but wakes
        # nobody: a producer with something to push reports non-idle and
        # stays in the wake set on its own.
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler._activity += 1
        return flit

    # -- engine hooks ---------------------------------------------------------

    def commit(self) -> None:
        """End-of-cycle: make staged flits visible."""
        if self._staged:
            self._items.extend(self._staged)
            self._staged.clear()
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)

    def is_empty(self) -> bool:
        """True when nothing is committed or staged."""
        return not self._items and not self._staged

    def is_full(self) -> bool:
        """True when no flit can be staged this cycle."""
        return not self.can_push()

    def occupancy(self) -> int:
        """Committed plus staged flits currently held."""
        return len(self._items) + len(self._staged)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"HardwareQueue({self.name}, {len(self._items)}/{self.capacity})"
