"""Joiner module.

Figure 6: merges flits from two input queues whose flits carry a key field
and arrive in ascending key order.  Each cycle the module compares the two
head keys and outputs or discards the flit with the smaller key; equal keys
merge their data fields.  Configurations (Section III-C):

* ``inner`` — discard flits without a matching key on the other side;
* ``left``  — keep every left flit (unmatched ones carry no right fields),
  discard unmatched right flits;
* ``outer`` — never discard.

Streams are *item-aligned*: item ``i`` on the left corresponds to item
``i`` on the right (e.g. a read's exploded bases vs. the read's reference
interval).  When both sides of an item are consumed, the joiner emits a
payload-less boundary flit with ``last`` set, so downstream reducers see
per-item framing even when the final data flits were discarded.

Left-side keys equal to a configured *passthrough* sentinel (the ``INS``
reference position of inserted bases) are emitted immediately without
consuming the right side — inserted bases have no reference counterpart
but must flow through left joins (metadata update needs them for NM).
"""

from __future__ import annotations

from typing import FrozenSet

from ..flit import INS, Flit
from ..module import Module

_MODES = ("inner", "left", "outer")


class Joiner(Module):
    """Streaming merge-joiner over two item-aligned keyed inputs."""

    def __init__(
        self,
        name: str,
        mode: str = "inner",
        key_a: str = "key",
        key_b: str = "key",
        passthrough_keys: FrozenSet[object] = frozenset({INS}),
    ):
        super().__init__(name)
        if mode not in _MODES:
            raise ValueError(f"join mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        self.key_a = key_a
        self.key_b = key_b
        self.passthrough_keys = passthrough_keys
        self._a_done = False
        self._b_done = False
        self.discarded = 0

    # -- helpers -----------------------------------------------------------------

    def _emit(self, flit: Flit) -> None:
        self.output().push(flit)
        self._note_busy()

    def _consume(self, side: str, flit: Flit) -> None:
        if flit.last:
            if side == "a":
                self._a_done = True
            else:
                self._b_done = True

    def _merge(self, a: Flit, b: Flit) -> Flit:
        fields = dict(a.fields)
        for name, value in b.fields.items():
            if name != self.key_b:
                fields[name] = value
        return Flit(fields, last=False)

    # -- simulation ----------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        out = self._out
        if out is None:
            out = self._out = self.output()
        if not out.can_push():
            self._note_stalled(out)
            return

        # Item boundary: both sides consumed -> emit the boundary flit.
        if self._a_done and self._b_done:
            self._emit(Flit({}, last=True))
            self._a_done = False
            self._b_done = False
            return

        queue_a = self.input("a")
        queue_b = self.input("b")
        head_a = queue_a.peek() if not self._a_done else None
        head_b = queue_b.peek() if not self._b_done else None

        # Drain phases: one side's item ended, flush the other.
        if self._a_done and head_b is not None:
            queue_b.pop()
            self._consume("b", head_b)
            if self.mode == "outer" and head_b.fields:
                # Fields dicts are immutable by convention — share them.
                self._emit(Flit(head_b.fields, last=False))
            else:
                self.discarded += 1
            return
        if self._b_done and head_a is not None:
            queue_a.pop()
            self._consume("a", head_a)
            if self.mode in ("left", "outer") and head_a.fields:
                self._emit(Flit(head_a.fields, last=False))
            else:
                self.discarded += 1
            return

        if head_a is None or head_b is None:
            self._note_starved()
            return

        # Boundary flits (payload-less) just close their side.
        if not head_a.fields:
            queue_a.pop()
            self._consume("a", head_a)
            return
        if not head_b.fields:
            queue_b.pop()
            self._consume("b", head_b)
            return

        a_key = head_a[self.key_a]
        if a_key in self.passthrough_keys:
            # Sentinel-keyed flits (inserted bases) have no reference
            # counterpart: an inner join discards them, a left/outer join
            # forwards them unmatched.
            queue_a.pop()
            self._consume("a", head_a)
            if self.mode == "inner":
                self.discarded += 1
            else:
                self._emit(Flit(dict(head_a.fields), last=False))
            return

        b_key = head_b[self.key_b]
        if a_key == b_key:
            merged = self._merge(head_a, head_b)
            queue_a.pop()
            queue_b.pop()
            self._consume("a", head_a)
            self._consume("b", head_b)
            self._emit(merged)
        elif a_key < b_key:
            queue_a.pop()
            self._consume("a", head_a)
            if self.mode in ("left", "outer"):
                self._emit(Flit(dict(head_a.fields), last=False))
            else:
                self.discarded += 1
        else:
            queue_b.pop()
            self._consume("b", head_b)
            if self.mode == "outer":
                self._emit(Flit(dict(head_b.fields), last=False))
            else:
                self.discarded += 1

    def is_idle(self) -> bool:
        return not self._a_done and not self._b_done
