"""Reducer module.

Figure 6: performs a reduction (Sum, Max, Min, Count) over a stream.  The
hardware uses a reduction tree to sustain one flit per cycle; reductions
can run at *item* granularity (reset at every ``last`` flit, one result per
item) or over the whole stream, and support *masked* reduction — a mask
field selects which values contribute (Section III-C).
"""

from __future__ import annotations

from typing import Optional

from ..flit import DEL, Flit
from ..module import Module

_IDENTITY = {"sum": 0, "count": 0, "max": None, "min": None}


class Reducer(Module):
    """Streaming reduction at item or stream granularity."""

    def __init__(
        self,
        name: str,
        op: str = "sum",
        field: str = "value",
        mask_field: Optional[str] = None,
        per_item: bool = True,
        out_field: str = "value",
    ):
        super().__init__(name)
        if op not in _IDENTITY:
            raise ValueError(f"unsupported reduction {op!r}")
        self.op = op
        self.field = field
        self.mask_field = mask_field
        self.per_item = per_item
        self.out_field = out_field
        self._acc = _IDENTITY[op]
        self._saw_stream_end = False
        self._emitted_stream_result = False

    # -- accumulate --------------------------------------------------------------

    def _contributes(self, flit: Flit) -> bool:
        if self.field not in flit:
            return False
        if flit[self.field] is DEL:
            return False
        if self.mask_field is not None and not flit.get(self.mask_field):
            return False
        return True

    def _accumulate(self, value) -> None:
        if self.op == "count":
            self._acc += 1
        elif self.op == "sum":
            self._acc += value
        elif self.op == "max":
            self._acc = value if self._acc is None else max(self._acc, value)
        elif self.op == "min":
            self._acc = value if self._acc is None else min(self._acc, value)

    def _result(self):
        if self._acc is None:
            return 0
        return self._acc

    # -- simulation ---------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        queue = self.input()
        out = self.output()
        if not queue.can_pop():
            self._note_starved()
            return
        head = queue.peek()
        emits = head.last and self.per_item
        if emits and not out.can_push():
            self._note_stalled(out)
            return
        flit = queue.pop()
        if self._contributes(flit):
            self._accumulate(flit[self.field])
        if emits:
            out.push(Flit({self.out_field: self._result()}, last=True))
            self._note_busy()
            self._acc = _IDENTITY[self.op]

    def stream_result(self):
        """For whole-stream reductions: the final value (drivers read this
        after the run instead of wiring a drain)."""
        return self._result()
