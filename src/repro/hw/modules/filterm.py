"""Filter module.

Figure 6: takes input data from a single queue, checks a comparison
condition (between two fields or a field and a constant), and outputs the
item only when the condition holds.

Item framing is preserved: when the flit carrying ``last`` is dropped, a
payload-less boundary flit with ``last`` set is emitted instead, so
downstream per-item reducers stay aligned.
"""

from __future__ import annotations

import operator
from typing import Callable, Optional

from ..flit import Flit
from ..module import Module

#: Comparison operators the hardware comparator supports.
COMPARATORS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Filter(Module):
    """Streaming comparison filter."""

    def __init__(
        self,
        name: str,
        field: str,
        op: str = "==",
        other_field: Optional[str] = None,
        constant: Optional[object] = None,
        predicate: Optional[Callable[[Flit], bool]] = None,
    ):
        """Configure the condition.

        Either compare ``field`` against ``other_field`` / ``constant``
        with one of :data:`COMPARATORS`, or supply a custom ``predicate``
        over the whole flit (drivers use this for sentinel-aware checks).
        """
        super().__init__(name)
        if predicate is None and op not in COMPARATORS:
            raise ValueError(f"unsupported comparator {op!r}")
        if predicate is None and (other_field is None) == (constant is None):
            raise ValueError("provide exactly one of other_field/constant")
        self.field = field
        self.op = op
        self.other_field = other_field
        self.constant = constant
        self.predicate = predicate
        self.dropped = 0

    def _passes(self, flit: Flit) -> bool:
        if self.predicate is not None:
            return self.predicate(flit)
        left = flit[self.field]
        right = (
            flit[self.other_field] if self.other_field is not None else self.constant
        )
        return COMPARATORS[self.op](left, right)

    def tick(self, cycle: int) -> None:
        queue = self._in
        if queue is None:
            queue = self._in = self.input()
        out = self._out
        if out is None:
            out = self._out = self.output()
        if not queue.can_pop():
            self._note_starved()
            return
        if not out.can_push():
            self._note_stalled(out)
            return
        flit = queue.pop()
        if not flit.fields:
            # Pure boundary flit: forward as-is.
            out.push(Flit({}, last=flit.last))
            self._note_busy()
            return
        if self._passes(flit):
            # Flits are immutable once pushed: forward the object itself.
            out.push(flit)
            self._note_busy()
        else:
            self.dropped += 1
            if flit.last:
                out.push(Flit({}, last=True))
                self._note_busy()
