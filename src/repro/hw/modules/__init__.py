"""The Genesis hardware module library (Figure 6 and Section III-C)."""

from .alu import BINARY_OPS, UNARY_OPS, Fork, StreamAlu
from .binidgen import BinIdGen
from .filterm import COMPARATORS, Filter
from .joiner import Joiner
from .mdgen import MdGen, join_md_tokens
from .memreader import MemoryReader
from .memwriter import MemoryWriter
from .readtobases import ReadToBases
from .reducer import Reducer
from .sorter import MergeUnit, build_merge_tree, sorted_run_flits
from .spm_access import SpmReader, SpmUpdater

__all__ = [
    "BINARY_OPS",
    "BinIdGen",
    "COMPARATORS",
    "Filter",
    "Fork",
    "Joiner",
    "MdGen",
    "MemoryReader",
    "MemoryWriter",
    "MergeUnit",
    "ReadToBases",
    "Reducer",
    "SpmReader",
    "SpmUpdater",
    "StreamAlu",
    "UNARY_OPS",
    "build_merge_tree",
    "join_md_tokens",
    "sorted_run_flits",
]
