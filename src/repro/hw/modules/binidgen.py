"""BinIDGen — the custom BQSR bin-ID generator module (Section IV-D).

Sits between ReadToBases and the Joiner in the Figure 12 pipeline.  For
every aligned (M) base with quality ``q`` it computes the two covariate
bin IDs the paper defines:

* ``b1 = q * n_cycle_values + cycle`` — the cycle covariate.  Forward
  reads use the base's index in the stored sequence; reverse reads get
  their own cycle-value range (302 values for 151 bp reads: 151 forward +
  151 reverse).
* ``b2 = q * 16 + context`` — the dinucleotide context covariate with
  ``AA=0, AC=1, ..., TT=15``.  The context of the first stored base is
  undefined; such flits carry ``b2 = -1`` and a small filter in front of
  the context-table SPM updaters drops them.

The module tracks the previous *stored-sequence* base across M/I/S flits
(soft-clipped bases participate in context even though they never reach
the joiner), needs each read's strand and length, and passes M flits
through with ``b1``/``b2`` attached; S, I and D flits are consumed and
dropped — BQSR only bins aligned bases.
"""

from __future__ import annotations

from typing import Optional

from ..flit import Flit
from ..module import Module


class BinIdGen(Module):
    """Computes per-base BQSR bin IDs."""

    def __init__(self, name: str, read_length: int, n_contexts: int = 16):
        super().__init__(name)
        if read_length < 1:
            raise ValueError("read_length must be positive")
        self.read_length = read_length
        self.n_cycle_values = 2 * read_length
        self.n_contexts = n_contexts
        self._reverse: Optional[bool] = None
        self._seqlen: Optional[int] = None
        self._prev_base: Optional[int] = None

    def _cycle(self, ridx: int) -> int:
        if not self._reverse:
            return ridx
        return self.read_length + (self._seqlen - 1 - ridx)

    def tick(self, cycle: int) -> None:
        out = self.output()
        if not out.can_push():
            self._note_stalled(out)
            return

        # Latch the per-read header (strand, stored length) first.
        if self._reverse is None:
            meta = self.input("meta")
            if not meta.can_pop():
                self._note_starved()
                return
            flit = meta.pop()
            if not flit.fields:
                out.push(Flit({}, last=True))
                self._note_busy()
                return
            self._reverse = bool(flit["reverse"])
            self._seqlen = int(flit["seqlen"])
            self._prev_base = None
            return

        queue = self.input()
        if not queue.can_pop():
            self._note_starved()
            return
        flit = queue.pop()
        if flit.last:
            out.push(Flit({}, last=True))
            self._note_busy()
            self._reverse = None
            self._seqlen = None
            return
        op = flit.get("op")
        if op in ("S", "I"):
            self._prev_base = int(flit["base"])
            return
        if op == "D":
            return
        # Aligned base: attach both bin IDs.
        quality = int(flit["qual"])
        b1 = quality * self.n_cycle_values + self._cycle(int(flit["ridx"]))
        if self._prev_base is None:
            b2 = -1
        else:
            b2 = quality * self.n_contexts + (self._prev_base * 4 + int(flit["base"]))
        self._prev_base = int(flit["base"])
        fields = dict(flit.fields)
        fields["b1"] = b1
        fields["b2"] = b2
        out.push(Flit(fields, last=False))
        self._note_busy()

    def is_idle(self) -> bool:
        return self._reverse is None
