"""Memory Writer module.

Section III-C: consumes one flit per cycle into an internal buffer; every
time the buffer fills one memory access granularity, a write request is
issued to memory.  Functionally the writer also records everything it
consumed so drivers can read results back (the ``genesis_flush`` path).

The writer is purely input-driven — it never stalls and holds no
time-dependent state — so the base wake contract (tick while input data
is buffered, sleep otherwise) is exact: under the event engine it is only
ever ticked on cycles where the dense engine would have popped a flit.
"""

from __future__ import annotations

from typing import List

from ..memory import MemorySystem
from ..module import SinkModule


class MemoryWriter(SinkModule):
    """Streams results back to accelerator memory."""

    def __init__(
        self,
        name: str,
        memory: MemorySystem,
        elem_size: int = 4,
        field: str = "value",
    ):
        super().__init__(name)
        self.memory = memory
        self.elem_size = elem_size
        self.field = field
        self._port = memory.register_port(None)
        self._elems_per_line = max(1, memory.config.access_bytes // elem_size)
        self._buffered = 0
        #: Every payload value consumed, in order (functional result).
        self.collected: List[object] = []
        #: Collected values grouped into items by the last bits.
        self.items: List[List[object]] = []
        self._current_item: List[object] = []

    def tick(self, cycle: int) -> None:
        queue = self._in
        if queue is None:
            queue = self._in = self.input()
        if not queue.can_pop():
            self._note_starved()
            return
        flit = queue.pop()
        if self.field in flit:
            value = flit[self.field]
            self.collected.append(value)
            self._current_item.append(value)
            self._buffered += 1
            if self._buffered >= self._elems_per_line:
                self.memory.request(self._port, 1)
                self._buffered = 0
        if flit.last:
            self.items.append(self._current_item)
            self._current_item = []
        self._note_busy()

    # ``is_idle`` is inherited (always True): partial lines are flushed
    # with the final write burst — the sub-line remainder is not worth a
    # dedicated request in the model.
