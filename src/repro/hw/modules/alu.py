"""Stream ALU and Fork modules.

Figure 6: the stream ALU takes one or two input queues (or one queue and a
constant) and applies a simple unary/binary operation element-wise, one
item per cycle, optionally under a bit-mask.

Fork is the stream-replication glue the composed pipelines of Figures 11
and 12 need: one input stream fanned out to several consumers (the
left-joiner output feeds the NM filter *and* MDGen; the BQSR filter output
feeds four SPM updaters).  All output queues must have room before the
flit advances, which is how a broadcast wire behaves under back-pressure.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..flit import Flit
from ..module import Module

#: Binary operations the stream ALU supports (Section III-C).
BINARY_OPS: Dict[str, Callable] = {
    "ADD": lambda a, b: a + b,
    "SUB": lambda a, b: a - b,
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "CMP": lambda a, b: int(a == b),
    "MIN": min,
    "MAX": max,
    "MUL": lambda a, b: a * b,
}

#: Unary operations.
UNARY_OPS: Dict[str, Callable] = {
    "NOT": lambda a: ~a,
    "NEG": lambda a: -a,
    "ABS": abs,
    "ID": lambda a: a,
}


class StreamAlu(Module):
    """Element-wise ALU over one or two streams."""

    def __init__(
        self,
        name: str,
        op: str,
        field: str = "value",
        other_field: Optional[str] = None,
        constant: Optional[object] = None,
        out_field: str = "value",
        mask_field: Optional[str] = None,
        two_streams: bool = False,
    ):
        """``two_streams`` pairs flits from ports ``a`` and ``b``;
        otherwise the second operand is ``other_field`` of the same flit or
        ``constant``.  Unary ops ignore the second operand entirely."""
        super().__init__(name)
        if op in BINARY_OPS:
            self._func = BINARY_OPS[op]
            self._unary = False
            if not two_streams and (other_field is None) == (constant is None):
                raise ValueError("binary op needs exactly one of other_field/constant")
        elif op in UNARY_OPS:
            self._func = UNARY_OPS[op]
            self._unary = True
        else:
            raise ValueError(f"unsupported ALU op {op!r}")
        self.op = op
        self.field = field
        self.other_field = other_field
        self.constant = constant
        self.out_field = out_field
        self.mask_field = mask_field
        self.two_streams = two_streams

    def _apply(self, flit: Flit, other: Optional[Flit]) -> Flit:
        fields = dict(flit.fields)
        if other is not None:
            for name, value in other.fields.items():
                fields.setdefault(name, value)
        if self.mask_field is not None and not flit.get(self.mask_field):
            return Flit(fields, last=flit.last)
        if self.field not in flit:
            return Flit(fields, last=flit.last)
        a = flit[self.field]
        if self._unary:
            fields[self.out_field] = self._func(a)
        else:
            if self.two_streams:
                b = other[self.field] if other is not None else None
            elif self.other_field is not None:
                b = flit[self.other_field]
            else:
                b = self.constant
            fields[self.out_field] = self._func(a, b)
        return Flit(fields, last=flit.last)

    def tick(self, cycle: int) -> None:
        out = self._out
        if out is None:
            out = self._out = self.output()
        if not out.can_push():
            self._note_stalled(out)
            return
        if self.two_streams and not self._unary:
            queue_a, queue_b = self.input("a"), self.input("b")
            if not (queue_a.can_pop() and queue_b.can_pop()):
                self._note_starved()
                return
            flit_a, flit_b = queue_a.pop(), queue_b.pop()
            if not flit_a.fields and not flit_b.fields:
                out.push(Flit({}, last=flit_a.last or flit_b.last))
            else:
                result = self._apply(flit_a, flit_b)
                result.last = flit_a.last or flit_b.last
                out.push(result)
            self._note_busy()
            return
        queue = self._in
        if queue is None:
            queue = self._in = self.input()
        if not queue.can_pop():
            self._note_starved()
            return
        flit = queue.pop()
        if not flit.fields:
            out.push(Flit({}, last=flit.last))
        else:
            out.push(self._apply(flit, None))
        self._note_busy()


class Fork(Module):
    """Replicates every input flit to all connected output ports."""

    def __init__(self, name: str, ports: int = 2):
        super().__init__(name)
        if ports < 2:
            raise ValueError("a fork needs at least two output ports")
        self.port_names = [f"out{i}" for i in range(ports)]
        self._outs = None

    def tick(self, cycle: int) -> None:
        queue = self._in
        if queue is None:
            queue = self._in = self.input()
        if not queue.can_pop():
            self._note_starved()
            return
        outs = self._outs
        if outs is None:
            outs = self._outs = [self.output(port) for port in self.port_names]
        for out in outs:
            if not out.can_push():
                # A broadcast stalls on its slowest branch; charge that queue.
                self._note_stalled(out)
                return
        flit = queue.pop()
        for out in outs:
            out.push(Flit(dict(flit.fields), last=flit.last))
        self._note_busy()
