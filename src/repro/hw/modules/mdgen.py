"""MDGen — the custom MD-tag generator module (Section IV-C).

Consumes the left-joiner output of the metadata-update pipeline (per-base
flits carrying the read base and the reference base) and emits MD-string
tokens: it counts consecutive matching bases; on a mismatch it flushes the
match counter and outputs the reference base; on a deletion it outputs
``^`` plus the deleted reference bases (one ``^`` per deletion run).
Inserted bases do not appear in MD.  At the end of each read the final
match count is emitted and the item is closed.

This is the module a Genesis user adds through the custom-operation
interface (Section III-F); its software reference is
:class:`repro.gatk.metadata.MdBuilder`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from ...genomics.sequences import decode_base
from ..flit import Flit
from ..module import Module

_BOUNDARY = object()


class MdGen(Module):
    """Streaming MD-token generator."""

    def __init__(
        self,
        name: str,
        base_field: str = "base",
        ref_field: str = "ref",
        op_field: str = "op",
        out_field: str = "md",
    ):
        super().__init__(name)
        self.base_field = base_field
        self.ref_field = ref_field
        self.op_field = op_field
        self.out_field = out_field
        self._tokens: Deque[object] = deque()
        self._match_run = 0
        self._in_deletion = False

    # -- token production -------------------------------------------------------

    def _flush_run(self) -> None:
        self._tokens.append(str(self._match_run))
        self._match_run = 0

    def _process(self, flit: Flit) -> None:
        op = flit.get(self.op_field)
        if op == "I":
            # Inserted bases are invisible to MD and, consuming no
            # reference, do not interrupt a deletion run (matching the
            # software MdBuilder's reference-walk semantics).
            return
        if op == "D":
            if not self._in_deletion:
                self._flush_run()
                self._tokens.append("^")
                self._in_deletion = True
            self._tokens.append(decode_base(int(flit[self.ref_field])))
            return
        if op != "M":
            return
        self._in_deletion = False
        if int(flit[self.base_field]) == int(flit[self.ref_field]):
            self._match_run += 1
        else:
            self._flush_run()
            self._tokens.append(decode_base(int(flit[self.ref_field])))

    def _close_item(self) -> None:
        self._flush_run()
        self._in_deletion = False
        self._tokens.append(_BOUNDARY)

    # -- simulation ----------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        out = self._out
        if out is None:
            out = self._out = self.output()
        if not out.can_push():
            self._note_stalled(out)
            return
        # Drain pending tokens first, one per cycle.
        if self._tokens:
            token = self._tokens.popleft()
            if token is _BOUNDARY:
                out.push(Flit({}, last=True))
            else:
                out.push(Flit({self.out_field: token}, last=False))
            self._note_busy()
            return
        queue = self._in
        if queue is None:
            queue = self._in = self.input()
        if not queue.can_pop():
            self._note_starved()
            return
        flit = queue.pop()
        if flit.fields:
            self._process(flit)
        if flit.last:
            self._close_item()

    def is_idle(self) -> bool:
        return not self._tokens


def join_md_tokens(tokens) -> str:
    """Assemble one read's MD tokens into the final MD string, merging the
    token stream the way the host's output formatter does."""
    return "".join(str(token) for token in tokens)
