"""Merge-sort hardware: MergeUnit modules and sorter-tree construction.

Sorting is a staple relational operator (the paper's Q100/SDA comparisons
both accelerate it) and the mark-duplicates stage coordinate-sorts all
reads (Section IV-B) — in the paper on the host, here optionally in
hardware.  The building block is a :class:`MergeUnit` that merges two
key-sorted input streams into one at a flit per cycle;
:func:`build_merge_tree` composes ``k`` leaf streams into a ``log2(k)``
deep tree that emits the fully merged stream, the classic FPGA merge-sort
network.

Streams here are *runs*: whole-stream sorted sequences terminated by a
single ``last`` flit (one item per stream), unlike the per-read items of
the genomics pipelines.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..engine import Engine
from ..flit import Flit
from ..module import Module
from ..queue import HardwareQueue


class MergeUnit(Module):
    """Merges two key-sorted streams into one sorted stream.

    Each input is one run (``last`` on its final flit).  The output is a
    single run.  Ties pop the left input first, making multi-level trees
    stable.
    """

    def __init__(self, name: str, key: str = "key"):
        super().__init__(name)
        self.key = key
        self._a_done = False
        self._b_done = False

    def _pop_side(self, queue: HardwareQueue, side: str) -> Flit:
        flit = queue.pop()
        if flit.last:
            if side == "a":
                self._a_done = True
            else:
                self._b_done = True
        return flit

    def tick(self, cycle: int) -> None:
        out = self.output()
        if not out.can_push():
            self._note_stalled(out)
            return
        queue_a = self.input("a")
        queue_b = self.input("b")

        if self._a_done and self._b_done:
            out.push(Flit({}, last=True))
            self._note_busy()
            self._a_done = self._b_done = False
            return

        head_a = queue_a.peek() if not self._a_done else None
        head_b = queue_b.peek() if not self._b_done else None

        if self._a_done:
            if head_b is None:
                self._note_starved()
                return
            flit = self._pop_side(queue_b, "b")
        elif self._b_done:
            if head_a is None:
                self._note_starved()
                return
            flit = self._pop_side(queue_a, "a")
        else:
            if head_a is None or head_b is None:
                self._note_starved()
                return
            # Empty-payload terminators just close their side.
            if not head_a.fields:
                self._pop_side(queue_a, "a")
                return
            if not head_b.fields:
                self._pop_side(queue_b, "b")
                return
            if head_a[self.key] <= head_b[self.key]:
                flit = self._pop_side(queue_a, "a")
            else:
                flit = self._pop_side(queue_b, "b")
        if flit.fields:
            out.push(Flit(dict(flit.fields), last=False))
            self._note_busy()
        # The run terminator is emitted once both sides close (top branch).

    def is_idle(self) -> bool:
        return not self._a_done and not self._b_done


def build_merge_tree(
    engine: Engine,
    name: str,
    leaves: int,
    key: str = "key",
) -> Tuple[List[HardwareQueue], HardwareQueue, List[MergeUnit]]:
    """Construct a binary merge tree with ``leaves`` input queues.

    Returns ``(leaf_queues, output_queue, units)``.  ``leaves`` must be a
    power of two; feed each leaf one sorted run and read the fully merged
    run from the output queue.
    """
    if leaves < 2 or leaves & (leaves - 1):
        raise ValueError("leaves must be a power of two >= 2")
    units: List[MergeUnit] = []
    level_queues = [
        engine.new_queue(f"{name}.leaf{i}") for i in range(leaves)
    ]
    leaf_queues = list(level_queues)
    level = 0
    while len(level_queues) > 1:
        next_queues: List[HardwareQueue] = []
        for pair in range(0, len(level_queues), 2):
            unit = MergeUnit(f"{name}.m{level}_{pair // 2}", key=key)
            engine.add_module(unit)
            unit.connect_input("a", level_queues[pair])
            unit.connect_input("b", level_queues[pair + 1])
            out = engine.new_queue(f"{name}.l{level}_{pair // 2}")
            unit.connect_output("out", out)
            next_queues.append(out)
            units.append(unit)
        level_queues = next_queues
        level += 1
    return leaf_queues, level_queues[0], units


def sorted_run_flits(values: Sequence, key: str = "key", payload: dict = None) -> List[Flit]:
    """Frame one pre-sorted run for a merge-tree leaf."""
    flits = [Flit({key: value, **(payload or {})}) for value in values]
    if flits:
        flits[-1].last = True
    else:
        flits = [Flit({}, last=True)]
    return flits
