"""ReadToBases module — the hardware ReadExplode (Figure 3).

Takes per-read streams of POS (scalar), CIGAR (encoded elements), SEQ and
optionally QUAL (one flit per base) and emits one flit per exploded base:

* aligned bases:   ``{op:'M', pos, base, qual, ridx}``
* inserted bases:  ``{op:'I', pos:INS, base, qual, ridx}``
* deleted bases:   ``{op:'D', pos, base:DEL, qual:DEL}``
* soft-clipped bases are consumed silently (the paper drops them), or
  emitted as ``{op:'S', base, qual, ridx}`` when ``emit_clips`` is set —
  the BQSR BinIDGen needs them to track the dinucleotide context across
  clip boundaries.

``ridx`` is the base's index in the stored read sequence (soft clips
included), which is what the BQSR cycle covariate is defined over.  Every
read's output item is terminated by a payload-less boundary flit with
``last`` set.
"""

from __future__ import annotations

from typing import Optional

from ...genomics.cigar import OPS
from ..flit import DEL, INS, Flit
from ..module import Module


class ReadToBases(Module):
    """Explodes reads into per-base flits, one base per cycle."""

    def __init__(self, name: str, with_qual: bool = True, emit_clips: bool = False):
        super().__init__(name)
        self.with_qual = with_qual
        self.emit_clips = emit_clips
        # per-read decode state
        self._pos: Optional[int] = None
        self._ridx = 0
        self._element_op: Optional[str] = None
        self._element_left = 0
        self._cigar_done = False
        self.reads_exploded = 0

    # -- helpers ---------------------------------------------------------------

    def _pop_value(self, port: str):
        """Pop the next payload flit from ``port``; returns (value, last)
        or None when the queue has nothing consumable."""
        queue = self.input(port)
        if not queue.can_pop():
            return None
        flit = queue.pop()
        if not flit.fields:
            return (None, flit.last)
        return (flit["value"], flit.last)

    def _need_seq(self) -> bool:
        return self._element_op in ("M", "I", "S")

    def _start_element(self) -> bool:
        """Load the next CIGAR element; returns False on starve."""
        queue = self.input("cigar")
        if not queue.can_pop():
            return False
        flit = queue.pop()
        if not flit.fields:
            self._cigar_done = True
            return True
        code = int(flit["value"])
        self._element_op = OPS[code & 0x3]
        self._element_left = code >> 2
        if flit.last:
            self._cigar_done = True
        return True

    def _finish_read(self) -> None:
        self.output().push(Flit({}, last=True))
        self._note_busy()
        self.reads_exploded += 1
        self._pos = None
        self._ridx = 0
        self._element_op = None
        self._element_left = 0
        self._cigar_done = False

    # -- simulation ---------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        out = self._out
        if out is None:
            out = self._out = self.output()
        if not out.can_push():
            self._note_stalled(out)
            return

        if self._pos is None:
            popped = self._pop_value("pos")
            if popped is None:
                self._note_starved()
                return
            value, _last = popped
            if value is None:
                # Degenerate empty read: emit a boundary and move on.
                out.push(Flit({}, last=True))
                self._note_busy()
                return
            self._pos = int(value)
            self._cigar_done = False
            return

        if self._element_left == 0:
            if self._cigar_done:
                self._finish_read()
                return
            if not self._start_element():
                self._note_starved()
                return
            if self._element_left == 0 and self._cigar_done and self._element_op is None:
                self._finish_read()
            return

        op = self._element_op
        if self._need_seq():
            popped = self._pop_value("seq")
            if popped is None:
                self._note_starved()
                return
            base, _ = popped
            qual = None
            if self.with_qual:
                qpopped = self._pop_value("qual")
                if qpopped is None:
                    raise RuntimeError(f"{self.name}: SEQ/QUAL streams diverged")
                qual, _ = qpopped
            self._element_left -= 1
            ridx = self._ridx
            self._ridx += 1
            if op == "S":
                if self.emit_clips:
                    fields = {"op": "S", "base": base, "ridx": ridx}
                    if self.with_qual:
                        fields["qual"] = qual
                    out.push(Flit(fields, last=False))
                    self._note_busy()
                return
            if op == "M":
                fields = {"op": "M", "pos": self._pos, "base": base, "ridx": ridx}
                self._pos += 1
            else:  # I
                fields = {"op": "I", "pos": INS, "base": base, "ridx": ridx}
            if self.with_qual:
                fields["qual"] = qual
            out.push(Flit(fields, last=False))
            self._note_busy()
        else:  # D
            fields = {"op": "D", "pos": self._pos, "base": DEL}
            if self.with_qual:
                fields["qual"] = DEL
            self._pos += 1
            self._element_left -= 1
            out.push(Flit(fields, last=False))
            self._note_busy()

    def is_idle(self) -> bool:
        return self._pos is None
