"""SPM Reader and SPM Updater modules.

Section III-C.  The **SPM Updater** supports three operating modes:

* ``sequential`` — writes incoming values to consecutive addresses from a
  configured start (memory-writer-like initialization of the SPM);
* ``random`` — writes ``value`` to the ``addr`` carried by each flit;
* ``rmw`` — read-modify-write with a configured modify function, guarded
  by the three-stage RAW-hazard interlock the paper describes (an incoming
  flit whose address is still in the read/modify/write stages stalls).

The **SPM Reader** supports address lookup (one address flit in, one value
flit out), *interval* reads (a start/end pair in, the whole interval
streamed out at one element per cycle), and a *drain* mode that streams the
entire scratchpad contents (used to move the BQSR count buffers back to
memory at the end of a run).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..flit import Flit
from ..module import Module
from ..spm import RmwInterlock, Scratchpad

_UPDATER_MODES = ("sequential", "random", "rmw")


class SpmUpdater(Module):
    """Writes or read-modify-writes the scratchpad."""

    def __init__(
        self,
        name: str,
        spm: Scratchpad,
        mode: str = "sequential",
        addr_field: str = "addr",
        value_field: str = "value",
        start_address: int = 0,
        modify: Optional[Callable[[object, object], object]] = None,
    ):
        """``modify(old, flit_value)`` computes the new word in ``rmw``
        mode; the default increments by one (the BQSR counters)."""
        super().__init__(name)
        if mode not in _UPDATER_MODES:
            raise ValueError(f"updater mode must be one of {_UPDATER_MODES}")
        self.spm = spm
        self.mode = mode
        self.addr_field = addr_field
        self.value_field = value_field
        self._next_address = start_address
        self._modify = modify or (lambda old, _value: old + 1)
        self._interlock = RmwInterlock()
        self.updates = 0

    @property
    def hazard_stalls(self) -> int:
        """Cycles lost to RAW-hazard interlock stalls (rmw mode)."""
        return self._interlock.hazard_stalls

    def tick(self, cycle: int) -> None:
        queue = self._in
        if queue is None:
            queue = self._in = self.input()
        if not queue.can_pop():
            self._note_starved()
            return
        head = queue.peek()
        if not head.fields:
            queue.pop()
            return
        if self.mode == "sequential":
            queue.pop()
            self.spm.write(self._next_address, head[self.value_field])
            self._next_address += 1
        elif self.mode == "random":
            queue.pop()
            self.spm.write(head[self.addr_field], head[self.value_field])
        else:  # rmw
            address = head[self.addr_field]
            if not self._interlock.try_enter(cycle, address):
                self._note_stalled()
                return
            queue.pop()
            old = self.spm.read(address)
            self.spm.write(address, self._modify(old, head.get(self.value_field)))
        self.updates += 1
        self._note_busy()

    # The base wake contract is exact here, including for rmw hazards: a
    # hazard-stalled flit stays at the head of the input queue, so "tick
    # while input data is buffered" retries it every cycle, and the
    # interlock expires by *cycle stamp* (not tick count) so skipped idle
    # cycles never change when an address frees up.  The base ``is_idle``
    # (always True) is inherited rather than overridden so the engine can
    # statically skip the idle-flip check for this module.


class SpmReader(Module):
    """Reads the scratchpad: lookup, interval, or drain mode."""

    def __init__(
        self,
        name: str,
        spm: Scratchpad,
        mode: str = "interval",
        base_address: int = 0,
        out_field: str = "value",
        addr_out_field: Optional[str] = None,
    ):
        """``base_address`` maps stream coordinates (e.g. genome positions)
        to SPM words: ``word = coordinate - base_address``.  When
        ``addr_out_field`` is set, output flits also carry the coordinate.
        """
        super().__init__(name)
        if mode not in ("lookup", "interval", "drain"):
            raise ValueError(f"unknown SPM reader mode {mode!r}")
        self.spm = spm
        self.mode = mode
        self.base_address = base_address
        self.out_field = out_field
        self.addr_out_field = addr_out_field
        # interval state
        self._cursor: Optional[int] = None
        self._end: Optional[int] = None
        # drain state
        self._drain_cursor = 0
        self._draining = mode == "drain"

    # -- per-mode behaviour ----------------------------------------------------

    def _emit(self, coordinate: int, last: bool) -> None:
        word = coordinate - self.base_address
        fields = {self.out_field: self.spm.read(word)}
        if self.addr_out_field is not None:
            fields[self.addr_out_field] = coordinate
        self.output().push(Flit(fields, last=last))
        self._note_busy()

    def _tick_lookup(self) -> None:
        queue = self.input()
        if not queue.can_pop():
            self._note_starved()
            return
        flit = queue.pop()
        if not flit.fields:
            self.output().push(Flit({}, last=flit.last))
            self._note_busy()
            return
        self._emit(flit["addr"], flit.last)

    def _tick_interval(self) -> None:
        if self._cursor is None:
            starts = self.input("start")
            ends = self.input("end")
            if not (starts.can_pop() and ends.can_pop()):
                self._note_starved()
                return
            start_flit = starts.pop()
            end_flit = ends.pop()
            if not start_flit.fields:
                self.output().push(Flit({}, last=True))
                self._note_busy()
                return
            self._cursor = int(start_flit["value"])
            self._end = int(end_flit["value"])
            if self._cursor > self._end:
                self.output().push(Flit({}, last=True))
                self._note_busy()
                self._cursor = self._end = None
            return
        last = self._cursor == self._end
        self._emit(self._cursor, last)
        self._cursor += 1
        if last:
            self._cursor = self._end = None

    def _tick_drain(self) -> None:
        if self._drain_cursor >= len(self.spm):
            self._draining = False
            return
        last = self._drain_cursor == len(self.spm) - 1
        fields = {self.out_field: self.spm.read(self._drain_cursor)}
        if self.addr_out_field is not None:
            fields[self.addr_out_field] = self._drain_cursor
        self.output().push(Flit(fields, last=last))
        self._drain_cursor += 1
        self._note_busy()

    def tick(self, cycle: int) -> None:
        out = self._out
        if out is None:
            out = self._out = self.output()
        if not out.can_push():
            self._note_stalled(out)
            return
        if self.mode == "lookup":
            self._tick_lookup()
        elif self.mode == "interval":
            self._tick_interval()
        else:
            self._tick_drain()

    def is_idle(self) -> bool:
        if self.mode == "interval":
            return self._cursor is None
        if self.mode == "drain":
            return not self._draining
        return True
