"""Memory Reader module.

Section III-C: given a starting address and a total amount of data, the
memory reader continuously issues memory requests at access granularity as
long as its internal prefetch buffer has room, and feeds returned data to
the next module at one flit per cycle.

The functional payload is configured as a pre-framed flit stream (the
column contents, one flit per element, ``last`` marking item boundaries);
the performance behaviour — request pacing, prefetch-buffer credits,
latency hiding — is simulated against the shared :class:`MemorySystem`.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..flit import Flit, item_flits
from ..memory import MemorySystem
from ..module import SourceModule


class MemoryReader(SourceModule):
    """Streams one column of a table from accelerator memory."""

    def __init__(
        self,
        name: str,
        memory: MemorySystem,
        elem_size: int = 1,
        prefetch_lines: int = 8,
    ):
        super().__init__(name)
        if elem_size < 1:
            raise ValueError("elem_size must be positive")
        self.memory = memory
        self.elem_size = elem_size
        self.prefetch_lines = prefetch_lines
        self._port = memory.register_port(self._on_response)
        self._elems_per_line = max(1, memory.config.access_bytes // elem_size)
        self._flits: List[Flit] = []
        self._cursor = 0
        self._credits = 0
        self._lines_requested = 0
        self._lines_completed = 0
        self._lines_total = 0

    # -- configuration (the configure_mem host call lands here) ----------------

    def set_stream(self, flits: Sequence[Flit]) -> None:
        """Load the pre-framed column contents this reader will stream."""
        self._flits = list(flits)
        self._cursor = 0
        self._credits = 0
        self._lines_requested = 0
        self._lines_completed = 0
        payload = sum(1 for flit in self._flits if flit.fields)
        self._lines_total = (
            payload + self._elems_per_line - 1
        ) // self._elems_per_line

    def set_items(self, items: Iterable[Iterable], field: str = "value") -> None:
        """Convenience: frame ``items`` (an iterable of per-item element
        sequences) and load them."""
        flits: List[Flit] = []
        for item in items:
            flits.extend(item_flits(item, field))
        self.set_stream(flits)

    def set_scalars(self, values: Iterable, field: str = "value") -> None:
        """Convenience: one single-flit item per scalar value."""
        flits = [Flit({field: value}, last=True) for value in values]
        self.set_stream(flits)

    # -- simulation ---------------------------------------------------------------

    def _on_response(self, count: int) -> None:
        self._lines_completed += count
        self._credits += count * self._elems_per_line
        # Fresh data (or a freed prefetch slot): make sure the scheduler
        # ticks us next cycle even if we went to sleep waiting for it.
        self._wake()

    def tick(self, cycle: int) -> None:
        # Issue up to one request per cycle while the prefetch window has room.
        outstanding = self._lines_requested - self._lines_completed
        if self._lines_requested < self._lines_total and outstanding < self.prefetch_lines:
            self.memory.request(self._port, 1)
            self._lines_requested += 1
        # Emit one flit per cycle once data has "arrived".
        if self._cursor >= len(self._flits):
            return
        if self._credits <= 0 and self._flits[self._cursor].fields:
            self._note_starved()
            return
        out = self._out
        if out is None:
            out = self._out = self.output()
        if not out.can_push():
            self._note_stalled(out)
            return
        flit = self._flits[self._cursor]
        self._cursor += 1
        if flit.fields:
            self._credits -= 1
        # Flits are immutable once pushed (modules build new flits rather
        # than editing received ones; Fork makes its own per-port copies),
        # so the preloaded stream objects can be sent as-is.
        out.push(flit)
        self._note_busy()

    def wants_tick(self) -> bool:
        """Precise wake contract: while every prefetch credit is spoken
        for and the request window is full, this reader can make no
        progress until a memory response lands — exactly the DRAM-latency
        dead time the event engine fast-forwards.  ``_on_response`` wakes
        it back up."""
        outstanding = self._lines_requested - self._lines_completed
        if self._lines_requested < self._lines_total and outstanding < self.prefetch_lines:
            return True  # can issue another request
        if self._cursor < len(self._flits):
            head = self._flits[self._cursor]
            # Boundary flits need no credits; payload flits need one.
            return self._credits > 0 or not head.fields
        return False

    def is_idle(self) -> bool:
        return (
            self._cursor >= len(self._flits)
            and self._lines_requested >= self._lines_total
        )
