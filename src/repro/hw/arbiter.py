"""Round-robin arbiters for shared resources.

Figure 8: every pipeline's memory ports are arbitrated first by a *local*
arbiter (one per pipeline) and then by one of four *global* arbiters, each
fronting one memory channel.  This module provides the round-robin
primitive both levels use; :mod:`repro.hw.memory` composes them into the
two-level fabric.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class RoundRobinArbiter:
    """Classic round-robin arbiter over a fixed set of requesters."""

    def __init__(self, name: str, num_requesters: int):
        if num_requesters < 1:
            raise ValueError("arbiter needs at least one requester")
        self.name = name
        self.num_requesters = num_requesters
        self._next = 0
        self.grants = 0

    def grant(self, requesting: Sequence[bool]) -> Optional[int]:
        """Grant one of the currently requesting inputs, rotating priority.

        ``requesting[i]`` is True when requester ``i`` wants the resource
        this cycle.  Returns the granted index or None.
        """
        if len(requesting) != self.num_requesters:
            raise ValueError(
                f"{self.name}: expected {self.num_requesters} request lines, "
                f"got {len(requesting)}"
            )
        if not any(requesting):
            # Idle fast path: no request lines asserted, priority pointer
            # unchanged — identical outcome to the scan, without it.
            return None
        for offset in range(self.num_requesters):
            index = (self._next + offset) % self.num_requesters
            if requesting[index]:
                self._next = (index + 1) % self.num_requesters
                self.grants += 1
                return index
        return None


class TwoLevelArbiter:
    """The local-then-global fabric of Figure 8.

    ``groups[g]`` is the number of requesters behind local arbiter ``g``.
    Each cycle, every local arbiter nominates one of its requesters, then
    the global arbiter picks one nomination.  ``grant`` returns the winning
    ``(group, member)`` or None.
    """

    def __init__(self, name: str, groups: Sequence[int]):
        self.name = name
        self.locals: List[RoundRobinArbiter] = [
            RoundRobinArbiter(f"{name}.local{g}", n) for g, n in enumerate(groups)
        ]
        self.global_arbiter = RoundRobinArbiter(f"{name}.global", len(groups))

    def grant(self, requesting: Sequence[Sequence[bool]]):
        """``requesting[g][m]`` — does member m of group g request?"""
        nominations = []
        nominated_member = []
        for local, lines in zip(self.locals, requesting):
            member = local.grant(lines)
            nominations.append(member is not None)
            nominated_member.append(member)
        group = self.global_arbiter.grant(nominations)
        if group is None:
            return None
        return group, nominated_member[group]
