"""Base class for Genesis hardware modules.

Every module (Figure 6) consumes flits from named input queues and produces
flits into named output queues, at most one flit per port per cycle.  A
module's ``tick`` is called once per simulated cycle; it must respect queue
back-pressure (never push to a full queue, never pop from an empty one).

Modules keep busy/starve/stall statistics so the benchmark harness can
attribute time the way Figure 13(b) does.
"""

from __future__ import annotations

from typing import Dict, Optional

from .queue import HardwareQueue


class Module:
    """A dataflow hardware module."""

    def __init__(self, name: str):
        self.name = name
        self.inputs: Dict[str, HardwareQueue] = {}
        self.outputs: Dict[str, HardwareQueue] = {}
        # statistics
        self.busy_cycles = 0
        self.starve_cycles = 0
        self.stall_cycles = 0
        self.flits_out = 0

    # -- wiring ----------------------------------------------------------------

    def connect_input(self, port: str, queue: HardwareQueue) -> None:
        """Attach ``queue`` as input port ``port``."""
        if port in self.inputs:
            raise ValueError(f"{self.name}: input port {port} already connected")
        self.inputs[port] = queue

    def connect_output(self, port: str, queue: HardwareQueue) -> None:
        """Attach ``queue`` as output port ``port``."""
        if port in self.outputs:
            raise ValueError(f"{self.name}: output port {port} already connected")
        self.outputs[port] = queue

    def input(self, port: str = "in") -> HardwareQueue:
        """The input queue on ``port`` (raises if unconnected)."""
        try:
            return self.inputs[port]
        except KeyError:
            raise RuntimeError(f"{self.name}: input port {port} not connected") from None

    def output(self, port: str = "out") -> HardwareQueue:
        """The output queue on ``port`` (raises if unconnected)."""
        try:
            return self.outputs[port]
        except KeyError:
            raise RuntimeError(f"{self.name}: output port {port} not connected") from None

    # -- simulation hooks -----------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Advance one cycle.  Subclasses override."""
        raise NotImplementedError

    def is_idle(self) -> bool:
        """True when this module holds no internal state that still needs
        to drain.  The engine stops when all modules are idle and all
        queues are empty.  Subclasses with internal buffers override."""
        return True

    # -- bookkeeping helpers ----------------------------------------------------------

    def _note_busy(self) -> None:
        self.busy_cycles += 1
        self.flits_out += 1

    def _note_starved(self) -> None:
        self.starve_cycles += 1

    def _note_stalled(self) -> None:
        self.stall_cycles += 1

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class SinkModule(Module):
    """Base for modules that terminate a stream (memory writers)."""

    def is_done(self) -> bool:
        """True when the sink has observed the end of its stream."""
        return self.is_idle()


class SourceModule(Module):
    """Base for modules that originate a stream (memory readers)."""

    def is_done(self) -> bool:
        """True when the source has emitted its whole stream."""
        return self.is_idle()
