"""Base class for Genesis hardware modules.

Every module (Figure 6) consumes flits from named input queues and produces
flits into named output queues, at most one flit per port per cycle.  A
module's ``tick`` is called once per simulated cycle; it must respect queue
back-pressure (never push to a full queue, never pop from an empty one).

Under the activity-driven engine a module is only ticked when it might
make progress: after one of its input queues committed a flit, after a
memory/SPM response landed (see :meth:`Module._wake`), or while it
self-declares pending internal work via :meth:`Module.wants_tick` — a
producer blocked on a full output queue reports non-idle and therefore
keeps itself awake until the push lands.  The default ``wants_tick`` is
deliberately conservative — "not idle, or input data buffered" — so
existing module subclasses behave identically under both engine modes;
modules that idle-wait on external events (the memory reader hiding DRAM
latency) override it to let the engine skip or fast-forward their dead
cycles.

Modules keep busy/starve/stall statistics so the benchmark harness can
attribute time the way Figure 13(b) does; stalls are additionally charged
to the blocking queue's ``full_stalls`` counter when the queue is passed
to :meth:`_note_stalled`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from .queue import HardwareQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine


class Module:
    """A dataflow hardware module."""

    def __init__(self, name: str):
        self.name = name
        self.inputs: Dict[str, HardwareQueue] = {}
        self.outputs: Dict[str, HardwareQueue] = {}
        # scheduler wiring (filled in by Engine.add_module)
        self._engine: Optional["Engine"] = None
        self._index = -1
        self._wake_cycle = -1
        self._was_idle = True
        #: Input queues as a list — the engine's hot loop evaluates the
        #: base wake contract by scanning this without a method call.
        self._in_queues: list = []
        #: True when the subclass overrides :meth:`wants_tick`; the
        #: engine only pays the method call for those.
        self._custom_wake = type(self).wants_tick is not Module.wants_tick
        #: True when the subclass inherits the base :meth:`is_idle`
        #: (constant True) — such a module can never flip idleness, so
        #: the engine skips the per-tick idle check entirely.
        self._static_idle = type(self).is_idle is Module.is_idle
        #: Lazily bound default ports: hot tick bodies cache their queue
        #: here on first use instead of a method call + dict lookup per
        #: simulated cycle.
        self._out: Optional[HardwareQueue] = None
        self._in: Optional[HardwareQueue] = None
        # statistics
        self.busy_cycles = 0
        self.starve_cycles = 0
        self.stall_cycles = 0
        self.flits_out = 0

    # -- wiring ----------------------------------------------------------------

    def connect_input(self, port: str, queue: HardwareQueue) -> None:
        """Attach ``queue`` as input port ``port``."""
        if port in self.inputs:
            raise ValueError(f"{self.name}: input port {port} already connected")
        self.inputs[port] = queue
        self._in_queues.append(queue)
        queue.consumers.append(self)

    def connect_output(self, port: str, queue: HardwareQueue) -> None:
        """Attach ``queue`` as output port ``port``."""
        if port in self.outputs:
            raise ValueError(f"{self.name}: output port {port} already connected")
        self.outputs[port] = queue
        queue.producers.append(self)

    def input(self, port: str = "in") -> HardwareQueue:
        """The input queue on ``port`` (raises if unconnected)."""
        try:
            return self.inputs[port]
        except KeyError:
            raise RuntimeError(f"{self.name}: input port {port} not connected") from None

    def output(self, port: str = "out") -> HardwareQueue:
        """The output queue on ``port`` (raises if unconnected)."""
        try:
            return self.outputs[port]
        except KeyError:
            raise RuntimeError(f"{self.name}: output port {port} not connected") from None

    # -- simulation hooks -----------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Advance one cycle.  Subclasses override."""
        raise NotImplementedError

    def is_idle(self) -> bool:
        """True when this module holds no internal state that still needs
        to drain.  The engine stops when all modules are idle and all
        queues are empty.  Subclasses with internal buffers override."""
        return True

    def wants_tick(self) -> bool:
        """Does this module need a tick next cycle even without a fresh
        queue/memory event?

        The event-driven engine consults this after every tick; returning
        False puts the module to sleep until an input queue commits or
        :meth:`_wake` fires.  The
        default is conservative (tick while not idle or while input data
        is buffered) so subclasses only need to override when they can
        prove their dead cycles are skippable — the contract is that a
        sleeping module's tick would not have changed any simulation
        state.  Modules whose progress depends on the *passage of time*
        alone (hazard interlocks, latency counters) must keep returning
        True until that work drains.
        """
        if not self.is_idle():
            return True
        return any(queue.can_pop() for queue in self.inputs.values())

    # -- bookkeeping helpers ----------------------------------------------------------

    def _wake(self) -> None:
        """Ask the engine to tick this module next cycle (used by memory
        response callbacks and other out-of-band completions)."""
        if self._engine is not None:
            self._engine._wake_from_event(self)

    def _note_busy(self) -> None:
        self.busy_cycles += 1
        self.flits_out += 1

    def _note_starved(self) -> None:
        self.starve_cycles += 1

    def _note_stalled(self, queue: Optional[HardwareQueue] = None) -> None:
        """Record one cycle lost to output back-pressure; pass the
        blocking queue to charge its ``full_stalls`` counter so stalls
        can be attributed to a specific edge of the pipeline graph."""
        self.stall_cycles += 1
        if queue is not None:
            queue.full_stalls += 1

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class SinkModule(Module):
    """Base for modules that terminate a stream (memory writers)."""

    def is_done(self) -> bool:
        """True when the sink has observed the end of its stream."""
        return self.is_idle()


class SourceModule(Module):
    """Base for modules that originate a stream (memory readers)."""

    def is_done(self) -> bool:
        """True when the source has emitted its whole stream."""
        return self.is_idle()
