"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate``    — synthesize a reference (FASTA) and reads (SAM/FASTQ);
* ``preprocess``  — run the accelerated GATK4-style preprocessing over a
  SAM file against a FASTA reference, writing the tagged SAM;
* ``call``        — call variants from a preprocessed SAM, writing VCF;
* ``reproduce``   — print the paper-vs-measured headline numbers;
* ``profile``     — run one accelerator stage on a synthetic workload with
  the profiler attached, print the cycle-attribution report plus the
  bottleneck-analysis summary, and optionally save a Chrome-trace
  timeline and JSON/CSV dumps;
* ``analyze``     — re-run the bottleneck analysis over a saved
  ``profile --out`` JSON report, with ``--sharding`` report the
  per-device utilization / steal counts / device-count what-if of the
  latest sharded run in the ledger, with ``--storage`` report the
  latest storage-filtered run (pruned fraction, PCIe bytes saved, and
  the filtered-fraction × PCIe-generation what-if sweep), or with
  ``--critical-path`` decompose each served job's latency into
  queue-wait / transfer / spm-load / kernel / fault-penalty / drain
  cycles;
* ``bench``       — run the perf probe suite with warmup + repeats,
  write a schema-versioned ``BENCH_<n>.json``, optionally record the
  scaling curve over a topology cross-product (``--sweep``), and
  compare against a baseline — scalar medians and curve shape both
  gate (nonzero exit on regression);
* ``serve``       — run the multi-tenant job service over a simulated
  arrival trace; ``--trace`` exports the merged fleet
  chrome://tracing timeline.

Global flags: ``-v``/``--quiet``/``--log-json`` control the structured
logger, ``--ledger``/``--no-ledger`` the run ledger every command
records itself into (default ``.repro/ledger.jsonl``).

Everything is laptop-scale and offline; see README.md.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .genomics.fasta import read_fasta, write_fasta, write_fastq
from .genomics.reference import ReferenceGenome
from .genomics.sam import read_sam, write_sam
from .genomics.simulator import ReadSimulator, SimulatorConfig
from .obs.ledger import RunLedger, RunManifest, record_event, run_context
from .obs.log import configure_logging, get_logger

#: Stages ``profile`` knows how to drive (``bqsr`` aliases the covariate
#: table construction).
PROFILE_STAGES = ("markdup", "metadata", "bqsr", "bqsr_table")


def _ensure_parent(path: str) -> None:
    """Create the parent directory of an output path (no-op for bare
    filenames)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def _cmd_simulate(args: argparse.Namespace) -> int:
    genome = ReferenceGenome.grch38_like(
        scale=args.scale, snp_rate=args.snp_rate, seed=args.seed,
        chromosomes=tuple(args.chromosomes) if args.chromosomes else (20, 21),
    )
    config = SimulatorConfig(
        read_length=args.read_length, seed=args.seed + 1,
        duplicate_rate=args.duplicate_rate,
    )
    reads = ReadSimulator(genome, config).simulate(args.reads)
    with open(args.fasta, "w") as handle:
        write_fasta(handle, genome)
    with open(args.sam, "w") as handle:
        write_sam(handle, reads, genome)
    if args.fastq:
        with open(args.fastq, "w") as handle:
            write_fastq(handle, reads)
    print(f"wrote {args.fasta} ({genome.total_length()} bp) and "
          f"{args.sam} ({len(reads)} reads)")
    return 0


def _cmd_preprocess(args: argparse.Namespace) -> int:
    from .accel.markdup import accelerated_mark_duplicates
    from .accel.scheduler import MetadataWaveDriver, SpmImageCache
    from .accel.sharding import run_sharded
    from .faults import RetryPolicy
    from .tables.genomic_tables import reads_to_table
    from .tables.partition import partition_reads, partition_reference

    with open(args.fasta) as handle:
        genome = read_fasta(handle, snp_rate=args.snp_rate, seed=7)
    with open(args.sam) as handle:
        reads = read_sam(handle)
    markdup = accelerated_mark_duplicates(reads)
    print(f"mark duplicates: {markdup.num_duplicates} flagged")

    table = reads_to_table(markdup.sorted_reads)
    reference = partition_reference(genome, args.psize, args.overlap)
    partitions = partition_reads(table, args.psize)
    storage = None
    if args.storage_filter:
        from .storage import plan_storage_filter

        storage = plan_storage_filter(partitions, reference)
        print(storage.describe())
    spm_cache = SpmImageCache()
    fault_plan = None
    if args.inject_faults:
        from .faults import FaultPlan

        fault_plan = FaultPlan.from_spec(
            args.inject_faults, seed=args.fault_seed
        )
        for line in fault_plan.describe():
            print(f"fault plan: {line}")
    results, stats = run_sharded(
        MetadataWaveDriver(reference=reference),
        partitions,
        args.pipelines,
        devices=args.devices,
        workers=args.workers,
        spm_cache=spm_cache,
        fault_plan=fault_plan,
        retry_policy=RetryPolicy(max_retries=args.max_retries),
        wave_timeout=args.wave_timeout,
        storage=storage,
    )
    tagged = 0
    for pid, part in partitions:
        result = results[pid]
        for rowid, nm, md, uq in zip(
            part.column("ROWID").tolist(), result.nm, result.md, result.uq
        ):
            markdup.sorted_reads[rowid].tags.update(NM=nm, MD=md, UQ=uq)
            tagged += 1
    print(
        f"metadata update: {tagged} reads tagged "
        f"({stats.waves} waves x {args.pipelines} pipelines, "
        f"devices={stats.devices}, workers={stats.workers}, "
        f"{stats.cycles_including_load} cycles, "
        f"spm cache {stats.spm_cache_hits} hits / "
        f"{stats.spm_cache_misses} misses)"
    )
    if stats.devices > 1:
        utilization = stats.device_utilization()
        for device, device_stats in enumerate(stats.per_device):
            print(
                f"  device {device}: {device_stats.waves} waves, "
                f"{device_stats.total_cycles} cycles "
                f"({utilization[device]:.0%} of critical path), "
                f"steals in/out {device_stats.steals_in}/"
                f"{device_stats.steals_out}"
            )
        if stats.steal_count:
            print(
                f"  work stealing: {stats.steal_count} wave(s) migrated "
                "(plan-time, results unchanged)"
            )
    if stats.workers > 1:
        for worker in sorted(stats.per_worker):
            tally = stats.per_worker[worker]
            print(
                f"  {worker}: {tally.waves} waves, {tally.cycles} cycles, "
                f"{tally.elapsed_seconds:.3f}s host"
            )
    if fault_plan is not None:
        kinds = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(stats.faults_by_kind.items())
        ) or "none"
        print(
            f"resilience: survived {stats.faults_injected} injected "
            f"fault(s) ({kinds}); {stats.retries} retried, "
            f"{stats.watchdog_timeouts} watchdog timeout(s), "
            f"{stats.serial_fallback_waves} serial-fallback wave(s), "
            f"{stats.pool_restarts} pool restart(s)"
        )
    with open(args.out, "w") as handle:
        write_sam(handle, markdup.sorted_reads, genome)
    print(f"wrote {args.out}")
    return 0


def _cmd_call(args: argparse.Namespace) -> int:
    from .variants.caller import CallerConfig, call_variants
    from .variants.vcf import write_vcf

    with open(args.fasta) as handle:
        genome = read_fasta(handle)
    with open(args.sam) as handle:
        reads = read_sam(handle)
    calls = call_variants(
        reads, genome, CallerConfig(min_depth=args.min_depth)
    )
    with open(args.out, "w") as handle:
        write_vcf(handle, calls)
    print(f"called {len(calls)} variants -> {args.out}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .eval.experiments import PAPER_TARGETS, measure_cycles_per_base
    from .eval.workloads import make_workload
    from .perf import PAPER_READS, model_stage

    workload = make_workload(
        n_reads=args.reads, read_length=80, chromosomes=(20,),
        genome_scale=4.5e-5, psize=4000, seed=9,
    )
    print("stage        speedup   paper")
    for stage in ("markdup", "metadata", "bqsr_table"):
        cpb = measure_cycles_per_base(stage, workload).cycles_per_base
        timing = model_stage(stage, PAPER_READS, 151, cpb)
        print(f"{stage:<12} {timing.speedup:6.2f}x  "
              f"{PAPER_TARGETS['speedup'][stage]}x")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .eval.experiments import profile_stage
    from .eval.workloads import make_workload
    from .obs import (
        analyze_report,
        write_chrome_trace,
        write_report_csv,
        write_report_json,
    )

    if args.stage not in PROFILE_STAGES:
        print(
            f"error: unknown stage {args.stage!r} "
            f"(choose from {', '.join(PROFILE_STAGES)})",
            file=sys.stderr,
        )
        return 2
    log = get_logger("cli")
    workload = make_workload(
        n_reads=args.reads, read_length=80, chromosomes=(20,),
        genome_scale=4.5e-5, psize=4000, seed=args.seed,
    )
    report = profile_stage(args.stage, workload, mode=args.mode)
    print(report.render())
    analysis = analyze_report(report)
    print(analysis.render())
    record_event(
        "profile.report", stage=args.stage, cycles=report.cycles,
        mode=report.mode, root_bottleneck=analysis.root_bottleneck,
    )
    log.info(
        "profiled %s: %d cycles, root bottleneck %s",
        args.stage, report.cycles, analysis.root_bottleneck,
        extra={"stage": args.stage},
    )
    if args.trace:
        _ensure_parent(args.trace)
        write_chrome_trace(report, args.trace)
        print(f"wrote chrome trace -> {args.trace} "
              "(load in chrome://tracing or ui.perfetto.dev)")
    if args.out:
        _ensure_parent(args.out)
        write_report_json(report, args.out)
        print(f"wrote report json -> {args.out}")
    if args.csv:
        _ensure_parent(args.csv)
        write_report_csv(report, args.csv)
        print(f"wrote report csv -> {args.csv}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from .obs import analyze_report, report_from_dict

    if args.critical_path:
        from .obs import critical_path_from_ledger

        ledger = RunLedger(args.ledger)
        try:
            report = critical_path_from_ledger(ledger, job_id=args.job)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(report.render())
        record_event(
            "analyze.critical_path", run_id=report.run_id,
            jobs=len(report.jobs),
        )
        return 0
    if args.sharding:
        from .obs import sharding_report_from_ledger

        ledger = RunLedger(args.ledger)
        try:
            report = sharding_report_from_ledger(ledger)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(report.render())
        record_event(
            "analyze.sharding", stage=report.stage, devices=report.devices,
            steals=report.steals,
        )
        return 0
    if args.storage:
        from .obs import storage_report_from_ledger

        ledger = RunLedger(args.ledger)
        try:
            report = storage_report_from_ledger(ledger)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(report.render())
        record_event(
            "analyze.storage", stage=report.stage,
            filtered_fraction=report.filtered_fraction,
            saved_nbytes=report.saved_nbytes,
        )
        return 0
    if not args.report:
        print(
            "error: pass a profile REPORT_JSON, --sharding, --storage, "
            "or --critical-path",
            file=sys.stderr,
        )
        return 2
    try:
        with open(args.report) as handle:
            data = json.load(handle)
    except OSError as error:
        print(f"error: cannot read {args.report}: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: {args.report} is not JSON: {error}", file=sys.stderr)
        return 2
    report = report_from_dict(data)
    analysis = analyze_report(report, min_stall_share=args.min_stall_share)
    print(analysis.render())
    record_event(
        "analyze.report", source=args.report,
        root_bottleneck=analysis.root_bottleneck,
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .obs import (
        BenchContext,
        BenchResult,
        compare_results,
        compare_sweeps,
        parse_sweep,
        run_bench,
        run_sweep,
        write_bench_result,
    )
    from .sql import available_backends

    log = get_logger("bench")
    if args.sql_backend not in available_backends():
        print(
            f"error: unknown SQL backend {args.sql_backend!r} "
            f"(available: {', '.join(available_backends())})",
            file=sys.stderr,
        )
        return 2
    if args.devices < 1 or args.workers < 1:
        print("error: --devices and --workers must be >= 1", file=sys.stderr)
        return 2
    context = BenchContext(
        reads=args.reads, read_length=args.read_length, psize=args.psize,
        pipelines=args.pipelines, seed=args.seed,
        sql_backend=args.sql_backend,
        workers=args.workers, devices=args.devices,
    )
    probes = (
        [name.strip() for name in args.probes.split(",") if name.strip()]
        if args.probes else None
    )
    try:
        result = run_bench(
            context, repeats=args.repeats, warmup=args.warmup, probes=probes,
        )
        if args.sweep:
            sweep_probes = (
                [n.strip() for n in args.sweep_probes.split(",") if n.strip()]
                if args.sweep_probes else None
            )
            result.sweep = run_sweep(
                context, parse_sweep(args.sweep), probes=sweep_probes,
                repeats=args.repeats, warmup=args.warmup,
            )
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    print(result.render())
    speedup = result.probes.get("sql_backend_speedup")
    if speedup is not None:
        record_event(
            "bench.sql_backend", backend=args.sql_backend,
            speedup=speedup.median,
        )
    if not args.no_write:
        path = write_bench_result(result, args.out_dir)
        print(f"wrote {path}")
        record_event("bench.result", path=path, probes=sorted(result.probes))
        log.info("bench suite written to %s", path)
    if args.compare:
        try:
            baseline = BenchResult.load(args.compare)
        except OSError as error:
            print(
                f"error: cannot read baseline {args.compare}: {error}",
                file=sys.stderr,
            )
            return 2
        except (ValueError, json.JSONDecodeError) as error:
            print(f"error: bad baseline {args.compare}: {error}",
                  file=sys.stderr)
            return 2
        comparison = compare_results(
            result, baseline, threshold=args.threshold
        )
        print(comparison.render())
        record_event(
            "bench.compare", baseline=args.compare,
            refused=comparison.refused,
            regressions=[probe.name for probe in comparison.regressions],
        )
        if comparison.refused:
            log.warning("comparison vs %s refused", args.compare)
            if not args.report_only:
                return 2
        elif not comparison.ok:
            log.warning(
                "%d probe(s) regressed vs %s",
                len(comparison.regressions), args.compare,
            )
            if not args.report_only:
                return 1
        if result.sweep is not None and baseline.sweep is not None:
            curve = compare_sweeps(
                result.sweep, baseline.sweep, threshold=args.threshold
            )
            print(curve.render())
            record_event(
                "bench.compare_sweep", baseline=args.compare,
                refused=curve.refused,
                regressions=len(curve.regressions),
            )
            if curve.refused:
                log.warning("sweep comparison vs %s refused", args.compare)
                if not args.report_only:
                    return 2
            if not curve.ok:
                log.warning(
                    "%d curve regression(s) vs %s",
                    len(curve.regressions), args.compare,
                )
                if not args.report_only:
                    return 1
        elif result.sweep is not None:
            print("note: baseline has no sweep; curve shape not compared")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .eval.workloads import make_workload
    from .faults import FaultPlan, RetryPolicy
    from .serve import ArrivalTrace, JobService, trace_jobs

    stages = tuple(
        stage.strip() for stage in args.stages.split(",") if stage.strip()
    )
    workload = make_workload(
        n_reads=args.reads,
        read_length=args.read_length,
        chromosomes=(20, 21),
        genome_scale=4.5e-5,
        psize=args.psize,
        seed=args.seed,
    )
    trace = ArrivalTrace.generate(
        tenants=args.tenants,
        jobs=args.jobs,
        seed=args.seed,
        stages=stages,
        mean_gap_cycles=args.mean_gap,
    )
    fault_plan = None
    if args.inject_faults:
        fault_plan = FaultPlan.from_spec(
            args.inject_faults, seed=args.fault_seed
        )
        for line in fault_plan.describe():
            print(f"fault plan: {line}")
    storage = None
    if args.storage_filter:
        from .storage import plan_storage_filter

        # Plan over the by-position AND by-read-group partitionings so
        # every stage in the trace mix (bqsr shards by read group) finds
        # its chunks; reference lookup ignores the read-group axis.
        storage = plan_storage_filter(
            list(workload.partitions) + list(workload.group_partitions),
            workload.reference,
        )
        print(storage.describe())
    service = JobService(
        devices=args.devices,
        workers=args.workers,
        max_backlog=args.backlog,
        quota=args.quota,
        fault_plan=fault_plan,
        retry_policy=RetryPolicy(max_retries=args.max_retries),
        storage=storage,
    )
    for at_cycles, spec in trace_jobs(
        trace, workload, n_pipelines=args.pipelines
    ):
        service.schedule(spec, at_cycles=at_cycles)
    if args.drain_at:
        service.run(max_dispatches=args.drain_at)
        checkpoint = service.drain()
        print(
            f"serve: drained at clock {checkpoint.clock} "
            f"({checkpoint.open_jobs} open job(s) requeued); resuming"
        )
        service = JobService.resume(checkpoint)
    summary = service.run_until_idle()
    print(summary.render())
    if storage is not None:
        record_event(
            "storage.run",
            stage="serve", devices=args.devices,
            filtered_fraction=storage.filtered_fraction,
            raw_nbytes=storage.raw_nbytes,
            survivor_nbytes=storage.survivor_nbytes,
            saved_nbytes=storage.saved_nbytes,
            pruned_rows=storage.pruned_rows,
            scan_seconds=storage.scan_seconds,
            kernel_seconds=sum(summary.device_busy_seconds),
            transfer_seconds=sum(summary.device_transfer_seconds),
            internal_bandwidth=storage.config.internal_bandwidth,
            pcie_bandwidth=service.pool.config.pcie_bandwidth,
            compression_ratio=storage.compression_ratio,
        )
    if args.trace:
        from .obs import write_fleet_trace

        _ensure_parent(args.trace)
        write_fleet_trace(service.spans.spans, args.trace)
        print(
            f"wrote fleet chrome trace -> {args.trace} "
            f"({len(service.spans)} spans; load in chrome://tracing "
            "or ui.perfetto.dev)"
        )
    record_event(
        "serve.run",
        tenants=args.tenants, jobs=args.jobs,
        devices=args.devices, workers=args.workers,
        clock_cycles=summary.clock_cycles,
        completed=summary.jobs_completed,
        rejected=summary.jobs_rejected,
        failed=summary.jobs_failed,
    )
    return 0 if summary.jobs_failed == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Genesis (ISCA 2020) reproduction command-line tools",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="debug-level logging",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="warnings and errors only",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit JSON-lines log records (run-id and worker-id stamped)",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="run-ledger file (default .repro/ledger.jsonl)",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="do not record this run in the ledger",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser("simulate", help="synthesize a workload")
    simulate.add_argument("--fasta", required=True)
    simulate.add_argument("--sam", required=True)
    simulate.add_argument("--fastq", default=None)
    simulate.add_argument("--reads", type=int, default=500)
    simulate.add_argument("--read-length", type=int, default=100)
    simulate.add_argument("--scale", type=float, default=4.5e-5)
    simulate.add_argument("--snp-rate", type=float, default=0.001)
    simulate.add_argument("--duplicate-rate", type=float, default=0.15)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--chromosomes", type=int, nargs="*", default=None)
    simulate.set_defaults(func=_cmd_simulate)

    preprocess = commands.add_parser(
        "preprocess", help="accelerated GATK4-style preprocessing"
    )
    preprocess.add_argument("--fasta", required=True)
    preprocess.add_argument("--sam", required=True)
    preprocess.add_argument("--out", required=True)
    preprocess.add_argument("--psize", type=int, default=4000)
    preprocess.add_argument("--overlap", type=int, default=200)
    preprocess.add_argument("--snp-rate", type=float, default=0.001)
    preprocess.add_argument(
        "--pipelines", type=int, default=4,
        help="pipeline replicas per wave (the paper's 16x replication)",
    )
    preprocess.add_argument(
        "--workers", type=int, default=1,
        help="host worker processes the waves fan out over (per device)",
    )
    preprocess.add_argument(
        "--devices", type=int, default=1,
        help="shard the waves over this many simulated accelerator cards "
             "(bit-identical results at any count)",
    )
    preprocess.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="fault plan to inject, e.g. 'worker_crash:2,transfer_error' "
             "(KIND[:COUNT][@SITE][+ATTEMPTS][~SPREAD], comma-separated)",
    )
    preprocess.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed deriving the injected fault sites (same seed + spec "
             "=> same faults)",
    )
    preprocess.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per wave item before degradation",
    )
    preprocess.add_argument(
        "--wave-timeout", type=float, default=None, metavar="SECONDS",
        help="watchdog deadline around each parallel wave",
    )
    preprocess.add_argument(
        "--storage-filter", action="store_true",
        help="prune exactly-matching reads inside the modelled SSD so "
             "only survivor bytes cross PCIe (results bit-identical; "
             "see `repro analyze --storage`)",
    )
    preprocess.set_defaults(func=_cmd_preprocess)

    call = commands.add_parser("call", help="pileup variant calling")
    call.add_argument("--fasta", required=True)
    call.add_argument("--sam", required=True)
    call.add_argument("--out", required=True)
    call.add_argument("--min-depth", type=int, default=4)
    call.set_defaults(func=_cmd_call)

    reproduce = commands.add_parser(
        "reproduce", help="print paper-vs-measured speedups"
    )
    reproduce.add_argument("--reads", type=int, default=120)
    reproduce.set_defaults(func=_cmd_reproduce)

    profile = commands.add_parser(
        "profile", help="profile one accelerator stage on a demo workload"
    )
    profile.add_argument(
        "--stage", default="markdup", metavar="STAGE",
        help=f"accelerator stage ({', '.join(PROFILE_STAGES)})",
    )
    profile.add_argument("--reads", type=int, default=120)
    profile.add_argument("--seed", type=int, default=9)
    profile.add_argument(
        "--mode", choices=("event", "dense"), default=None,
        help="force the engine schedule (default: event)",
    )
    profile.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a chrome://tracing JSON timeline",
    )
    profile.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the flat JSON report",
    )
    profile.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write the report as CSV rows",
    )
    profile.set_defaults(func=_cmd_profile)

    analyze = commands.add_parser(
        "analyze",
        help="bottleneck analysis over a saved profile --out JSON",
    )
    analyze.add_argument("report", metavar="REPORT_JSON", nargs="?")
    analyze.add_argument(
        "--min-stall-share", type=float, default=0.01,
        help="drop stall chains below this fraction of the run",
    )
    analyze.add_argument(
        "--sharding", action="store_true",
        help="report per-device utilization, steal counts, and the "
             "device-count what-if of the latest sharded run in the ledger",
    )
    analyze.add_argument(
        "--critical-path", action="store_true",
        help="walk the latest served run in the ledger and decompose each "
             "job's latency into queue-wait / transfer / spm-load / kernel "
             "/ fault-penalty / drain cycles (sums exactly to the latency)",
    )
    analyze.add_argument(
        "--storage", action="store_true",
        help="report the latest storage-filtered run in the ledger: "
             "pruned fraction, bytes kept off PCIe, and the "
             "filtered-fraction x PCIe-generation what-if sweep",
    )
    analyze.add_argument(
        "--job", type=int, default=None, metavar="JOB_ID",
        help="narrow --critical-path to one job id",
    )
    analyze.set_defaults(func=_cmd_analyze)

    bench = commands.add_parser(
        "bench",
        help="run the perf probe suite; write BENCH_<n>.json; "
             "optionally compare against a baseline",
    )
    bench.add_argument(
        "--out-dir", default=".",
        help="directory the BENCH_<n>.json lands in",
    )
    bench.add_argument(
        "--no-write", action="store_true",
        help="run and print without writing a BENCH file",
    )
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--warmup", type=int, default=1)
    bench.add_argument("--reads", type=int, default=120)
    bench.add_argument("--read-length", type=int, default=80)
    bench.add_argument("--psize", type=int, default=4000)
    bench.add_argument("--pipelines", type=int, default=4)
    bench.add_argument("--seed", type=int, default=2024)
    bench.add_argument(
        "--sql-backend", default="fast", metavar="NAME",
        help="SQL execution backend the sql probes measure against the "
             "row-at-a-time reference (default: fast)",
    )
    bench.add_argument(
        "--workers", type=int, default=2,
        help="worker processes the scheduler probes measure with "
             "(part of the config digest)",
    )
    bench.add_argument(
        "--devices", type=int, default=2,
        help="device count the sharding probe measures "
             "(part of the config digest)",
    )
    bench.add_argument(
        "--probes", default=None, metavar="A,B,...",
        help="comma-separated probe subset (default: the full suite)",
    )
    bench.add_argument(
        "--sweep", default=None, metavar="SPEC",
        help="record the scaling curve over a topology cross-product, "
             "e.g. 'devices=1,2;workers=1,2' "
             "(axes: devices, workers, pipelines)",
    )
    bench.add_argument(
        "--sweep-probes", default=None, metavar="A,B,...",
        help="probes the sweep re-measures per point (default: the "
             "parallelism probes)",
    )
    bench.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="BENCH json to compare this run against",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.10,
        help="median regression fraction that fails (outside baseline IQR)",
    )
    bench.add_argument(
        "--report-only", action="store_true",
        help="print regressions but exit zero anyway",
    )
    bench.set_defaults(func=_cmd_bench)

    serve = commands.add_parser(
        "serve",
        help="multi-tenant job service over a simulated arrival trace",
    )
    serve.add_argument(
        "--tenants", type=int, default=8,
        help="simulated tenants submitting jobs",
    )
    serve.add_argument(
        "--jobs", type=int, default=32,
        help="jobs in the seeded arrival trace",
    )
    serve.add_argument(
        "--stages", default="markdup,metadata,bqsr",
        help="comma-separated stage mix the trace draws from",
    )
    serve.add_argument("--reads", type=int, default=120)
    serve.add_argument("--read-length", type=int, default=60)
    serve.add_argument("--psize", type=int, default=1000)
    serve.add_argument(
        "--pipelines", type=int, default=2,
        help="pipeline replicas per wave",
    )
    serve.add_argument(
        "--devices", type=int, default=2,
        help="simulated accelerator cards the dispatcher time-multiplexes",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="host worker processes a dispatch round fans out over "
             "(virtual timeline is identical at any count)",
    )
    serve.add_argument(
        "--quota", type=int, default=8,
        help="max open jobs per tenant before admission rejects",
    )
    serve.add_argument(
        "--backlog", type=int, default=64,
        help="max open jobs service-wide before admission rejects",
    )
    serve.add_argument(
        "--mean-gap", type=int, default=50_000, metavar="CYCLES",
        help="mean inter-arrival gap of the trace, in virtual cycles",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--drain-at", type=int, default=None, metavar="DISPATCHES",
        help="drain after this many dispatches, then resume from the "
             "checkpoint (exercises the graceful-restart path)",
    )
    serve.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="fault plan, e.g. 'transfer_error:2@serve.wave'",
    )
    serve.add_argument("--fault-seed", type=int, default=0)
    serve.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per wave before the job fails",
    )
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the merged fleet chrome://tracing JSON (one lane per "
             "device, tenant-colored job tracks)",
    )
    serve.add_argument(
        "--storage-filter", action="store_true",
        help="serve from the modelled in-SSD filter: wave transfers "
             "charge survivor bytes only (virtual timelines shrink, "
             "results bit-identical)",
    )
    serve.set_defaults(func=_cmd_serve)
    return parser


def _manifest_for(args: argparse.Namespace) -> RunManifest:
    """The ledger manifest of one CLI invocation."""
    skipped = {
        "func", "command", "verbose", "quiet", "log_json", "ledger",
        "no_ledger",
    }
    config = {
        key: value for key, value in vars(args).items() if key not in skipped
    }
    return RunManifest(
        workload=args.command,
        config=config,
        seed=getattr(args, "seed", None),
        pipelines=getattr(args, "pipelines", None),
        workers=getattr(args, "workers", None),
        mode=getattr(args, "mode", None),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: configure logging, open the run ledger context,
    dispatch the subcommand."""
    args = build_parser().parse_args(argv)
    configure_logging(
        json_lines=args.log_json, verbosity=args.verbose, quiet=args.quiet,
    )
    if args.no_ledger:
        return args.func(args)
    with run_context(_manifest_for(args), RunLedger(args.ledger)):
        code = args.func(args)
        record_event("cli.exit", code=code)
    return code


if __name__ == "__main__":
    sys.exit(main())
