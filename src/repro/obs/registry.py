"""The metrics registry: counters, gauges, and histograms.

One :class:`MetricsRegistry` collects every observable quantity of a run
— simulator internals (engine, queues, modules, memory channels), the
partition scheduler, and the runtime API all publish into it — and the
profile/export layer (:mod:`repro.obs.profile`, :mod:`repro.obs.export`)
turns its contents into reports.

Instruments are plain Python objects with one hot method each
(``inc``/``set``/``record``); a registry created with ``enabled=False``
hands out shared *null* instruments whose mutators are no-ops, so
instrumented code pays one attribute call and nothing else when metrics
are off.  The simulator's own per-cycle tallies (``Module.busy_cycles``,
``HardwareQueue.full_stalls``, ``MemorySystem.requests_served``) are
*harvested* into the registry after a run rather than published per
cycle — the hot loop stays untouched and the disabled path costs zero.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: (name, labels) -> instrument key.  Labels are sorted key=value pairs so
#: lookup order never changes identity.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def nearest_rank(total: int, q: float) -> int:
    """The 1-based nearest-rank index of percentile ``q`` in an ordered
    sample of ``total`` observations: ``max(1, ceil(q/100 * total))``.

    Deterministic, no interpolation — ties and integer samples come out
    exact, which is why both the serving SLO report and the histogram
    summaries use it."""
    if not 0 < q <= 100:
        raise ValueError("q must be in (0, 100]")
    if total <= 0:
        raise ValueError("total must be positive")
    return max(1, math.ceil(q / 100.0 * total))


def nearest_rank_percentile(values: Sequence, q: float):
    """Nearest-rank percentile of ``values`` (``None`` when empty)."""
    if not values:
        return None
    ordered = sorted(values)
    return ordered[nearest_rank(len(ordered), q) - 1]


def _key(name: str, labels: Dict[str, object]) -> MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing tally (int or float increments)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1) -> None:
        """Add ``amount`` (must be >= 0)."""
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """A distribution over small non-negative integers (queue depths,
    per-cycle occupancies): ``counts[v]`` is how many observations saw
    value ``v``.  ``record(value, weight)`` supports charging a run of
    identical cycles in one call (the event engine's fast-forward gap)."""

    __slots__ = ("name", "labels", "counts")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.counts: List[int] = []

    def record(self, value: int, weight: int = 1) -> None:
        """Count ``weight`` observations of ``value``."""
        counts = self.counts
        if value >= len(counts):
            counts.extend([0] * (value + 1 - len(counts)))
        counts[value] += weight

    @property
    def total(self) -> int:
        """Total observations recorded."""
        return sum(self.counts)

    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        total = self.total
        if not total:
            return 0.0
        return sum(v * c for v, c in enumerate(self.counts)) / total

    def quantile(self, q: float) -> int:
        """The smallest value covering fraction ``q`` of observations
        (nearest-rank, shared with :func:`nearest_rank`)."""
        total = self.total
        if not total:
            return 0
        rank = nearest_rank(total, q * 100.0)
        seen = 0
        for value, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return value
        return len(self.counts) - 1


class _NullInstrument:
    """Shared no-op stand-in handed out by disabled registries."""

    __slots__ = ()
    name = "<disabled>"
    labels: Dict[str, str] = {}
    value = 0
    counts: List[int] = []
    total = 0

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def record(self, value: int, weight: int = 1) -> None:
        pass

    def mean(self) -> float:
        return 0.0

    def quantile(self, q: float) -> int:
        return 0


_NULL = _NullInstrument()


class MetricsRegistry:
    """Creates and stores instruments, keyed by name + labels.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated calls
    with the same name and labels return the same instrument, so modules
    and the scheduler can publish without coordinating ownership.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: "Dict[MetricKey, object]" = {}

    def _get(self, cls, name: str, labels: Dict[str, object]):
        if not self.enabled:
            return _NULL
        key = _key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, {k: str(v) for k, v in labels.items()})
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """Get or create a histogram."""
        return self._get(Histogram, name, labels)

    # -- queries -----------------------------------------------------------------

    def __iter__(self) -> Iterator[object]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def find(self, name: str, **labels):
        """The instrument registered under ``name`` + ``labels``, or None."""
        return self._instruments.get(_key(name, labels))

    def value(self, name: str, default=0, **labels):
        """The scalar value of a counter/gauge (``default`` when absent)."""
        instrument = self.find(name, **labels)
        if instrument is None:
            return default
        return instrument.value

    def values(self, name: str) -> Dict[Tuple[Tuple[str, str], ...], object]:
        """Every instrument registered under ``name``, keyed by labels."""
        return {
            key[1]: inst
            for key, inst in self._instruments.items()
            if key[0] == name
        }

    def total(self, name: str, default=0):
        """The sum of a counter/gauge's values across every label set
        (``default`` when nothing is registered under ``name``)."""
        instruments = self.values(name)
        if not instruments:
            return default
        return sum(inst.value for inst in instruments.values())

    def as_dict(self) -> Dict[str, object]:
        """A flat JSON-friendly snapshot: ``name{k=v,...}`` -> value
        (histograms dump their count vectors)."""
        out: Dict[str, object] = {}
        for (name, labels), inst in sorted(self._instruments.items()):
            if labels:
                rendered = ",".join(f"{k}={v}" for k, v in labels)
                key = f"{name}{{{rendered}}}"
            else:
                key = name
            if isinstance(inst, Histogram):
                out[key] = list(inst.counts)
            else:
                out[key] = inst.value
        return out


#: A registry that drops everything — the default for instrumented code
#: paths when no registry was supplied.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def registry_or_null(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Normalize an optional registry argument."""
    return registry if registry is not None else NULL_REGISTRY
