"""Critical-path bottleneck analysis over a :class:`ProfileReport`.

A profile tells you *what* each module did; this module answers the
question every acceleration PR starts from (Genesis Fig. 9/13, the
co-design surveys' "find the data-preparation bottleneck first"):
**which module is the bottleneck and what would fixing it buy?**

Three steps, all pure functions of the report:

1. **rank** modules by their busy/stalled share of the run;
2. **attribute** stalls to their root cause: a module stalled on a full
   output queue is a *victim* of back-pressure, not its source.  For
   every stalled module the analyzer walks the queue topology
   (:attr:`ProfileReport.edges`) downstream — stalled producer → fullest
   stalling queue → its consumer — until it reaches a module that is not
   itself blocked; that terminal module is the **root** the whole
   chain's stall cycles are charged to;
3. **bound** the payoff with Amdahl-style what-ifs: eliminating the
   back-pressure rooted at ``M`` can save at most the largest stall
   count in ``M``'s chains (upstream stalls of one chain overlap in
   time, so they are bounded, not summed), and even a perfect version of
   everything *except* the top bottleneck still needs that module's busy
   cycles.

Exposed as ``repro analyze <report.json>`` and embedded as the summary
block at the end of ``repro profile`` output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .ledger import LEDGER_SCHEMA_VERSION, RunLedger
from .profile import ModuleProfile, ProfileReport
from .registry import MetricsRegistry


def _require_schema(
    records: Sequence[Dict[str, object]], event: str
) -> Sequence[Dict[str, object]]:
    """Refuse unversioned ledger events instead of mis-parsing them.

    Every event a current build records carries ``schema_version``
    (stamped by :meth:`~repro.obs.ledger.RunLedger.append`); a record
    without it is from a pre-versioning build or was written by hand,
    and the analyzers cannot know which fields to trust.  Raising
    ``ValueError`` here is what turns that into the CLI's clean
    exit-code-2 refusal rather than a traceback."""
    for record in records:
        if "schema_version" not in record:
            raise ValueError(
                f"ledger has {event} event(s) without a schema_version "
                f"field (current schema is v{LEDGER_SCHEMA_VERSION}) — "
                "this ledger predates event versioning or was edited by "
                "hand; re-record the run with a current `repro` build "
                "before analyzing it"
            )
    return records


@dataclass
class StallChain:
    """One walked back-pressure chain: a stalled module, the queue path
    to the module its stalls are attributed to, and the stall mass."""

    module: str
    stalled: int
    root: str
    #: Alternating module / queue names from victim to root.
    path: List[str] = field(default_factory=list)

    def render(self) -> str:
        """``victim -[queue]-> ... root (N stall cycles)``."""
        if len(self.path) <= 1:
            return f"{self.module} (self-limited, {self.stalled} stall cycles)"
        parts = [self.path[0]]
        for index in range(1, len(self.path) - 1, 2):
            parts.append(f"-[{self.path[index]}]-> {self.path[index + 1]}")
        return f"{' '.join(parts)} ({self.stalled} stall cycles)"


@dataclass
class WhatIf:
    """One Amdahl-style bound: what fixing ``module`` could buy."""

    module: str
    speedup_bound: float
    saved_cycles: int
    description: str


@dataclass
class BottleneckReport:
    """The analyzer's answer, queryable and renderable."""

    name: str
    cycles: int
    #: Module names ranked by busy cycles, descending.
    ranking: List[str]
    chains: List[StallChain]
    #: root module -> largest stall mass attributed to it.
    attributed_stalls: Dict[str, int]
    root_bottleneck: Optional[str]
    what_ifs: List[WhatIf]
    modules: Dict[str, ModuleProfile] = field(default_factory=dict)

    def render(self) -> str:
        """The human-readable summary block."""
        lines = [f"bottleneck analysis: {self.name} ({self.cycles} cycles)"]
        if not self.ranking:
            lines.append("  (no modules profiled)")
            return "\n".join(lines)
        width = max(len(name) for name in self.ranking[:5])
        lines.append(
            f"  {'module'.ljust(width)}  {'busy':>7} {'stall':>7} {'share':>7}"
        )
        for name in self.ranking[:5]:
            profile = self.modules[name]
            lines.append(
                f"  {name.ljust(width)}  {profile.busy:>7} "
                f"{profile.stalled:>7} "
                f"{profile.utilization(self.cycles):>7.1%}"
            )
        if self.chains:
            lines.append("  back-pressure chains:")
            for chain in sorted(self.chains, key=lambda c: -c.stalled)[:6]:
                lines.append(f"    {chain.render()}")
        if self.root_bottleneck is not None:
            profile = self.modules[self.root_bottleneck]
            attributed = self.attributed_stalls.get(self.root_bottleneck, 0)
            lines.append(
                f"  root bottleneck: {self.root_bottleneck} "
                f"(busy {profile.utilization(self.cycles):.1%}, "
                f"{attributed} upstream stall cycles attributed)"
            )
        for what_if in self.what_ifs:
            lines.append(f"  what-if: {what_if.description}")
        return "\n".join(lines)


def sql_operator_attribution(
    metrics: MetricsRegistry,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Attribute SQL execution time to backends and plan operators.

    Reads the ``sql_operator_seconds``/``sql_operator_rows`` counters
    the :class:`~repro.sql.executor.Executor` publishes and returns
    ``{backend: {op: {"seconds": s, "rows": n}}}`` — the per-operator
    breakdown that says where a backend's time goes (join vs group-by vs
    explode), comparable across backends on the same plans.
    """
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for metric_name, field_name in (
        ("sql_operator_seconds", "seconds"),
        ("sql_operator_rows", "rows"),
    ):
        for labels, counter in metrics.values(metric_name).items():
            tags = dict(labels)
            cell = out.setdefault(tags.get("backend", "?"), {}).setdefault(
                tags.get("op", "?"), {"seconds": 0.0, "rows": 0.0}
            )
            cell[field_name] += float(counter.value)
    return out


def render_sql_attribution(
    attribution: Dict[str, Dict[str, Dict[str, float]]],
) -> str:
    """Human-readable table of :func:`sql_operator_attribution`,
    operators sorted by seconds descending within each backend."""
    lines = []
    for backend in sorted(attribution):
        ops = attribution[backend]
        total = sum(cell["seconds"] for cell in ops.values())
        lines.append(f"sql backend {backend}: {total:.4f}s")
        for op in sorted(ops, key=lambda o: -ops[o]["seconds"]):
            cell = ops[op]
            share = cell["seconds"] / total if total else 0.0
            lines.append(
                f"  {op:<14} {cell['seconds']:>9.4f}s "
                f"{share:>6.1%}  {int(cell['rows'])} rows"
            )
    return "\n".join(lines)


def _stalling_queues(
    report: ProfileReport, module: str
) -> List[str]:
    """Queues ``module`` produces into that recorded full-stalls,
    back-pressured first."""
    queues = []
    for queue in report.queues:
        edge = report.edges.get(queue.name)
        if edge is None or module not in edge.get("producers", ()):
            continue
        if queue.full_stalls > 0:
            queues.append((queue.full_stalls, queue.name))
    return [name for _stalls, name in sorted(queues, reverse=True)]


def _walk_chain(report: ProfileReport, start: ModuleProfile) -> StallChain:
    """Follow back-pressure downstream from one stalled module until the
    blocking stops propagating; the terminal module is the root."""
    current = start.name
    path = [current]
    visited = {current}
    while True:
        advanced = False
        for queue_name in _stalling_queues(report, current):
            consumers = report.edges[queue_name].get("consumers", [])
            next_module = next(
                (name for name in consumers if name not in visited), None
            )
            if next_module is None:
                continue
            path.extend([queue_name, next_module])
            visited.add(next_module)
            current = next_module
            advanced = True
            break
        if not advanced:
            break
    return StallChain(
        module=start.name, stalled=start.stalled, root=current, path=path
    )


def analyze_report(
    report: ProfileReport, min_stall_share: float = 0.01
) -> BottleneckReport:
    """Run the three analysis steps over ``report``.

    ``min_stall_share`` drops chains whose stall mass is below that
    fraction of the run (noise, not bottlenecks).
    """
    cycles = max(report.cycles, 1)
    modules = {profile.name: profile for profile in report.modules}
    ranking = [
        profile.name
        for profile in sorted(report.modules, key=lambda m: -m.busy)
    ]

    chains: List[StallChain] = []
    attributed: Dict[str, int] = {}
    for profile in report.modules:
        if profile.stalled / cycles < min_stall_share:
            continue
        chain = _walk_chain(report, profile)
        chains.append(chain)
        attributed[chain.root] = max(
            attributed.get(chain.root, 0), chain.stalled
        )

    # The root bottleneck carries the most weight: its own busy cycles
    # plus the largest stall mass charged to it from upstream.
    root_bottleneck: Optional[str] = None
    if modules:
        root_bottleneck = max(
            modules,
            key=lambda name: modules[name].busy + attributed.get(name, 0),
        )

    what_ifs: List[WhatIf] = []
    for root, stalls in sorted(attributed.items(), key=lambda kv: -kv[1]):
        if stalls <= 0 or stalls >= cycles:
            continue
        bound = cycles / (cycles - stalls)
        what_ifs.append(WhatIf(
            module=root,
            speedup_bound=bound,
            saved_cycles=stalls,
            description=(
                f"eliminating {root} back-pressure bounds speedup at "
                f"{bound:.2f}x (≤{stalls} cycles saved)"
            ),
        ))
    if root_bottleneck is not None:
        busy = modules[root_bottleneck].busy
        if 0 < busy < cycles:
            bound = cycles / busy
            what_ifs.append(WhatIf(
                module=root_bottleneck,
                speedup_bound=bound,
                saved_cycles=cycles - busy,
                description=(
                    f"{root_bottleneck} alone needs {busy} busy cycles — "
                    f"everything-else-free speedup caps at {bound:.2f}x"
                ),
            ))

    return BottleneckReport(
        name=report.name,
        cycles=report.cycles,
        ranking=ranking,
        chains=chains,
        attributed_stalls=attributed,
        root_bottleneck=root_bottleneck,
        what_ifs=what_ifs,
        modules=modules,
    )


# -- multi-device sharding analysis ----------------------------------------------------


@dataclass
class DeviceUtilization:
    """One device queue's share of a sharded run."""

    device: int
    waves: int
    cycles: int
    steals_in: int
    steals_out: int
    busy_seconds: float
    transfer_seconds: float
    elapsed_seconds: float
    #: Cycle share of the critical-path device (1.0 = busiest queue).
    utilization: float


@dataclass
class ShardingReport:
    """Per-device utilization and the Amdahl what-if over device count,
    reconstructed from a run's ``shard.run``/``shard.device`` ledger
    events."""

    stage: str
    devices: int
    workers: int
    waves: int
    total_cycles: int
    steals: int
    host_parallelism: float
    per_device: List[DeviceUtilization]
    what_ifs: List[WhatIf]

    def render(self) -> str:
        """The human-readable summary block."""
        lines = [
            f"sharding analysis: {self.stage} — {self.devices} device(s), "
            f"{self.workers} worker(s)/device, {self.waves} wave(s), "
            f"{self.total_cycles} cycles, {self.steals} steal(s), "
            f"host parallelism {self.host_parallelism:.2f}"
        ]
        if self.per_device:
            lines.append(
                "  device   waves  cycles        util  steals(in/out)"
            )
            for entry in self.per_device:
                lines.append(
                    f"  d{entry.device:<7} {entry.waves:>5} "
                    f"{entry.cycles:>10} {entry.utilization:>7.1%}  "
                    f"{entry.steals_in}/{entry.steals_out}"
                )
        for what_if in self.what_ifs:
            lines.append(f"  what-if: {what_if.description}")
        return "\n".join(lines)


def device_what_if(
    per_wave_cycles: Sequence[int],
    device_counts: Sequence[int] = (1, 2, 4, 8),
) -> List[WhatIf]:
    """Amdahl-style bounds over device count: LPT-pack the run's actual
    per-wave cycle costs onto ``k`` idealized devices and report the
    makespan speedup vs one device.  Wave granularity is the serial
    fraction here — a run dominated by one huge wave stops scaling, and
    the bound makes that visible before anyone provisions hardware."""
    total = sum(per_wave_cycles)
    what_ifs: List[WhatIf] = []
    if total <= 0:
        return what_ifs
    costs = sorted(per_wave_cycles, reverse=True)
    for count in device_counts:
        if count < 1:
            continue
        loads = [0] * count
        for cost in costs:
            loads[min(range(count), key=lambda d: (loads[d], d))] += cost
        makespan = max(loads)
        speedup = total / makespan if makespan else 1.0
        what_ifs.append(WhatIf(
            module=f"devices={count}",
            speedup_bound=speedup,
            saved_cycles=total - makespan,
            description=(
                f"{count} device(s) bound the critical path at "
                f"{makespan} cycles ({speedup:.2f}x vs one device)"
            ),
        ))
    return what_ifs


# -- per-job critical-path decomposition -----------------------------------------------

#: The categories a served job's latency decomposes into, in charge
#: priority order (a cycle covered by work beats the drain window beats
#: plain queueing).
CRITICAL_PATH_CATEGORIES = (
    "queue_wait", "fault_penalty", "transfer", "spm_load", "kernel", "drain",
)


@dataclass
class JobPath:
    """One job's latency, decomposed cycle-exactly.

    ``segments`` partitions ``[arrival, completion]`` on the service's
    virtual clock, so ``sum(segments.values()) == latency_cycles``
    always — the invariant the acceptance test pins."""

    job: int
    tenant: str
    stage: str
    arrival_cycles: int
    completed_cycles: int
    latency_cycles: int
    waves: int
    segments: Dict[str, int] = field(default_factory=dict)

    @property
    def dominant(self) -> str:
        """The category carrying the most cycles (ties break on the
        canonical category order)."""
        return max(
            CRITICAL_PATH_CATEGORIES,
            key=lambda cat: (self.segments.get(cat, 0),
                             -CRITICAL_PATH_CATEGORIES.index(cat)),
        )

    def render(self) -> str:
        parts = " ".join(
            f"{cat}={self.segments.get(cat, 0)}"
            for cat in CRITICAL_PATH_CATEGORIES
            if self.segments.get(cat, 0)
        ) or "queue_wait=0"
        return (
            f"  job {self.job} [{self.tenant}/{self.stage}] "
            f"{self.latency_cycles} cycles ({self.waves} wave(s)): {parts}"
        )


@dataclass
class CriticalPathReport:
    """Per-job critical paths of one served run, from the ledger alone."""

    run_id: str
    jobs: List[JobPath]

    def totals(self) -> Dict[str, int]:
        """Summed cycles per category across every job."""
        totals = {cat: 0 for cat in CRITICAL_PATH_CATEGORIES}
        for path in self.jobs:
            for cat, cycles in path.segments.items():
                totals[cat] = totals.get(cat, 0) + cycles
        return totals

    def render(self) -> str:
        total_latency = sum(path.latency_cycles for path in self.jobs)
        lines = [
            f"critical-path analysis: {len(self.jobs)} job(s), "
            f"{total_latency} summed latency cycles"
        ]
        totals = self.totals()
        for cat in CRITICAL_PATH_CATEGORIES:
            cycles = totals.get(cat, 0)
            if not cycles:
                continue
            share = cycles / total_latency if total_latency else 0.0
            lines.append(f"  {cat:<13} {cycles:>12} cycles {share:>7.1%}")
        for path in self.jobs:
            lines.append(path.render())
        return "\n".join(lines)


def _wave_intervals(record: Dict[str, object]) -> List[Tuple[int, int, str]]:
    """One completed wave's ``(start, end, category)`` sub-intervals.

    New-format ``serve.wave.done`` events carry ``start_cycles`` /
    ``transfer_cycles`` / ``penalty_cycles``; old ledgers reconstruct
    the wave's tail (``end - cycles - load``) and decompose into
    ``spm_load``/``kernel`` only — the remainder of the latency simply
    stays ``queue_wait``, so the exact-sum invariant holds for both."""
    end = int(record.get("end_cycles", 0))
    kernel = int(record.get("cycles", 0))
    load = int(record.get("load_cycles", 0))
    if "start_cycles" in record:
        start = int(record["start_cycles"])
        penalty = int(record.get("penalty_cycles", 0))
        transfer = int(record.get("transfer_cycles", 0))
    else:
        start = end - kernel - load
        penalty = transfer = 0
    cursor = start
    intervals: List[Tuple[int, int, str]] = []
    for cycles, cat in (
        (penalty, "fault_penalty"),
        (transfer, "transfer"),
        (load, "spm_load"),
        (kernel, "kernel"),
    ):
        if cycles > 0:
            intervals.append((cursor, cursor + cycles, cat))
            cursor += cycles
    if cursor < end:  # rounding slack in an old-format record
        intervals.append((cursor, end, "kernel"))
    return intervals


def _job_path(
    done: Dict[str, object],
    waves: List[Dict[str, object]],
    aborted: List[Dict[str, object]],
    drain_windows: List[Tuple[int, int]],
) -> JobPath:
    """Decompose one completed job's ``[arrival, completion]`` window.

    The window is cut at every sub-interval boundary; each elementary
    segment is charged to exactly one category (work by the covering
    wave — latest-ending wins when waves of one job overlap across
    devices — else aborted/drain time, else queue wait).  A partition
    sums to the window exactly by construction."""
    end = int(done.get("clock", 0))
    if "arrival_cycles" in done:
        arrival = int(done["arrival_cycles"])
    else:  # old ledger: derive from the latency the service recorded
        arrival = end - int(done.get("latency_cycles", 0))
    covered: List[Tuple[int, int, str]] = []
    for record in waves:
        covered.extend(_wave_intervals(record))
    aborted_spans = [
        (int(record.get("start_cycles", 0)), int(record.get("clock", 0)))
        for record in aborted
    ]
    bounds = {arrival, end}
    for lo, hi, _cat in covered:
        bounds.update((lo, hi))
    for lo, hi in aborted_spans + drain_windows:
        bounds.update((lo, hi))
    edges = sorted(b for b in bounds if arrival <= b <= end)
    segments = {cat: 0 for cat in CRITICAL_PATH_CATEGORIES}
    for lo, hi in zip(edges, edges[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2
        covering = [item for item in covered if item[0] <= mid < item[1]]
        if covering:
            # the latest-ending covering wave is the one still on the
            # critical path at this instant
            _lo, _hi, cat = max(covering, key=lambda item: item[1])
        elif any(lo_ <= mid < hi_ for lo_, hi_ in aborted_spans):
            cat = "drain"
        elif any(lo_ <= mid < hi_ for lo_, hi_ in drain_windows):
            cat = "drain"
        else:
            cat = "queue_wait"
        segments[cat] += hi - lo
    return JobPath(
        job=int(done.get("job", -1)),
        tenant=str(done.get("tenant", "?")),
        stage=str(done.get("stage", "?")),
        arrival_cycles=arrival,
        completed_cycles=end,
        latency_cycles=end - arrival,
        waves=len(waves),
        segments=segments,
    )


def critical_path_from_ledger(
    ledger: RunLedger,
    run_id: Optional[str] = None,
    job_id: Optional[int] = None,
) -> CriticalPathReport:
    """Rebuild per-job critical paths from a served run's ledger events.

    Uses the latest run carrying ``serve.job.done`` events (or ``run_id``
    when given); ``job_id`` narrows to one job.  Raises ``ValueError``
    when no served run (or no such job) is in the ledger."""
    done_events = ledger.events("serve.job.done", run_id=run_id)
    if not done_events:
        raise ValueError(
            "no serve.job.done events in the ledger — run `repro serve` "
            "first"
        )
    _require_schema(done_events, "serve.job.done")
    run = str(done_events[-1].get("run_id"))
    done_events = [r for r in done_events if str(r.get("run_id")) == run]
    if job_id is not None:
        done_events = [
            r for r in done_events if int(r.get("job", -1)) == job_id
        ]
        if not done_events:
            raise ValueError(f"job {job_id} did not complete in run {run}")
    waves = ledger.events("serve.wave.done", run_id=run)
    aborted = ledger.events("serve.wave.aborted", run_id=run)
    drains = ledger.events("serve.drain", run_id=run)
    resumes = ledger.events("serve.resume", run_id=run)
    drain_windows = [
        (int(drain.get("clock", 0)), int(resume.get("clock", 0)))
        for drain, resume in zip(drains, resumes)
    ]
    jobs = [
        _job_path(
            done,
            [r for r in waves if r.get("job") == done.get("job")],
            [r for r in aborted if r.get("job") == done.get("job")],
            drain_windows,
        )
        for done in sorted(
            done_events, key=lambda r: int(r.get("job", -1))
        )
    ]
    return CriticalPathReport(run_id=run, jobs=jobs)


def sharding_report_from_ledger(
    ledger: RunLedger, run_id: Optional[str] = None
) -> ShardingReport:
    """Rebuild the :class:`ShardingReport` of a ledgered run.

    Uses the latest ``shard.run`` event (or the latest one of ``run_id``
    when given) and its sibling ``shard.device`` events.  Raises
    ``ValueError`` when the ledger holds no sharded runs.
    """
    runs = ledger.events("shard.run", run_id=run_id)
    if not runs:
        raise ValueError(
            "no shard.run events in the ledger — run a sharded stage "
            "(e.g. `repro preprocess --devices N`) first"
        )
    _require_schema(runs, "shard.run")
    summary = runs[-1]
    siblings = ledger.events(
        "shard.device", run_id=str(summary.get("run_id"))
    )
    per_device = [
        DeviceUtilization(
            device=int(record.get("device", 0)),
            waves=int(record.get("waves", 0)),
            cycles=int(record.get("cycles", 0)),
            steals_in=int(record.get("steals_in", 0)),
            steals_out=int(record.get("steals_out", 0)),
            busy_seconds=float(record.get("busy_seconds", 0.0)),
            transfer_seconds=float(record.get("transfer_seconds", 0.0)),
            elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
            utilization=float(record.get("utilization", 0.0)),
        )
        for record in siblings
        if record.get("stage") == summary.get("stage")
    ]
    per_device.sort(key=lambda entry: entry.device)
    per_wave = [int(c) for c in summary.get("per_wave_cycles", [])]
    return ShardingReport(
        stage=str(summary.get("stage", "?")),
        devices=int(summary.get("devices", 1)),
        workers=int(summary.get("workers", 1)),
        waves=int(summary.get("waves", 0)),
        total_cycles=int(summary.get("total_cycles", 0)),
        steals=int(summary.get("steals", 0)),
        host_parallelism=float(summary.get("host_parallelism", 0.0)),
        per_device=per_device,
        what_ifs=device_what_if(per_wave),
    )


# -- in-storage filter analysis --------------------------------------------------------

#: PCIe generations the storage what-if sweeps, as (name, bytes/s).
#: The bandwidths mirror ``repro.runtime.device.PCIE3_BANDWIDTH`` /
#: ``PCIE4_BANDWIDTH`` as literals — importing the runtime here would
#: cycle back through ``repro.obs``.
STORAGE_WHAT_IF_GENERATIONS: Tuple[Tuple[str, float], ...] = (
    ("pcie3", 7e9),
    ("pcie4", 32e9),
)

#: Filtered fractions the storage what-if sweeps.
STORAGE_WHAT_IF_FRACTIONS: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 0.95)


def storage_what_if(
    kernel_seconds: float,
    transfer_seconds: float,
    fractions: Sequence[float] = STORAGE_WHAT_IF_FRACTIONS,
    generations: Sequence[Tuple[str, float]] = STORAGE_WHAT_IF_GENERATIONS,
    pcie_bandwidth: float = 7e9,
    descriptor_bytes: int = 8,
    row_bytes: int = 128,
    clock_hz: float = 250e6,
) -> List[WhatIf]:
    """Amdahl-style bounds over filtered fraction × PCIe generation.

    Mirrors :func:`device_what_if` for the storage tier: take a run's
    measured kernel and transfer seconds, scale the transfer term by the
    survivor footprint a filter of fraction ``f`` would leave (pruned
    reads ship ``descriptor_bytes`` instead of ``row_bytes``) and by the
    candidate link's bandwidth, and report the end-to-end speedup bound.
    Kernel time is the serial fraction — at high filtered fractions the
    curve flattens against it, which is exactly the provisioning signal
    (Genesis Fig. 9: past some link speed the bottleneck moves back to
    compute).  Per-transfer setup overhead is ignored, so the bounds are
    optimistic — they cap what a filter can buy, like every what-if
    here.
    """
    base = kernel_seconds + transfer_seconds
    what_ifs: List[WhatIf] = []
    if base <= 0 or transfer_seconds < 0 or row_bytes <= 0:
        return what_ifs
    for gen_name, bandwidth in generations:
        link_scale = pcie_bandwidth / bandwidth if bandwidth > 0 else 1.0
        for fraction in fractions:
            fraction = min(max(float(fraction), 0.0), 1.0)
            survivor = (
                (1.0 - fraction) * row_bytes + fraction * descriptor_bytes
            ) / row_bytes
            seconds = (
                kernel_seconds + transfer_seconds * survivor * link_scale
            )
            speedup = base / seconds if seconds > 0 else 1.0
            what_ifs.append(WhatIf(
                module=f"storage f={fraction:.2f} {gen_name}",
                speedup_bound=speedup,
                saved_cycles=int(round(max(base - seconds, 0.0) * clock_hz)),
                description=(
                    f"filter f={fraction:.2f} on {gen_name}: transfer "
                    f"{transfer_seconds * 1e3:.3f} ms -> "
                    f"{transfer_seconds * survivor * link_scale * 1e3:.3f} "
                    f"ms ({speedup:.2f}x end-to-end)"
                ),
            ))
    return what_ifs


@dataclass
class StorageReport:
    """The in-storage filter's accounting for one run, reconstructed
    from its ``storage.run`` ledger event, with the filtered-fraction ×
    PCIe-generation what-if sweep (``repro analyze --storage``)."""

    stage: str
    devices: int
    filtered_fraction: float
    pruned_rows: int
    raw_nbytes: int
    survivor_nbytes: int
    saved_nbytes: int
    scan_seconds: float
    kernel_seconds: float
    transfer_seconds: float
    compression_ratio: float
    internal_bandwidth: float
    pcie_bandwidth: float
    what_ifs: List[WhatIf]

    def render(self) -> str:
        """The human-readable summary block."""
        saved_share = (
            self.saved_nbytes / self.raw_nbytes if self.raw_nbytes else 0.0
        )
        lines = [
            f"storage analysis: {self.stage} — {self.devices} device(s), "
            f"filtered {self.filtered_fraction:.1%} "
            f"({self.pruned_rows} read(s) pruned in-SSD)",
            f"  PCIe traffic: {self.raw_nbytes} B raw -> "
            f"{self.survivor_nbytes} B survivors "
            f"({saved_share:.1%} kept off the link)",
            f"  in-SSD scan: {self.scan_seconds * 1e3:.3f} ms at "
            f"{self.internal_bandwidth / 1e9:.0f} GB/s internal "
            f"({self.compression_ratio:.2f}x chunk compression); "
            f"kernel {self.kernel_seconds * 1e3:.3f} ms, transfer "
            f"{self.transfer_seconds * 1e3:.3f} ms",
        ]
        for what_if in self.what_ifs:
            lines.append(f"  what-if: {what_if.description}")
        return "\n".join(lines)


def storage_report_from_ledger(
    ledger: RunLedger, run_id: Optional[str] = None
) -> StorageReport:
    """Rebuild the :class:`StorageReport` of a ledgered run.

    Uses the latest ``storage.run`` event (or the latest one of
    ``run_id`` when given).  Raises ``ValueError`` when the ledger holds
    no storage-filtered runs, or when the events are unversioned.
    """
    runs = ledger.events("storage.run", run_id=run_id)
    if not runs:
        raise ValueError(
            "no storage.run events in the ledger — run a stage with "
            "--storage-filter (e.g. `repro preprocess --storage-filter`) "
            "first"
        )
    _require_schema(runs, "storage.run")
    summary = runs[-1]
    kernel_seconds = float(summary.get("kernel_seconds", 0.0))
    transfer_seconds = float(summary.get("transfer_seconds", 0.0))
    pcie_bandwidth = float(summary.get("pcie_bandwidth", 7e9))
    return StorageReport(
        stage=str(summary.get("stage", "?")),
        devices=int(summary.get("devices", 1)),
        filtered_fraction=float(summary.get("filtered_fraction", 0.0)),
        pruned_rows=int(summary.get("pruned_rows", 0)),
        raw_nbytes=int(summary.get("raw_nbytes", 0)),
        survivor_nbytes=int(summary.get("survivor_nbytes", 0)),
        saved_nbytes=int(summary.get("saved_nbytes", 0)),
        scan_seconds=float(summary.get("scan_seconds", 0.0)),
        kernel_seconds=kernel_seconds,
        transfer_seconds=transfer_seconds,
        compression_ratio=float(summary.get("compression_ratio", 1.0)),
        internal_bandwidth=float(summary.get("internal_bandwidth", 0.0)),
        pcie_bandwidth=pcie_bandwidth,
        what_ifs=storage_what_if(
            kernel_seconds, transfer_seconds,
            pcie_bandwidth=pcie_bandwidth,
        ),
    )
