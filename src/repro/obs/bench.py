"""The ``repro bench`` regression harness: a declared suite of perf
probes whose results persist across PRs.

Each :class:`Probe` measures one number on a shared
:class:`BenchContext` (the workload is built once per suite run):
simulator throughput under both engine schedules, host-scheduler
parallelism, and the per-stage preprocess cycles-per-base that the
paper-scale timing model extrapolates from.  ``run_bench`` executes
every probe with warmup + N repeats and summarizes each as
median / IQR — the median is robust to host noise, the IQR records how
noisy the probe was so comparisons can tell signal from jitter.

Results are written as schema-versioned ``BENCH_<n>.json`` files with
the run's :class:`~repro.obs.ledger.RunManifest` embedded, so any two
files say whether they are comparable (same config digest, same
package version) before saying which is faster.

``compare_results`` applies the noise-aware regression rule: a probe
fails only when its median moved more than ``threshold`` in the bad
direction **and** landed outside the baseline's IQR.  Deterministic
probes (simulated cycles) have zero IQR, so any real regression trips
them; noisy host-time probes get the IQR guard.

The scaling-curve observatory rides on the same suite: ``run_sweep``
re-runs selected probes across a cross-product of topology axes
(``devices`` × ``workers`` × ``pipelines``) on the *same* materialized
workload and records the full curve as a :class:`SweepResult` inside
the ``BENCH_*.json``.  ``compare_sweeps`` gates curve *shape*, not just
endpoints: every point gets the median+IQR rule against its baseline
twin, and each probe's parallel-efficiency slope along each axis must
not drop more than the threshold below the baseline slope.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import statistics
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .ledger import RunManifest

#: Bumped when the BENCH_*.json shape changes incompatibly.
#: v2 added the optional ``sweep`` scaling-curve block.
BENCH_SCHEMA_VERSION = 2

_BENCH_NAME = re.compile(r"BENCH_(\d+)\.json$")


# -- the probe suite -----------------------------------------------------------------


@dataclass
class BenchContext:
    """Shared state the probes measure against."""

    reads: int = 120
    read_length: int = 80
    psize: int = 4000
    pipelines: int = 4
    seed: int = 2024
    #: SQL execution backend the sql probes measure (vs "reference").
    sql_backend: str = "fast"
    #: Host topology the scheduler probes measure: worker processes per
    #: device queue and sharded device count.  Part of the config digest
    #: — medians from different topologies are not comparable.
    workers: int = 2
    devices: int = 2
    workload: object = None

    def build(self) -> "BenchContext":
        """Materialize the workload (once per suite run)."""
        from ..eval.workloads import make_workload

        if self.workload is None:
            self.workload = make_workload(
                n_reads=self.reads,
                read_length=self.read_length,
                chromosomes=(20,),
                genome_scale=4.5e-5,
                psize=self.psize,
                seed=self.seed,
            )
        return self

    def config(self) -> Dict[str, object]:
        """The manifest config describing this context."""
        return {
            "reads": self.reads,
            "read_length": self.read_length,
            "psize": self.psize,
            "pipelines": self.pipelines,
            "seed": self.seed,
            "sql_backend": self.sql_backend,
            "workers": self.workers,
            "devices": self.devices,
        }


@dataclass(frozen=True)
class Probe:
    """One benchmark probe: a measurement function plus its metadata."""

    name: str
    fn: Callable[[BenchContext], float]
    unit: str
    higher_is_better: bool
    description: str = ""


def _metadata_run(context: BenchContext, mode: str):
    from ..accel.scheduler import MetadataWaveDriver, run_partitioned

    driver = MetadataWaveDriver(
        reference=context.workload.reference, mode=mode
    )
    _results, stats = run_partitioned(
        driver, context.workload.partitions, context.pipelines
    )
    return stats


def _probe_sim_throughput_event(context: BenchContext) -> float:
    return _metadata_run(context, "event").host_flits_per_second


def _probe_sim_throughput_dense(context: BenchContext) -> float:
    return _metadata_run(context, "dense").host_flits_per_second


def _probe_scheduler_parallelism(context: BenchContext) -> float:
    from ..accel.scheduler import MetadataWaveDriver, run_partitioned

    driver = MetadataWaveDriver(reference=context.workload.reference)
    _results, stats = run_partitioned(
        driver, context.workload.partitions, context.pipelines,
        workers=context.workers,
    )
    return stats.host_parallelism


def _probe_device_parallelism(context: BenchContext) -> float:
    from ..accel.sharding import run_sharded
    from ..accel.scheduler import MetadataWaveDriver

    driver = MetadataWaveDriver(reference=context.workload.reference)
    _results, stats = run_sharded(
        driver, context.workload.partitions, context.pipelines,
        devices=context.devices, workers=1,
    )
    return stats.host_parallelism


def _cycles_per_base(context: BenchContext, stage: str) -> float:
    from ..eval.experiments import measure_cycles_per_base

    return measure_cycles_per_base(stage, context.workload).cycles_per_base


def sql_stage_backend_seconds(workload, backend: str) -> Dict[str, float]:
    """Backend execution seconds of the three SQL stage drivers.

    Runs the markdup/metadata/BQSR stage scripts of
    :mod:`repro.gatk.sql_driver` on ``backend`` and charges only the
    plan-execution time — the ``sql_operator_seconds`` counters the
    executor publishes — so host-side prep common to every backend does
    not dilute the comparison.  Returns ``{stage: seconds}``.
    """
    import copy

    from ..gatk.sql_driver import (
        sql_build_covariate_tables,
        sql_mark_duplicates,
        sql_update_metadata,
    )
    from .registry import MetricsRegistry

    out: Dict[str, float] = {}
    metrics = MetricsRegistry()
    sql_mark_duplicates(
        copy.deepcopy(workload.reads), backend=backend, metrics=metrics
    )
    out["markdup"] = float(metrics.total("sql_operator_seconds"))
    metrics = MetricsRegistry()
    sql_update_metadata(
        workload.partitions, workload.reference, workload.read_length,
        backend=backend, metrics=metrics,
    )
    out["metadata"] = float(metrics.total("sql_operator_seconds"))
    metrics = MetricsRegistry()
    sql_build_covariate_tables(
        workload.group_partitions, workload.reference, workload.read_length,
        backend=backend, metrics=metrics,
    )
    out["bqsr"] = float(metrics.total("sql_operator_seconds"))
    return out


def _probe_storage_filter_speedup(context: BenchContext) -> float:
    """PCIe transfer-seconds ratio of an unfiltered vs storage-filtered
    sharded metadata run.  Deterministic: both terms are modelled link
    occupancy, not host time.  Runs at two devices minimum because the
    unsharded path models no transfers to compare against."""
    from ..accel.scheduler import MetadataWaveDriver
    from ..accel.sharding import run_sharded
    from ..storage.filter import plan_storage_filter

    devices = max(context.devices, 2)
    workload = context.workload
    plan = plan_storage_filter(
        workload.partitions, workload.reference, record=False
    )
    driver = MetadataWaveDriver(reference=workload.reference)
    _results, unfiltered = run_sharded(
        driver, workload.partitions, context.pipelines, devices=devices
    )
    _results, filtered = run_sharded(
        driver, workload.partitions, context.pipelines, devices=devices,
        storage=plan,
    )
    baseline = sum(unfiltered.device_transfer_seconds)
    survivors = sum(filtered.device_transfer_seconds)
    return baseline / max(survivors, 1e-12)


def _probe_sql_backend_speedup(context: BenchContext) -> float:
    reference = sum(
        sql_stage_backend_seconds(context.workload, "reference").values()
    )
    selected = sum(
        sql_stage_backend_seconds(context.workload, context.sql_backend).values()
    )
    return reference / max(selected, 1e-9)


DEFAULT_SUITE: Dict[str, Probe] = {
    probe.name: probe
    for probe in (
        Probe(
            "sim_throughput_event",
            _probe_sim_throughput_event,
            "flits/s", True,
            "event-schedule simulator throughput on a metadata wave run",
        ),
        Probe(
            "sim_throughput_dense",
            _probe_sim_throughput_dense,
            "flits/s", True,
            "dense-schedule simulator throughput (the oracle loop)",
        ),
        Probe(
            "scheduler_parallelism",
            _probe_scheduler_parallelism,
            "x", True,
            "effective host concurrency of a multi-worker partitioned run",
        ),
        Probe(
            "device_scaling_parallelism",
            _probe_device_parallelism,
            "x", True,
            "effective host concurrency of a sharded run across the "
            "context's device count (one worker per device queue)",
        ),
        Probe(
            "markdup_cycles_per_base",
            lambda context: _cycles_per_base(context, "markdup"),
            "cycles/base", False,
            "sustained markdup accelerator cycles per base (deterministic)",
        ),
        Probe(
            "metadata_cycles_per_base",
            lambda context: _cycles_per_base(context, "metadata"),
            "cycles/base", False,
            "sustained metadata-update cycles per base (deterministic)",
        ),
        Probe(
            "bqsr_table_cycles_per_base",
            lambda context: _cycles_per_base(context, "bqsr_table"),
            "cycles/base", False,
            "sustained BQSR covariate cycles per base (deterministic)",
        ),
        Probe(
            "sql_backend_speedup",
            _probe_sql_backend_speedup,
            "x", True,
            "SQL stage-driver backend execution speedup vs the reference "
            "backend (markdup + metadata + BQSR scripts)",
        ),
        Probe(
            "storage_filter_speedup",
            _probe_storage_filter_speedup,
            "x", True,
            "PCIe transfer-time reduction from the in-SSD exact-match "
            "filter on a sharded metadata run (deterministic)",
        ),
    )
}


# -- results -------------------------------------------------------------------------


@dataclass
class ProbeResult:
    """One probe's samples and their robust summary."""

    name: str
    unit: str
    higher_is_better: bool
    samples: List[float]

    @property
    def median(self) -> float:
        return statistics.median(self.samples)

    @property
    def q1(self) -> float:
        return self._quantile(0.25)

    @property
    def q3(self) -> float:
        return self._quantile(0.75)

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def _quantile(self, q: float) -> float:
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction

    def to_dict(self) -> Dict[str, object]:
        return {
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "samples": list(self.samples),
            "median": self.median,
            "q1": self.q1,
            "q3": self.q3,
            "iqr": self.iqr,
        }

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, object]) -> "ProbeResult":
        return cls(
            name=name,
            unit=str(data.get("unit", "")),
            higher_is_better=bool(data.get("higher_is_better", True)),
            samples=[float(sample) for sample in data.get("samples", [])]
            or [float(data.get("median", 0.0))],
        )


# -- the scaling-curve observatory ---------------------------------------------------

#: Topology axes ``run_sweep`` may vary.  Each is a BenchContext field
#: that reshapes the host/device topology without touching the workload.
SWEEP_AXES = ("devices", "workers", "pipelines")

#: Probes swept by default: the two whose whole point is a scaling curve.
DEFAULT_SWEEP_PROBES = ("scheduler_parallelism", "device_scaling_parallelism")


def parse_sweep(spec: str) -> Dict[str, List[int]]:
    """Parse a ``--sweep`` spec like ``"devices=1,2;workers=1,2"``.

    Axes are separated by ``;`` (or ``×``); each axis lists its values
    as ``name=v1,v2,...``.  Only :data:`SWEEP_AXES` are accepted.
    """
    axes: Dict[str, List[int]] = {}
    for part in re.split(r"[;×]", spec):
        part = part.strip()
        if not part:
            continue
        name, sep, rest = part.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ValueError(
                f"bad sweep axis {part!r}; expected name=v1,v2 with "
                f"name in {SWEEP_AXES}"
            )
        if name not in SWEEP_AXES:
            raise ValueError(
                f"unknown sweep axis {name!r}; axes are {SWEEP_AXES}"
            )
        if name in axes:
            raise ValueError(f"duplicate sweep axis {name!r}")
        values = [int(value) for value in rest.split(",") if value.strip()]
        if not values:
            raise ValueError(f"sweep axis {name!r} has no values")
        if any(value < 1 for value in values):
            raise ValueError(f"sweep axis {name!r} values must be >= 1")
        axes[name] = values
    if not axes:
        raise ValueError("empty sweep spec")
    return axes


@dataclass
class CurvePoint:
    """One topology point on the sweep grid: overrides + probe summaries."""

    overrides: Dict[str, int]
    probes: Dict[str, ProbeResult]

    def key(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(self.overrides.items()))

    def label(self) -> str:
        return ",".join(f"{k}={v}" for k, v in sorted(self.overrides.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "overrides": dict(sorted(self.overrides.items())),
            "probes": {
                name: result.to_dict()
                for name, result in sorted(self.probes.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CurvePoint":
        return cls(
            overrides={
                str(k): int(v)
                for k, v in data.get("overrides", {}).items()
            },
            probes={
                name: ProbeResult.from_dict(name, probe)
                for name, probe in data.get("probes", {}).items()
            },
        )


@dataclass
class SweepResult:
    """A full scaling curve: the axis grid plus one point per combo."""

    axes: Dict[str, List[int]]
    probe_names: List[str]
    points: List[CurvePoint]

    def series(self, probe: str, axis: str) -> List[Tuple[int, float]]:
        """``(axis value, median)`` pairs along ``axis`` with every other
        axis held at its first (base) value."""
        base = {name: values[0] for name, values in self.axes.items()}
        out: List[Tuple[int, float]] = []
        for value in self.axes.get(axis, []):
            want = dict(base)
            want[axis] = value
            for point in self.points:
                if point.overrides == want and probe in point.probes:
                    out.append((value, point.probes[probe].median))
                    break
        return out

    def efficiency_slope(self, probe: str, axis: str) -> Optional[float]:
        """Slope of parallel efficiency along ``axis``.

        Efficiency at a point is ``(median / base median) / (value /
        base value)`` — 1.0 means perfect scaling, below 1.0 sub-linear.
        The slope is the efficiency drop per unit of axis ratio between
        the first and last point; flat (0.0) is ideal, more negative
        means the curve bends away from linear harder.  ``None`` when
        the series is too short or degenerate to define one.
        """
        series = self.series(probe, axis)
        if len(series) < 2:
            return None
        base_value, base_median = series[0]
        if base_value == 0 or base_median == 0:
            return None
        first_ratio = 1.0
        last_value, last_median = series[-1]
        last_ratio = last_value / base_value
        if last_ratio == first_ratio:
            return None
        first_eff = 1.0
        last_eff = (last_median / base_median) / last_ratio
        return (last_eff - first_eff) / (last_ratio - first_ratio)

    def to_dict(self) -> Dict[str, object]:
        return {
            "axes": {name: list(values) for name, values in self.axes.items()},
            "probes": list(self.probe_names),
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepResult":
        return cls(
            axes={
                str(name): [int(v) for v in values]
                for name, values in data.get("axes", {}).items()
            },
            probe_names=[str(name) for name in data.get("probes", [])],
            points=[
                CurvePoint.from_dict(point)
                for point in data.get("points", [])
            ],
        )

    def render(self) -> str:
        lines = [
            "sweep "
            + " × ".join(
                f"{name}={'|'.join(str(v) for v in values)}"
                for name, values in self.axes.items()
            )
        ]
        for point in self.points:
            cells = "  ".join(
                f"{name}={point.probes[name].median:.3f}"
                for name in self.probe_names
                if name in point.probes
            )
            lines.append(f"  [{point.label()}]  {cells}")
        for probe in self.probe_names:
            for axis in self.axes:
                slope = self.efficiency_slope(probe, axis)
                if slope is not None:
                    lines.append(
                        f"  slope {probe}/{axis}: {slope:+.3f} "
                        "(efficiency per axis ratio; 0 = linear scaling)"
                    )
        return "\n".join(lines)


def run_sweep(
    context: BenchContext,
    axes: Dict[str, List[int]],
    probes: Optional[Sequence[str]] = None,
    repeats: int = 3,
    warmup: int = 1,
    suite: Optional[Dict[str, Probe]] = None,
) -> SweepResult:
    """Record the scaling curve: re-run ``probes`` at every point of the
    ``axes`` cross-product on the same materialized workload."""
    suite = suite if suite is not None else DEFAULT_SUITE
    unknown_axes = [name for name in axes if name not in SWEEP_AXES]
    if unknown_axes:
        raise ValueError(
            f"unknown sweep axes {unknown_axes}; axes are {SWEEP_AXES}"
        )
    if not axes:
        raise ValueError("sweep needs at least one axis")
    if probes:
        selected = list(probes)
    else:
        selected = [name for name in DEFAULT_SWEEP_PROBES if name in suite]
        if not selected:
            selected = list(suite)
    context.build()
    names = list(axes)
    points: List[CurvePoint] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        overrides = dict(zip(names, combo))
        point_context = replace(context, **overrides)
        result = run_bench(
            point_context, repeats=repeats, warmup=warmup,
            probes=selected, suite=suite,
        )
        points.append(CurvePoint(overrides=overrides, probes=result.probes))
    return SweepResult(
        axes={name: list(axes[name]) for name in names},
        probe_names=selected,
        points=points,
    )


@dataclass
class BenchResult:
    """One suite run: manifest + per-probe summaries."""

    manifest: RunManifest
    probes: Dict[str, ProbeResult]
    schema_version: int = BENCH_SCHEMA_VERSION
    #: Optional scaling curve recorded by ``--sweep``.
    sweep: Optional[SweepResult] = None

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "schema_version": self.schema_version,
            "manifest": self.manifest.to_dict(),
            "probes": {
                name: result.to_dict()
                for name, result in sorted(self.probes.items())
            },
        }
        if self.sweep is not None:
            data["sweep"] = self.sweep.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchResult":
        version = int(data.get("schema_version", 0))
        if version != BENCH_SCHEMA_VERSION:
            raise ValueError(
                f"bench schema v{version} is not v{BENCH_SCHEMA_VERSION}; "
                "regenerate the baseline with this package version"
            )
        sweep = data.get("sweep")
        return cls(
            manifest=RunManifest.from_dict(data.get("manifest", {})),
            probes={
                name: ProbeResult.from_dict(name, probe)
                for name, probe in data.get("probes", {}).items()
            },
            schema_version=version,
            sweep=SweepResult.from_dict(sweep) if sweep else None,
        )

    @classmethod
    def load(cls, path: str) -> "BenchResult":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def render(self) -> str:
        """The human-readable results table."""
        lines = [
            f"bench {self.manifest.run_id} "
            f"(config {self.manifest.digest}, "
            f"v{self.manifest.package_version})"
        ]
        width = max((len(name) for name in self.probes), default=5)
        for name in sorted(self.probes):
            result = self.probes[name]
            arrow = "↑" if result.higher_is_better else "↓"
            lines.append(
                f"  {name.ljust(width)}  median {result.median:>12.3f} "
                f"{result.unit} {arrow}  IQR {result.iqr:.3f} "
                f"({len(result.samples)} repeats)"
            )
        if self.sweep is not None:
            lines.append(self.sweep.render())
        return "\n".join(lines)


def run_bench(
    context: BenchContext,
    repeats: int = 3,
    warmup: int = 1,
    probes: Optional[Sequence[str]] = None,
    suite: Optional[Dict[str, Probe]] = None,
    manifest: Optional[RunManifest] = None,
) -> BenchResult:
    """Execute the probe suite: ``warmup`` throwaway runs then
    ``repeats`` recorded samples per probe."""
    if repeats < 1:
        raise ValueError("need at least one repeat")
    suite = suite if suite is not None else DEFAULT_SUITE
    selected = list(probes) if probes else list(suite)
    unknown = [name for name in selected if name not in suite]
    if unknown:
        raise KeyError(
            f"unknown probes {unknown}; suite has {sorted(suite)}"
        )
    context.build()
    if manifest is None:
        manifest = RunManifest(
            workload="bench",
            config=context.config(),
            seed=context.seed,
            pipelines=context.pipelines,
            workers=context.workers,
            mode="event",
        )
    results: Dict[str, ProbeResult] = {}
    for name in selected:
        probe = suite[name]
        for _ in range(warmup):
            probe.fn(context)
        samples = [float(probe.fn(context)) for _ in range(repeats)]
        results[name] = ProbeResult(
            name=name,
            unit=probe.unit,
            higher_is_better=probe.higher_is_better,
            samples=samples,
        )
    return BenchResult(manifest=manifest, probes=results)


def next_bench_path(out_dir: str) -> str:
    """The next free ``BENCH_<n>.json`` under ``out_dir``."""
    highest = 0
    if os.path.isdir(out_dir):
        for entry in os.listdir(out_dir):
            match = _BENCH_NAME.match(entry)
            if match:
                highest = max(highest, int(match.group(1)))
    return os.path.join(out_dir, f"BENCH_{highest + 1}.json")


def write_bench_result(result: BenchResult, out_dir: str = ".") -> str:
    """Write ``result`` to the next ``BENCH_<n>.json``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = next_bench_path(out_dir)
    with open(path, "w") as handle:
        json.dump(result.to_dict(), handle, indent=2)
        handle.write("\n")
    return path


# -- comparison ----------------------------------------------------------------------

#: Config keys describing the measured host/device topology.  Medians
#: from different topologies answer different questions (a devices=4 run
#: is not a regression of a devices=1 baseline), so comparisons across
#: them are refused rather than noted.
TOPOLOGY_KEYS = ("devices", "workers", "sql_backend")


@dataclass
class ProbeComparison:
    """One probe's baseline-vs-current verdict."""

    name: str
    unit: str
    higher_is_better: bool
    baseline_median: float
    current_median: float
    #: Relative movement in the *bad* direction (negative = improved).
    delta: float
    outside_iqr: bool
    regression: bool

    def render(self) -> str:
        direction = "↑" if self.higher_is_better else "↓"
        verdict = "REGRESSION" if self.regression else (
            "ok (within noise)" if self.delta > 0 else "ok"
        )
        return (
            f"{self.name}: {self.baseline_median:.3f} -> "
            f"{self.current_median:.3f} {self.unit} {direction} "
            f"({self.delta:+.1%} worse) {verdict}"
        )


@dataclass
class ComparisonResult:
    """The full comparison: per-probe verdicts plus the headline."""

    threshold: float
    probes: List[ProbeComparison]
    missing: List[str] = field(default_factory=list)
    comparable: bool = True
    notes: List[str] = field(default_factory=list)
    #: True when the comparison was refused outright (mismatched
    #: topology): no probes were diffed and the caller should treat the
    #: invocation as a usage error, not a perf verdict.
    refused: bool = False

    @property
    def regressions(self) -> List[ProbeComparison]:
        return [probe for probe in self.probes if probe.regression]

    @property
    def ok(self) -> bool:
        return not self.refused and not self.regressions

    def render(self) -> str:
        lines = [
            f"compare vs baseline (threshold {self.threshold:.0%} "
            "median regression outside baseline IQR):"
        ]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for probe in self.probes:
            lines.append(f"  {probe.render()}")
        for name in self.missing:
            lines.append(f"  {name}: not in baseline (skipped)")
        lines.append(
            f"  => {len(self.regressions)} regression(s) "
            f"across {len(self.probes)} compared probe(s)"
        )
        return "\n".join(lines)


def compare_results(
    current: BenchResult,
    baseline: BenchResult,
    threshold: float = 0.10,
) -> ComparisonResult:
    """Apply the noise-aware regression rule probe by probe.

    A probe regresses when its median moved more than ``threshold``
    (relative) in the bad direction **and** the current median sits
    outside the baseline's IQR — a wide-IQR (noisy) baseline therefore
    only fails on movements the baseline itself never produced.

    Comparisons across mismatched topology (:data:`TOPOLOGY_KEYS` in
    both manifests but with different values) are refused: the result
    carries ``refused=True``, no probes, and a note naming the
    mismatched keys.  Older results that never recorded topology still
    compare with the digest-mismatch note only.
    """
    notes: List[str] = []
    mismatched = [
        key for key in TOPOLOGY_KEYS
        if key in current.manifest.config
        and key in baseline.manifest.config
        and current.manifest.config[key] != baseline.manifest.config[key]
    ]
    if mismatched:
        details = ", ".join(
            f"{key}: {baseline.manifest.config[key]} vs "
            f"{current.manifest.config[key]}"
            for key in mismatched
        )
        return ComparisonResult(
            threshold=threshold,
            probes=[],
            missing=[],
            comparable=False,
            notes=[
                f"refusing to compare across topologies ({details}); "
                "re-run with matching --devices/--workers/--sql-backend "
                "or regenerate the baseline"
            ],
            refused=True,
        )
    if current.manifest.digest != baseline.manifest.digest:
        notes.append(
            f"config digests differ (current {current.manifest.digest}, "
            f"baseline {baseline.manifest.digest}) — medians may not be "
            "comparable"
        )
    comparisons: List[ProbeComparison] = []
    missing: List[str] = []
    for name in sorted(current.probes):
        probe = current.probes[name]
        base = baseline.probes.get(name)
        if base is None:
            missing.append(name)
            continue
        base_median = base.median
        if base_median == 0:
            delta = 0.0 if probe.median == 0 else 1.0
        elif probe.higher_is_better:
            delta = (base_median - probe.median) / abs(base_median)
        else:
            delta = (probe.median - base_median) / abs(base_median)
        if probe.higher_is_better:
            outside = probe.median < base.q1
        else:
            outside = probe.median > base.q3
        comparisons.append(ProbeComparison(
            name=name,
            unit=probe.unit,
            higher_is_better=probe.higher_is_better,
            baseline_median=base_median,
            current_median=probe.median,
            delta=delta,
            outside_iqr=outside,
            regression=delta > threshold and outside,
        ))
    return ComparisonResult(
        threshold=threshold,
        probes=comparisons,
        missing=missing,
        comparable=not notes,
        notes=notes,
    )


# -- curve-shape comparison ----------------------------------------------------------


@dataclass
class PointComparison:
    """One sweep point's baseline-vs-current verdict for one probe."""

    label: str
    probe: str
    unit: str
    higher_is_better: bool
    baseline_median: float
    current_median: float
    delta: float
    outside_iqr: bool
    regression: bool

    def render(self) -> str:
        verdict = "REGRESSION" if self.regression else (
            "ok (within noise)" if self.delta > 0 else "ok"
        )
        return (
            f"[{self.label}] {self.probe}: {self.baseline_median:.3f} -> "
            f"{self.current_median:.3f} {self.unit} "
            f"({self.delta:+.1%} worse) {verdict}"
        )


@dataclass
class SlopeComparison:
    """One probe/axis parallel-efficiency slope verdict."""

    probe: str
    axis: str
    baseline_slope: float
    current_slope: float
    regression: bool

    def render(self) -> str:
        verdict = "REGRESSION" if self.regression else "ok"
        return (
            f"slope {self.probe}/{self.axis}: {self.baseline_slope:+.3f} -> "
            f"{self.current_slope:+.3f} {verdict}"
        )


@dataclass
class SweepComparison:
    """Curve-shape verdict: per-point deltas plus slope drift."""

    threshold: float
    points: List[PointComparison]
    slopes: List[SlopeComparison]
    missing: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    refused: bool = False

    @property
    def regressions(self) -> List[object]:
        bad: List[object] = [p for p in self.points if p.regression]
        bad.extend(s for s in self.slopes if s.regression)
        return bad

    @property
    def ok(self) -> bool:
        return not self.refused and not self.regressions

    def render(self) -> str:
        lines = [
            f"sweep compare vs baseline (threshold {self.threshold:.0%} "
            "per point; slope drop gated at the same threshold):"
        ]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for point in self.points:
            lines.append(f"  {point.render()}")
        for slope in self.slopes:
            lines.append(f"  {slope.render()}")
        for label in self.missing:
            lines.append(f"  {label}: not in baseline (skipped)")
        lines.append(
            f"  => {len(self.regressions)} curve regression(s) across "
            f"{len(self.points)} point(s) and {len(self.slopes)} slope(s)"
        )
        return "\n".join(lines)


def compare_sweeps(
    current: SweepResult,
    baseline: SweepResult,
    threshold: float = 0.10,
) -> SweepComparison:
    """Gate curve *shape* against the baseline sweep.

    Two rules, both noise-aware:

    - **Per-point**: every (topology point, probe) pair applies the same
      median+IQR rule as :func:`compare_results` against its baseline
      twin — a curve that sags anywhere fails even if the endpoints
      match.
    - **Slope**: each probe's parallel-efficiency slope along each axis
      (see :meth:`SweepResult.efficiency_slope`) must not drop more than
      ``threshold`` below the baseline slope — a curve that bends away
      from linear scaling harder than the baseline did fails even when
      no single point trips the per-point rule.

    Sweeps over different axis grids are refused (``refused=True``): a
    devices=1..4 curve is not a regression of a devices=1..2 curve.
    """
    if current.axes != baseline.axes:
        return SweepComparison(
            threshold=threshold,
            points=[],
            slopes=[],
            notes=[
                f"refusing to compare sweeps over different grids "
                f"(current {current.axes} vs baseline {baseline.axes}); "
                "regenerate the baseline with the same --sweep spec"
            ],
            refused=True,
        )
    baseline_points = {point.key(): point for point in baseline.points}
    comparisons: List[PointComparison] = []
    missing: List[str] = []
    for point in current.points:
        twin = baseline_points.get(point.key())
        if twin is None:
            missing.append(point.label())
            continue
        for name in sorted(point.probes):
            probe = point.probes[name]
            base = twin.probes.get(name)
            if base is None:
                missing.append(f"[{point.label()}] {name}")
                continue
            base_median = base.median
            if base_median == 0:
                delta = 0.0 if probe.median == 0 else 1.0
            elif probe.higher_is_better:
                delta = (base_median - probe.median) / abs(base_median)
            else:
                delta = (probe.median - base_median) / abs(base_median)
            if probe.higher_is_better:
                outside = probe.median < base.q1
            else:
                outside = probe.median > base.q3
            comparisons.append(PointComparison(
                label=point.label(),
                probe=name,
                unit=probe.unit,
                higher_is_better=probe.higher_is_better,
                baseline_median=base_median,
                current_median=probe.median,
                delta=delta,
                outside_iqr=outside,
                regression=delta > threshold and outside,
            ))
    slopes: List[SlopeComparison] = []
    for name in current.probe_names:
        if name not in baseline.probe_names:
            continue
        for axis in current.axes:
            current_slope = current.efficiency_slope(name, axis)
            baseline_slope = baseline.efficiency_slope(name, axis)
            if current_slope is None or baseline_slope is None:
                continue
            slopes.append(SlopeComparison(
                probe=name,
                axis=axis,
                baseline_slope=baseline_slope,
                current_slope=current_slope,
                regression=current_slope < baseline_slope - threshold,
            ))
    return SweepComparison(
        threshold=threshold,
        points=comparisons,
        slopes=slopes,
        missing=missing,
    )
