"""Per-cycle activity timelines.

A :class:`TimelineRecorder` turns the modules' monotone busy/starve/stall
tallies into a per-cycle state timeline by *delta sampling*: at each
sampled cycle, whichever counter advanced since the previous sample names
the state of that cycle (busy wins over stalled wins over starved — the
same priority the text tracer always used).  Consecutive same-state
cycles coalesce into :class:`Span` runs, so a million-cycle run with a
handful of state changes costs a handful of spans.

The recorder is exact under both engine schedules because module counters
only ever change on *executed* ticks: any cycle the event engine skipped
(or fast-forwarded over) left every counter untouched and is recorded as
idle, which is precisely what the module did.

Sampling is keyed to explicit cycle stamps, not call counts: a sample for
a cycle already recorded is ignored (no double counting when a caller
samples twice without stepping), and samples at or before the attach
cycle are ignored (a recorder attached mid-run starts at the next cycle
boundary — the attach cycle's activity predates it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: Module activity states, in sampling priority order.
STATES = ("busy", "stalled", "starved", "idle")


@dataclass
class Span:
    """A run of consecutive cycles in one state: [start, end)."""

    start: int
    end: int
    state: str

    @property
    def cycles(self) -> int:
        """Cycles covered by the span."""
        return self.end - self.start


class ModuleTimeline:
    """One module's coalesced activity spans."""

    def __init__(self, name: str):
        self.name = name
        self.spans: List[Span] = []

    def extend(self, cycle: int, state: str) -> None:
        """Record ``state`` for ``cycle`` (cycles must arrive in order;
        gaps are not filled here — callers pad idle explicitly)."""
        spans = self.spans
        if spans and spans[-1].state == state and spans[-1].end == cycle:
            spans[-1].end = cycle + 1
        else:
            spans.append(Span(cycle, cycle + 1, state))

    def state_cycles(self) -> Dict[str, int]:
        """Total cycles per state across all spans."""
        totals = dict.fromkeys(STATES, 0)
        for span in self.spans:
            totals[span.state] += span.cycles
        return totals

    def cycles_recorded(self) -> int:
        """Total cycles covered by the timeline."""
        return sum(span.cycles for span in self.spans)


class TimelineRecorder:
    """Delta-samples an engine's modules into per-module timelines.

    ``sample(cycle)`` records the state of ``cycle`` for every module and
    pads any unsampled gap since the previous sample as idle (the event
    engine never skips a cycle in which any module's counters changed).
    """

    def __init__(self, engine, max_cycles: int = 1_000_000):
        self.engine = engine
        self.max_cycles = max_cycles
        #: Sampling starts strictly after this cycle (attach boundary).
        self.attach_cycle = engine.cycle
        self.timelines: Dict[str, ModuleTimeline] = {}
        self._previous: Dict[str, tuple] = {}
        self._last_sampled: Optional[int] = None
        self.cycles_recorded = 0
        for module in engine.modules:
            self._track(module)

    def _track(self, module) -> None:
        self.timelines[module.name] = ModuleTimeline(module.name)
        self._previous[module.name] = (
            module.busy_cycles, module.starve_cycles, module.stall_cycles
        )

    def sample(self, cycle: Optional[int] = None) -> bool:
        """Record the activity of ``cycle`` (default: the cycle the engine
        just finished, ``engine.cycle - 1`` — callers sample after
        ``step()`` committed and advanced the clock).  Returns False when
        the sample was ignored: before the first post-attach boundary, for
        an already-recorded cycle, or past ``max_cycles``."""
        if cycle is None:
            cycle = self.engine.cycle - 1
        if cycle < self.attach_cycle:
            return False  # pre-attach activity is not this recorder's
        if self._last_sampled is not None and cycle <= self._last_sampled:
            return False  # duplicate sample for a recorded cycle
        if self.cycles_recorded >= self.max_cycles:
            return False
        gap_start = (
            self.attach_cycle if self._last_sampled is None
            else self._last_sampled + 1
        )
        gap = cycle - gap_start
        for module in self.engine.modules:
            name = module.name
            if name not in self.timelines:
                self._track(module)  # module added after attach
            timeline = self.timelines[name]
            previous = self._previous[name]
            busy, starved, stalled = (
                module.busy_cycles, module.starve_cycles, module.stall_cycles
            )
            # Unsampled cycles between samples saw no executed ticks:
            # every counter is unchanged there, so they are idle.
            for skipped in range(gap_start, cycle):
                timeline.extend(skipped, "idle")
            if busy > previous[0]:
                state = "busy"
            elif stalled > previous[2]:
                state = "stalled"
            elif starved > previous[1]:
                state = "starved"
            else:
                state = "idle"
            timeline.extend(cycle, state)
            self._previous[name] = (busy, starved, stalled)
        self._last_sampled = cycle
        self.cycles_recorded += gap + 1
        return True

    # -- summaries -----------------------------------------------------------------

    def state_fractions(self) -> Dict[str, Dict[str, float]]:
        """Per-module state fractions over the recorded window."""
        out: Dict[str, Dict[str, float]] = {}
        for name, timeline in self.timelines.items():
            total = timeline.cycles_recorded()
            totals = timeline.state_cycles()
            out[name] = {
                state: (totals[state] / total if total else 0.0)
                for state in STATES
            }
        return out

    def busiest_module(self) -> Optional[str]:
        """The module with the highest busy fraction (None when empty)."""
        if not self.timelines:
            return None
        fractions = self.state_fractions()
        return max(self.timelines, key=lambda name: fractions[name]["busy"])
