"""Structured logging for the whole package.

Every component logs through stdlib :mod:`logging` under the ``repro``
hierarchy (``get_logger("scheduler")`` → ``repro.scheduler``), so library
consumers control output the usual way.  The CLI calls
:func:`configure_logging` once per invocation to install a handler in one
of two shapes:

* **human** (default) — ``HH:MM:SS level logger: message`` on stderr,
  ``INFO`` and up (``-v`` drops to ``DEBUG``, ``--quiet`` raises to
  ``WARNING``);
* **JSON lines** (``--log-json``) — one JSON object per record with
  ``ts``/``level``/``logger``/``msg`` plus whatever ``extra`` fields the
  call site attached, ready for ``jq`` or log shippers.

Each record is stamped with the ambient **run id** (the
:mod:`repro.obs.ledger` run context, when one is active) and a
**worker id** (``w<pid>`` in scheduler worker processes, settable via
:func:`set_worker_id`), so JSON logs from a multi-process run correlate
with the run ledger and with each other.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional

#: Record attributes that are logging internals, not call-site extras.
_RESERVED = frozenset(logging.LogRecord(
    "", 0, "", 0, "", (), None
).__dict__) | {"message", "asctime", "run_id", "worker_id"}

#: The ambient worker id (main process: None; workers set "w<pid>").
_worker_id: Optional[str] = None


def set_worker_id(worker_id: Optional[str]) -> None:
    """Stamp subsequent log records with ``worker_id`` (worker processes
    call this on entry; ``None`` clears the stamp)."""
    global _worker_id
    _worker_id = worker_id


def get_logger(name: str) -> logging.Logger:
    """The package logger for component ``name`` (``repro.<name>``)."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


class ContextFilter(logging.Filter):
    """Injects ``run_id`` and ``worker_id`` into every record."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "run_id"):
            from .ledger import active_run_id

            record.run_id = active_run_id()
        if not hasattr(record, "worker_id"):
            record.worker_id = _worker_id
        return True


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record, extras included as top-level keys."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if getattr(record, "run_id", None):
            payload["run_id"] = record.run_id
        if getattr(record, "worker_id", None):
            payload["worker_id"] = record.worker_id
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class HumanFormatter(logging.Formatter):
    """``HH:MM:SS level logger: message`` with a worker-id prefix when
    one is set (the run id is ledger territory, not terminal noise)."""

    def format(self, record: logging.LogRecord) -> str:
        clock = time.strftime("%H:%M:%S", time.localtime(record.created))
        worker = getattr(record, "worker_id", None)
        prefix = f"[{worker}] " if worker else ""
        name = record.name[len("repro."):] if record.name.startswith(
            "repro."
        ) else record.name
        text = (f"{clock} {record.levelname.lower():<7} {prefix}"
                f"{name}: {record.getMessage()}")
        if record.exc_info:
            text = f"{text}\n{self.formatException(record.exc_info)}"
        return text


def configure_logging(
    json_lines: bool = False,
    verbosity: int = 0,
    quiet: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Install the package log handler (idempotent; reconfigures).

    ``verbosity`` counts ``-v`` flags (≥1 → DEBUG), ``quiet`` wins and
    raises the floor to WARNING.  Returns the ``repro`` root logger.
    """
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLinesFormatter() if json_lines else HumanFormatter())
    handler.addFilter(ContextFilter())
    root.addHandler(handler)
    if quiet:
        root.setLevel(logging.WARNING)
    elif verbosity >= 1:
        root.setLevel(logging.DEBUG)
    else:
        root.setLevel(logging.INFO)
    root.propagate = False
    return root
