"""Exporters: Chrome-trace JSON, flat JSON, and CSV.

Two consumers, two shapes:

* :func:`chrome_trace` renders a :class:`~repro.obs.profile.ProfileReport`
  as a Chrome trace-event JSON object (the ``chrome://tracing`` /
  Perfetto format): one track per module carrying its busy/stalled/
  starved spans as complete (``ph:"X"``) events, plus counter
  (``ph:"C"``) tracks for queue occupancy.  Timestamps are simulated
  *cycles* reported as microseconds — the viewer's units, not wall time.
* :func:`report_to_dict` / :func:`report_to_csv_rows` flatten the same
  report for machine consumption (``eval/experiments.py``, spreadsheet
  imports).
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Tuple

from .profile import ProfileReport

#: Trace viewers color by event name; idle spans are omitted entirely so
#: gaps read as idle.
_TRACED_STATES = ("busy", "stalled", "starved")


def chrome_trace(report: ProfileReport) -> Dict[str, object]:
    """Render ``report`` as a ``chrome://tracing`` JSON object."""
    events: List[Dict[str, object]] = []
    pid = 0
    events.append({
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": f"repro sim: {report.name}"},
    })
    tid = 0
    for module_name in sorted(report.timelines):
        tid += 1
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": module_name},
        })
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": pid, "tid": tid,
            "args": {"sort_index": tid},
        })
        for span in report.timelines[module_name]:
            if span.state not in _TRACED_STATES:
                continue
            events.append({
                "ph": "X", "name": span.state, "cat": "module",
                "pid": pid, "tid": tid,
                "ts": span.start, "dur": span.cycles,
            })
    for queue_name in sorted(report.queue_points):
        points = report.queue_points[queue_name]
        track = f"queue {queue_name}"
        for cycle, occupancy in points:
            events.append({
                "ph": "C", "name": track, "pid": pid,
                "ts": cycle, "args": {"occupancy": occupancy},
            })
        if points:
            # Close the counter track at the end of the run.
            events.append({
                "ph": "C", "name": track, "pid": pid,
                "ts": report.cycles, "args": {"occupancy": 0},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "cycles": report.cycles,
            "mode": report.mode,
            "time_unit": "1 ts = 1 simulated cycle",
        },
    }


def write_chrome_trace(report: ProfileReport, path: str) -> None:
    """Save the Chrome trace for ``report`` to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(report), handle)


def report_to_dict(report: ProfileReport) -> Dict[str, object]:
    """Flatten ``report`` into a JSON-serializable dict."""
    return {
        "name": report.name,
        "cycles": report.cycles,
        "mode": report.mode,
        "wall_seconds": report.wall_seconds,
        "ticks_executed": report.ticks_executed,
        "ticks_possible": report.ticks_possible,
        "fast_forward_cycles": report.fast_forward_cycles,
        "skip_ratio": report.skip_ratio,
        "modules": {
            m.name: {
                "kind": m.kind,
                "busy": m.busy,
                "starved": m.starved,
                "stalled": m.stalled,
                "idle": m.idle,
                "flits_out": m.flits_out,
                "utilization": m.utilization(report.cycles),
            }
            for m in report.modules
        },
        "queues": {
            q.name: {
                "capacity": q.capacity,
                "total_pushed": q.total_pushed,
                "max_occupancy": q.max_occupancy,
                "full_stalls": q.full_stalls,
                "mean_occupancy": q.mean_occupancy(),
                "occupancy_counts": list(q.occupancy_counts),
            }
            for q in report.queues
        },
        "memory": {
            "requests": report.memory.requests,
            "bytes_transferred": report.memory.bytes_transferred,
            "responses": report.memory.responses,
            "channels": {
                str(c.channel): {
                    "grants": c.grants,
                    "utilization": c.utilization(report.cycles),
                }
                for c in report.memory.channels
            },
        },
        "spms": dict(report.spms),
        "extra": dict(report.extra),
        "edges": {
            queue: {
                "producers": list(edge.get("producers", [])),
                "consumers": list(edge.get("consumers", [])),
            }
            for queue, edge in report.edges.items()
        },
    }


def report_from_dict(data: Dict[str, object]) -> ProfileReport:
    """Rebuild a :class:`ProfileReport` from its :func:`report_to_dict`
    shape (timeline spans and queue points are not exported, so the
    round-tripped report carries none) — this is how ``repro analyze``
    consumes a saved ``--out`` JSON."""
    from .profile import (
        ChannelProfile,
        MemoryProfile,
        ModuleProfile,
        QueueProfile,
    )

    memory = data.get("memory", {})
    return ProfileReport(
        name=str(data.get("name", "run")),
        cycles=int(data.get("cycles", 0)),
        mode=str(data.get("mode", "event")),
        wall_seconds=float(data.get("wall_seconds", 0.0)),
        ticks_executed=int(data.get("ticks_executed", 0)),
        ticks_possible=int(data.get("ticks_possible", 0)),
        fast_forward_cycles=int(data.get("fast_forward_cycles", 0)),
        modules=[
            ModuleProfile(
                name=name,
                kind=str(entry.get("kind", "")),
                busy=int(entry.get("busy", 0)),
                starved=int(entry.get("starved", 0)),
                stalled=int(entry.get("stalled", 0)),
                idle=int(entry.get("idle", 0)),
                flits_out=int(entry.get("flits_out", 0)),
            )
            for name, entry in data.get("modules", {}).items()
        ],
        queues=[
            QueueProfile(
                name=name,
                capacity=int(entry.get("capacity", 0)),
                total_pushed=int(entry.get("total_pushed", 0)),
                max_occupancy=int(entry.get("max_occupancy", 0)),
                full_stalls=int(entry.get("full_stalls", 0)),
                occupancy_counts=[
                    int(count)
                    for count in entry.get("occupancy_counts", [])
                ],
            )
            for name, entry in data.get("queues", {}).items()
        ],
        memory=MemoryProfile(
            requests=int(memory.get("requests", 0)),
            bytes_transferred=int(memory.get("bytes_transferred", 0)),
            responses=int(memory.get("responses", 0)),
            channels=[
                ChannelProfile(channel=int(channel), grants=int(
                    entry.get("grants", 0)
                ))
                for channel, entry in memory.get("channels", {}).items()
            ],
        ),
        spms={
            name: dict(stats) for name, stats in data.get("spms", {}).items()
        },
        extra=dict(data.get("extra", {})),
        edges={
            queue: {
                "producers": list(edge.get("producers", [])),
                "consumers": list(edge.get("consumers", [])),
            }
            for queue, edge in data.get("edges", {}).items()
        },
    )


def write_report_json(report: ProfileReport, path: str) -> None:
    """Save the flat JSON form of ``report`` to ``path``."""
    with open(path, "w") as handle:
        json.dump(report_to_dict(report), handle, indent=2, default=str)


def report_to_csv_rows(report: ProfileReport) -> List[Tuple[str, str, str, object]]:
    """Flatten ``report`` into (section, name, metric, value) rows."""
    rows: List[Tuple[str, str, str, object]] = [
        ("run", report.name, "cycles", report.cycles),
        ("run", report.name, "mode", report.mode),
        ("run", report.name, "wall_seconds", report.wall_seconds),
        ("run", report.name, "skip_ratio", report.skip_ratio),
    ]
    for m in report.modules:
        for metric in ("busy", "starved", "stalled", "idle", "flits_out"):
            rows.append(("module", m.name, metric, getattr(m, metric)))
        rows.append(("module", m.name, "utilization",
                     m.utilization(report.cycles)))
    for q in report.queues:
        rows.append(("queue", q.name, "total_pushed", q.total_pushed))
        rows.append(("queue", q.name, "max_occupancy", q.max_occupancy))
        rows.append(("queue", q.name, "full_stalls", q.full_stalls))
        rows.append(("queue", q.name, "mean_occupancy", q.mean_occupancy()))
        # Histogram buckets round-trip through the CSV: one row per
        # occupancy value, ``occupancy[n]`` -> cycles observed at n.
        for occupancy, count in enumerate(q.occupancy_counts):
            rows.append(("queue", q.name, f"occupancy[{occupancy}]", count))
    rows.append(("memory", "total", "requests", report.memory.requests))
    rows.append(("memory", "total", "bytes", report.memory.bytes_transferred))
    for c in report.memory.channels:
        rows.append(("memory", f"channel{c.channel}", "grants", c.grants))
        rows.append(("memory", f"channel{c.channel}", "utilization",
                     c.utilization(report.cycles)))
    for name, stats in report.spms.items():
        rows.append(("spm", name, "reads", stats["reads"]))
        rows.append(("spm", name, "writes", stats["writes"]))
    for key, value in report.extra.items():
        rows.append(("extra", report.name, key, value))
    return rows


def write_report_csv(report: ProfileReport, path: str) -> None:
    """Save the CSV form of ``report`` to ``path``."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("section", "name", "metric", "value"))
        writer.writerows(report_to_csv_rows(report))
