"""Observability: metrics registry, run profiles, and exporters.

See DESIGN.md §3.3 for how the pieces fit together.
"""

from .analyze import (
    BottleneckReport,
    StallChain,
    WhatIf,
    analyze_report,
    render_sql_attribution,
    sql_operator_attribution,
)
from .bench import (
    BENCH_SCHEMA_VERSION,
    BenchContext,
    BenchResult,
    ComparisonResult,
    Probe,
    ProbeResult,
    compare_results,
    run_bench,
    write_bench_result,
)
from .export import (
    chrome_trace,
    report_from_dict,
    report_to_csv_rows,
    report_to_dict,
    write_chrome_trace,
    write_report_csv,
    write_report_json,
)
from .ledger import (
    RunLedger,
    RunManifest,
    active_run,
    active_run_id,
    config_digest,
    record_event,
    run_context,
)
from .log import configure_logging, get_logger, set_worker_id
from .profile import (
    ChannelProfile,
    MemoryProfile,
    ModuleProfile,
    ProfileReport,
    Profiler,
    QueueProfile,
    profile_engine_run,
)
from .registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_or_null,
)
from .timeline import STATES, ModuleTimeline, Span, TimelineRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "registry_or_null",
    "STATES",
    "Span",
    "ModuleTimeline",
    "TimelineRecorder",
    "Profiler",
    "ProfileReport",
    "ModuleProfile",
    "QueueProfile",
    "ChannelProfile",
    "MemoryProfile",
    "profile_engine_run",
    "chrome_trace",
    "write_chrome_trace",
    "report_to_dict",
    "report_from_dict",
    "write_report_json",
    "report_to_csv_rows",
    "write_report_csv",
    "analyze_report",
    "sql_operator_attribution",
    "render_sql_attribution",
    "BottleneckReport",
    "StallChain",
    "WhatIf",
    "RunManifest",
    "RunLedger",
    "run_context",
    "active_run",
    "active_run_id",
    "record_event",
    "config_digest",
    "configure_logging",
    "get_logger",
    "set_worker_id",
    "BENCH_SCHEMA_VERSION",
    "BenchContext",
    "BenchResult",
    "ComparisonResult",
    "Probe",
    "ProbeResult",
    "run_bench",
    "write_bench_result",
    "compare_results",
]
