"""Observability: metrics registry, run profiles, and exporters.

See DESIGN.md §3.3 for how the pieces fit together.
"""

from .export import (
    chrome_trace,
    report_to_csv_rows,
    report_to_dict,
    write_chrome_trace,
    write_report_csv,
    write_report_json,
)
from .profile import (
    ChannelProfile,
    MemoryProfile,
    ModuleProfile,
    ProfileReport,
    Profiler,
    QueueProfile,
    profile_engine_run,
)
from .registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_or_null,
)
from .timeline import STATES, ModuleTimeline, Span, TimelineRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "registry_or_null",
    "STATES",
    "Span",
    "ModuleTimeline",
    "TimelineRecorder",
    "Profiler",
    "ProfileReport",
    "ModuleProfile",
    "QueueProfile",
    "ChannelProfile",
    "MemoryProfile",
    "profile_engine_run",
    "chrome_trace",
    "write_chrome_trace",
    "report_to_dict",
    "write_report_json",
    "report_to_csv_rows",
    "write_report_csv",
]
