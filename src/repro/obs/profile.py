"""The engine probe and the per-run :class:`ProfileReport`.

A :class:`Profiler` attaches to one :class:`~repro.hw.engine.Engine` as
its *probe*: the engine calls :meth:`Profiler.on_cycle` once per executed
cycle (both schedules) and :meth:`Profiler.on_run_end` when ``run()``
finishes.  With no probe attached the engine pays a single ``is None``
check per simulated cycle — the metrics-disabled path adds nothing to
the per-module hot loop.

The profiler harvests three layers into one report:

* **module attribution** — busy / starved / stalled cycle tallies the
  modules already keep, with the remainder as idle, so every module's
  four states sum exactly to the run's cycles;
* **queues and memory** — per-queue occupancy histograms (sampled each
  executed cycle; fast-forwarded gaps are charged at the occupancy they
  froze at), push totals and back-pressure stalls, per-channel memory
  grant counts and utilization, and the reads/writes of every scratchpad
  reachable from the modules;
* **timeline** — coalesced per-module activity spans (via
  :class:`~repro.obs.timeline.TimelineRecorder`) that the Chrome-trace
  exporter renders as a visual waterfall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .registry import MetricsRegistry
from .timeline import Span, TimelineRecorder


@dataclass
class ModuleProfile:
    """One module's cycle attribution over a profiled run."""

    name: str
    kind: str
    busy: int
    starved: int
    stalled: int
    idle: int
    flits_out: int

    @property
    def total(self) -> int:
        """Sum of all four states (equals the run's cycles)."""
        return self.busy + self.starved + self.stalled + self.idle

    def utilization(self, cycles: int) -> float:
        """Busy fraction of the run."""
        return self.busy / cycles if cycles else 0.0


@dataclass
class QueueProfile:
    """One queue's occupancy and back-pressure profile."""

    name: str
    capacity: int
    total_pushed: int
    max_occupancy: int
    full_stalls: int
    #: occupancy_counts[n] = cycles the queue held n committed flits
    #: (empty when occupancy sampling was off).
    occupancy_counts: List[int] = field(default_factory=list)

    def mean_occupancy(self) -> float:
        """Mean sampled occupancy (0.0 without sampling)."""
        total = sum(self.occupancy_counts)
        if not total:
            return 0.0
        weighted = sum(n * c for n, c in enumerate(self.occupancy_counts))
        return weighted / total


@dataclass
class ChannelProfile:
    """One memory channel's share of the run."""

    channel: int
    grants: int

    def utilization(self, cycles: int) -> float:
        """Granted-request cycles over total cycles."""
        return self.grants / cycles if cycles else 0.0


@dataclass
class MemoryProfile:
    """Memory-system totals plus the per-channel breakdown."""

    requests: int
    bytes_transferred: int
    responses: int
    channels: List[ChannelProfile] = field(default_factory=list)


@dataclass
class ProfileReport:
    """Everything one simulated run revealed, in queryable form."""

    name: str
    cycles: int
    mode: str
    wall_seconds: float
    ticks_executed: int
    ticks_possible: int
    fast_forward_cycles: int
    modules: List[ModuleProfile]
    queues: List[QueueProfile]
    memory: MemoryProfile
    spms: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Per-module coalesced activity spans (timeline profiling only).
    timelines: Dict[str, List[Span]] = field(default_factory=dict)
    #: Queue occupancy change points (cycle, occupancy) for trace counters.
    queue_points: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)
    #: Free-form extras: SPM cache hit rates, per-wave scheduler timing...
    extra: Dict[str, object] = field(default_factory=dict)
    #: Queue topology: queue name -> {"producers": [...], "consumers":
    #: [...]} module names, captured at report time so bottleneck
    #: analysis (:mod:`repro.obs.analyze`) can walk back-pressure chains
    #: offline from the exported JSON.
    edges: Dict[str, Dict[str, List[str]]] = field(default_factory=dict)

    @property
    def skip_ratio(self) -> float:
        """Fraction of dense-equivalent ticks the scheduler skipped."""
        if not self.ticks_possible:
            return 0.0
        return 1.0 - self.ticks_executed / self.ticks_possible

    def module(self, name: str) -> ModuleProfile:
        """Look one module up by name (raises KeyError when absent)."""
        for profile in self.modules:
            if profile.name == name:
                return profile
        raise KeyError(name)

    def bottleneck(self) -> Optional[str]:
        """The busiest module — where the critical path sits."""
        if not self.modules:
            return None
        return max(self.modules, key=lambda m: m.busy).name

    def validate(self) -> None:
        """Check the core invariant: every module's busy + starved +
        stalled + idle cycles sum to the run's total cycles."""
        for profile in self.modules:
            if profile.total != self.cycles:
                raise ValueError(
                    f"{profile.name}: states sum to {profile.total}, "
                    f"run has {self.cycles} cycles"
                )
            if profile.idle < 0:
                raise ValueError(f"{profile.name}: negative idle cycles")

    def render(self) -> str:
        """A human-readable profile table."""
        lines = [
            f"profile {self.name}: {self.cycles} cycles, {self.mode} mode, "
            f"{self.wall_seconds:.4f}s host "
            f"(skip ratio {self.skip_ratio:.1%}, "
            f"{self.fast_forward_cycles} fast-forwarded)"
        ]
        width = max([len(m.name) for m in self.modules] or [6])
        lines.append(
            f"  {'module'.ljust(width)}  {'busy':>8} {'starve':>8} "
            f"{'stall':>8} {'idle':>8} {'util':>6}"
        )
        for m in sorted(self.modules, key=lambda m: -m.busy):
            lines.append(
                f"  {m.name.ljust(width)}  {m.busy:>8} {m.starved:>8} "
                f"{m.stalled:>8} {m.idle:>8} "
                f"{m.utilization(self.cycles):>6.1%}"
            )
        hot = [q for q in self.queues if q.full_stalls or q.max_occupancy]
        if hot:
            lines.append("  queues (backed up first):")
            for q in sorted(hot, key=lambda q: -q.full_stalls)[:12]:
                lines.append(
                    f"    {q.name}: mean {q.mean_occupancy():.2f} / "
                    f"max {q.max_occupancy} / cap {q.capacity}, "
                    f"{q.full_stalls} full-stalls"
                )
        mem = self.memory
        if mem.requests:
            util = ", ".join(
                f"ch{c.channel} {c.utilization(self.cycles):.1%}"
                for c in mem.channels
            )
            lines.append(
                f"  memory: {mem.requests} requests, "
                f"{mem.bytes_transferred} bytes ({util})"
            )
        for name, stats in self.spms.items():
            lines.append(
                f"  spm {name}: {stats['reads']} reads, "
                f"{stats['writes']} writes"
            )
        for key, value in self.extra.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


class Profiler:
    """Engine probe: collects per-cycle observations and builds reports.

    Usage::

        profiler = Profiler()
        profiler.attach(engine)
        stats = engine.run()
        report = profiler.report()

    ``timeline=False`` drops span recording (cheaper, no Chrome trace);
    ``queue_depths=False`` drops per-cycle occupancy sampling.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        timeline: bool = True,
        queue_depths: bool = True,
        max_timeline_cycles: int = 1_000_000,
        name: str = "run",
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.with_timeline = timeline
        self.with_queue_depths = queue_depths
        self.max_timeline_cycles = max_timeline_cycles
        self.name = name
        self.recorder: Optional[TimelineRecorder] = None
        self._engine = None
        self._last_stats = None
        self._start_cycle = 0
        self._last_cycle = 0
        self._module_base: Dict[str, Tuple[int, int, int, int]] = {}
        self._queue_base: Dict[str, Tuple[int, int]] = {}
        self._queue_last_occ: Dict[str, int] = {}
        self._queue_points: Dict[str, List[Tuple[int, int]]] = {}
        self._mem_base: Tuple[int, int, int] = (0, 0, 0)
        self._channel_base: List[int] = []

    # -- lifecycle -----------------------------------------------------------------

    def attach(self, engine) -> "Profiler":
        """Become ``engine``'s probe; profiling covers activity from the
        next cycle boundary on."""
        if self._engine is not None:
            raise RuntimeError("profiler is already attached")
        engine.probe = self
        self._engine = engine
        self._start_cycle = engine.cycle
        self._last_cycle = engine.cycle - 1
        for module in engine.modules:
            self._module_base[module.name] = (
                module.busy_cycles, module.starve_cycles,
                module.stall_cycles, module.flits_out,
            )
        for queue in engine.queues:
            self._queue_base[queue.name] = (queue.total_pushed, queue.full_stalls)
            self._queue_last_occ[queue.name] = len(queue)
            self._queue_points[queue.name] = []
        memory = engine.memory
        self._mem_base = (
            memory.requests_served, memory.bytes_transferred,
            memory.responses_completed,
        )
        self._channel_base = list(memory.channel_grants)
        if self.with_timeline:
            self.recorder = TimelineRecorder(
                engine, max_cycles=self.max_timeline_cycles
            )
        return self

    def detach(self) -> None:
        """Stop observing (the engine reverts to the zero-cost path)."""
        if self._engine is not None:
            self._engine.probe = None
            self._engine = None

    # -- engine hooks --------------------------------------------------------------

    def on_cycle(self, engine, cycle: int) -> None:
        """Called by the engine after ``cycle``'s ticks and queue commits.

        Cycles the event scheduler never executed (fast-forward gaps)
        are charged as idle time at the occupancy they froze at.
        """
        if self.recorder is not None:
            self.recorder.sample(cycle)
        if self.with_queue_depths:
            gap = cycle - self._last_cycle - 1
            registry = self.registry
            last_occ = self._queue_last_occ
            for queue in engine.queues:
                name = queue.name
                occ = len(queue._items)
                previous = last_occ.get(name, 0)
                histogram = registry.histogram("queue.occupancy", queue=name)
                if gap > 0:
                    histogram.record(previous, gap)
                histogram.record(occ)
                if occ != previous:
                    points = self._queue_points.setdefault(name, [])
                    if len(points) < 100_000:
                        points.append((cycle, occ))
                    last_occ[name] = occ
        self._last_cycle = cycle

    def on_run_end(self, engine, stats) -> None:
        """Called by ``Engine.run`` with the finished :class:`RunStats`;
        pads the timeline out to the run's final quiescent cycles."""
        self._last_stats = stats
        end = self._start_cycle + stats.cycles - 1
        if self.recorder is not None and end >= self._start_cycle:
            self.recorder.sample(end)
        if self.with_queue_depths and end > self._last_cycle:
            for queue in engine.queues:
                self.registry.histogram(
                    "queue.occupancy", queue=queue.name
                ).record(
                    self._queue_last_occ.get(queue.name, 0),
                    end - self._last_cycle,
                )
            self._last_cycle = end

    # -- report --------------------------------------------------------------------

    def report(self, extra: Optional[Dict[str, object]] = None) -> ProfileReport:
        """Build the :class:`ProfileReport` for the profiled window."""
        engine = self._engine
        if engine is None:
            raise RuntimeError("profiler is not attached to an engine")
        stats = self._last_stats
        cycles = (
            stats.cycles if stats is not None
            else engine.cycle - self._start_cycle
        )
        modules = []
        for module in engine.modules:
            base = self._module_base.get(module.name, (0, 0, 0, 0))
            busy = module.busy_cycles - base[0]
            starved = module.starve_cycles - base[1]
            stalled = module.stall_cycles - base[2]
            modules.append(ModuleProfile(
                name=module.name,
                kind=type(module).__name__,
                busy=busy,
                starved=starved,
                stalled=stalled,
                idle=cycles - busy - starved - stalled,
                flits_out=module.flits_out - base[3],
            ))
        queues = []
        for queue in engine.queues:
            base = self._queue_base.get(queue.name, (0, 0))
            histogram = self.registry.find(
                "queue.occupancy", queue=queue.name
            )
            queues.append(QueueProfile(
                name=queue.name,
                capacity=queue.capacity,
                total_pushed=queue.total_pushed - base[0],
                max_occupancy=queue.max_occupancy,
                full_stalls=queue.full_stalls - base[1],
                occupancy_counts=(
                    list(histogram.counts) if histogram is not None else []
                ),
            ))
        memory = engine.memory
        base_req, base_bytes, base_resp = self._mem_base
        channel_base = self._channel_base or [0] * len(memory.channel_grants)
        mem_profile = MemoryProfile(
            requests=memory.requests_served - base_req,
            bytes_transferred=memory.bytes_transferred - base_bytes,
            responses=memory.responses_completed - base_resp,
            channels=[
                ChannelProfile(channel=index, grants=grants - channel_base[index])
                for index, grants in enumerate(memory.channel_grants)
            ],
        )
        spms: Dict[str, Dict[str, int]] = {}
        for module in engine.modules:
            spm = getattr(module, "spm", None)
            if spm is not None and spm.name not in spms:
                spms[spm.name] = {"reads": spm.reads, "writes": spm.writes}
        report = ProfileReport(
            name=self.name,
            cycles=cycles,
            mode=stats.mode if stats is not None else "partial",
            wall_seconds=stats.wall_seconds if stats is not None else 0.0,
            ticks_executed=stats.ticks_executed if stats is not None else 0,
            ticks_possible=stats.ticks_possible if stats is not None else 0,
            fast_forward_cycles=(
                stats.fast_forward_cycles if stats is not None else 0
            ),
            modules=modules,
            queues=queues,
            memory=mem_profile,
            spms=spms,
            timelines=(
                {
                    name: list(timeline.spans)
                    for name, timeline in self.recorder.timelines.items()
                }
                if self.recorder is not None else {}
            ),
            queue_points={
                name: list(points)
                for name, points in self._queue_points.items()
                if points
            },
            extra=dict(extra or {}),
            edges={
                queue.name: {
                    "producers": [m.name for m in queue.producers],
                    "consumers": [m.name for m in queue.consumers],
                }
                for queue in engine.queues
            },
        )
        return report


def profile_engine_run(
    engine,
    max_cycles: int = 100_000_000,
    mode: Optional[str] = None,
    timeline: bool = True,
    name: str = "run",
    extra: Optional[Dict[str, object]] = None,
) -> Tuple[object, ProfileReport]:
    """Attach a fresh profiler, run the engine, return (stats, report)."""
    profiler = Profiler(timeline=timeline, name=name)
    profiler.attach(engine)
    try:
        stats = engine.run(max_cycles=max_cycles, mode=mode)
        report = profiler.report(extra=extra)
    finally:
        profiler.detach()
    return stats, report
