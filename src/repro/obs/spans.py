"""Fleet-wide distributed tracing: trace-context spans over the virtual
clock.

The profiler's :class:`~repro.obs.timeline.TimelineRecorder` answers
"what was module X doing at cycle C" *inside one engine run*; this
module answers the fleet question: where did one tenant's job spend its
cycles across dispatch, PCIe transfer, SPM load, kernel execution,
fault backoff, and drain — across N devices and through a drain/resume
restart.

The pieces:

* :class:`TraceSpan` — one interval on a *lane* (``service``,
  ``device:N``, ``pcie:N``, ``sql``) carrying the trace context
  (``trace_id``/``span_id``/``parent_id``), the owning tenant, and
  free-form attributes.  Starts and ends are **virtual cycles** for
  everything the deterministic clock covers (service, devices, PCIe)
  and host microseconds on the ``sql`` lane — each lane renders as its
  own process, so units never mix on one track.
* :class:`SpanRecorder` — the collector.  Recording is parent-side
  only (worker processes never see a recorder), span ids are
  sequential integers (no uuids — traces of identical runs are
  byte-identical), and a recorder created with ``enabled=False`` is a
  null object whose ``record`` is a constant-time no-op, mirroring
  :class:`~repro.obs.registry.MetricsRegistry`'s disabled path.
* the **ambient recorder** — :func:`tracing` installs a recorder the
  way :func:`~repro.obs.ledger.run_context` installs a ledger;
  instrumented code deep in the stack (``run_partitioned``,
  ``run_sharded``, the SQL executor) fetches it with
  :func:`active_spans` and pays one attribute check when tracing is
  off.  The :class:`~repro.serve.service.JobService` owns its recorder
  explicitly instead, so a served run always yields a fleet trace.
* :func:`fleet_chrome_trace` — the merged ``chrome://tracing`` export:
  one process lane per device (plus the service lane, PCIe lanes, and
  the SQL lane), one thread track per tenant within a lane, tenants
  colored consistently across the whole trace.
"""

from __future__ import annotations

import itertools
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Critical-path categories a span can carry in ``cat`` (the analyzer's
#: vocabulary; exports accept any category).
SPAN_CATEGORIES = (
    "job", "wave", "queue_wait", "fault_penalty", "transfer",
    "spm_load", "kernel", "drain", "fault", "run", "sql", "aborted",
)

#: chrome://tracing reserved color names, cycled per tenant so one
#: tenant's job tracks look alike on every lane.
_TENANT_COLORS = (
    "thread_state_running",
    "rail_response",
    "rail_animation",
    "rail_idle",
    "rail_load",
    "cq_build_running",
    "cq_build_passed",
    "cq_build_failed",
)


@dataclass
class TraceSpan:
    """One traced interval: ``[start, end]`` on ``lane``, linked into a
    trace by ``trace_id``/``parent_id``.  Zero-length spans (markers:
    retries, drain points) are legal and export with ``dur == 0``."""

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    cat: str
    start: float
    end: float
    lane: str = "service"
    tenant: Optional[str] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "end": self.end,
            "lane": self.lane,
            "tenant": self.tenant,
            "attrs": dict(self.attrs),
        }


class SpanRecorder:
    """Collects :class:`TraceSpan` instances with deterministic ids.

    Span ids are handed out by an :func:`itertools.count` (atomic under
    the GIL — concurrent device queues of one ``run_sharded`` append
    from threads), so two identical runs produce identical traces.
    A disabled recorder records nothing and hands out id ``0``.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: List[TraceSpan] = []
        self._ids = itertools.count(1)
        self._traces = itertools.count(1)

    def reserve(self) -> int:
        """Allocate a span id without recording yet — lets a parent span
        (a job) hand its id to children recorded before it completes.
        Returns 0 when disabled."""
        if not self.enabled:
            return 0
        return next(self._ids)

    def new_trace(self, prefix: str) -> str:
        """A fresh deterministic trace id (``prefix-N``)."""
        return f"{prefix}-{next(self._traces)}"

    def record(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        trace_id: str,
        parent_id: Optional[int] = None,
        lane: str = "service",
        tenant: Optional[str] = None,
        span_id: Optional[int] = None,
        **attrs: object,
    ) -> int:
        """Record one span; returns its id (0 when disabled).

        Pass ``span_id`` to materialize a previously :meth:`reserve`-d
        id; otherwise the next sequential id is used.
        """
        if not self.enabled:
            return 0
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        sid = span_id if span_id is not None else next(self._ids)
        self.spans.append(TraceSpan(
            trace_id=trace_id, span_id=sid, parent_id=parent_id,
            name=name, cat=cat, start=start, end=end,
            lane=lane, tenant=tenant, attrs=attrs,
        ))
        return sid

    def merge(self, other: "SpanRecorder") -> None:
        """Adopt another recorder's spans (trace ids keep the records
        apart; span ids are only unique within one recorder)."""
        self.spans.extend(other.spans)

    def by_lane(self) -> Dict[str, List[TraceSpan]]:
        lanes: Dict[str, List[TraceSpan]] = {}
        for span in self.spans:
            lanes.setdefault(span.lane, []).append(span)
        return lanes

    def __len__(self) -> int:
        return len(self.spans)


#: The shared disabled recorder instrumented code falls back to.
NULL_SPANS = SpanRecorder(enabled=False)


def recorder_or_null(recorder: Optional[SpanRecorder]) -> SpanRecorder:
    """Normalize an optional recorder argument."""
    return recorder if recorder is not None else NULL_SPANS


# -- the ambient recorder ------------------------------------------------------------

_active_recorder: Optional[SpanRecorder] = None


def active_spans() -> SpanRecorder:
    """The ambient recorder, or the shared null one outside any
    :func:`tracing` context.  Deliberately a plain module global (not a
    contextvar): ``run_sharded`` device threads must all see the
    recorder their parent installed."""
    recorder = _active_recorder
    return recorder if recorder is not None else NULL_SPANS


@contextmanager
def tracing(recorder: SpanRecorder) -> Iterator[SpanRecorder]:
    """Install ``recorder`` as the ambient span target, restoring the
    previous one on exit."""
    global _active_recorder
    previous = _active_recorder
    _active_recorder = recorder
    try:
        yield recorder
    finally:
        _active_recorder = previous


# -- the merged chrome://tracing export ----------------------------------------------


def _lane_sort_key(lane: str) -> Tuple[int, int, str]:
    """Service lane first, then devices by index, PCIe lanes, SQL."""
    if lane == "service":
        return (0, 0, lane)
    for rank, prefix in ((1, "device:"), (2, "pcie:")):
        if lane.startswith(prefix):
            suffix = lane[len(prefix):]
            index = int(suffix) if suffix.isdigit() else 0
            return (rank, index, lane)
    if lane == "sql":
        return (3, 0, lane)
    return (4, 0, lane)


def tenant_colors(spans: Iterable[TraceSpan]) -> Dict[str, str]:
    """A stable tenant -> chrome color-name assignment (sorted tenants
    cycle the palette), shared by every lane of one export."""
    tenants = sorted({
        span.tenant for span in spans if span.tenant is not None
    })
    return {
        tenant: _TENANT_COLORS[index % len(_TENANT_COLORS)]
        for index, tenant in enumerate(tenants)
    }


def fleet_chrome_trace(
    spans: Iterable[TraceSpan], name: str = "fleet"
) -> Dict[str, object]:
    """Render spans as one merged ``chrome://tracing`` JSON object.

    One *process* per lane (``pid``), one *thread* per tenant within a
    lane (``tid``), tenant-colored ``X`` events.  Timestamps are the
    spans' virtual cycles reported as microseconds — the viewer's unit,
    not wall time (the ``sql`` lane alone is real host microseconds).
    """
    spans = list(spans)
    colors = tenant_colors(spans)
    lanes = sorted({span.lane for span in spans}, key=_lane_sort_key)
    events: List[Dict[str, object]] = []
    for pid, lane in enumerate(lanes):
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": lane},
        })
        events.append({
            "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
            "args": {"sort_index": pid},
        })
        lane_spans = [span for span in spans if span.lane == lane]
        tracks = sorted(
            {span.tenant for span in lane_spans},
            key=lambda tenant: (tenant is not None, tenant),
        )
        tids = {tenant: tid for tid, tenant in enumerate(tracks)}
        for tenant, tid in tids.items():
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {
                    "name": (
                        f"tenant {tenant}" if tenant is not None else "events"
                    )
                },
            })
        for span in lane_spans:
            event: Dict[str, object] = {
                "ph": "X", "name": span.name, "cat": span.cat,
                "pid": pid, "tid": tids[span.tenant],
                "ts": span.start, "dur": span.duration,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attrs,
                },
            }
            if span.tenant is not None:
                event["cname"] = colors[span.tenant]
                event["args"]["tenant"] = span.tenant
            events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "name": name,
            "lanes": lanes,
            "spans": len(spans),
            "tenants": sorted(colors),
            "time_unit": "simulated cycles as microseconds "
                         "(sql lane: host microseconds)",
        },
    }


def write_fleet_trace(
    spans: Iterable[TraceSpan], path: str, name: str = "fleet"
) -> None:
    """Write :func:`fleet_chrome_trace` to ``path``."""
    with open(path, "w") as handle:
        json.dump(fleet_chrome_trace(spans, name=name), handle, indent=1)
        handle.write("\n")
