"""The run ledger: persisted evidence of every run, across processes
and across PRs.

In-run observability (:mod:`repro.obs.profile`) evaporates when the
process exits; the ledger is the part that survives.  Two pieces:

* :class:`RunManifest` — the identity of one run: what was executed
  (workload id, config digest, seed, pipelines/workers, engine mode),
  on what (package version, host fingerprint), under which ``run_id``.
  The config digest is a SHA-256 over the sorted config items, so two
  runs are comparable exactly when their digests match.
* :class:`RunLedger` — an append-only JSON-lines file (default
  ``.repro/ledger.jsonl``).  Every record carries the manifest's
  ``run_id``, an ``event`` name, and the event's payload; appends are
  single ``write()`` calls of one line, so concurrent workers interleave
  records without corrupting them.

The pieces meet in the **run context**: the CLI opens one around each
command (:func:`run_context`), and instrumented code deep in the stack —
``run_partitioned`` waves, the runtime API — records events against the
ambient run via :func:`record_event` without threading a ledger handle
through every signature.  With no context active, :func:`record_event`
is a no-op, so library and test callers never touch the filesystem.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

DEFAULT_LEDGER_DIR = ".repro"
DEFAULT_LEDGER_NAME = "ledger.jsonl"

#: Bumped when the record shape changes.  v2 added the explicit
#: ``schema_version`` field (v1 records carried only ``schema``);
#: readers tolerate records from either version and ignore unknown
#: keys, so an old ``.repro/ledger.jsonl`` still analyzes cleanly.
LEDGER_SCHEMA_VERSION = 2


def record_schema_version(record: Dict[str, object]) -> int:
    """The schema version a ledger record was written under.

    v1 records stamped ``schema``; v2 stamps both ``schema`` and
    ``schema_version``.  Records predating the stamp read as v1."""
    version = record.get("schema_version", record.get("schema", 1))
    try:
        return int(version)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return 1


def config_digest(config: Dict[str, object]) -> str:
    """A short stable digest of one run configuration (sorted-key JSON,
    SHA-256, first 12 hex chars — enough to compare, short enough to
    read)."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def host_info() -> Dict[str, object]:
    """The host fingerprint embedded in every manifest."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


@dataclass
class RunManifest:
    """The identity of one run, embedded in ledger records and bench
    result files."""

    workload: str
    config: Dict[str, object] = field(default_factory=dict)
    seed: Optional[int] = None
    pipelines: Optional[int] = None
    workers: Optional[int] = None
    mode: Optional[str] = None
    run_id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    package_version: str = ""
    host: Dict[str, object] = field(default_factory=host_info)
    created_at: float = field(default_factory=time.time)

    def __post_init__(self) -> None:
        if not self.package_version:
            from .. import __version__

            self.package_version = __version__

    @property
    def digest(self) -> str:
        """The config digest identifying comparable runs."""
        return config_digest(self.config)

    def to_dict(self) -> Dict[str, object]:
        """The JSON shape written into ledger records and bench files."""
        return {
            "run_id": self.run_id,
            "workload": self.workload,
            "config": dict(self.config),
            "config_digest": self.digest,
            "seed": self.seed,
            "pipelines": self.pipelines,
            "workers": self.workers,
            "mode": self.mode,
            "package_version": self.package_version,
            "host": dict(self.host),
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunManifest":
        """Rebuild a manifest from its :meth:`to_dict` shape."""
        return cls(
            workload=str(data.get("workload", "")),
            config=dict(data.get("config", {})),
            seed=data.get("seed"),
            pipelines=data.get("pipelines"),
            workers=data.get("workers"),
            mode=data.get("mode"),
            run_id=str(data.get("run_id", "")) or uuid.uuid4().hex[:12],
            package_version=str(data.get("package_version", "")),
            host=dict(data.get("host", {})),
            created_at=float(data.get("created_at", 0.0)),
        )


class RunLedger:
    """Append-only JSON-lines record of runs under one directory."""

    def __init__(self, path: Optional[str] = None):
        self.path = path or os.path.join(DEFAULT_LEDGER_DIR, DEFAULT_LEDGER_NAME)

    def append(self, record: Dict[str, object]) -> None:
        """Append one record (``schema``/``schema_version`` stamped on;
        ``schema`` is kept alongside the explicit name so v1 readers of
        this file keep working too)."""
        record = {
            "schema": LEDGER_SCHEMA_VERSION,
            "schema_version": LEDGER_SCHEMA_VERSION,
            **record,
        }
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, default=str) + "\n")

    def record(
        self,
        manifest: RunManifest,
        event: str,
        **fields: object,
    ) -> None:
        """Append one event of ``manifest``'s run.

        ``run.start`` embeds the full manifest; every other event carries
        just the correlating ``run_id``.
        """
        record: Dict[str, object] = {
            "ts": time.time(),
            "run_id": manifest.run_id,
            "event": event,
        }
        if event == "run.start":
            record["manifest"] = manifest.to_dict()
        record.update(fields)
        self.append(record)

    def read(self) -> List[Dict[str, object]]:
        """Every record in the ledger, oldest first (empty when the file
        does not exist; malformed or non-object lines are skipped, not
        fatal).  Unknown keys — fields stamped by newer writers — pass
        through untouched: every reader queries by ``.get``, so ledgers
        written before or after a schema bump both analyze cleanly."""
        if not os.path.exists(self.path):
            return []
        records: List[Dict[str, object]] = []
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
        return records

    def runs(self) -> Dict[str, List[Dict[str, object]]]:
        """Records grouped by ``run_id``, preserving order within each."""
        grouped: Dict[str, List[Dict[str, object]]] = {}
        for record in self.read():
            grouped.setdefault(str(record.get("run_id")), []).append(record)
        return grouped

    def events(
        self,
        event: Optional[str] = None,
        run_id: Optional[str] = None,
        **fields: object,
    ) -> List[Dict[str, object]]:
        """Records filtered by event name (exact, or a ``"fault."``-style
        prefix when it ends with a dot), ``run_id``, and any extra
        payload field equalities — the query the resilience tests and
        doctors run against fault/retry events."""
        out: List[Dict[str, object]] = []
        for record in self.read():
            name = str(record.get("event", ""))
            if event is not None:
                if event.endswith("."):
                    if not name.startswith(event):
                        continue
                elif name != event:
                    continue
            if run_id is not None and record.get("run_id") != run_id:
                continue
            if any(record.get(key) != value for key, value in fields.items()):
                continue
            out.append(record)
        return out


# -- the ambient run context ---------------------------------------------------------

@dataclass
class ActiveRun:
    """One (manifest, ledger) pair currently collecting events."""

    manifest: RunManifest
    ledger: RunLedger


_active: Optional[ActiveRun] = None


def active_run() -> Optional[ActiveRun]:
    """The ambient run, or ``None`` outside any :func:`run_context`."""
    return _active


def active_run_id() -> Optional[str]:
    """The ambient run's id (log records stamp this)."""
    return _active.manifest.run_id if _active is not None else None


@contextmanager
def run_context(
    manifest: RunManifest, ledger: Optional[RunLedger] = None
) -> Iterator[ActiveRun]:
    """Open a run: records ``run.start`` (with the embedded manifest) on
    entry and ``run.end``/``run.error`` on exit, and makes the run the
    ambient target of :func:`record_event` in between."""
    global _active
    run = ActiveRun(manifest, ledger if ledger is not None else RunLedger())
    previous = _active
    _active = run
    run.ledger.record(manifest, "run.start")
    started = time.perf_counter()
    try:
        yield run
    except BaseException as error:
        run.ledger.record(
            manifest, "run.error",
            elapsed_seconds=time.perf_counter() - started,
            error=f"{type(error).__name__}: {error}",
        )
        raise
    else:
        run.ledger.record(
            manifest, "run.end",
            elapsed_seconds=time.perf_counter() - started,
        )
    finally:
        _active = previous


def record_event(event: str, **fields: object) -> None:
    """Record one event against the ambient run (no-op without one).

    This is the hook instrumented code calls from deep in the stack:
    ``run_partitioned`` records its waves and totals here without knowing
    whether a ledger exists.
    """
    if _active is not None:
        _active.ledger.record(_active.manifest, event, **fields)
