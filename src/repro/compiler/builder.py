"""Blueprint verification against the hand-built accelerators.

The paper translates queries to hardware manually (Section III-D) but
argues the mapping is mechanical because each plan node has a module
counterpart.  This module closes that loop in the reproduction: it derives
the blueprint for the Figure 4 query plan and checks it is structurally
consistent with the hand-built Figure 7 pipeline — same module types, a
compatible instance census — and offers the same check for user queries
against user pipelines.
"""

from __future__ import annotations

from typing import Dict, List

from ..hw.pipeline import Pipeline
from ..sql.parser import parse_query
from ..sql.plan import build_plan
from .mapping import Blueprint, plan_to_blueprint

#: The Figure 4 inner-loop query (Q1+Q2+Q3 fused), used to derive the
#: Figure 7 blueprint.  ``RelevantReference`` carries the SPM hint.
FIGURE7_QUERY = """
SELECT SUM(AlignedRead.SEQ == RelevantReference.SEQ)
FROM (
    ReadExplode (SingleRead.POS, SingleRead.CIGAR, SingleRead.SEQ)
    FROM SingleRead
)
INNER JOIN (SELECT * FROM RelevantReference LIMIT @roff, @rlen)
ON AlignedRead.POS = RelevantReference.POS
"""


def figure7_blueprint() -> Blueprint:
    """The blueprint the mapping rules derive for the example query."""
    plan = build_plan(parse_query(FIGURE7_QUERY))
    return plan_to_blueprint(plan, spm_tables=frozenset({"RelevantReference"}))


def census_mismatches(blueprint: Blueprint, pipeline: Pipeline) -> List[str]:
    """Compare a blueprint's module census against a built pipeline's.

    Returns human-readable discrepancies; an empty list means every module
    type the blueprint calls for is present in the pipeline in at least
    the required count (the pipeline may add glue such as Fork modules,
    which blueprints do not model — fan-out is an artifact of physical
    wiring, not of the logical plan).
    """
    wanted = blueprint.census()
    have = pipeline.module_census()
    problems = []
    for module_type, count in wanted.items():
        actual = have.get(module_type, 0)
        if actual < count:
            problems.append(
                f"blueprint needs {count}x {module_type}, pipeline has {actual}"
            )
    return problems


def blueprint_summary(blueprint: Blueprint) -> Dict[str, object]:
    """A compact description for documentation/debugging."""
    return {
        "modules": blueprint.census(),
        "queues": len(blueprint.edges),
        "spm_tables": blueprint.spm_tables,
    }
