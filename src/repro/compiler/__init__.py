"""Query-plan-to-hardware mapping (Section III-D).

Captures the paper's node-to-module translation rules as data, lowers
logical plans to hardware blueprints (module multiset + queue edges, with
SPM hints), and verifies the blueprints against the hand-built pipelines.
"""

from .builder import (
    FIGURE7_QUERY,
    blueprint_summary,
    census_mismatches,
    figure7_blueprint,
)
from .mapping import NODE_TO_MODULES, Blueprint, ModuleSpec, plan_to_blueprint

__all__ = [
    "Blueprint",
    "FIGURE7_QUERY",
    "ModuleSpec",
    "NODE_TO_MODULES",
    "blueprint_summary",
    "census_mismatches",
    "figure7_blueprint",
    "plan_to_blueprint",
]
