"""Logical-plan-to-hardware-module mapping (Section III-D).

"Each node in the graph can be mapped to a Genesis hardware module, and
each edge in the graph is mapped to a hardware queue connecting these
modules."  The paper's translation is manual; this module captures the
mapping rules as data and produces a *blueprint* — the module multiset and
queue edges a hardware engineer (or the envisioned automatic translator)
would instantiate — from any logical plan, honoring SPM hints for
frequently reused tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from ..sql.plan import (
    AggregateNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    PosExplodeNode,
    ProjectNode,
    ReadExplodeNode,
    ScanNode,
    walk,
)

#: Plan-node type -> hardware module type(s) it lowers to.
NODE_TO_MODULES: Dict[type, Tuple[str, ...]] = {
    ScanNode: ("MemoryReader",),
    FilterNode: ("Filter",),
    JoinNode: ("Joiner",),
    AggregateNode: ("Reducer",),
    GroupByNode: ("SpmUpdater", "SpmReader"),
    ReadExplodeNode: ("ReadToBases",),
    PosExplodeNode: (),  # absorbed into the SPM layout of its producer
    ProjectNode: (),  # pure wiring: field selection on the queue
    LimitNode: (),  # folded into the SPM reader's interval bounds
}


@dataclass(frozen=True)
class ModuleSpec:
    """One module instance in a blueprint."""

    node_id: int
    module_type: str
    detail: str = ""


@dataclass
class Blueprint:
    """The hardware skeleton derived from a logical plan: module instances
    plus queue edges between producing and consuming plan nodes."""

    modules: List[ModuleSpec] = field(default_factory=list)
    edges: List[Tuple[int, int]] = field(default_factory=list)
    spm_tables: List[str] = field(default_factory=list)

    def census(self) -> Dict[str, int]:
        """Module-type instance counts (comparable against a built
        Pipeline's :meth:`module_census`)."""
        counts: Dict[str, int] = {}
        for spec in self.modules:
            counts[spec.module_type] = counts.get(spec.module_type, 0) + 1
        return counts


def plan_to_blueprint(
    plan: PlanNode,
    spm_tables: FrozenSet[str] = frozenset(),
) -> Blueprint:
    """Lower a logical plan to a hardware blueprint.

    ``spm_tables`` is the user hint from Section III-D: tables named here
    are allocated to on-chip SPMs — their scans become an SPM Updater (to
    load) plus an SPM Reader (to stream intervals) instead of a plain
    memory reader path, exactly the Figure 7 structure.
    """
    blueprint = Blueprint(spm_tables=sorted(spm_tables))
    node_ids: Dict[int, int] = {}
    for node_id, node in enumerate(walk(plan)):
        node_ids[id(node)] = node_id
        node_type = type(node)
        if isinstance(node, ScanNode) and node.table in spm_tables:
            blueprint.modules.append(
                ModuleSpec(node_id, "MemoryReader", f"load {node.table}")
            )
            blueprint.modules.append(
                ModuleSpec(node_id, "SpmUpdater", f"init SPM[{node.table}]")
            )
            blueprint.modules.append(
                ModuleSpec(node_id, "SpmReader", f"stream SPM[{node.table}]")
            )
            continue
        if isinstance(node, ScanNode):
            blueprint.modules.append(
                ModuleSpec(node_id, "MemoryReader", f"read {node.table}")
            )
            continue
        if isinstance(node, ReadExplodeNode):
            # ReadToBases consumes POS/CIGAR/SEQ(/QUAL) column streams, so
            # the single logical scan beneath it fans out into one memory
            # reader per argument column.
            for arg in node.args[1:]:
                blueprint.modules.append(
                    ModuleSpec(node_id, "MemoryReader", f"column {arg!r}")
                )
            blueprint.modules.append(ModuleSpec(node_id, "ReadToBases"))
            continue
        for module_type in NODE_TO_MODULES.get(node_type, ()):
            blueprint.modules.append(ModuleSpec(node_id, module_type))
    # Edges: every parent-child relationship becomes a queue.
    for node in walk(plan):
        for child in node.children():
            blueprint.edges.append((node_ids[id(child)], node_ids[id(node)]))
    # Every plan's sink streams its result back to memory.
    blueprint.modules.append(
        ModuleSpec(node_ids[id(plan)], "MemoryWriter", "store result")
    )
    return blueprint
