"""Admission control and weighted-fair queueing for the job service.

The queue answers two questions deterministically:

* **admission** — may this job enter?  Rejected when the service-wide
  backlog of open jobs is full (``max_backlog``) or the tenant already
  holds ``quota`` open jobs.  Admission never blocks: the service is a
  simulation, so the honest model of an overloaded queue is an explicit
  reject the client can see and retry, not hidden backpressure.

* **dispatch** — whose wave runs next?  Weighted fair queueing over
  tenants: each tenant accrues *charged rows* (the deterministic size
  of every wave dispatched on its behalf), and the next wave comes from
  the backlogged tenant with the smallest ``charged_rows / weight``,
  ties broken by tenant name.  Within a tenant, jobs are FIFO by
  ``(arrival, job_id)`` and waves run in packing order.  Charging the
  *a-priori* row cost — not the simulated cycles, which are only known
  after execution — keeps every scheduling decision a pure function of
  the submission trace.

Starvation-freedom follows from the charging rule: a backlogged
tenant's normalized service is frozen while it waits, every dispatch
elsewhere strictly increases some other tenant's, so after a bounded
number of foreign dispatches the waiting tenant holds the minimum and
must be picked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .job import Job

#: Admission-rejection reasons (ledger + metrics labels).
REJECT_BACKLOG = "backlog_full"
REJECT_QUOTA = "tenant_quota"


@dataclass
class TenantAccount:
    """Per-tenant fairness and accounting state."""

    tenant: str
    weight: float = 1.0
    #: Deterministic row-cost charged at dispatch (fairness currency).
    charged_rows: int = 0
    #: Simulated cycles charged at completion (accounting only — never
    #: consulted by the dispatcher, so fairness stays replayable).
    cycles: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    latencies: List[int] = field(default_factory=list)

    @property
    def normalized_service(self) -> float:
        return self.charged_rows / self.weight


class JobQueue:
    """Bounded multi-tenant job queue with WFQ dispatch order."""

    def __init__(
        self,
        max_backlog: int = 64,
        quota: int = 8,
        weights: Optional[Dict[str, float]] = None,
    ) -> None:
        if max_backlog < 1:
            raise ValueError("max_backlog must be >= 1")
        if quota < 1:
            raise ValueError("quota must be >= 1")
        self.max_backlog = max_backlog
        self.quota = quota
        self._weights = dict(weights or {})
        self.accounts: Dict[str, TenantAccount] = {}
        #: tenant -> open jobs in FIFO (arrival, job_id) order.
        self._jobs: Dict[str, List[Job]] = {}

    # -- admission -----------------------------------------------------------

    def account(self, tenant: str) -> TenantAccount:
        if tenant not in self.accounts:
            self.accounts[tenant] = TenantAccount(
                tenant, weight=self._weights.get(tenant, 1.0)
            )
            self._jobs[tenant] = []
        return self.accounts[tenant]

    def open_jobs(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            return len(self._jobs.get(tenant, ()))
        return sum(len(jobs) for jobs in self._jobs.values())

    def try_admit(self, job: Job) -> Optional[str]:
        """Admit ``job`` or return a rejection reason."""
        account = self.account(job.tenant)
        if self.open_jobs() >= self.max_backlog:
            account.rejected += 1
            return REJECT_BACKLOG
        if self.open_jobs(job.tenant) >= self.quota:
            account.rejected += 1
            return REJECT_QUOTA
        account.admitted += 1
        self._jobs[job.tenant].append(job)
        return None

    # -- dispatch ------------------------------------------------------------

    def next_wave(self) -> Optional[Tuple[Job, int]]:
        """Pop the next (job, wave_index) under the WFQ policy, or
        ``None`` when no tenant has a pending wave."""
        backlogged = [
            tenant
            for tenant, jobs in self._jobs.items()
            if any(job.pending for job in jobs)
        ]
        if not backlogged:
            return None
        tenant = min(
            backlogged,
            key=lambda t: (self.accounts[t].normalized_service, t),
        )
        for job in self._jobs[tenant]:
            if job.pending:
                return job, job.pending.pop(0)
        raise AssertionError("backlogged tenant without pending waves")

    def charge_rows(self, tenant: str, rows: int) -> None:
        self.account(tenant).charged_rows += rows

    def charge_cycles(self, tenant: str, cycles: int) -> None:
        self.account(tenant).cycles += cycles

    def close(self, job: Job) -> None:
        """Remove a completed/failed job from the open set."""
        jobs = self._jobs.get(job.tenant, [])
        if job in jobs:
            jobs.remove(job)

    def pending_waves(self, tenant: Optional[str] = None) -> int:
        jobs = (
            self._jobs.get(tenant, ())
            if tenant is not None
            else [job for jobs in self._jobs.values() for job in jobs]
        )
        return sum(len(job.pending) for job in jobs)
