"""The multi-tenant job service: a deterministic event loop over a
virtual clock that time-multiplexes a :class:`~repro.runtime.device.
DevicePool` across tenants.

Determinism model
-----------------

The service clock counts *accelerator cycles*, never wall time.  Every
scheduling decision — admission, WFQ tenant pick, device assignment,
fault injection, retry backoff, completion order — is a pure function
of the submission trace, the topology, and the fault seed:

* arrivals are admitted in ``(at_cycles, submission order)`` order;
* a dispatch round fills free devices in index order from
  :meth:`JobQueue.next_wave` (deterministic WFQ with name tie-breaks);
* a wave's virtual duration is ``transfer + spm_load + simulated
  cycles + fault backoff``, all deterministic quantities;
* completions are processed in ``(end_cycles, device)`` order.

Host-side execution is *eager*: a dispatched wave is simulated
immediately (inline, or fanned out over a process pool), and only its
virtual completion is deferred to ``clock + duration``.  Every wave in
a round is seeded from the SPM-cache state at the start of the round
and the results are merged back in dispatch order (first-writer-wins),
exactly the :func:`~repro.accel.scheduler.run_partitioned` pool
protocol — so results, cycles, and the entire virtual timeline are
bit-identical for every ``workers`` value.

Faults are enacted at the dispatch boundary (site ``serve.wave``),
parent-side: an injected fault consumes a retry and charges the
deterministic backoff to the virtual clock, mirroring how
:class:`~repro.runtime.device.GenesisDevice` charges its retry ladder
to the device timeline.  The wave's simulation itself is never
perturbed, so bit-identity of results survives any fault plan; a wave
that faults past its budget fails the whole job (an explicit
``serve.job.failed`` the client can see).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..accel.scheduler import SpmImageCache, _run_wave_task
from ..accel.sharding import MODEL_ROW_BYTES
from ..faults.injector import FaultInjector, RetryBudgetExceeded
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..tables.partition import PartitionId
from ..obs.ledger import record_event
from ..obs.registry import MetricsRegistry
from ..obs.spans import SpanRecorder, fleet_chrome_trace
from ..runtime.device import DeviceConfig, DevicePool
from .job import (
    COMPLETED,
    FAILED,
    QUEUED,
    REJECTED,
    RUNNING,
    Job,
    JobSpec,
    JobStatus,
)
from .queue import JobQueue

#: Injection site for the service's dispatch-boundary fault ladder.
SERVE_FAULT_SITE = "serve.wave"


@dataclass
class _Dispatch:
    """One wave picked in a dispatch round."""

    job: Job
    wave_index: int
    device: int
    seq: int
    attempt: int
    penalty_cycles: int
    cost_rows: int


@dataclass
class _Inflight:
    """A dispatched wave awaiting its virtual completion."""

    dispatch: _Dispatch
    results: Dict[PartitionId, object]
    cycles: int
    load_cycles: int
    end_cycles: int
    start_cycles: int = 0
    transfer_cycles: int = 0


@dataclass
class TenantSummary:
    tenant: str
    admitted: int
    rejected: int
    completed: int
    failed: int
    cycles: int
    p50_latency_cycles: Optional[int]
    p99_latency_cycles: Optional[int]


@dataclass
class ServeSummary:
    """Deterministic end-of-run accounting (virtual time throughout)."""

    clock_cycles: int
    jobs_admitted: int
    jobs_rejected: int
    jobs_completed: int
    jobs_failed: int
    waves_dispatched: int
    retries: int
    faults: Dict[str, int]
    tenants: Dict[str, TenantSummary]
    device_busy_seconds: List[float]
    device_transfer_seconds: List[float]
    spm_hits: int
    spm_misses: int
    spm_cycles_saved: int
    host_elapsed_seconds: float

    def render(self) -> str:
        lines = [
            f"serve: clock {self.clock_cycles} cycles, "
            f"{self.jobs_admitted} admitted / {self.jobs_rejected} rejected, "
            f"{self.jobs_completed} completed / {self.jobs_failed} failed, "
            f"{self.waves_dispatched} waves, {self.retries} retries",
            f"serve: spm cache {self.spm_hits} hits / {self.spm_misses} "
            f"misses, {self.spm_cycles_saved} cycles saved; host "
            f"{self.host_elapsed_seconds:.2f}s",
        ]
        for index, busy in enumerate(self.device_busy_seconds):
            lines.append(
                f"  device {index}: busy {busy * 1e3:.3f} ms, transfer "
                f"{self.device_transfer_seconds[index] * 1e3:.3f} ms"
            )
        for tenant in sorted(self.tenants):
            t = self.tenants[tenant]
            lines.append(
                f"  tenant {tenant}: {t.completed}/{t.admitted} done "
                f"({t.rejected} rejected), {t.cycles} cycles, "
                f"p50 {t.p50_latency_cycles} / p99 {t.p99_latency_cycles} "
                "cycles latency"
            )
        return "\n".join(lines)


@dataclass
class ServiceCheckpoint:
    """Everything :meth:`JobService.drain` hands to
    :meth:`JobService.resume`: the virtual clock, the queue with every
    open job (in-flight waves already requeued), the not-yet-admitted
    arrivals, and the fault state so consumed slots are not replayed."""

    clock: int
    dispatch_seq: int
    next_job_id: int
    jobs: Dict[int, Job]
    queue: JobQueue
    arrivals: List[Tuple[int, int, JobSpec]]
    devices: int
    workers: int
    fault_plan: Optional[FaultPlan]
    retry_policy: RetryPolicy
    fault_slots: Dict[str, int]
    device_config: Optional[DeviceConfig]
    retries: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    spans: Optional[SpanRecorder] = None
    job_span_ids: Dict[int, int] = field(default_factory=dict)
    storage: Optional[object] = None

    @property
    def open_jobs(self) -> int:
        return self.queue.open_jobs()


class JobService:
    """Long-lived multi-tenant scheduler over the Genesis runtime.

    Client path: :meth:`submit` (immediate) or :meth:`schedule`
    (arrival trace), :meth:`status` / :meth:`partial_results` /
    :meth:`results` to observe, :meth:`drain` + :meth:`resume` for a
    graceful restart.  :meth:`run` advances the virtual clock.

    Pass ``storage`` (a :class:`~repro.storage.filter.StorageFilterPlan`
    or :class:`~repro.storage.frontend.StorageFrontEnd`) to put the
    modelled in-SSD filter in front of every device's PCIe link: wave
    transfers are charged at their survivor footprint and each wave
    gets a ``storage.wave`` event plus a scan span on its device's
    ``storage:N`` trace lane (DESIGN.md §3.10).  Kernel cycles, results,
    and the dispatch order are unchanged by construction — only the
    transfer segment of each wave's virtual duration shrinks.
    """

    def __init__(
        self,
        devices: int = 1,
        workers: int = 1,
        max_backlog: int = 64,
        quota: int = 8,
        weights: Optional[Dict[str, float]] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        spm_cache: Optional[SpmImageCache] = None,
        device_config: Optional[DeviceConfig] = None,
        spans: Optional[SpanRecorder] = None,
        storage: Optional[object] = None,
    ) -> None:
        if devices < 1:
            raise ValueError("need at least one device")
        if workers < 1:
            raise ValueError("need at least one worker")
        self.devices = devices
        self.workers = workers
        self.clock = 0
        self.queue = JobQueue(
            max_backlog=max_backlog, quota=quota, weights=weights
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Fleet trace-context recorder.  On by default — every served
        #: run can export a merged chrome trace (:meth:`fleet_trace`);
        #: pass ``SpanRecorder(enabled=False)`` to opt out.
        self.spans = spans if spans is not None else SpanRecorder()
        self._job_span_ids: Dict[int, int] = {}
        self.cache = spm_cache if spm_cache is not None else SpmImageCache()
        self.device_config = device_config
        self.storage = storage
        self.pool = DevicePool(
            devices, config=device_config or DeviceConfig(),
            storage=storage,
        )
        self.fault_plan = fault_plan
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.injector = (
            FaultInjector(fault_plan, registry=self.registry)
            if fault_plan is not None
            else None
        )
        self._jobs: Dict[int, Job] = {}
        self._arrivals: List[Tuple[int, int, JobSpec]] = []
        self._arrival_seq = 0
        self._next_job_id = 0
        self._dispatch_seq = 0
        self._inflight: Dict[int, _Inflight] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self._retries = 0
        self._prior_faults: Dict[str, int] = {}
        self._host_seconds = 0.0
        #: In-memory mirror of every ledger event the service records,
        #: in order — what the replay/property tests compare.
        self.events: List[Tuple[str, Dict[str, object]]] = []

    # -- client path ---------------------------------------------------------

    def schedule(self, spec: JobSpec, at_cycles: int) -> None:
        """Enqueue an arrival for admission when the virtual clock
        reaches ``at_cycles``."""
        if at_cycles < self.clock:
            at_cycles = self.clock
        self._arrivals.append((at_cycles, self._arrival_seq, spec))
        self._arrival_seq += 1
        self._arrivals.sort(key=lambda item: (item[0], item[1]))

    def submit(self, spec: JobSpec) -> JobStatus:
        """Admit (or reject) a job at the current virtual clock."""
        return JobStatus.of(self._admit(spec, self.clock))

    def status(self, job_id: int) -> JobStatus:
        return JobStatus.of(self._jobs[job_id])

    def partial_results(self, job_id: int) -> Dict[PartitionId, object]:
        """Snapshot of per-partition results completed so far — the
        streaming-results path: callable while the job is running."""
        return dict(self._jobs[job_id].results)

    def results(self, job_id: int) -> Dict[PartitionId, object]:
        job = self._jobs[job_id]
        if job.state != COMPLETED:
            raise RuntimeError(
                f"job {job_id} is {job.state}, not {COMPLETED}"
            )
        return job.results

    def stream(self, job_id: int) -> Iterator[JobStatus]:
        """Yield a status snapshot after every clock advance until the
        job leaves the open set."""
        job = self._jobs[job_id]
        while job.is_open and (self._inflight or self._arrivals
                               or self.queue.pending_waves()):
            self.run(max_dispatches=1)
            yield self.status(job_id)
        yield self.status(job_id)

    def jobs(self) -> List[JobStatus]:
        return [JobStatus.of(job) for _id, job in sorted(self._jobs.items())]

    # -- admission -----------------------------------------------------------

    def _admit(self, spec: JobSpec, at_cycles: int) -> Job:
        job = Job.admit(self._next_job_id, spec, at_cycles)
        self._next_job_id += 1
        self._jobs[job.job_id] = job
        reason = self.queue.try_admit(job)
        if reason is not None:
            job.state = REJECTED
            job.pending = []
            self._event(
                "serve.reject",
                tenant=job.tenant, job=job.job_id, stage=job.stage,
                reason=reason, clock=at_cycles,
            )
            self.registry.counter(
                "serve.jobs.rejected", tenant=job.tenant, reason=reason
            ).inc()
        else:
            # The job's root span is recorded at completion (or failure),
            # but its id is reserved now so every wave/fault child span
            # can parent to it while the job is still open.
            self._job_span_ids[job.job_id] = self.spans.reserve()
            self._event(
                "serve.admit",
                tenant=job.tenant, job=job.job_id, stage=job.stage,
                waves=len(job.waves), partitions=len(spec.partitions),
                clock=at_cycles,
            )
            self.registry.counter(
                "serve.jobs.admitted", tenant=job.tenant
            ).inc()
        self.registry.histogram("serve.queue.depth").record(
            self.queue.open_jobs()
        )
        return job

    def _admit_due(self) -> None:
        while self._arrivals and self._arrivals[0][0] <= self.clock:
            _at, _seq, spec = self._arrivals.pop(0)
            self._admit(spec, self.clock)

    # -- the event loop ------------------------------------------------------

    def run(self, max_dispatches: Optional[int] = None) -> ServeSummary:
        """Advance the virtual clock until idle, or until
        ``max_dispatches`` waves have been dispatched in this call
        (leaving later work, and any in-flight waves, for a later
        ``run`` or a :meth:`drain`)."""
        started = time.perf_counter()
        budget = max_dispatches
        try:
            while True:
                self._admit_due()
                if budget is not None and budget <= 0:
                    break
                dispatched = self._dispatch_round(budget)
                if budget is not None:
                    budget -= dispatched
                if dispatched:
                    continue
                next_times = []
                if self._inflight:
                    next_times.append(
                        min(rec.end_cycles for rec in self._inflight.values())
                    )
                if self._arrivals:
                    next_times.append(self._arrivals[0][0])
                if not next_times:
                    break
                self.clock = max(self.clock, min(next_times))
                self._complete_due()
        finally:
            self._shutdown_executor()
            self._host_seconds += time.perf_counter() - started
        return self.summary()

    def run_until_idle(self) -> ServeSummary:
        return self.run(max_dispatches=None)

    def _dispatch_round(self, limit: Optional[int]) -> int:
        picks: List[_Dispatch] = []
        for device in range(self.devices):
            if device in self._inflight:
                continue
            if limit is not None and len(picks) >= limit:
                break
            while True:
                choice = self.queue.next_wave()
                if choice is None:
                    break
                job, wave_index = choice
                try:
                    attempt, penalty = self._fault_ladder(job, wave_index)
                except RetryBudgetExceeded:
                    self._fail_job(job, wave_index)
                    continue
                picks.append(self._dispatch(job, wave_index, device,
                                            attempt, penalty))
                break
            if choice is None:
                break
        if picks:
            self._execute(picks)
        return len(picks)

    def _dispatch(
        self, job: Job, wave_index: int, device: int,
        attempt: int, penalty: int,
    ) -> _Dispatch:
        seq = self._dispatch_seq
        self._dispatch_seq += 1
        if job.state == QUEUED:
            job.state = RUNNING
        if job.first_dispatch_cycles is None:
            job.first_dispatch_cycles = self.clock
        cost = sum(
            part.num_rows for _pid, part in job.waves[wave_index]
        )
        self.queue.charge_rows(job.tenant, cost)
        self._event(
            "serve.dispatch",
            seq=seq, tenant=job.tenant, job=job.job_id, stage=job.stage,
            wave=wave_index, device=device, clock=self.clock,
            attempt=attempt, cost_rows=cost,
        )
        self.registry.counter("serve.waves.dispatched").inc()
        return _Dispatch(job, wave_index, device, seq, attempt, penalty, cost)

    def _fault_ladder(self, job: Job, wave_index: int) -> Tuple[int, int]:
        """Parent-side injection at the dispatch boundary: poll, charge
        virtual backoff per retry, return the clean ``(attempt,
        penalty_cycles)`` — or raise :class:`RetryBudgetExceeded`."""
        if self.injector is None:
            return job.attempts[wave_index], 0
        if job.slots[wave_index] is None:
            job.slots[wave_index] = self.injector.next_slot(SERVE_FAULT_SITE)
        slot = job.slots[wave_index]
        attempt = job.attempts[wave_index]
        start_attempt = attempt
        penalty = 0
        clock_hz = self.pool.config.clock_hz
        while True:
            fault = self.injector.poll(
                SERVE_FAULT_SITE, slot, attempt,
                tenant=job.tenant, job=job.job_id, wave=wave_index,
            )
            if fault is None:
                job.attempts[wave_index] = attempt
                return attempt, penalty
            self.registry.counter("serve.faults", kind=fault.kind).inc()
            if attempt - start_attempt >= self.retry_policy.max_retries:
                job.attempts[wave_index] = attempt + 1
                raise RetryBudgetExceeded(
                    f"job {job.job_id} wave {wave_index} exhausted its "
                    f"retry budget ({self.retry_policy.max_retries})"
                )
            backoff = self.retry_policy.backoff_seconds(slot, attempt)
            penalty += int(round(backoff * clock_hz))
            self._retries += 1
            self.registry.counter("serve.retries").inc()
            self._event(
                "serve.retry",
                tenant=job.tenant, job=job.job_id, wave=wave_index,
                attempt=attempt, kind=fault.kind,
                backoff_seconds=backoff,
            )
            self.spans.record(
                f"fault:{fault.kind}", "fault", self.clock, self.clock,
                trace_id=f"job-{job.job_id}",
                parent_id=self._job_span_ids.get(job.job_id),
                lane="service", tenant=job.tenant,
                job=job.job_id, wave=wave_index, attempt=attempt,
                kind=fault.kind, backoff_seconds=backoff,
            )
            attempt += 1

    def _fail_job(self, job: Job, wave_index: int) -> None:
        job.state = FAILED
        job.pending = []
        self.queue.close(job)
        self.queue.account(job.tenant).failed += 1
        self._event(
            "serve.job.failed",
            tenant=job.tenant, job=job.job_id, stage=job.stage,
            wave=wave_index, clock=self.clock,
        )
        self.spans.record(
            f"job:{job.job_id}", "job", job.arrival_cycles, self.clock,
            trace_id=f"job-{job.job_id}",
            span_id=self._job_span_ids.get(job.job_id),
            lane="service", tenant=job.tenant,
            job=job.job_id, stage=job.stage, state=FAILED,
            failed_wave=wave_index,
        )
        self.registry.counter(
            "serve.jobs.failed", tenant=job.tenant
        ).inc()

    # -- execution (eager host-side, deferred virtual completion) ------------

    def _execute(self, picks: List[_Dispatch]) -> None:
        waves = [p.job.waves[p.wave_index] for p in picks]
        drivers = [p.job.spec.driver for p in picks]
        seeds = [
            self.cache.images_for(driver.wave_keys(wave))
            for driver, wave in zip(drivers, waves)
        ]
        if self.workers > 1 and len(picks) > 1:
            executor = self._ensure_executor()
            futures = [
                executor.submit(
                    _run_wave_task, driver, pick.wave_index, wave, seed
                )
                for pick, driver, wave, seed in zip(
                    picks, drivers, waves, seeds
                )
            ]
            payloads = [future.result() for future in futures]
        else:
            payloads = [
                _run_wave_task(driver, pick.wave_index, wave, seed)
                for pick, driver, wave, seed in zip(picks, drivers, waves,
                                                    seeds)
            ]
        for pick, payload in zip(picks, payloads):
            (
                _index, wave_results, stats, load_cycles, new_images,
                hits, misses, saved, _pid, _elapsed,
            ) = payload
            self.cache.merge(new_images)
            self.cache.hits += hits
            self.cache.misses += misses
            self.cache.cycles_saved += saved
            wave = pick.job.waves[pick.wave_index]
            nbytes = self.pool.wave_nbytes(
                wave, pick.cost_rows * MODEL_ROW_BYTES
            )
            transfer_cycles = self._transfer_cycles(nbytes)
            duration = (
                transfer_cycles
                + load_cycles
                + stats.cycles
                + pick.penalty_cycles
            )
            end = self.clock + duration
            card = self.pool.device(pick.device)
            card.transfer(nbytes, "h2d")
            if self.storage is not None:
                self._event(
                    "storage.wave",
                    tenant=pick.job.tenant, job=pick.job.job_id,
                    stage=pick.job.stage, wave=pick.wave_index,
                    device=pick.device,
                    raw_nbytes=self.storage.wave_raw_nbytes(wave),
                    nbytes=nbytes,
                    pruned_rows=self.storage.wave_pruned_rows(wave),
                    scan_seconds=self.storage.wave_scan_seconds(wave),
                )
            card.launch(pick.seq, stats.cycles)
            card.wait(pick.seq)
            self._inflight[pick.device] = _Inflight(
                pick, wave_results, stats.cycles, load_cycles, end,
                start_cycles=self.clock, transfer_cycles=transfer_cycles,
            )

    def _transfer_cycles(self, nbytes: int) -> int:
        config = self.pool.config
        seconds = (
            config.transfer_setup_seconds
            + nbytes / config.pcie_bandwidth
        )
        return int(round(seconds * config.clock_hz))

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=min(self.workers, self.devices)
            )
        return self._executor

    def _shutdown_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    close = _shutdown_executor

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- completion ----------------------------------------------------------

    def _complete_due(self) -> None:
        due = sorted(
            (rec.end_cycles, device)
            for device, rec in self._inflight.items()
            if rec.end_cycles <= self.clock
        )
        for end_cycles, device in due:
            self._finish(device, end_cycles)

    def _finish(self, device: int, end_cycles: int) -> None:
        rec = self._inflight.pop(device)
        job = rec.dispatch.job
        wave_index = rec.dispatch.wave_index
        job.results.update(rec.results)
        job.wave_cycles[wave_index] = rec.cycles
        job.wave_load_cycles[wave_index] = rec.load_cycles
        job.waves_done += 1
        charged = rec.cycles + rec.load_cycles
        self.queue.charge_cycles(job.tenant, charged)
        self.registry.counter(
            "serve.tenant.cycles", tenant=job.tenant
        ).inc(charged)
        self._event(
            "serve.wave.done",
            tenant=job.tenant, job=job.job_id, wave=wave_index,
            device=device, cycles=rec.cycles, load_cycles=rec.load_cycles,
            end_cycles=end_cycles,
            start_cycles=rec.start_cycles,
            transfer_cycles=rec.transfer_cycles,
            penalty_cycles=rec.dispatch.penalty_cycles,
            attempt=rec.dispatch.attempt,
        )
        self._record_wave_spans(rec, device, end_cycles)
        if job.waves_done == len(job.waves) and job.state == RUNNING:
            job.finalize(end_cycles)
            self.queue.close(job)
            account = self.queue.account(job.tenant)
            account.completed += 1
            account.latencies.append(job.latency_cycles)
            self._event(
                "serve.job.done",
                tenant=job.tenant, job=job.job_id, stage=job.stage,
                waves=len(job.waves),
                latency_cycles=job.latency_cycles,
                queue_cycles=job.queue_cycles,
                service_cycles=job.service_cycles,
                arrival_cycles=job.arrival_cycles,
                clock=end_cycles,
            )
            self.spans.record(
                f"job:{job.job_id}", "job", job.arrival_cycles, end_cycles,
                trace_id=f"job-{job.job_id}",
                span_id=self._job_span_ids.get(job.job_id),
                lane="service", tenant=job.tenant,
                job=job.job_id, stage=job.stage, state=COMPLETED,
                latency_cycles=job.latency_cycles,
                queue_cycles=job.queue_cycles,
            )
            self.registry.counter(
                "serve.jobs.completed", tenant=job.tenant
            ).inc()

    def _record_wave_spans(
        self, rec: _Inflight, device: int, end_cycles: int
    ) -> None:
        """Lay the completed wave's spans on its device lane: one parent
        covering dispatch → completion, with penalty/transfer/load/kernel
        children tiling it exactly (their cycles sum to the wave's
        virtual duration by construction)."""
        if not self.spans.enabled:
            return
        job = rec.dispatch.job
        wave_index = rec.dispatch.wave_index
        trace_id = f"job-{job.job_id}"
        lane = f"device:{device}"
        parent = self.spans.record(
            f"{job.stage}:j{job.job_id}:w{wave_index}", "wave",
            rec.start_cycles, end_cycles,
            trace_id=trace_id,
            parent_id=self._job_span_ids.get(job.job_id),
            lane=lane, tenant=job.tenant,
            job=job.job_id, wave=wave_index, device=device,
            attempt=rec.dispatch.attempt, cost_rows=rec.dispatch.cost_rows,
        )
        cursor = rec.start_cycles
        segments = (
            ("backoff", "fault_penalty", rec.dispatch.penalty_cycles),
            ("h2d", "transfer", rec.transfer_cycles),
            ("spm_load", "spm_load", rec.load_cycles),
            ("kernel", "kernel", rec.cycles),
        )
        for name, cat, cycles in segments:
            if cycles <= 0 and cat in ("fault_penalty", "spm_load"):
                continue
            self.spans.record(
                name, cat, cursor, cursor + cycles,
                trace_id=trace_id, parent_id=parent,
                lane=lane, tenant=job.tenant,
                job=job.job_id, wave=wave_index, device=device,
            )
            cursor += cycles
        if self.storage is not None:
            # The in-SSD scan overlaps the wave's dispatch (it ran while
            # the previous wave's DMA held the link), so it lives on its
            # own storage lane and never stretches the wave's duration.
            wave = job.waves[wave_index]
            scan_cycles = int(round(
                self.storage.wave_scan_seconds(wave)
                * self.pool.config.clock_hz
            ))
            self.spans.record(
                f"scan:j{job.job_id}:w{wave_index}", "filter",
                rec.start_cycles, rec.start_cycles + scan_cycles,
                trace_id=trace_id, parent_id=parent,
                lane=f"storage:{device}", tenant=job.tenant,
                job=job.job_id, wave=wave_index, device=device,
                pruned_rows=self.storage.wave_pruned_rows(wave),
                saved_nbytes=(
                    self.storage.wave_raw_nbytes(wave)
                    - self.storage.wave_nbytes(wave)
                ),
            )

    # -- drain / resume ------------------------------------------------------

    def drain(self) -> ServiceCheckpoint:
        """Stop gracefully: requeue every in-flight wave (its computed
        results are discarded — the wave re-runs after resume, bit-
        identically) and hand back a checkpoint a fresh service can
        :meth:`resume` from.  The ledger records the drain so the
        restart trail is auditable."""
        requeued = 0
        for device in sorted(self._inflight):
            rec = self._inflight.pop(device)
            job = rec.dispatch.job
            wave_index = rec.dispatch.wave_index
            job.requeue(wave_index)
            self._event(
                "serve.wave.aborted",
                tenant=job.tenant, job=job.job_id, wave=wave_index,
                device=device, start_cycles=rec.start_cycles,
                clock=self.clock,
            )
            # The wave's work up to the drain point still occupied the
            # device — trace it as an aborted span cut at the drain
            # clock (it re-runs in full after resume).
            self.spans.record(
                f"{job.stage}:j{job.job_id}:w{wave_index}", "aborted",
                rec.start_cycles, self.clock,
                trace_id=f"job-{job.job_id}",
                parent_id=self._job_span_ids.get(job.job_id),
                lane=f"device:{device}", tenant=job.tenant,
                job=job.job_id, wave=wave_index, device=device,
                drained=True,
            )
            requeued += 1
        self._shutdown_executor()
        self._event(
            "serve.drain",
            clock=self.clock, requeued=requeued,
            open_jobs=self.queue.open_jobs(),
            pending_arrivals=len(self._arrivals),
        )
        self.spans.record(
            "drain", "drain", self.clock, self.clock,
            trace_id="service", lane="service", requeued=requeued,
        )
        return ServiceCheckpoint(
            clock=self.clock,
            dispatch_seq=self._dispatch_seq,
            next_job_id=self._next_job_id,
            jobs=self._jobs,
            queue=self.queue,
            arrivals=list(self._arrivals),
            devices=self.devices,
            workers=self.workers,
            fault_plan=self.fault_plan,
            retry_policy=self.retry_policy,
            fault_slots=(
                dict(self.injector._slots) if self.injector else {}
            ),
            device_config=self.device_config,
            retries=self._retries,
            fault_counts=self._fault_counts(),
            spans=self.spans,
            job_span_ids=dict(self._job_span_ids),
            storage=self.storage,
        )

    @classmethod
    def resume(
        cls,
        checkpoint: ServiceCheckpoint,
        registry: Optional[MetricsRegistry] = None,
        spm_cache: Optional[SpmImageCache] = None,
    ) -> "JobService":
        """Restart from a drain checkpoint: same clock, same queue state
        (with in-flight waves back on their jobs), same fault slots —
        the continued run merges bit-identically with an undisturbed
        one.  The SPM cache starts cold unless one is passed; a cold
        cache re-loads images and replays identically by construction."""
        service = cls(
            devices=checkpoint.devices,
            workers=checkpoint.workers,
            fault_plan=checkpoint.fault_plan,
            retry_policy=checkpoint.retry_policy,
            registry=registry,
            spm_cache=spm_cache,
            device_config=checkpoint.device_config,
            storage=checkpoint.storage,
        )
        service.clock = checkpoint.clock
        service._dispatch_seq = checkpoint.dispatch_seq
        service._next_job_id = checkpoint.next_job_id
        service._jobs = checkpoint.jobs
        service.queue = checkpoint.queue
        service._arrivals = list(checkpoint.arrivals)
        service._arrival_seq = len(checkpoint.arrivals)
        if service.injector is not None:
            service.injector._slots.update(checkpoint.fault_slots)
        service._retries = checkpoint.retries
        service._prior_faults = dict(checkpoint.fault_counts)
        if checkpoint.spans is not None:
            # Continue the drained service's recorder (same id counter)
            # so pre-drain and post-resume spans merge into one trace.
            service.spans = checkpoint.spans
            service._job_span_ids = dict(checkpoint.job_span_ids)
        service._event(
            "serve.resume",
            clock=service.clock,
            open_jobs=service.queue.open_jobs(),
            pending_arrivals=len(service._arrivals),
        )
        service.spans.record(
            "resume", "drain", service.clock, service.clock,
            trace_id="service", lane="service",
            open_jobs=service.queue.open_jobs(),
        )
        return service

    # -- reporting -----------------------------------------------------------

    def fleet_trace(self, name: str = "fleet") -> Dict[str, object]:
        """The merged fleet chrome://tracing export of every span the
        service (and any traced run merged into its recorder) saw: one
        process lane per device, tenant-colored job tracks."""
        return fleet_chrome_trace(self.spans.spans, name=name)

    def summary(self) -> ServeSummary:
        from .report import percentile

        tenants = {}
        for name in sorted(self.queue.accounts):
            account = self.queue.accounts[name]
            tenants[name] = TenantSummary(
                tenant=name,
                admitted=account.admitted,
                rejected=account.rejected,
                completed=account.completed,
                failed=account.failed,
                cycles=account.cycles,
                p50_latency_cycles=percentile(account.latencies, 50),
                p99_latency_cycles=percentile(account.latencies, 99),
            )
        return ServeSummary(
            clock_cycles=self.clock,
            jobs_admitted=sum(t.admitted for t in tenants.values()),
            jobs_rejected=sum(t.rejected for t in tenants.values()),
            jobs_completed=sum(t.completed for t in tenants.values()),
            jobs_failed=sum(t.failed for t in tenants.values()),
            waves_dispatched=self._dispatch_seq,
            retries=self._retries,
            faults=self._fault_counts(),
            tenants=tenants,
            device_busy_seconds=self.pool.busy_seconds(),
            device_transfer_seconds=self.pool.transfer_seconds(),
            spm_hits=self.cache.hits,
            spm_misses=self.cache.misses,
            spm_cycles_saved=self.cache.cycles_saved,
            host_elapsed_seconds=self._host_seconds,
        )

    def _fault_counts(self) -> Dict[str, int]:
        """Injections across the whole service lifetime, drains
        included (pre-drain tallies arrive via the checkpoint)."""
        counts = dict(self._prior_faults)
        if self.injector is not None:
            for kind, count in self.injector.counts_by_kind().items():
                counts[kind] = counts.get(kind, 0) + count
        return counts

    # -- events --------------------------------------------------------------

    def _event(self, event: str, **fields: object) -> None:
        self.events.append((event, fields))
        record_event(event, **fields)
