"""Per-tenant latency reporting from the run ledger.

The service records a ``serve.job.done`` event (with
``latency_cycles``) for every completed job and a ``serve.reject`` for
every refused one, so the ledger alone reconstructs the per-tenant SLO
picture — p50/p99 latency, admission-rejection counts — long after the
service object is gone.  That is what the soak benchmark gates on.

Percentiles use the nearest-rank method on exact integer cycle
latencies: deterministic, no interpolation, no floating-point noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs.registry import nearest_rank_percentile


def percentile(values: List[int], q: float) -> Optional[int]:
    """Nearest-rank percentile of ``values`` (``None`` when empty) —
    the shared :func:`repro.obs.registry.nearest_rank_percentile`."""
    return nearest_rank_percentile(values, q)


@dataclass
class TenantReport:
    tenant: str
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    latencies: List[int] = None

    def __post_init__(self):
        if self.latencies is None:
            self.latencies = []

    @property
    def p50_latency_cycles(self) -> Optional[int]:
        return percentile(self.latencies, 50)

    @property
    def p99_latency_cycles(self) -> Optional[int]:
        return percentile(self.latencies, 99)


@dataclass
class ServiceReport:
    """Per-tenant serving outcomes reconstructed from ledger events."""

    tenants: Dict[str, TenantReport]

    @classmethod
    def from_ledger(cls, ledger, run_id: Optional[str] = None
                    ) -> "ServiceReport":
        tenants: Dict[str, TenantReport] = {}

        def bucket(record) -> TenantReport:
            tenant = str(record.get("tenant"))
            if tenant not in tenants:
                tenants[tenant] = TenantReport(tenant)
            return tenants[tenant]

        for record in ledger.events("serve.admit", run_id=run_id):
            bucket(record).admitted += 1
        for record in ledger.events("serve.reject", run_id=run_id):
            bucket(record).rejected += 1
        for record in ledger.events("serve.job.failed", run_id=run_id):
            bucket(record).failed += 1
        for record in ledger.events("serve.job.done", run_id=run_id):
            report = bucket(record)
            report.completed += 1
            report.latencies.append(int(record["latency_cycles"]))
        return cls(tenants=tenants)

    @property
    def admitted(self) -> int:
        return sum(t.admitted for t in self.tenants.values())

    @property
    def rejected(self) -> int:
        return sum(t.rejected for t in self.tenants.values())

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.tenants.values())

    @property
    def failed(self) -> int:
        return sum(t.failed for t in self.tenants.values())

    @property
    def dropped_admitted(self) -> int:
        """Jobs the service admitted but never finished — the soak
        benchmark's zero-loss gate."""
        return self.admitted - self.completed - self.failed

    def p99_latency_cycles(self) -> Optional[int]:
        merged = [
            latency
            for report in self.tenants.values()
            for latency in report.latencies
        ]
        return percentile(merged, 99)

    def render(self) -> str:
        lines = [
            f"serve report: {self.admitted} admitted, "
            f"{self.rejected} rejected, {self.completed} completed, "
            f"{self.failed} failed, fleet p99 "
            f"{self.p99_latency_cycles()} cycles"
        ]
        for tenant in sorted(self.tenants):
            report = self.tenants[tenant]
            lines.append(
                f"  {tenant}: {report.completed}/{report.admitted} done, "
                f"{report.rejected} rejected, p50 "
                f"{report.p50_latency_cycles} / p99 "
                f"{report.p99_latency_cycles} cycles"
            )
        return "\n".join(lines)
