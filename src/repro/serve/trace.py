"""Seeded simulated-tenant arrival traces.

A trace is the service's notion of "the outside world": who submits
what, when (in virtual cycles).  Generating it from one seed is what
makes a whole serving run — admission, fairness, faults, latencies —
replayable bit-for-bit, and is the contract the property tests and the
soak benchmark lean on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..accel.scheduler import (
    BqsrWaveDriver,
    MarkdupWaveDriver,
    MetadataWaveDriver,
)
from .job import JobSpec

#: Stages a trace can mix (the GATK4 preprocessing pipeline).
SERVE_STAGES = ("markdup", "metadata", "bqsr")


@dataclass(frozen=True)
class JobArrival:
    """One submission: a tenant asks for ``stage`` over ``n_partitions``
    partitions starting at ``partition_lo`` (wrapping)."""

    at_cycles: int
    tenant: str
    stage: str
    partition_lo: int
    n_partitions: int


@dataclass
class ArrivalTrace:
    """A seeded sequence of arrivals across simulated tenants."""

    seed: int
    arrivals: List[JobArrival]

    @classmethod
    def generate(
        cls,
        tenants: int = 8,
        jobs: int = 32,
        seed: int = 0,
        stages: Sequence[str] = SERVE_STAGES,
        mean_gap_cycles: int = 50_000,
        max_partitions: int = 4,
    ) -> "ArrivalTrace":
        """Draw ``jobs`` arrivals: inter-arrival gaps uniform in
        ``[0, 2 * mean_gap_cycles]``, tenant / stage / partition slice
        uniform.  Same seed, same trace — always."""
        if tenants < 1 or jobs < 0:
            raise ValueError("need >= 1 tenant and >= 0 jobs")
        for stage in stages:
            if stage not in SERVE_STAGES:
                raise ValueError(
                    f"unknown stage {stage!r}; choose from {SERVE_STAGES}"
                )
        rng = random.Random(seed)
        at = 0
        arrivals = []
        for _ in range(jobs):
            at += rng.randrange(2 * mean_gap_cycles + 1)
            arrivals.append(
                JobArrival(
                    at_cycles=at,
                    tenant=f"t{rng.randrange(tenants):03d}",
                    stage=stages[rng.randrange(len(stages))],
                    partition_lo=rng.randrange(1 << 16),
                    n_partitions=1 + rng.randrange(max_partitions),
                )
            )
        return cls(seed=seed, arrivals=arrivals)


def stage_driver(stage: str, workload):
    """The wave driver for ``stage`` over ``workload``."""
    if stage == "markdup":
        return MarkdupWaveDriver()
    if stage == "metadata":
        return MetadataWaveDriver(reference=workload.reference)
    if stage == "bqsr":
        return BqsrWaveDriver(
            reference=workload.reference,
            read_length=workload.read_length,
        )
    raise ValueError(f"unknown stage {stage!r}")


def stage_partitions(stage: str, workload):
    """The partition list ``stage`` runs over."""
    source = (
        workload.group_partitions if stage == "bqsr" else workload.partitions
    )
    return list(source)


def trace_jobs(
    trace: ArrivalTrace, workload, n_pipelines: int = 2
) -> List[Tuple[int, JobSpec]]:
    """Materialise a trace against a workload: each arrival becomes a
    ``(at_cycles, JobSpec)`` over a distinct-partition slice of the
    stage's partition list (wrapping, never repeating a partition
    within one job)."""
    by_stage = {
        stage: stage_partitions(stage, workload)
        for stage in SERVE_STAGES
    }
    out = []
    for arrival in trace.arrivals:
        parts = by_stage[arrival.stage]
        if not parts:
            continue
        count = min(arrival.n_partitions, len(parts))
        lo = arrival.partition_lo % len(parts)
        picked = [parts[(lo + k) % len(parts)] for k in range(count)]
        out.append(
            (
                arrival.at_cycles,
                JobSpec(
                    tenant=arrival.tenant,
                    driver=stage_driver(arrival.stage, workload),
                    partitions=picked,
                    n_pipelines=n_pipelines,
                ),
            )
        )
    return out
