"""Multi-tenant job serving over the Genesis runtime.

The paper frames the accelerator as a shared cloud resource; this
package is the serving side of that story — a deterministic,
virtual-time job service that time-multiplexes the modelled
:class:`~repro.runtime.device.DevicePool` across tenants while
sharing one SPM image cache, with weighted-fair queueing, bounded
admission, a dispatch-boundary fault ladder, and graceful
drain/resume.  See DESIGN.md §3.8.
"""

from .job import (
    COMPLETED,
    FAILED,
    QUEUED,
    REJECTED,
    RUNNING,
    Job,
    JobSpec,
    JobStatus,
)
from .queue import REJECT_BACKLOG, REJECT_QUOTA, JobQueue, TenantAccount
from .report import ServiceReport, TenantReport, percentile
from .service import (
    SERVE_FAULT_SITE,
    JobService,
    ServeSummary,
    ServiceCheckpoint,
    TenantSummary,
)
from .trace import (
    SERVE_STAGES,
    ArrivalTrace,
    JobArrival,
    stage_driver,
    stage_partitions,
    trace_jobs,
)

__all__ = [
    "COMPLETED",
    "FAILED",
    "QUEUED",
    "REJECTED",
    "RUNNING",
    "Job",
    "JobSpec",
    "JobStatus",
    "REJECT_BACKLOG",
    "REJECT_QUOTA",
    "JobQueue",
    "TenantAccount",
    "ServiceReport",
    "TenantReport",
    "percentile",
    "SERVE_FAULT_SITE",
    "JobService",
    "ServeSummary",
    "ServiceCheckpoint",
    "TenantSummary",
    "SERVE_STAGES",
    "ArrivalTrace",
    "JobArrival",
    "stage_driver",
    "stage_partitions",
    "trace_jobs",
]
