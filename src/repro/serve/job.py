"""Job model for the multi-tenant service.

A *job* is one stage (markdup / metadata / bqsr) over one partition
set, submitted by one tenant.  At admission the service packs the
job's partitions into waves with the exact :func:`~repro.accel.
scheduler.pack_waves` the direct schedulers use, so a wave executed by
the service is byte-for-byte the wave ``run_partitioned`` would have
executed — the root of the service's bit-identity guarantee.

Time here is *virtual*: integer accelerator cycles on the service
clock (see :mod:`repro.serve.service`).  Arrival, dispatch, and
completion stamps are all cycle counts, never wall time, which is what
makes every latency figure deterministic and replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..accel.scheduler import WaveDriver, WaveItem, pack_waves
from ..tables.partition import PartitionId

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
REJECTED = "rejected"

#: States that count against backlog and tenant quota.
OPEN_STATES = (QUEUED, RUNNING)


@dataclass
class JobSpec:
    """What a tenant submits: a stage driver over a partition set."""

    tenant: str
    driver: WaveDriver
    partitions: Sequence[WaveItem]
    n_pipelines: int

    @property
    def stage(self) -> str:
        return self.driver.stage


@dataclass
class Job:
    """An admitted job and all of its scheduling state."""

    job_id: int
    spec: JobSpec
    arrival_cycles: int
    waves: List[List[WaveItem]]
    empty_pids: List[PartitionId]
    state: str = QUEUED
    #: Wave indices not yet dispatched, ascending.  Drain pushes
    #: in-flight waves back here, so order is maintained on insert.
    pending: List[int] = field(default_factory=list)
    results: Dict[PartitionId, object] = field(default_factory=dict)
    wave_cycles: List[int] = field(default_factory=list)
    wave_load_cycles: List[int] = field(default_factory=list)
    #: Next attempt number per wave (advanced by the fault ladder).
    attempts: List[int] = field(default_factory=list)
    #: Fault slot per wave, allocated at first dispatch.
    slots: List[Optional[int]] = field(default_factory=list)
    waves_done: int = 0
    first_dispatch_cycles: Optional[int] = None
    completed_cycles: Optional[int] = None

    @classmethod
    def admit(cls, job_id: int, spec: JobSpec, at_cycles: int) -> "Job":
        empty, waves = pack_waves(spec.partitions, spec.n_pipelines)
        return cls(
            job_id=job_id,
            spec=spec,
            arrival_cycles=at_cycles,
            waves=waves,
            empty_pids=empty,
            pending=list(range(len(waves))),
            wave_cycles=[0] * len(waves),
            wave_load_cycles=[0] * len(waves),
            attempts=[0] * len(waves),
            slots=[None] * len(waves),
        )

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def stage(self) -> str:
        return self.spec.stage

    @property
    def is_open(self) -> bool:
        return self.state in OPEN_STATES

    @property
    def latency_cycles(self) -> Optional[int]:
        if self.completed_cycles is None:
            return None
        return self.completed_cycles - self.arrival_cycles

    @property
    def queue_cycles(self) -> Optional[int]:
        """Cycles from arrival to first dispatch."""
        if self.first_dispatch_cycles is None:
            return None
        return self.first_dispatch_cycles - self.arrival_cycles

    @property
    def service_cycles(self) -> int:
        """Simulated cycles spent on this job's completed waves."""
        return sum(self.wave_cycles) + sum(self.wave_load_cycles)

    def requeue(self, wave_index: int) -> None:
        """Put an in-flight wave back on the pending list (drain)."""
        if wave_index in self.pending:
            return
        self.pending.append(wave_index)
        self.pending.sort()

    def finalize(self, at_cycles: int) -> None:
        """All waves done: add empty-partition results and canonicalise
        the result order to the submission order."""
        for pid in self.empty_pids:
            self.results[pid] = self.spec.driver.empty_result(pid)
        self.results = {
            pid: self.results[pid] for pid, _part in self.spec.partitions
        }
        self.state = COMPLETED
        self.completed_cycles = at_cycles


@dataclass
class JobStatus:
    """Snapshot of a job for the ``status`` client path."""

    job_id: int
    tenant: str
    stage: str
    state: str
    waves_total: int
    waves_done: int
    arrival_cycles: int
    latency_cycles: Optional[int]

    @classmethod
    def of(cls, job: Job) -> "JobStatus":
        return cls(
            job_id=job.job_id,
            tenant=job.tenant,
            stage=job.stage,
            state=job.state,
            waves_total=len(job.waves),
            waves_done=job.waves_done,
            arrival_cycles=job.arrival_cycles,
            latency_cycles=job.latency_cycles,
        )
