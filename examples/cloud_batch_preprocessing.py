#!/usr/bin/env python
"""Cloud batch preprocessing: the paper's deployment story, served.

A sequencing center preprocesses a batch of patient genomes on a shared
Genesis deployment.  Each patient is a *tenant* of the multi-tenant job
service (DESIGN.md §3.8): the batch submits every patient's
mark-duplicates stage through :class:`repro.serve.JobService`, which
time-multiplexes the simulated accelerator cards across patients under
weighted-fair queueing and reports per-tenant latency in virtual
cycles.  The service's outputs are bit-identical to running each stage
directly, so the duplicate flags downstream are exactly the GATK
baseline's.

The second half projects the batch to whole-genome scale and compares
the f1.2xlarge deployment against the r5.4xlarge software baseline —
the Figure 13 / Table III analysis, end to end.

Run:  python examples/cloud_batch_preprocessing.py
"""

from repro.accel.scheduler import MarkdupWaveDriver
from repro.eval import make_workload
from repro.eval.experiments import measure_cycles_per_base
from repro.gatk import mark_duplicates
from repro.perf import (
    F1_2XLARGE,
    PAPER_READS,
    R5_4XLARGE,
    model_stage,
    table3_row,
)
from repro.serve import JobService, JobSpec

PATIENTS = 3


def main() -> None:
    print(f"=== serving a batch of {PATIENTS} patients ===")
    # The batch front end: one workload per patient, one shared service.
    patients = {
        f"patient{index:03d}": make_workload(
            n_reads=90, read_length=70, chromosomes=(20,), seed=100 + index
        )
        for index in range(PATIENTS)
    }
    service = JobService(devices=2, workers=1, quota=4, max_backlog=16)
    tickets = {}
    for offset, (name, workload) in enumerate(patients.items()):
        ticket = service.submit(
            JobSpec(
                tenant=name,
                driver=MarkdupWaveDriver(),
                partitions=list(workload.partitions),
                n_pipelines=2,
            )
        )
        tickets[name] = ticket
        print(f"{name}: submitted job {ticket.job_id} "
              f"({ticket.waves_total} waves)")

    summary = service.run_until_idle()

    # Harvest per-tenant: the ROWID column joins the per-partition
    # quality sums back to each patient's read order, and the GATK
    # criterion flags duplicates from the service-computed sums.
    for name, workload in patients.items():
        results = service.results(tickets[name].job_id)
        sums_by_rowid = {}
        for (pid, part) in workload.partitions:
            for rowid, qsum in zip(
                part.column("ROWID").tolist(), results[pid].quality_sums
            ):
                sums_by_rowid[rowid] = qsum
        sums = [sums_by_rowid[index] for index in range(len(workload.reads))]
        flagged = mark_duplicates(workload.reads, quality_sums=sums)
        status = service.status(tickets[name].job_id)
        print(f"{name}: {len(workload.reads)} reads, "
              f"{flagged.num_duplicates} duplicates flagged, "
              f"latency {status.latency_cycles} cycles on the service "
              "clock")

    tenant_lines = summary.render().splitlines()
    print("\n".join(line for line in tenant_lines if "tenant" in line))

    # Project to whole-genome scale with simulation-measured cycle rates.
    print("\n=== whole-genome projection (700M reads, Figure 13) ===")
    sample = next(iter(patients.values()))
    total_accel_hours = 0.0
    total_sw_hours = 0.0
    for stage in ("markdup", "metadata", "bqsr_table"):
        cpb = measure_cycles_per_base(stage, sample).cycles_per_base
        timing = model_stage(stage, PAPER_READS, 151, cpb)
        total_accel_hours += timing.total_seconds / 3600
        total_sw_hours += timing.cpu_seconds / 3600
        row = table3_row(timing.speedup)
        print(f"{stage}: {timing.speedup:.1f}x speedup, "
              f"{row['cost_reduction']:.1f}x cheaper, "
              f"{row['performance_per_dollar']:.0f}x perf/$")

    sw_cost = R5_4XLARGE.cost_of(total_sw_hours * 3600)
    accel_cost = F1_2XLARGE.cost_of(total_accel_hours * 3600)
    print("\nper genome, the three data-manipulation stages:")
    print(f"  software on {R5_4XLARGE.name}: {total_sw_hours:.1f} h, "
          f"${sw_cost:.2f}")
    print(f"  Genesis on {F1_2XLARGE.name}:  {total_accel_hours:.2f} h, "
          f"${accel_cost:.2f}")
    print(f"  -> {total_sw_hours / total_accel_hours:.1f}x faster, "
          f"{sw_cost / accel_cost:.1f}x cheaper "
          "(the paper's 'roughly 140 minutes saved per genome')")


if __name__ == "__main__":
    main()
