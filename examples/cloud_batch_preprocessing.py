#!/usr/bin/env python
"""Cloud batch preprocessing: the paper's deployment story.

A sequencing center preprocesses a batch of patient genomes on AWS.  This
example drives the mark-duplicates accelerator through the Section III-E
host API (configure_mem / run_genesis / check_genesis / genesis_flush) with
genuine host/accelerator overlap, then uses the performance and cost
models to project the batch to whole-genome scale and compare the
f1.2xlarge deployment against the r5.4xlarge software baseline —
the Figure 13 / Table III analysis, end to end.

Run:  python examples/cloud_batch_preprocessing.py
"""

from repro.accel.markdup import run_quality_sums
from repro.eval import make_workload
from repro.eval.experiments import measure_cycles_per_base
from repro.gatk import mark_duplicates
from repro.perf import (
    F1_2XLARGE,
    PAPER_READS,
    R5_4XLARGE,
    CpuModel,
    model_stage,
    table3_row,
)
from repro.runtime import GenesisRuntime

PATIENTS = 3


def preprocess_patient(name: str, seed: int) -> dict:
    """One patient's mark-duplicates stage over the runtime API."""
    workload = make_workload(n_reads=90, read_length=70, chromosomes=(20,),
                             seed=seed)
    quals = [read.qual for read in workload.reads]

    def kernel(inputs):
        result = run_quality_sums(inputs["QUAL"])
        return {"sums": result.quality_sums}, result.stats.cycles

    runtime = GenesisRuntime()
    runtime.register_pipeline(0, kernel)
    runtime.configure_mem(quals, 1, sum(len(q) for q in quals), "QUAL", 0)
    runtime.configure_mem(None, 4, len(quals), "SUMS", 0, is_output=True)
    runtime.run_genesis(0)
    # The host prepares the next patient's data while the FPGA runs —
    # the concurrency the non-blocking API exists for (Section III-E).
    runtime.host_compute(5e-6)
    overlap_used = runtime.check_genesis(0)
    sums = runtime.genesis_flush(0)["sums"]

    result = mark_duplicates(workload.reads, quality_sums=sums)
    return {
        "patient": name,
        "reads": workload.n_reads,
        "duplicates": result.num_duplicates,
        "virtual_seconds": runtime.elapsed_seconds,
        "overlapped": overlap_used,
        "workload": workload,
    }


def main() -> None:
    print(f"=== preprocessing a batch of {PATIENTS} patients ===")
    outcomes = []
    for index in range(PATIENTS):
        outcome = preprocess_patient(f"patient{index:03d}", seed=100 + index)
        outcomes.append(outcome)
        print(f"{outcome['patient']}: {outcome['reads']} reads, "
              f"{outcome['duplicates']} duplicates flagged, "
              f"{outcome['virtual_seconds'] * 1e6:.1f} us on the device "
              f"timeline")

    # Project to whole-genome scale with simulation-measured cycle rates.
    print("\n=== whole-genome projection (700M reads, Figure 13) ===")
    sample = outcomes[0]["workload"]
    cpu = CpuModel()
    total_accel_hours = 0.0
    total_sw_hours = 0.0
    for stage in ("markdup", "metadata", "bqsr_table"):
        cpb = measure_cycles_per_base(stage, sample).cycles_per_base
        timing = model_stage(stage, PAPER_READS, 151, cpb)
        total_accel_hours += timing.total_seconds / 3600
        total_sw_hours += timing.cpu_seconds / 3600
        row = table3_row(timing.speedup)
        print(f"{stage}: {timing.speedup:.1f}x speedup, "
              f"{row['cost_reduction']:.1f}x cheaper, "
              f"{row['performance_per_dollar']:.0f}x perf/$")

    sw_cost = R5_4XLARGE.cost_of(total_sw_hours * 3600)
    accel_cost = F1_2XLARGE.cost_of(total_accel_hours * 3600)
    print(f"\nper genome, the three data-manipulation stages:")
    print(f"  software on {R5_4XLARGE.name}: {total_sw_hours:.1f} h, "
          f"${sw_cost:.2f}")
    print(f"  Genesis on {F1_2XLARGE.name}:  {total_accel_hours:.2f} h, "
          f"${accel_cost:.2f}")
    print(f"  -> {total_sw_hours / total_accel_hours:.1f}x faster, "
          f"{sw_cost / accel_cost:.1f}x cheaper "
          "(the paper's 'roughly 140 minutes saved per genome')")


if __name__ == "__main__":
    main()
