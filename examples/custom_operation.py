#!/usr/bin/env python
"""Extending Genesis with a custom operation (Section III-F).

The paper lets users add Chisel modules with a stream interface and invoke
them from SQL via ``EXEC ModuleName InputStream1 = ...``.  This example
does the Python-simulation equivalent end to end:

1. define a custom hardware module, ``HomopolymerCounter``, that counts
   homopolymer runs (>= a minimum length) in each read's base stream —
   a real QC signal, since homopolymers drive sequencing errors;
2. compose it into a pipeline (Memory Reader -> custom module -> Memory
   Writer) and run the cycle simulation;
3. register it as an EXEC-able custom operation of the SQL executor and
   call it from a query script;
4. check both paths against a plain software implementation.

Run:  python examples/custom_operation.py
"""

from repro.eval import make_workload
from repro.hw import Engine, Flit, Module
from repro.hw.modules import MemoryReader, MemoryWriter
from repro.sql import Executor, table_from_row_dicts
from repro.tables import reads_to_table


class HomopolymerCounter(Module):
    """Counts runs of >= ``min_run`` identical bases per read (per item).

    A stream module in the Genesis mold: one input queue of base flits
    framed per read, one output flit per read carrying the run count.
    """

    def __init__(self, name: str, min_run: int = 3):
        super().__init__(name)
        if min_run < 2:
            raise ValueError("min_run must be at least 2")
        self.min_run = min_run
        self._previous = None
        self._run_length = 0
        self._count = 0

    def _close_run(self) -> None:
        if self._run_length >= self.min_run:
            self._count += 1
        self._run_length = 0
        self._previous = None

    def tick(self, cycle: int) -> None:
        queue = self.input()
        out = self.output()
        if not queue.can_pop():
            self._note_starved()
            return
        if queue.peek().last and not out.can_push():
            self._note_stalled(out)
            return
        flit = queue.pop()
        if "value" in flit:
            base = int(flit["value"])
            if base == self._previous:
                self._run_length += 1
            else:
                self._close_run()
                self._previous = base
                self._run_length = 1
        if flit.last:
            self._close_run()
            out.push(Flit({"value": self._count}, last=True))
            self._note_busy()
            self._count = 0


def homopolymer_counts_sw(seqs, min_run):
    """Software reference for the custom operation."""
    counts = []
    for seq in seqs:
        count = 0
        run = 0
        previous = None
        for base in list(seq) + [None]:
            if base == previous:
                run += 1
            else:
                if previous is not None and run >= min_run:
                    count += 1
                previous = base
                run = 1
        counts.append(count)
    return counts


def run_custom_pipeline(seqs, min_run):
    """Compose and simulate: reader -> custom module -> writer."""
    engine = Engine()
    reader = engine.add_module(MemoryReader("seq", engine.memory, elem_size=1))
    counter = engine.add_module(HomopolymerCounter("homopoly", min_run))
    writer = engine.add_module(MemoryWriter("out", engine.memory, elem_size=4))
    engine.connect(reader, counter)
    engine.connect(counter, writer)
    reader.set_items([list(map(int, seq)) for seq in seqs])
    stats = engine.run()
    return [int(item[0]) for item in writer.items], stats


def main() -> None:
    workload = make_workload(n_reads=50, read_length=60, chromosomes=(22,),
                             seed=8)
    seqs = [read.seq for read in workload.reads]
    min_run = 4

    # --- hardware path -------------------------------------------------
    hw_counts, stats = run_custom_pipeline(seqs, min_run)
    sw_counts = homopolymer_counts_sw(seqs, min_run)
    assert hw_counts == sw_counts
    print(f"custom module counted homopolymer runs (>= {min_run}) for "
          f"{len(seqs)} reads in {stats.cycles} cycles")
    print(f"first reads: {hw_counts[:10]}")

    # --- SQL EXEC path ---------------------------------------------------
    executor = Executor()
    executor.register_table("READS", reads_to_table(workload.reads))

    def exec_homopolymer(ex, MinRun=3):
        seqs_in = ex.tables["READS"].column("SEQ")
        counts, _stats = run_custom_pipeline(seqs_in, int(MinRun))
        ex.tables["HomopolymerCounts"] = table_from_row_dicts(
            [{"COUNT": count} for count in counts]
        )

    executor.register_custom_module("HomopolymerCounter", exec_homopolymer)
    executor.set_variable("minrun", min_run)
    executor.execute("EXEC HomopolymerCounter MinRun = @minrun")
    table = executor.tables["HomopolymerCounts"]
    assert table.column("COUNT").tolist() == sw_counts
    print(f"\nEXEC HomopolymerCounter via SQL produced the same "
          f"{table.num_rows}-row table")
    hot = table.where(lambda row: row["COUNT"] >= 3).num_rows
    print(f"{hot} reads carry 3+ long homopolymers (QC hotspots)")


if __name__ == "__main__":
    main()
