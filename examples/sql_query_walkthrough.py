#!/usr/bin/env python
"""The Figure 4 walk-through: one genomic analysis written as extended SQL,
executed in software, lowered to a logical plan, mapped to a hardware
blueprint, and finally run on the simulated Figure 7 pipeline.

Run:  python examples/sql_query_walkthrough.py
"""

from repro.accel.example_query import count_matching_bases_sw, run_example_query
from repro.compiler import blueprint_summary, figure7_blueprint
from repro.eval import make_workload
from repro.sql import FIGURE4_QUERY, build_plan, describe, parse_query
from repro.sql.queries import run_figure4_query


def main() -> None:
    workload = make_workload(n_reads=60, read_length=60, chromosomes=(21,),
                             seed=4)
    pid, part = max(
        ((p, t) for p, t in workload.partitions),
        key=lambda item: item[1].num_rows,
    )
    print(f"target partition: {pid} with {part.num_rows} reads\n")

    # 1. The query as the paper writes it (Figure 4).
    print("=== the extended-SQL script (Figure 4) ===")
    print(FIGURE4_QUERY.strip()[:600], "...\n")

    # 2. The logical plan of the fused inner-loop query (Section III-A).
    inner_query = parse_query("""
        SELECT SUM(AlignedRead.SEQ == RelevantReference.SEQ)
        FROM (
            ReadExplode (SingleRead.POS, SingleRead.CIGAR, SingleRead.SEQ)
            FROM SingleRead
        )
        INNER JOIN (SELECT * FROM RelevantReference LIMIT @roff, @rlen)
        ON AlignedRead.POS = RelevantReference.POS
    """)
    plan = build_plan(inner_query)
    print("=== logical query plan ===")
    print(describe(plan), "\n")

    # 3. The hardware blueprint the mapping rules derive (Section III-D).
    print("=== hardware blueprint (node -> module, edge -> queue) ===")
    print(blueprint_summary(figure7_blueprint()), "\n")

    # 4. Execute three ways and agree.
    sql_counts = run_figure4_query(workload.partitions, workload.reference, pid)
    sw_counts = count_matching_bases_sw(part, workload.reference.lookup(pid))
    hw = run_example_query(part, workload.reference.lookup(pid))
    assert sql_counts == sw_counts == hw.counts
    print("=== execution ===")
    print(f"SQL executor:       {sql_counts[:8]}...")
    print(f"software reference: {sw_counts[:8]}...")
    print(f"HW pipeline (sim):  {hw.counts[:8]}...")
    print(f"pipeline took {hw.run.stats.cycles} cycles "
          f"(+{hw.run.load_stats.cycles} for the reference SPM load)")
    print("\nall three paths agree")


if __name__ == "__main__":
    main()
