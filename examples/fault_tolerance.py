#!/usr/bin/env python
"""Fault tolerance: crash a worker, hang a wave, fail a DMA — and still
produce bit-identical results.

The host scheduler survives real infrastructure failure (a pool worker
killed with ``os._exit``, a wave hung past the watchdog deadline) via a
retry -> requeue -> serial-fallback ladder, and the runtime retries
transient transfer errors while charging the failed DMA time to the
virtual timeline.  Fault injection is deterministic — a seeded
``FaultPlan`` decides every site — so the faulted run is asserted equal
to the clean one, read for read.  See DESIGN.md §3.5.

Run:  python examples/fault_tolerance.py
"""

from repro.accel import MetadataWaveDriver, run_partitioned
from repro.accel.markdup import run_quality_sums
from repro.eval import make_workload
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.runtime import GenesisRuntime


def main() -> None:
    # Small partitions -> several waves, so both scheduler faults land.
    workload = make_workload(n_reads=120, read_length=60,
                             chromosomes=(20, 21), genome_scale=4.5e-5,
                             psize=1000, seed=7)
    driver = MetadataWaveDriver(reference=workload.reference)
    policy = RetryPolicy(max_retries=2, backoff_base=0.002, seed=7)

    # 1. The clean run: the ground truth the faulted run must reproduce.
    clean, clean_stats = run_partitioned(
        driver, workload.partitions, n_pipelines=4, workers=2,
    )
    print(f"clean run: {clean_stats.waves} waves, "
          f"{clean_stats.total_cycles} simulated cycles")

    # 2. The same run under fire: wave 0 crashes its worker (a genuine
    #    process death -> pool restart), wave 1 hangs until the watchdog
    #    reaps it.  Same seed + same plan => same injection sites.
    plan = FaultPlan.from_spec("worker_crash,wave_timeout~1", seed=7)
    for line in plan.describe():
        print(f"injecting: {line}")
    injector = FaultInjector(plan)
    faulted, stats = run_partitioned(
        driver, workload.partitions, n_pipelines=4, workers=2,
        fault_injector=injector, retry_policy=policy, wave_timeout=0.5,
    )

    assert set(faulted) == set(clean)
    for pid, res in clean.items():
        assert faulted[pid].nm == res.nm
        assert faulted[pid].md == res.md
        assert faulted[pid].uq == res.uq
    assert stats.total_cycles == clean_stats.total_cycles
    kinds = ", ".join(f"{k} x{n}" for k, n in sorted(stats.faults_by_kind.items()))
    print(f"faulted run: survived {stats.faults_injected} faults ({kinds}); "
          f"{stats.retries} retried, {stats.watchdog_timeouts} watchdog "
          f"timeout(s), {stats.pool_restarts} pool restart(s)")
    print("results and simulated cycles bit-identical to the clean run")

    # 3. A transient PCIe error on the runtime API: the failed DMA
    #    attempt occupies the link for its full duration, then retries.
    def kernel(inputs):
        result = run_quality_sums(inputs["QUAL"])
        return {"sums": result.quality_sums}, result.stats.cycles

    def run(injector=None):
        runtime = GenesisRuntime(fault_injector=injector, retry_policy=policy)
        runtime.register_pipeline(0, kernel)
        quals = [read.qual for read in workload.reads]
        runtime.configure_mem(quals, 1, sum(len(q) for q in quals), "QUAL", 0)
        runtime.configure_mem(None, 4, len(quals), "SUMS", 0, is_output=True)
        runtime.run_genesis(0)
        return runtime.genesis_flush(0)["sums"], runtime

    clean_sums, clean_rt = run()
    sums, faulted_rt = run(FaultInjector(FaultPlan.from_spec("transfer_error",
                                                            seed=7)))
    assert sums == clean_sums
    failed = sum(1 for t in faulted_rt.device.transfers if not t.ok)
    extra = faulted_rt.elapsed_seconds - clean_rt.elapsed_seconds
    print(f"runtime: {failed} failed DMA retried; +{extra * 1e6:.1f}us of "
          "virtual time charged, identical outputs")


if __name__ == "__main__":
    main()
