#!/usr/bin/env python
"""Quickstart: simulate a genome, run the three Genesis accelerators, and
check them against the GATK4-style software baseline.

Run:  python examples/quickstart.py
"""

from repro.accel import (
    accelerated_mark_duplicates,
    merge_partition_results,
    run_bqsr_partition,
    run_metadata_update,
)
from repro.eval import make_workload
from repro.gatk import build_covariate_tables, compute_read_metadata
from repro.tables import reads_to_table, table_to_reads
from repro.tables.partition import partition_reads_by_group


def main() -> None:
    # 1. A synthetic workload: GRCh38-proportioned mini-genome, Illumina-like
    #    reads with PCR duplicates, soft clips, and indels (our stand-in for
    #    the paper's NA12878 data set).
    workload = make_workload(n_reads=120, read_length=80,
                             chromosomes=(20, 21), seed=1)
    print(f"simulated {workload.n_reads} reads over "
          f"{len(workload.genome.chromosomes)} chromosomes, "
          f"{len(workload.partitions)} partitions of {workload.psize} bp")

    # 2. Mark duplicates (Figure 10): the accelerator computes per-read
    #    quality sums; the host picks survivors.
    markdup = accelerated_mark_duplicates(workload.reads)
    print(f"\nmark duplicates: {markdup.num_duplicates} duplicates in "
          f"{markdup.duplicate_sets} sets")

    # 3. Metadata update (Figure 11): NM/MD/UQ per read, per partition.
    total_cycles = 0
    mismatches = 0
    for pid, part in workload.partitions:
        if part.num_rows == 0:
            continue
        result = run_metadata_update(part, workload.reference.lookup(pid))
        total_cycles += result.run.total_cycles
        mismatches += sum(result.nm)
        # Validate against the software ground truth.
        expected = [compute_read_metadata(r, workload.genome)
                    for r in table_to_reads(part)]
        assert result.nm == [m.nm for m in expected]
        assert result.md == [m.md for m in expected]
        assert result.uq == [m.uq for m in expected]
    print(f"metadata update: {mismatches} total mismatches tagged, "
          f"{total_cycles} simulated cycles, bit-identical to software")

    # 4. BQSR covariate construction (Figure 12), by (partition, read group).
    survivors = [r for r in markdup.sorted_reads if not r.is_duplicate]
    by_group = {}
    for pid, part in partition_reads_by_group(
        reads_to_table(survivors), workload.psize
    ):
        if part.num_rows == 0:
            continue
        result = run_bqsr_partition(
            part, workload.reference.lookup(pid), workload.read_length
        )
        by_group.setdefault(pid.read_group, []).append(result)
    tables = merge_partition_results(by_group, workload.read_length)
    expected = build_covariate_tables(survivors, workload.genome,
                                      workload.read_length)
    for read_group, table in sorted(tables.items()):
        sw = expected[read_group]
        assert table.observations() == sw.observations()
        print(f"BQSR read group {read_group}: {table.observations()} "
              f"observations, {table.errors()} empirical errors "
              "(matches software)")

    print("\nall three accelerators reproduce the GATK4-style results exactly")


if __name__ == "__main__":
    main()
