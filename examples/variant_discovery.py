#!/usr/bin/env python
"""End-to-end secondary analysis: from raw reads to a VCF.

The full flow of Section IV-A with the Genesis accelerators doing the
data-manipulation work:

1. simulate a donor genome carrying known SNVs and sequence it;
2. preprocess: Figure 10 mark-duplicates accelerator, Figure 11
   metadata-update accelerator (NM/MD/UQ tags), Figure 12 BQSR
   covariate construction + host quality update;
3. determine active regions with the Section IV-E pipeline;
4. call variants with the pileup genotyper and write a VCF;
5. confirm calls against the injected truth using the hardware
   callset intersection (the VQSR join).

Run:  python examples/variant_discovery.py
"""

import io

from repro.accel import (
    accelerated_active_regions,
    accelerated_mark_duplicates,
    merge_partition_results,
    run_bqsr_partition,
    run_callset_intersection,
    run_metadata_update,
)
from repro.gatk import apply_recalibration, fit_recalibration_model
from repro.genomics import ReadSimulator, ReferenceGenome, SimulatorConfig
from repro.tables import (
    partition_reads,
    partition_reads_by_group,
    partition_reference,
    reads_to_table,
)
from repro.variants import call_variants, inject_true_variants, write_vcf

READ_LENGTH = 80
PSIZE = 4000


def main() -> None:
    # 1. The sample: a donor genome with injected SNVs.
    # snp_rate models the dbSNP known-sites density; injected variants land
    # mostly on those sites, so BQSR can mask them (as it does in reality).
    reference = ReferenceGenome.random({1: 9000, 2: 6000}, snp_rate=0.004,
                                       seed=301)
    donor, truth = inject_true_variants(reference, rate=1.5e-3, seed=302)
    config = SimulatorConfig(
        seed=303, read_length=READ_LENGTH, substitution_rate=0.002,
        duplicate_rate=0.2, read_groups=2,
        insertion_rate=0.0, deletion_rate=0.0,
    )
    reads = ReadSimulator(donor, config).simulate(3600)
    print(f"sequenced {len(reads)} reads from a donor with "
          f"{len(truth)} injected SNVs")

    reference_parts = partition_reference(reference, PSIZE, READ_LENGTH + 20)

    # 2a. Mark duplicates (Figure 10 accelerator + host selection).
    markdup = accelerated_mark_duplicates(reads)
    survivors = [r for r in markdup.sorted_reads if not r.is_duplicate]
    print(f"mark duplicates: {markdup.num_duplicates} flagged, "
          f"{len(survivors)} survive")

    # 2b. Metadata update (Figure 11 accelerator).
    table = reads_to_table(markdup.sorted_reads)
    tagged = 0
    for pid, part in partition_reads(table, PSIZE):
        if part.num_rows == 0:
            continue
        result = run_metadata_update(part, reference_parts.lookup(pid))
        for rowid, nm, md, uq in zip(
            part.column("ROWID").tolist(), result.nm, result.md, result.uq
        ):
            read = markdup.sorted_reads[rowid]
            read.tags.update(NM=nm, MD=md, UQ=uq)
            tagged += 1
    print(f"metadata update: NM/MD/UQ attached to {tagged} reads")

    # 2c. BQSR: covariate tables in hardware, quality update on the host.
    by_group = {}
    for pid, part in partition_reads_by_group(reads_to_table(survivors), PSIZE):
        if part.num_rows == 0:
            continue
        result = run_bqsr_partition(
            part, reference_parts.lookup(pid), READ_LENGTH
        )
        by_group.setdefault(pid.read_group, []).append(result)
    tables = merge_partition_results(by_group, READ_LENGTH)
    models = {rg: fit_recalibration_model(t) for rg, t in tables.items()}
    changed = apply_recalibration(survivors, models)
    print(f"BQSR: {sum(t.observations() for t in tables.values())} "
          f"observations binned, {changed} base qualities recalibrated")

    # 3. Active regions (Section IV-E pipeline).
    survivor_parts = partition_reads(reads_to_table(survivors), PSIZE)
    regions = accelerated_active_regions(
        survivor_parts, reference_parts, reference
    )
    n_regions = sum(len(r) for r in regions.values())
    print(f"active regions: {n_regions} candidate windows")

    # 4. Variant calling + VCF.
    calls = call_variants(survivors, reference)
    vcf = io.StringIO()
    write_vcf(vcf, calls)
    print(f"\ncalled {len(calls)} variants; VCF head:")
    for line in vcf.getvalue().splitlines()[:6]:
        print("  " + line)

    # 5. Score against truth with the hardware callset join.
    metrics = calls.concordance(truth.snvs())
    confirmed = run_callset_intersection(calls, truth)
    print(f"\nconcordance vs injected truth: "
          f"precision {metrics['precision']:.2f}, "
          f"recall {metrics['recall']:.2f}, F1 {metrics['f1']:.2f}")
    print(f"hardware callset intersection confirms "
          f"{len(confirmed.callset)} true positives")
    # Most injected variants should fall inside active regions.
    in_region = 0
    for variant in calls:
        for region in regions.get(variant.chrom, []):
            if region.start <= variant.pos <= region.end:
                in_region += 1
                break
    print(f"{in_region}/{len(calls)} called variants lie inside "
          "accelerator-determined active regions")


if __name__ == "__main__":
    main()
