#!/usr/bin/env python
"""Reproduce the paper's full evaluation in one run.

Regenerates the headline numbers of every evaluation table and figure —
Figure 9 (runtime breakdown), Figure 13(a)/(b) (speedups and accelerated
breakdowns, with cycles-per-base measured by the cycle simulator),
Table III (cost), Table IV (resources) — and prints them side by side
with the published values.

Run:  python examples/reproduce_paper.py        (takes a minute or two)
"""

from repro.eval import make_workload
from repro.eval.experiments import (
    PAPER_TARGETS,
    figure9_breakdown,
    measure_cycles_per_base,
    table4_estimates,
)
from repro.perf import PAPER_READS, model_stage, model_stage_pcie4, table3_row


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    print("building the benchmark workload (synthetic NA12878 stand-in)...")
    workload = make_workload(
        n_reads=160, read_length=80, chromosomes=(20,),
        genome_scale=4.5e-5, psize=4000, seed=77,
    )

    banner("Figure 9 - GATK4 preprocessing runtime breakdown")
    fig9 = figure9_breakdown()
    for label, fractions in (("plain", fig9["gatk4"]),
                             ("with alignment accel", fig9["gatk4_with_alignment_accel"])):
        rendered = ", ".join(f"{k} {v:.1%}" for k, v in fractions.items())
        print(f"{label:>22}: {rendered}")

    banner("Figure 13 - speedups (cycles/base measured by simulation)")
    timings = {}
    for stage in ("markdup", "metadata", "bqsr_table"):
        measurement = measure_cycles_per_base(stage, workload)
        cpb = measurement.cycles_per_base
        timing = model_stage(stage, PAPER_READS, 151, cpb)
        timings[stage] = timing
        paper = PAPER_TARGETS["speedup"][stage]
        breakdown = timing.breakdown()
        print(f"{stage:>11}: {timing.speedup:6.2f}x (paper {paper}x) "
              f"| cpb {cpb:.2f} | host {breakdown['host']:.0%} "
              f"pcie {breakdown['pcie']:.0%} hw {breakdown['hw']:.0%}")
    for stage in ("metadata", "bqsr_table"):
        timing = model_stage_pcie4(
            stage, PAPER_READS, 151,
            measure_cycles_per_base(stage, workload).cycles_per_base,
        )
        paper = PAPER_TARGETS["speedup_pcie4"][stage]
        print(f"{stage:>11} @ PCIe 4.0: {timing.speedup:6.2f}x (paper ~{paper}x)")

    banner("Table III - cost comparison")
    for stage, timing in timings.items():
        row = table3_row(timing.speedup)
        paper_cost = PAPER_TARGETS["cost_reduction"][stage]
        paper_ppd = PAPER_TARGETS["performance_per_dollar"][stage]
        print(f"{stage:>11}: cost {row['cost_reduction']:6.2f}x "
              f"(paper {paper_cost}x) | perf/$ "
              f"{row['performance_per_dollar']:7.1f}x (paper {paper_ppd}x)")

    banner("Table IV - FPGA resources (VU9P)")
    for name, vector in table4_estimates().items():
        luts, regs, bram = PAPER_TARGETS["resources"][name]
        print(f"{name:>11}: {vector.luts/1000:4.0f}K LUTs (paper {luts/1000:.0f}K), "
              f"{vector.bram_bytes/1048576:5.2f}MB BRAM (paper {bram}MB)")

    banner("functional equivalence")
    from repro.accel import run_metadata_update
    from repro.gatk import compute_read_metadata
    from repro.tables import table_to_reads

    checked = 0
    for pid, part in workload.partitions:
        if part.num_rows == 0:
            continue
        result = run_metadata_update(part, workload.reference.lookup(pid))
        expected = [compute_read_metadata(r, workload.genome)
                    for r in table_to_reads(part)]
        assert result.md == [m.md for m in expected]
        checked += part.num_rows
    print(f"metadata accelerator bit-identical to GATK-style software on "
          f"{checked} reads")
    print("\ndone - see EXPERIMENTS.md for the full index and calibration notes")


if __name__ == "__main__":
    main()
