"""Differential fuzzing: randomized read workloads through every
accelerator pipeline, asserted bit-identical to the pure-Python ``gatk``
reference implementations.

Each workload is generated from a fixed seed so every run (and every CI
machine) fuzzes the same inputs; add seeds to ``FUZZ_SEEDS`` to widen the
net.  The parameters vary read length, duplicate pressure, genome size,
and partition size so the pipelines see item framing, SPM residency, and
partition shapes the curated fixtures do not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel.bqsr import merge_partition_results, run_bqsr_partition
from repro.accel.markdup import accelerated_mark_duplicates, run_quality_sums
from repro.accel.metadata import run_metadata_update
from repro.eval.workloads import make_workload
from repro.gatk.bqsr import build_covariate_tables
from repro.gatk.markdup import mark_duplicates
from repro.gatk.metadata import compute_read_metadata
from repro.tables.genomic_tables import table_to_reads

#: (seed, n_reads, read_length, duplicate_rate, genome_scale, psize).
FUZZ_CASES = [
    (1301, 70, 40, 0.30, 1.0e-6, 1500),
    (1302, 90, 75, 0.05, 2.5e-6, 4000),
    (1303, 50, 60, 0.50, 8.0e-7, 900),
]


@pytest.fixture(scope="module", params=FUZZ_CASES, ids=lambda c: f"seed{c[0]}")
def fuzz_workload(request):
    seed, n_reads, read_length, dup_rate, scale, psize = request.param
    return make_workload(
        n_reads=n_reads,
        read_length=read_length,
        duplicate_rate=dup_rate,
        genome_scale=scale,
        psize=psize,
        chromosomes=(20, 21),
        seed=seed,
    )


def test_fuzz_markdup_bit_identical(fuzz_workload):
    """Hardware mark-duplicates equals the GATK-style reference on every
    fuzzed workload: same duplicate indices, sets, and sort order."""
    hw = accelerated_mark_duplicates(fuzz_workload.reads)
    sw = mark_duplicates(fuzz_workload.reads)
    assert hw.duplicate_indices == sw.duplicate_indices
    assert hw.duplicate_sets == sw.duplicate_sets
    assert [r.name for r in hw.sorted_reads] == [r.name for r in sw.sorted_reads]
    # The quality-sum pipeline alone also matches a plain software sum.
    quals = [read.qual for read in fuzz_workload.reads]
    result = run_quality_sums(quals)
    assert result.quality_sums == [read.quality_sum() for read in fuzz_workload.reads]


def test_fuzz_metadata_bit_identical(fuzz_workload):
    """The Figure 11 pipeline reproduces NM/MD/UQ exactly on every
    non-empty partition of every fuzzed workload."""
    checked = 0
    for pid, part in fuzz_workload.partitions:
        if part.num_rows == 0:
            continue
        ref_row = fuzz_workload.reference.lookup(pid)
        result = run_metadata_update(part, ref_row)
        expected = [
            compute_read_metadata(read, fuzz_workload.genome)
            for read in table_to_reads(part)
        ]
        assert result.nm == [m.nm for m in expected], str(pid)
        assert result.md == [m.md for m in expected], str(pid)
        assert result.uq == [m.uq for m in expected], str(pid)
        checked += part.num_rows
    assert checked == fuzz_workload.n_reads


def test_fuzz_bqsr_bit_identical(fuzz_workload):
    """The Figure 12 pipeline's merged covariate tables equal the software
    baseline for every read group of every fuzzed workload."""
    by_group = {}
    for pid, part in fuzz_workload.group_partitions:
        if part.num_rows == 0:
            continue
        result = run_bqsr_partition(
            part,
            fuzz_workload.reference.lookup(pid),
            fuzz_workload.read_length,
        )
        by_group.setdefault(pid.read_group, []).append(result)
    hw = merge_partition_results(by_group, fuzz_workload.read_length)
    sw = build_covariate_tables(
        fuzz_workload.reads, fuzz_workload.genome, fuzz_workload.read_length
    )
    assert set(hw) == set(sw)
    for read_group, expected in sw.items():
        got = hw[read_group]
        assert np.array_equal(got.total_cycle, expected.total_cycle)
        assert np.array_equal(got.error_cycle, expected.error_cycle)
        assert np.array_equal(got.total_context, expected.total_context)
        assert np.array_equal(got.error_context, expected.error_context)
