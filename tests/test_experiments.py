"""Tests for the per-figure experiment drivers."""

import pytest

from repro.eval.experiments import (
    PAPER_TARGETS,
    figure1_sequencing_cost,
    figure8_scaling,
    figure9_breakdown,
    figure13_per_chromosome,
    measure_cycles_per_base,
    table3,
    table4_estimates,
)
from repro.eval.workloads import make_workload
from repro.hw.resources import VU9P_BRAM_BYTES, VU9P_LUTS, VU9P_REGISTERS
from repro.perf.timing import model_stage


@pytest.fixture(scope="module")
def tiny_workload():
    return make_workload(
        n_reads=60, read_length=50, chromosomes=(21,), genome_scale=1e-6,
        psize=2000, seed=5,
    )


def test_figure1_cost_monotonically_falls():
    data = figure1_sequencing_cost()
    years = [year for year, _ in data]
    costs = [cost for _, cost in data]
    assert years == sorted(years)
    assert costs[0] > 9e7 and costs[-1] < 1100  # $100M -> ~$1000 (Figure 1)
    # The fall is five orders of magnitude.
    assert costs[0] / costs[-1] > 1e4


def test_figure9_driver_shapes():
    result = figure9_breakdown()
    assert set(result) == {"gatk4", "gatk4_with_alignment_accel", "seconds"}
    assert result["gatk4"]["alignment"] > 0.6
    assert result["gatk4_with_alignment_accel"]["alignment"] < 0.03


def test_measured_cpb_close_to_one(tiny_workload):
    for stage in ("markdup", "metadata", "bqsr_table"):
        measurement = measure_cycles_per_base(stage, tiny_workload)
        assert 0.9 < measurement.cycles_per_base < 2.5, stage


def test_measure_unknown_stage(tiny_workload):
    with pytest.raises(KeyError):
        measure_cycles_per_base("alignment", tiny_workload)


def test_per_chromosome_speedups(tiny_workload):
    speedups = figure13_per_chromosome(tiny_workload, "metadata")
    assert set(speedups) == {21}
    assert speedups[21] > 5


def test_table3_derivation():
    timings = {
        stage: model_stage(stage, 700e6, 151)
        for stage in ("markdup", "metadata", "bqsr_table")
    }
    rows = table3(timings)
    target = PAPER_TARGETS["cost_reduction"]
    assert rows["metadata"]["cost_reduction"] == pytest.approx(
        target["metadata"], rel=0.2
    )
    assert rows["bqsr_table"]["cost_reduction"] == pytest.approx(
        target["bqsr_table"], rel=0.2
    )


def test_table4_fits_on_vu9p_and_orders_like_paper():
    estimates = table4_estimates()
    for name, vector in estimates.items():
        assert vector.luts < VU9P_LUTS, name
        assert vector.registers < VU9P_REGISTERS, name
        assert vector.bram_bytes < VU9P_BRAM_BYTES, name
    # Paper ordering: BQSR most LUTs, metadata most BRAM, markdup smallest.
    assert estimates["bqsr_table"].luts > estimates["metadata"].luts
    assert estimates["metadata"].luts > estimates["markdup"].luts
    assert estimates["metadata"].bram_bytes > estimates["bqsr_table"].bram_bytes
    assert estimates["metadata"].bram_bytes > estimates["markdup"].bram_bytes


def test_table4_within_2x_of_paper():
    estimates = table4_estimates()
    for name, (luts, _regs, bram_mb) in PAPER_TARGETS["resources"].items():
        model = estimates[name]
        assert 0.5 < model.luts / luts < 2.0, name
        assert 0.5 < (model.bram_bytes / 1048576) / bram_mb < 2.0, name


def test_figure8_throughput_scales_then_saturates():
    throughput = figure8_scaling(pipeline_counts=(1, 2, 4))
    assert throughput[2] > 1.5 * throughput[1]
    assert throughput[4] > throughput[2]
