"""Unit tests for the Illumina-like read simulator."""

import numpy as np
import pytest

from repro.genomics.read import pair_key
from repro.genomics.reference import ReferenceGenome
from repro.genomics.simulator import ReadSimulator, SimulatorConfig


@pytest.fixture(scope="module")
def genome():
    return ReferenceGenome.random({1: 8000, 2: 4000}, seed=42)


def test_reads_have_machine_length(genome):
    sim = ReadSimulator(genome, SimulatorConfig(seed=1, read_length=75))
    for read in sim.simulate(50):
        assert len(read.seq) == 75
        assert len(read.qual) == 75
        assert read.cigar.read_length() == 75


def test_reads_sorted_by_coordinate(genome):
    sim = ReadSimulator(genome, SimulatorConfig(seed=2))
    reads = sim.simulate(60)
    keys = [(r.chrom, r.pos) for r in reads]
    assert keys == sorted(keys)


def test_deterministic_with_seed(genome):
    a = ReadSimulator(genome, SimulatorConfig(seed=3)).simulate(30)
    b = ReadSimulator(genome, SimulatorConfig(seed=3)).simulate(30)
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.pos == rb.pos
        assert str(ra.cigar) == str(rb.cigar)
        assert np.array_equal(ra.seq, rb.seq)


def test_duplicates_share_key(genome):
    sim = ReadSimulator(genome, SimulatorConfig(seed=4, duplicate_rate=1.0))
    reads = sim.simulate(20)
    keys = [pair_key(r) for r in reads]
    # With duplicate_rate=1 every fragment spawns at least one duplicate.
    assert len(set(keys)) < len(keys)


def test_no_duplicates_when_rate_zero(genome):
    sim = ReadSimulator(
        genome, SimulatorConfig(seed=5, duplicate_rate=0.0, soft_clip_rate=0.0)
    )
    reads = sim.simulate(40)
    assert len(reads) == 40


def test_quality_range(genome):
    sim = ReadSimulator(genome, SimulatorConfig(seed=6))
    for read in sim.simulate(30):
        assert read.qual.min() >= 2
        assert read.qual.max() <= 41


def test_read_groups_assigned(genome):
    sim = ReadSimulator(genome, SimulatorConfig(seed=7, read_groups=3))
    groups = {read.read_group for read in sim.simulate(60)}
    assert groups <= {0, 1, 2}
    assert len(groups) > 1


def test_alignment_is_consistent_with_reference(genome):
    """With zero error rates, every M base must equal the reference."""
    config = SimulatorConfig(
        seed=8, substitution_rate=0.0, insertion_rate=0.0,
        deletion_rate=0.0, soft_clip_rate=0.0, duplicate_rate=0.0,
    )
    sim = ReadSimulator(genome, config)
    for read in sim.simulate(30):
        ref = genome[read.chrom].seq
        for op, ref_pos, read_index in read.cigar.walk(read.pos):
            assert op == "M"
            assert int(read.seq[read_index]) == int(ref[ref_pos])


def test_indels_present_at_high_rate(genome):
    config = SimulatorConfig(seed=9, insertion_rate=0.05, deletion_rate=0.05)
    sim = ReadSimulator(genome, config)
    ops = set()
    for read in sim.simulate(30):
        ops.update(element.op for element in read.cigar)
    assert "I" in ops and "D" in ops


def test_soft_clips_present(genome):
    config = SimulatorConfig(seed=10, soft_clip_rate=1.0)
    sim = ReadSimulator(genome, config)
    assert any(
        read.cigar.leading_soft_clip() or read.cigar.trailing_soft_clip()
        for read in sim.simulate(20)
    )


def test_cigar_canonical(genome):
    sim = ReadSimulator(genome, SimulatorConfig(seed=11))
    for read in sim.simulate(50):
        assert read.cigar.is_canonical(), str(read.cigar)


def test_paired_reads(genome):
    sim = ReadSimulator(genome, SimulatorConfig(seed=12, paired=True))
    reads = sim.simulate_pairs(15)
    assert len(reads) == 30
    by_name = {}
    for read in reads:
        by_name.setdefault(read.name, []).append(read)
    for name, pair in by_name.items():
        assert len(pair) == 2
        assert pair[0].is_paired and pair[1].is_paired
        strands = sorted(r.is_reverse for r in pair)
        assert strands == [False, True]


def test_chromosome_restriction(genome):
    sim = ReadSimulator(genome, SimulatorConfig(seed=13))
    assert all(r.chrom == 2 for r in sim.simulate(20, chrom=2))


def test_unknown_chromosome_rejected(genome):
    sim = ReadSimulator(genome, SimulatorConfig(seed=14))
    with pytest.raises(KeyError):
        sim.simulate(5, chrom=99)


def test_config_validation():
    with pytest.raises(ValueError):
        SimulatorConfig(read_length=2)
    with pytest.raises(ValueError):
        SimulatorConfig(substitution_rate=1.5)
