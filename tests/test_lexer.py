"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sql.lexer import LexError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


def test_keywords_uppercase():
    tokens = tokenize("select From WHERE")
    assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
    assert all(t.kind == "KEYWORD" for t in tokens[:-1])


def test_identifiers_preserve_case():
    assert values("ReadPartition") == ["ReadPartition"]
    assert kinds("ReadPartition") == ["IDENT"]


def test_variables():
    tokens = tokenize("@rlen")
    assert tokens[0].kind == "VAR"
    assert tokens[0].value == "rlen"


def test_temp_tables():
    tokens = tokenize("#AlignedRead")
    assert tokens[0].kind == "TEMP"
    assert tokens[0].value == "AlignedRead"


def test_numbers():
    tokens = tokenize("42 3.5")
    assert [t.kind for t in tokens[:-1]] == ["NUMBER", "NUMBER"]
    assert [t.value for t in tokens[:-1]] == ["42", "3.5"]


def test_strings():
    tokens = tokenize("'hello' \"world\"")
    assert [t.value for t in tokens[:-1]] == ["hello", "world"]
    assert all(t.kind == "STRING" for t in tokens[:-1])


def test_unterminated_string():
    with pytest.raises(LexError):
        tokenize("'oops")


def test_double_char_operators():
    assert values("== != <= >=") == ["==", "!=", "<=", ">="]


def test_block_comments_skipped():
    assert values("SELECT /* a comment */ X") == ["SELECT", "X"]


def test_unterminated_comment():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_line_comments_skipped():
    assert values("SELECT -- trailing\n X") == ["SELECT", "X"]


def test_qualified_name_tokens():
    assert values("SingleRead.POS") == ["SingleRead", ".", "POS"]


def test_unexpected_character():
    with pytest.raises(LexError):
        tokenize("SELECT $")


def test_eof_always_last():
    assert tokenize("")[-1].kind == "EOF"
    assert tokenize("X")[-1].kind == "EOF"


def test_figure4_text_tokenizes():
    from repro.sql.queries import FIGURE4_QUERY

    tokens = tokenize(FIGURE4_QUERY)
    assert tokens[-1].kind == "EOF"
    assert len(tokens) > 100
