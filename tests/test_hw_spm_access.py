"""Unit tests for the SPM Reader and SPM Updater modules."""

import pytest

from repro.hw.flit import Flit, item_flits, scalar_flit
from repro.hw.modules import SpmReader, SpmUpdater
from repro.hw.spm import Scratchpad

from hw_harness import drive, values


def test_sequential_write_mode():
    spm = Scratchpad("s", 8)
    updater = SpmUpdater("u", spm, mode="sequential", start_address=2)
    drive(updater, {"in": item_flits([7, 8, 9])}, out_ports=())
    assert spm.dump() == [0, 0, 7, 8, 9, 0, 0, 0]


def test_random_write_mode():
    spm = Scratchpad("s", 8)
    updater = SpmUpdater("u", spm, mode="random")
    flits = [Flit({"addr": 5, "value": 50}), Flit({"addr": 1, "value": 10}, last=True)]
    drive(updater, {"in": flits}, out_ports=())
    assert spm.read(5) == 50 and spm.read(1) == 10


def test_rmw_default_increment():
    spm = Scratchpad("s", 4)
    updater = SpmUpdater("u", spm, mode="rmw")
    flits = [Flit({"addr": 2}), Flit({"addr": 2}), Flit({"addr": 0}, last=True)]
    drive(updater, {"in": flits}, out_ports=())
    assert spm.dump() == [1, 0, 2, 0]


def test_rmw_custom_modify():
    spm = Scratchpad("s", 2)
    updater = SpmUpdater(
        "u", spm, mode="rmw", modify=lambda old, value: old + value
    )
    flits = [Flit({"addr": 0, "value": 5}), Flit({"addr": 0, "value": 7}, last=True)]
    drive(updater, {"in": flits}, out_ports=())
    assert spm.read(0) == 12


def test_rmw_hazard_stalls_counted():
    spm = Scratchpad("s", 2)
    updater = SpmUpdater("u", spm, mode="rmw")
    # Back-to-back updates to the same address trip the interlock.
    flits = [Flit({"addr": 1}) for _ in range(5)]
    flits[-1].last = True
    _, stats = drive(updater, {"in": flits}, out_ports=())
    assert updater.hazard_stalls > 0
    assert spm.read(1) == 5  # but every update still lands


def test_rmw_correct_under_hazards_mixed_addresses():
    spm = Scratchpad("s", 4)
    updater = SpmUpdater("u", spm, mode="rmw")
    addresses = [0, 0, 1, 0, 1, 1, 2, 0]
    flits = [Flit({"addr": a}) for a in addresses]
    flits[-1].last = True
    drive(updater, {"in": flits}, out_ports=())
    assert spm.dump() == [4, 3, 1, 0]


def test_updater_mode_validation():
    with pytest.raises(ValueError):
        SpmUpdater("u", Scratchpad("s", 2), mode="banked")


def test_boundary_flits_skipped():
    spm = Scratchpad("s", 2)
    updater = SpmUpdater("u", spm, mode="rmw")
    drive(updater, {"in": [Flit({}, last=True)]}, out_ports=())
    assert spm.dump() == [0, 0]


def test_reader_lookup_mode():
    spm = Scratchpad("s", 4)
    spm.load([10, 11, 12, 13])
    reader = SpmReader("r", spm, mode="lookup")
    flits = [Flit({"addr": 2}), Flit({"addr": 0}, last=True)]
    out, _ = drive(reader, {"in": flits})
    assert values(out["out"]) == [12, 10]
    assert out["out"][-1].last


def test_reader_interval_mode():
    spm = Scratchpad("s", 10)
    spm.load(list(range(100, 110)))
    reader = SpmReader("r", spm, mode="interval", base_address=1000,
                       addr_out_field="pos")
    out, _ = drive(
        reader,
        {"start": [scalar_flit(1002)], "end": [scalar_flit(1005)]},
    )
    flits = [f for f in out["out"] if f.fields]
    assert [f["value"] for f in flits] == [102, 103, 104, 105]
    assert [f["pos"] for f in flits] == [1002, 1003, 1004, 1005]
    assert flits[-1].last


def test_reader_interval_multiple_items():
    spm = Scratchpad("s", 5)
    spm.load([0, 1, 2, 3, 4])
    reader = SpmReader("r", spm, mode="interval")
    out, _ = drive(
        reader,
        {
            "start": [scalar_flit(0), scalar_flit(3)],
            "end": [scalar_flit(1), scalar_flit(4)],
        },
    )
    items = []
    current = []
    for flit in out["out"]:
        if flit.fields:
            current.append(flit["value"])
        if flit.last:
            items.append(current)
            current = []
    assert items == [[0, 1], [3, 4]]


def test_reader_empty_interval():
    spm = Scratchpad("s", 4)
    reader = SpmReader("r", spm, mode="interval")
    out, _ = drive(
        reader, {"start": [scalar_flit(3)], "end": [scalar_flit(2)]}
    )
    assert len(out["out"]) == 1 and out["out"][0].last


def test_reader_drain_mode():
    spm = Scratchpad("s", 4)
    spm.load([9, 8, 7, 6])
    reader = SpmReader("r", spm, mode="drain", addr_out_field="addr")
    out, _ = drive(reader, {})
    flits = out["out"]
    assert [f["value"] for f in flits] == [9, 8, 7, 6]
    assert [f["addr"] for f in flits] == [0, 1, 2, 3]
    assert flits[-1].last


def test_reader_mode_validation():
    with pytest.raises(ValueError):
        SpmReader("r", Scratchpad("s", 2), mode="stream")
