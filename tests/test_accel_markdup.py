"""Integration tests: the Figure 10 mark-duplicates accelerator."""

import numpy as np

from repro.accel.markdup import (
    accelerated_mark_duplicates,
    run_quality_sums,
    run_quality_sums_table,
)
from repro.gatk.markdup import mark_duplicates
from repro.tables.genomic_tables import reads_to_table


def test_quality_sums_match_software(small_reads):
    result = run_quality_sums([read.qual for read in small_reads])
    expected = [read.quality_sum() for read in small_reads]
    assert result.quality_sums == expected


def test_quality_sums_from_table(small_reads):
    table = reads_to_table(small_reads)
    result = run_quality_sums_table(table)
    assert result.quality_sums == [r.quality_sum() for r in small_reads]


def test_accelerated_stage_equals_software(small_reads):
    hw = accelerated_mark_duplicates(small_reads)
    sw = mark_duplicates(small_reads)
    assert hw.duplicate_indices == sw.duplicate_indices
    assert hw.duplicate_sets == sw.duplicate_sets
    assert [r.name for r in hw.sorted_reads] == [r.name for r in sw.sorted_reads]


def test_empty_qual_arrays():
    result = run_quality_sums([[], [5, 5]])
    assert result.quality_sums == [0, 10]


def test_throughput_one_quality_per_cycle(small_reads):
    quals = [read.qual for read in small_reads]
    total = sum(len(q) for q in quals)
    result = run_quality_sums(quals)
    assert result.stats.cycles < total * 1.5 + 100


def test_large_sums_no_overflow():
    quals = [np.full(1000, 41, dtype=np.uint8)]
    result = run_quality_sums(quals)
    assert result.quality_sums == [41_000]
