"""Unit tests for logical plan construction."""

import pytest

from repro.sql.parser import parse_query
from repro.sql.plan import (
    AggregateNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PosExplodeNode,
    ProjectNode,
    ReadExplodeNode,
    ScanNode,
    build_plan,
    describe,
    walk,
)


def plan_of(text):
    return build_plan(parse_query(text))


def test_scan_plan():
    plan = plan_of("SELECT * FROM T")
    assert isinstance(plan, ScanNode)
    assert plan.table == "T"


def test_projection_plan():
    plan = plan_of("SELECT A, B FROM T")
    assert isinstance(plan, ProjectNode)
    assert isinstance(plan.child, ScanNode)


def test_filter_plan():
    plan = plan_of("SELECT A FROM T WHERE A > 1")
    assert isinstance(plan, ProjectNode)
    assert isinstance(plan.child, FilterNode)


def test_join_plan():
    plan = plan_of("SELECT * FROM A INNER JOIN B ON A.K = B.K")
    assert isinstance(plan, JoinNode)
    assert plan.kind == "inner"
    assert isinstance(plan.left, ScanNode)
    assert isinstance(plan.right, ScanNode)


def test_group_by_plan():
    plan = plan_of("SELECT G, SUM(V) FROM T GROUP BY G")
    assert isinstance(plan, GroupByNode)


def test_aggregate_plan():
    plan = plan_of("SELECT SUM(V) FROM T")
    assert isinstance(plan, AggregateNode)


def test_limit_plan_is_outermost():
    plan = plan_of("SELECT A FROM T LIMIT 2, 5")
    assert isinstance(plan, LimitNode)
    assert isinstance(plan.child, ProjectNode)


def test_pos_explode_plan():
    plan = plan_of("PosExplode (R.SEQ, R.POS) FROM R")
    assert isinstance(plan, PosExplodeNode)


def test_read_explode_plan():
    plan = plan_of("ReadExplode (S.POS, S.CIGAR, S.SEQ) FROM S")
    assert isinstance(plan, ReadExplodeNode)


def test_subquery_becomes_nested_plan():
    plan = plan_of("SELECT * FROM (SELECT A FROM T LIMIT 3)")
    assert isinstance(plan, LimitNode)


def test_walk_children_first():
    plan = plan_of("SELECT SUM(V) FROM T WHERE V > 0")
    nodes = list(walk(plan))
    assert isinstance(nodes[0], ScanNode)
    assert isinstance(nodes[-1], AggregateNode)


def test_describe_renders_tree():
    text = describe(plan_of("SELECT SUM(V) FROM A INNER JOIN B ON A.K = B.K"))
    assert "Aggregate" in text
    assert "Join(inner)" in text
    assert "Scan(A)" in text and "Scan(B)" in text


def test_build_plan_rejects_non_query():
    with pytest.raises(TypeError):
        build_plan("not a query")
