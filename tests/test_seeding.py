"""Tests for FM-index seed finding: software kernel and hardware pipeline."""

import numpy as np
import pytest

from repro.accel.fm_seeding import full_occ_table, run_fm_seeding
from repro.fmindex import FmIndex, find_seeds, seed_coverage, verify_seeds
from repro.genomics.sequences import random_sequence


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(61)
    ref = random_sequence(2500, rng)
    return FmIndex(ref), ref, rng


def test_perfect_read_yields_single_seed(setup):
    index, ref, _rng = setup
    read = ref[500:560]
    seeds = find_seeds(index, read, min_seed_length=20)
    assert len(seeds) == 1
    assert seeds[0].read_start == 0
    assert seeds[0].length == 60
    assert 500 in index.locate(seeds[0].interval)


def test_mismatch_splits_seeds(setup):
    index, ref, _rng = setup
    read = ref[800:860].copy()
    read[30] = (read[30] + 1) % 4
    seeds = find_seeds(index, read, min_seed_length=15)
    assert len(seeds) == 2
    # Seeds flank the mismatch.
    assert seeds[0].read_end <= 31 or seeds[0].read_start >= 30
    assert verify_seeds(index, read, seeds)


def test_min_seed_length_filters(setup):
    index, ref, _rng = setup
    read = ref[100:130].copy()
    read[10] = (read[10] + 1) % 4  # left fragment 10bp, right 19bp
    long_only = find_seeds(index, read, min_seed_length=15)
    assert all(seed.length >= 15 for seed in long_only)
    permissive = find_seeds(index, read, min_seed_length=5)
    assert len(permissive) >= len(long_only)


def test_max_hits_drops_repetitive(setup):
    index, _ref, _rng = setup
    # A poly-A run is highly repetitive; with max_hits=1 it is dropped.
    read = np.zeros(25, dtype=np.uint8)
    strict = find_seeds(index, read, min_seed_length=4, max_hits=1)
    assert strict == [] or all(s.hits <= 1 for s in strict)


def test_seed_coverage(setup):
    index, ref, _rng = setup
    read = ref[300:360]
    seeds = find_seeds(index, read, min_seed_length=20)
    assert seed_coverage(seeds, len(read)) == pytest.approx(1.0)
    assert seed_coverage([], 10) == 0.0
    assert seed_coverage([], 0) == 0.0


def test_validation(setup):
    index, ref, _rng = setup
    with pytest.raises(ValueError):
        find_seeds(index, ref[:10], min_seed_length=0)


def test_full_occ_table_matches_index(setup):
    index, _ref, _rng = setup
    table = full_occ_table(index)
    for i in range(0, index.length + 1, 131):
        for c in range(4):
            assert table[i][c] == index.occ(c, i)


def test_hw_seeding_matches_software(setup):
    index, ref, _rng = setup
    rng = np.random.default_rng(62)
    reads = []
    for _ in range(12):
        start = int(rng.integers(0, len(ref) - 70))
        read = ref[start:start + 70].copy()
        for _ in range(int(rng.integers(0, 3))):
            position = int(rng.integers(0, len(read)))
            read[position] = (read[position] + 1) % 4
        reads.append(read)
    result = run_fm_seeding(index, reads, min_seed_length=15)
    assert len(result.seeds) == len(reads)
    for read, hw_seeds in zip(reads, result.seeds):
        sw_seeds = find_seeds(index, read, min_seed_length=15)
        assert [(s.read_start, s.length, s.interval) for s in hw_seeds] == \
            [(s.read_start, s.length, s.interval) for s in sw_seeds]


def test_hw_seeding_empty_read(setup):
    index, _ref, _rng = setup
    result = run_fm_seeding(index, [np.array([], dtype=np.uint8)])
    assert result.seeds == [[]]


def test_hw_cycle_cost_tracks_extensions(setup):
    """Each base costs ~1 load cycle + ~1 extension cycle."""
    index, ref, _rng = setup
    read = ref[1000:1100]
    result = run_fm_seeding(index, [read], min_seed_length=20)
    assert result.stats.cycles < len(read) * 4 + 50
